file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_sequence_table.dir/bench_e1_sequence_table.cc.o"
  "CMakeFiles/bench_e1_sequence_table.dir/bench_e1_sequence_table.cc.o.d"
  "bench_e1_sequence_table"
  "bench_e1_sequence_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_sequence_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
