# Empty dependencies file for bench_e1_sequence_table.
# This may be replaced when dependencies are built.
