file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_table_construction.dir/bench_e7_table_construction.cc.o"
  "CMakeFiles/bench_e7_table_construction.dir/bench_e7_table_construction.cc.o.d"
  "bench_e7_table_construction"
  "bench_e7_table_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_table_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
