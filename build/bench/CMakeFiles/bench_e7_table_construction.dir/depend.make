# Empty dependencies file for bench_e7_table_construction.
# This may be replaced when dependencies are built.
