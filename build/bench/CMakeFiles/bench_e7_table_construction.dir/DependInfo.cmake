
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e7_table_construction.cc" "bench/CMakeFiles/bench_e7_table_construction.dir/bench_e7_table_construction.cc.o" "gcc" "bench/CMakeFiles/bench_e7_table_construction.dir/bench_e7_table_construction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lll_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/lll_xdm.dir/DependInfo.cmake"
  "/root/repo/build/src/xquery/CMakeFiles/lll_xquery.dir/DependInfo.cmake"
  "/root/repo/build/src/xslt/CMakeFiles/lll_xslt.dir/DependInfo.cmake"
  "/root/repo/build/src/awb/CMakeFiles/lll_awb.dir/DependInfo.cmake"
  "/root/repo/build/src/awbql/CMakeFiles/lll_awbql.dir/DependInfo.cmake"
  "/root/repo/build/src/docgen/CMakeFiles/lll_docgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
