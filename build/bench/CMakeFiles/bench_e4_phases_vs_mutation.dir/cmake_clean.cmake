file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_phases_vs_mutation.dir/bench_e4_phases_vs_mutation.cc.o"
  "CMakeFiles/bench_e4_phases_vs_mutation.dir/bench_e4_phases_vs_mutation.cc.o.d"
  "bench_e4_phases_vs_mutation"
  "bench_e4_phases_vs_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_phases_vs_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
