# Empty dependencies file for bench_e4_phases_vs_mutation.
# This may be replaced when dependencies are built.
