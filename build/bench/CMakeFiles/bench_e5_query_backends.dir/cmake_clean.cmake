file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_query_backends.dir/bench_e5_query_backends.cc.o"
  "CMakeFiles/bench_e5_query_backends.dir/bench_e5_query_backends.cc.o.d"
  "bench_e5_query_backends"
  "bench_e5_query_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_query_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
