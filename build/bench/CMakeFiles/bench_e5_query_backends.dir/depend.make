# Empty dependencies file for bench_e5_query_backends.
# This may be replaced when dependencies are built.
