# Empty dependencies file for bench_e10_dissection.
# This may be replaced when dependencies are built.
