file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_dissection.dir/bench_e10_dissection.cc.o"
  "CMakeFiles/bench_e10_dissection.dir/bench_e10_dissection.cc.o.d"
  "bench_e10_dissection"
  "bench_e10_dissection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dissection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
