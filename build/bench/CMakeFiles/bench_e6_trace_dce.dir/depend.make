# Empty dependencies file for bench_e6_trace_dce.
# This may be replaced when dependencies are built.
