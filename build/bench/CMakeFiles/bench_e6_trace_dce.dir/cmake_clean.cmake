file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_trace_dce.dir/bench_e6_trace_dce.cc.o"
  "CMakeFiles/bench_e6_trace_dce.dir/bench_e6_trace_dce.cc.o.d"
  "bench_e6_trace_dce"
  "bench_e6_trace_dce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_trace_dce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
