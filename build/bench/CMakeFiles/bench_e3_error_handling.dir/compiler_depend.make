# Empty compiler generated dependencies file for bench_e3_error_handling.
# This may be replaced when dependencies are built.
