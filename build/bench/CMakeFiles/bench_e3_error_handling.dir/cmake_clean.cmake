file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_error_handling.dir/bench_e3_error_handling.cc.o"
  "CMakeFiles/bench_e3_error_handling.dir/bench_e3_error_handling.cc.o.d"
  "bench_e3_error_handling"
  "bench_e3_error_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_error_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
