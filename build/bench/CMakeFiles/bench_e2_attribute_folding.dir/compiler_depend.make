# Empty compiler generated dependencies file for bench_e2_attribute_folding.
# This may be replaced when dependencies are built.
