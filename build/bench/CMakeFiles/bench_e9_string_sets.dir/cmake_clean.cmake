file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_string_sets.dir/bench_e9_string_sets.cc.o"
  "CMakeFiles/bench_e9_string_sets.dir/bench_e9_string_sets.cc.o.d"
  "bench_e9_string_sets"
  "bench_e9_string_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_string_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
