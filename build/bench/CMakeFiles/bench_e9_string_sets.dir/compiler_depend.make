# Empty compiler generated dependencies file for bench_e9_string_sets.
# This may be replaced when dependencies are built.
