file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_general_comparison.dir/bench_e8_general_comparison.cc.o"
  "CMakeFiles/bench_e8_general_comparison.dir/bench_e8_general_comparison.cc.o.d"
  "bench_e8_general_comparison"
  "bench_e8_general_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_general_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
