# Empty dependencies file for bench_e8_general_comparison.
# This may be replaced when dependencies are built.
