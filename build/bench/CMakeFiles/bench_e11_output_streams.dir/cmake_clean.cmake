file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_output_streams.dir/bench_e11_output_streams.cc.o"
  "CMakeFiles/bench_e11_output_streams.dir/bench_e11_output_streams.cc.o.d"
  "bench_e11_output_streams"
  "bench_e11_output_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_output_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
