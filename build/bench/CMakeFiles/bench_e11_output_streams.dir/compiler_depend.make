# Empty compiler generated dependencies file for bench_e11_output_streams.
# This may be replaced when dependencies are built.
