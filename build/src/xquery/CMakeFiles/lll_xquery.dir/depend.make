# Empty dependencies file for lll_xquery.
# This may be replaced when dependencies are built.
