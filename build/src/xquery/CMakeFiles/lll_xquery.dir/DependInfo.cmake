
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xquery/ast.cc" "src/xquery/CMakeFiles/lll_xquery.dir/ast.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/ast.cc.o.d"
  "/root/repo/src/xquery/engine.cc" "src/xquery/CMakeFiles/lll_xquery.dir/engine.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/engine.cc.o.d"
  "/root/repo/src/xquery/eval.cc" "src/xquery/CMakeFiles/lll_xquery.dir/eval.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/eval.cc.o.d"
  "/root/repo/src/xquery/functions.cc" "src/xquery/CMakeFiles/lll_xquery.dir/functions.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/functions.cc.o.d"
  "/root/repo/src/xquery/optimizer.cc" "src/xquery/CMakeFiles/lll_xquery.dir/optimizer.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/optimizer.cc.o.d"
  "/root/repo/src/xquery/parser.cc" "src/xquery/CMakeFiles/lll_xquery.dir/parser.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/parser.cc.o.d"
  "/root/repo/src/xquery/query_cache.cc" "src/xquery/CMakeFiles/lll_xquery.dir/query_cache.cc.o" "gcc" "src/xquery/CMakeFiles/lll_xquery.dir/query_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lll_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xdm/CMakeFiles/lll_xdm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
