file(REMOVE_RECURSE
  "liblll_xquery.a"
)
