file(REMOVE_RECURSE
  "CMakeFiles/lll_xquery.dir/ast.cc.o"
  "CMakeFiles/lll_xquery.dir/ast.cc.o.d"
  "CMakeFiles/lll_xquery.dir/engine.cc.o"
  "CMakeFiles/lll_xquery.dir/engine.cc.o.d"
  "CMakeFiles/lll_xquery.dir/eval.cc.o"
  "CMakeFiles/lll_xquery.dir/eval.cc.o.d"
  "CMakeFiles/lll_xquery.dir/functions.cc.o"
  "CMakeFiles/lll_xquery.dir/functions.cc.o.d"
  "CMakeFiles/lll_xquery.dir/optimizer.cc.o"
  "CMakeFiles/lll_xquery.dir/optimizer.cc.o.d"
  "CMakeFiles/lll_xquery.dir/parser.cc.o"
  "CMakeFiles/lll_xquery.dir/parser.cc.o.d"
  "CMakeFiles/lll_xquery.dir/query_cache.cc.o"
  "CMakeFiles/lll_xquery.dir/query_cache.cc.o.d"
  "liblll_xquery.a"
  "liblll_xquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_xquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
