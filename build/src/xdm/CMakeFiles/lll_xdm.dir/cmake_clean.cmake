file(REMOVE_RECURSE
  "CMakeFiles/lll_xdm.dir/compare.cc.o"
  "CMakeFiles/lll_xdm.dir/compare.cc.o.d"
  "CMakeFiles/lll_xdm.dir/item.cc.o"
  "CMakeFiles/lll_xdm.dir/item.cc.o.d"
  "CMakeFiles/lll_xdm.dir/sequence.cc.o"
  "CMakeFiles/lll_xdm.dir/sequence.cc.o.d"
  "liblll_xdm.a"
  "liblll_xdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_xdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
