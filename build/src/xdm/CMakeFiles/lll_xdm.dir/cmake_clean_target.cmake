file(REMOVE_RECURSE
  "liblll_xdm.a"
)
