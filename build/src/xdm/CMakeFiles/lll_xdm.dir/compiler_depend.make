# Empty compiler generated dependencies file for lll_xdm.
# This may be replaced when dependencies are built.
