
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xdm/compare.cc" "src/xdm/CMakeFiles/lll_xdm.dir/compare.cc.o" "gcc" "src/xdm/CMakeFiles/lll_xdm.dir/compare.cc.o.d"
  "/root/repo/src/xdm/item.cc" "src/xdm/CMakeFiles/lll_xdm.dir/item.cc.o" "gcc" "src/xdm/CMakeFiles/lll_xdm.dir/item.cc.o.d"
  "/root/repo/src/xdm/sequence.cc" "src/xdm/CMakeFiles/lll_xdm.dir/sequence.cc.o" "gcc" "src/xdm/CMakeFiles/lll_xdm.dir/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lll_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
