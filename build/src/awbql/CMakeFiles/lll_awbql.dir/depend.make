# Empty dependencies file for lll_awbql.
# This may be replaced when dependencies are built.
