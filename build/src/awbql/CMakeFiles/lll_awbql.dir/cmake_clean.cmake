file(REMOVE_RECURSE
  "CMakeFiles/lll_awbql.dir/native.cc.o"
  "CMakeFiles/lll_awbql.dir/native.cc.o.d"
  "CMakeFiles/lll_awbql.dir/query.cc.o"
  "CMakeFiles/lll_awbql.dir/query.cc.o.d"
  "CMakeFiles/lll_awbql.dir/xquery_backend.cc.o"
  "CMakeFiles/lll_awbql.dir/xquery_backend.cc.o.d"
  "liblll_awbql.a"
  "liblll_awbql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_awbql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
