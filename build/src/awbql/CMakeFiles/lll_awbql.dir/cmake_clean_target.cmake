file(REMOVE_RECURSE
  "liblll_awbql.a"
)
