file(REMOVE_RECURSE
  "CMakeFiles/lll_xslt.dir/xslt.cc.o"
  "CMakeFiles/lll_xslt.dir/xslt.cc.o.d"
  "liblll_xslt.a"
  "liblll_xslt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_xslt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
