file(REMOVE_RECURSE
  "liblll_xslt.a"
)
