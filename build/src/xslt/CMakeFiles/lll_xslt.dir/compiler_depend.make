# Empty compiler generated dependencies file for lll_xslt.
# This may be replaced when dependencies are built.
