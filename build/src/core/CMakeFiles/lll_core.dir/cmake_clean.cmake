file(REMOVE_RECURSE
  "CMakeFiles/lll_core.dir/status.cc.o"
  "CMakeFiles/lll_core.dir/status.cc.o.d"
  "CMakeFiles/lll_core.dir/string_util.cc.o"
  "CMakeFiles/lll_core.dir/string_util.cc.o.d"
  "CMakeFiles/lll_core.dir/thread_pool.cc.o"
  "CMakeFiles/lll_core.dir/thread_pool.cc.o.d"
  "liblll_core.a"
  "liblll_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
