file(REMOVE_RECURSE
  "liblll_xml.a"
)
