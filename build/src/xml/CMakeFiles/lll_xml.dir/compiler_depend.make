# Empty compiler generated dependencies file for lll_xml.
# This may be replaced when dependencies are built.
