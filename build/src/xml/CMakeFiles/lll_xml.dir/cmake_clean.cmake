file(REMOVE_RECURSE
  "CMakeFiles/lll_xml.dir/deep_equal.cc.o"
  "CMakeFiles/lll_xml.dir/deep_equal.cc.o.d"
  "CMakeFiles/lll_xml.dir/node.cc.o"
  "CMakeFiles/lll_xml.dir/node.cc.o.d"
  "CMakeFiles/lll_xml.dir/parser.cc.o"
  "CMakeFiles/lll_xml.dir/parser.cc.o.d"
  "CMakeFiles/lll_xml.dir/serializer.cc.o"
  "CMakeFiles/lll_xml.dir/serializer.cc.o.d"
  "liblll_xml.a"
  "liblll_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
