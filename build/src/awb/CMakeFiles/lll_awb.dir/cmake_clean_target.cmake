file(REMOVE_RECURSE
  "liblll_awb.a"
)
