# Empty compiler generated dependencies file for lll_awb.
# This may be replaced when dependencies are built.
