
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/awb/builtin_metamodels.cc" "src/awb/CMakeFiles/lll_awb.dir/builtin_metamodels.cc.o" "gcc" "src/awb/CMakeFiles/lll_awb.dir/builtin_metamodels.cc.o.d"
  "/root/repo/src/awb/generator.cc" "src/awb/CMakeFiles/lll_awb.dir/generator.cc.o" "gcc" "src/awb/CMakeFiles/lll_awb.dir/generator.cc.o.d"
  "/root/repo/src/awb/metamodel.cc" "src/awb/CMakeFiles/lll_awb.dir/metamodel.cc.o" "gcc" "src/awb/CMakeFiles/lll_awb.dir/metamodel.cc.o.d"
  "/root/repo/src/awb/model.cc" "src/awb/CMakeFiles/lll_awb.dir/model.cc.o" "gcc" "src/awb/CMakeFiles/lll_awb.dir/model.cc.o.d"
  "/root/repo/src/awb/xml_io.cc" "src/awb/CMakeFiles/lll_awb.dir/xml_io.cc.o" "gcc" "src/awb/CMakeFiles/lll_awb.dir/xml_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lll_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lll_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
