file(REMOVE_RECURSE
  "CMakeFiles/lll_awb.dir/builtin_metamodels.cc.o"
  "CMakeFiles/lll_awb.dir/builtin_metamodels.cc.o.d"
  "CMakeFiles/lll_awb.dir/generator.cc.o"
  "CMakeFiles/lll_awb.dir/generator.cc.o.d"
  "CMakeFiles/lll_awb.dir/metamodel.cc.o"
  "CMakeFiles/lll_awb.dir/metamodel.cc.o.d"
  "CMakeFiles/lll_awb.dir/model.cc.o"
  "CMakeFiles/lll_awb.dir/model.cc.o.d"
  "CMakeFiles/lll_awb.dir/xml_io.cc.o"
  "CMakeFiles/lll_awb.dir/xml_io.cc.o.d"
  "liblll_awb.a"
  "liblll_awb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_awb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
