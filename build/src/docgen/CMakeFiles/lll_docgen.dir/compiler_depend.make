# Empty compiler generated dependencies file for lll_docgen.
# This may be replaced when dependencies are built.
