file(REMOVE_RECURSE
  "liblll_docgen.a"
)
