file(REMOVE_RECURSE
  "CMakeFiles/lll_docgen.dir/docgen.cc.o"
  "CMakeFiles/lll_docgen.dir/docgen.cc.o.d"
  "CMakeFiles/lll_docgen.dir/native_engine.cc.o"
  "CMakeFiles/lll_docgen.dir/native_engine.cc.o.d"
  "CMakeFiles/lll_docgen.dir/xq_engine.cc.o"
  "CMakeFiles/lll_docgen.dir/xq_engine.cc.o.d"
  "CMakeFiles/lll_docgen.dir/xq_programs.cc.o"
  "CMakeFiles/lll_docgen.dir/xq_programs.cc.o.d"
  "liblll_docgen.a"
  "liblll_docgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lll_docgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
