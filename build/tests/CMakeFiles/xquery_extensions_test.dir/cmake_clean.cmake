file(REMOVE_RECURSE
  "CMakeFiles/xquery_extensions_test.dir/xquery_extensions_test.cc.o"
  "CMakeFiles/xquery_extensions_test.dir/xquery_extensions_test.cc.o.d"
  "xquery_extensions_test"
  "xquery_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
