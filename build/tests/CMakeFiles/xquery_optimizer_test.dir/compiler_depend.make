# Empty compiler generated dependencies file for xquery_optimizer_test.
# This may be replaced when dependencies are built.
