file(REMOVE_RECURSE
  "CMakeFiles/xquery_optimizer_test.dir/xquery_optimizer_test.cc.o"
  "CMakeFiles/xquery_optimizer_test.dir/xquery_optimizer_test.cc.o.d"
  "xquery_optimizer_test"
  "xquery_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
