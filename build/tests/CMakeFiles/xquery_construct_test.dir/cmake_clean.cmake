file(REMOVE_RECURSE
  "CMakeFiles/xquery_construct_test.dir/xquery_construct_test.cc.o"
  "CMakeFiles/xquery_construct_test.dir/xquery_construct_test.cc.o.d"
  "xquery_construct_test"
  "xquery_construct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_construct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
