# Empty dependencies file for xquery_construct_test.
# This may be replaced when dependencies are built.
