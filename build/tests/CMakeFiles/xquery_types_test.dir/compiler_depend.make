# Empty compiler generated dependencies file for xquery_types_test.
# This may be replaced when dependencies are built.
