file(REMOVE_RECURSE
  "CMakeFiles/xquery_types_test.dir/xquery_types_test.cc.o"
  "CMakeFiles/xquery_types_test.dir/xquery_types_test.cc.o.d"
  "xquery_types_test"
  "xquery_types_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
