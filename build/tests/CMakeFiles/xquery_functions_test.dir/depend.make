# Empty dependencies file for xquery_functions_test.
# This may be replaced when dependencies are built.
