file(REMOVE_RECURSE
  "CMakeFiles/xquery_functions_test.dir/xquery_functions_test.cc.o"
  "CMakeFiles/xquery_functions_test.dir/xquery_functions_test.cc.o.d"
  "xquery_functions_test"
  "xquery_functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
