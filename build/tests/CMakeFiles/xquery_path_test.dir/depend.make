# Empty dependencies file for xquery_path_test.
# This may be replaced when dependencies are built.
