file(REMOVE_RECURSE
  "CMakeFiles/xquery_path_test.dir/xquery_path_test.cc.o"
  "CMakeFiles/xquery_path_test.dir/xquery_path_test.cc.o.d"
  "xquery_path_test"
  "xquery_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
