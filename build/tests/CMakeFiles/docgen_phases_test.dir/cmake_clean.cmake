file(REMOVE_RECURSE
  "CMakeFiles/docgen_phases_test.dir/docgen_phases_test.cc.o"
  "CMakeFiles/docgen_phases_test.dir/docgen_phases_test.cc.o.d"
  "docgen_phases_test"
  "docgen_phases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docgen_phases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
