# Empty compiler generated dependencies file for docgen_phases_test.
# This may be replaced when dependencies are built.
