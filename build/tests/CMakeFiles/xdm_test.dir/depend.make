# Empty dependencies file for xdm_test.
# This may be replaced when dependencies are built.
