# Empty compiler generated dependencies file for xquery_usecases_test.
# This may be replaced when dependencies are built.
