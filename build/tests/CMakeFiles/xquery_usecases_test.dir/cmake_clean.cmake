file(REMOVE_RECURSE
  "CMakeFiles/xquery_usecases_test.dir/xquery_usecases_test.cc.o"
  "CMakeFiles/xquery_usecases_test.dir/xquery_usecases_test.cc.o.d"
  "xquery_usecases_test"
  "xquery_usecases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_usecases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
