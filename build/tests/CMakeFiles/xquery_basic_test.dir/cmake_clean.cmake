file(REMOVE_RECURSE
  "CMakeFiles/xquery_basic_test.dir/xquery_basic_test.cc.o"
  "CMakeFiles/xquery_basic_test.dir/xquery_basic_test.cc.o.d"
  "xquery_basic_test"
  "xquery_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
