file(REMOVE_RECURSE
  "CMakeFiles/awbql_test.dir/awbql_test.cc.o"
  "CMakeFiles/awbql_test.dir/awbql_test.cc.o.d"
  "awbql_test"
  "awbql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awbql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
