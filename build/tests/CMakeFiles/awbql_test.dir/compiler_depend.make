# Empty compiler generated dependencies file for awbql_test.
# This may be replaced when dependencies are built.
