file(REMOVE_RECURSE
  "CMakeFiles/xslt_test.dir/xslt_test.cc.o"
  "CMakeFiles/xslt_test.dir/xslt_test.cc.o.d"
  "xslt_test"
  "xslt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xslt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
