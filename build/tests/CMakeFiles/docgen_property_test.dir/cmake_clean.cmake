file(REMOVE_RECURSE
  "CMakeFiles/docgen_property_test.dir/docgen_property_test.cc.o"
  "CMakeFiles/docgen_property_test.dir/docgen_property_test.cc.o.d"
  "docgen_property_test"
  "docgen_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docgen_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
