# Empty compiler generated dependencies file for awb_test.
# This may be replaced when dependencies are built.
