file(REMOVE_RECURSE
  "CMakeFiles/awb_test.dir/awb_test.cc.o"
  "CMakeFiles/awb_test.dir/awb_test.cc.o.d"
  "awb_test"
  "awb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
