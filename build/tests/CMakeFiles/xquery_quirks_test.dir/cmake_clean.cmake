file(REMOVE_RECURSE
  "CMakeFiles/xquery_quirks_test.dir/xquery_quirks_test.cc.o"
  "CMakeFiles/xquery_quirks_test.dir/xquery_quirks_test.cc.o.d"
  "xquery_quirks_test"
  "xquery_quirks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_quirks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
