# Empty compiler generated dependencies file for glass_catalog.
# This may be replaced when dependencies are built.
