file(REMOVE_RECURSE
  "CMakeFiles/glass_catalog.dir/glass_catalog.cpp.o"
  "CMakeFiles/glass_catalog.dir/glass_catalog.cpp.o.d"
  "glass_catalog"
  "glass_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glass_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
