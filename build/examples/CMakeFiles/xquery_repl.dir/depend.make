# Empty dependencies file for xquery_repl.
# This may be replaced when dependencies are built.
