file(REMOVE_RECURSE
  "CMakeFiles/xquery_repl.dir/xquery_repl.cpp.o"
  "CMakeFiles/xquery_repl.dir/xquery_repl.cpp.o.d"
  "xquery_repl"
  "xquery_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
