# Empty dependencies file for omissions_ui.
# This may be replaced when dependencies are built.
