file(REMOVE_RECURSE
  "CMakeFiles/omissions_ui.dir/omissions_ui.cpp.o"
  "CMakeFiles/omissions_ui.dir/omissions_ui.cpp.o.d"
  "omissions_ui"
  "omissions_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omissions_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
