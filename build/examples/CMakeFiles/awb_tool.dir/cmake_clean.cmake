file(REMOVE_RECURSE
  "CMakeFiles/awb_tool.dir/awb_tool.cpp.o"
  "CMakeFiles/awb_tool.dir/awb_tool.cpp.o.d"
  "awb_tool"
  "awb_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
