# Empty dependencies file for awb_tool.
# This may be replaced when dependencies are built.
