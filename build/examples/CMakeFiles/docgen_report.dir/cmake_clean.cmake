file(REMOVE_RECURSE
  "CMakeFiles/docgen_report.dir/docgen_report.cpp.o"
  "CMakeFiles/docgen_report.dir/docgen_report.cpp.o.d"
  "docgen_report"
  "docgen_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docgen_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
