# Empty dependencies file for docgen_report.
# This may be replaced when dependencies are built.
