#!/usr/bin/env bash
# Persistence roundtrip gate: prove that a server rebuilt purely from disk
# artifacts is indistinguishable from the one that wrote them.
#
#   1. daemon A: register a document, answer a query burst, `save <dir>`
#   2. daemon B: a FRESH process, warm-boots with `load <dir>` (no XML, no
#      compiles), answers the same burst
#   3. the answers must be byte-identical, and daemon B's EXPLAIN must say
#      the plan came from the disk cache
#   4. rerun the in-process differential suites (persist_test includes the
#      440-query disk-vs-fresh oracle) against the same build
#
# Usage: scripts/persist_roundtrip.sh [build-dir]   (default ./build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVERD="${BUILD}/src/server/lll_serverd"
if [[ ! -x "${SERVERD}" ]]; then
  echo "persist_roundtrip: ${SERVERD} not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT
STATE="${WORK}/state"

cat > "${WORK}/lib.xml" <<'XML'
<lib><shelf id="0"><book>ada</book><book>basic</book></shelf><shelf id="1"><book>c</book><book>d</book></shelf></lib>
XML

QUERIES=(
  'query t lib count(//book)'
  'query t lib string-join(//shelf/@id, ",")'
  'query t lib //shelf[@id="1"]/book[1]/text()'
  'query t lib for $s in //shelf order by $s/@id descending return count($s/book)'
)

burst() {
  for q in "${QUERIES[@]}"; do echo "${q}"; done
  echo 'explain lib count(//book)'
}

echo "== daemon A: parse XML, compile, answer, save state =="
{
  echo "load lib ${WORK}/lib.xml"
  burst
  # Save AFTER the burst so plans.lllp holds every compiled plan.
  echo "save ${STATE}"
  echo 'quit'
} | "${SERVERD}" > "${WORK}/cold.out"

test -s "${STATE}/plans.lllp"
ls "${STATE}"/doc-*.llld >/dev/null

echo "== daemon B: fresh process, warm boot from ${STATE} =="
{
  echo "load ${STATE}"
  burst
  echo 'quit'
} | "${SERVERD}" > "${WORK}/warm.out"

if grep -E '^(error|rejected):' "${WORK}/cold.out" "${WORK}/warm.out"; then
  echo "persist_roundtrip: a daemon reported an error" >&2
  exit 1
fi

# Compare payloads only: the snapshot-latency banner carries a per-run
# microsecond figure, and the EXPLAIN provenance line differs BY DESIGN
# (daemon A compiled its plans, daemon B loaded them) -- it is asserted
# separately below.
# The "." terminators go too: daemon A answers one more setup command
# (the save) than daemon B, so the terminator counts differ.
strip_varying() {
  grep -v -E '^(ok|\.|snapshot [0-9]+ \([0-9]+us\))$' "$1" |
    grep -v 'server plan: '
}
if ! diff <(strip_varying "${WORK}/cold.out") \
          <(strip_varying "${WORK}/warm.out"); then
  echo "persist_roundtrip: warm answers diverge from cold" >&2
  exit 1
fi

grep -q 'server plan: disk-cache' "${WORK}/warm.out" || {
  echo "persist_roundtrip: warm EXPLAIN did not report disk-cache" >&2
  exit 1
}
# Daemon A answered the burst before explaining, so its plan is a memory
# hit on a locally compiled entry -- never disk.
grep -q -E 'server plan: (compiled|memory-cache)' "${WORK}/cold.out" || {
  echo "persist_roundtrip: cold EXPLAIN did not report a local compile" >&2
  exit 1
}

echo "== differential suites (persist_test: 440-query disk-vs-fresh oracle) =="
ctest --test-dir "${BUILD}" -R 'persist_test|server_differential_test' \
  --output-on-failure --no-tests=error

echo "persist roundtrip: OK"
