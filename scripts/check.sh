#!/usr/bin/env bash
# The one-stop pre-merge gate:
#   1. tier-1: configure + build + full ctest in ./build
#   2. concurrency: ThreadSanitizer build + the `concurrency`-labeled tests
#
# Usage: scripts/check.sh [-jN]   (default -j2)
#
# An AddressSanitizer preset also exists for deeper sweeps (not run here, it
# roughly doubles the wall time):
#   cmake --preset asan && cmake --build --preset asan -j2 && ctest --preset asan

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:--j2}"

# Stray persistence artifacts (aborted test runs, manual daemon sessions)
# must not leak into the tree or get picked up by a later warm boot.
find . -path ./build -prune -o -path ./build-tsan -prune -o \
  -path ./build-asan -prune -o \
  \( -name '*.lllp' -o -name '*.llld' \) -print0 | xargs -0r rm -f

# EvalStats <-> metrics-export drift guard: every counter field in the
# EvalStats struct must be exported by engine.cc under its canonical
# `xq.eval.<field>` name. A counter added to the struct but never exported
# silently vanishes from :metrics, docgen_report --profile, and the bench
# *.metrics.json sidecars -- fail fast here instead.
echo "== metrics: EvalStats fields vs engine.cc exports =="
drift=0
for field in $(awk '/^struct EvalStats \{/,/^\};/' src/xquery/eval.h |
               sed -n 's/^ *size_t \([a-z_]*\) = 0;.*/\1/p'); do
  if ! grep -q "xq\.eval\.${field}" src/xquery/engine.cc; then
    echo "error: EvalStats::${field} has no xq.eval.${field} export in src/xquery/engine.cc" >&2
    drift=1
  fi
done
[ "$drift" -eq 0 ] || exit 1
echo "all EvalStats counters exported"

# Update-grammar <-> DESIGN.md drift guard: the statement productions in the
# update parser's grammar comment (src/xquery/update_parser.h) are the
# language's contract, and DESIGN.md section 15 documents them verbatim. A
# production changed in one place but not the other is how docs rot -- fail
# fast here instead.
echo "== grammar: update_parser.h productions vs DESIGN.md =="
drift=0
while IFS= read -r production; do
  [ -n "$production" ] || continue
  if ! grep -qF "$production" DESIGN.md; then
    echo "error: update grammar production '$production' (src/xquery/update_parser.h) is not in DESIGN.md" >&2
    drift=1
  fi
done < <(sed -n 's@^//   \(.*::=.*\)@\1@p; s@^//   \( *| .*\)@\1@p' \
           src/xquery/update_parser.h)
[ "$drift" -eq 0 ] || exit 1
echo "update grammar productions match DESIGN.md"

echo
echo "== tier-1: build + full test suite (build/) =="
cmake -B build -S . >/dev/null
cmake --build build "${JOBS}"
# --no-tests=error: a misconfigured build that discovers zero tests must
# fail the gate loudly, not "pass" it vacuously.
ctest --test-dir build --output-on-failure --no-tests=error "${JOBS}"

echo
echo "== concurrency: ThreadSanitizer build + -L concurrency (build-tsan/) =="
cmake -B build-tsan -S . -DLLL_SANITIZE=thread >/dev/null
cmake --build build-tsan "${JOBS}"
ctest --test-dir build-tsan -L concurrency --output-on-failure --no-tests=error

echo
echo "All checks passed."
