// Quickstart: the XQuery engine in five minutes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace {

void Show(const char* title, const char* query, const lll::xq::ExecuteOptions& opts) {
  auto result = lll::xq::Run(query, opts);
  std::printf("-- %s\n   %s\n   => ", title, query);
  if (result.ok()) {
    std::printf("%s\n", result->SerializedItems().c_str());
  } else {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  // 1. Parse some XML.
  const char* xml_text = R"(<library>
    <book year="1983"><title>Tides of Light</title><pages>340</pages></book>
    <book year="2001"><title>Waves</title><pages>120</pages></book>
    <book year="1983"><title>Shorelines</title><pages>200</pages></book>
  </library>)";
  auto doc = lll::xml::Parse(xml_text,
                             {.strip_insignificant_whitespace = true});
  if (!doc.ok()) {
    std::printf("parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  lll::xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();

  // 2. Dissect it -- "XQuery is, indeed, superb for XML manipulation."
  Show("count the books", "count(/library/book)", opts);
  Show("books from 1983", R"(for $b in /library/book[@year = "1983"]
       order by string($b/title) return string($b/title))", opts);
  Show("total pages", "sum(/library/book/pages)", opts);
  Show("any long book?", "some $b in //book satisfies number($b/pages) > 300",
       opts);

  // 3. Reassemble it -- constructors, FLWOR, the works.
  Show("build a summary",
       R"(<summary n="{count(//book)}">{
            for $b in /library/book order by number($b/pages) descending
            return <entry pages="{string($b/pages)}">{string($b/title)}</entry>
          }</summary>)",
       opts);

  // 4. The famous quirks, live.
  Show("= is existential", "(1, 2, 3) = 3", opts);
  Show("and != is too", "(1, 2) != (1, 2)", opts);
  Show("sequences are flat", "count((1, (2, 3), (), ((4))))", opts);

  // 5. The trace-vs-optimizer pathology (experiment E6).
  const char* traced =
      "let $x := 10 let $dummy := trace(\"x=\", $x) return $x * 2";
  auto eaten = lll::xq::Run(traced, opts);
  std::printf("-- dead-code elimination eats trace (Galax-era default)\n");
  std::printf("   value: %s, trace lines: %zu\n",
              eaten->SerializedItems().c_str(), eaten->trace_output.size());
  lll::xq::CompileOptions fixed;
  fixed.optimizer.recognize_trace = true;
  auto kept = lll::xq::Run(traced, opts, fixed);
  std::printf("   with recognize_trace: value: %s, trace lines: %zu (%s)\n",
              kept->SerializedItems().c_str(), kept->trace_output.size(),
              kept->trace_output.empty() ? "-" : kept->trace_output[0].c_str());
  return 0;
}
