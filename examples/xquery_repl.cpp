// xquery_repl: an interactive XQuery shell over the engine.
//
//   ./build/examples/xquery_repl [context.xml]
//
// Reads one query per line (a blank line, "quit", or EOF exits). If a
// context document is given, paths like /a/b and . work against it.
// Multi-line queries: end a line with '\' to continue.
//
// Special commands:
//   :galax          toggle Galax-style error messages
//   :noopt          toggle the optimizer (watch trace() reappear)
//   :trace          toggle recognize_trace in the optimizer
//   :ast QUERY      print the parsed (and optimized) expression
//   :explain QUERY  EXPLAIN: optimized plan + every rewrite decision
//                   (update scripts get an update plan with the subtree
//                   guards each statement would dirty)
//   :update SCRIPT  apply an update script ("insert <x/> into /a; delete
//                   /a/b[1]", update_parser.h) to the context document;
//                   cached chains guarding the edited subtrees invalidate,
//                   the rest keep hitting (:metrics shows the split)
//   :profile        toggle the per-expression profiler (hot-spot report
//                   after each query)
//   :metrics        print the global metrics registry as JSON

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/metrics.h"
#include "obs/explain.h"
#include "xml/parser.h"
#include "xquery/engine.h"
#include "xquery/nodeset_cache.h"
#include "xquery/parser.h"
#include "xquery/update_eval.h"
#include "xquery/update_parser.h"

int main(int argc, char** argv) {
  std::unique_ptr<lll::xml::Document> context_doc;
  if (argc > 1) {
    auto parsed = lll::xml::ParseFile(argv[1]);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    context_doc = std::move(*parsed);
    std::printf("context: %s (root <%s>)\n", argv[1],
                context_doc->DocumentElement()->name().c_str());
  }

  lll::xq::CompileOptions compile_options;
  lll::xq::ExecuteOptions exec_options;
  if (context_doc != nullptr) exec_options.context_node = context_doc->root();
  // Feed the global registry so :metrics has something to show.
  exec_options.metrics = &lll::GlobalMetrics();
  // Session-scoped interning: repeated queries over the context document
  // reuse their rooted step chains (:metrics shows the
  // xq.eval.nodeset_cache_* counters move). Declared after context_doc so
  // cached node pointers never outlive the document they point into.
  lll::xq::NodeSetCache nodeset_cache;
  exec_options.eval.nodeset_cache = &nodeset_cache;

  std::printf("lll xquery repl -- empty line or 'quit' to exit\n");
  std::string line;
  while (true) {
    std::printf("xq> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Continuation lines.
    while (!line.empty() && line.back() == '\\') {
      line.pop_back();
      line.push_back('\n');
      std::string more;
      std::printf("..> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, more)) break;
      line += more;
    }
    if (line.empty() || line == "quit" || line == "exit") break;

    if (line == ":galax") {
      exec_options.eval.galax_style_messages =
          !exec_options.eval.galax_style_messages;
      std::printf("galax-style messages: %s\n",
                  exec_options.eval.galax_style_messages ? "on" : "off");
      continue;
    }
    if (line == ":noopt") {
      compile_options.optimize = !compile_options.optimize;
      std::printf("optimizer: %s\n", compile_options.optimize ? "on" : "off");
      continue;
    }
    if (line == ":trace") {
      compile_options.optimizer.recognize_trace =
          !compile_options.optimizer.recognize_trace;
      std::printf("recognize_trace: %s\n",
                  compile_options.optimizer.recognize_trace ? "on" : "off");
      continue;
    }
    if (line.rfind(":ast ", 0) == 0) {
      auto compiled = lll::xq::Compile(line.substr(5), compile_options);
      if (!compiled.ok()) {
        std::printf("%s\n", compiled.status().ToString().c_str());
      } else {
        std::printf("%s\n",
                    lll::xq::ExprToString(*compiled->module().body).c_str());
      }
      continue;
    }
    if (line.rfind(":update ", 0) == 0) {
      if (context_doc == nullptr) {
        std::printf(":update needs a context document (pass context.xml)\n");
        continue;
      }
      auto update = lll::xq::CompileUpdateText(line.substr(8));
      if (!update.ok()) {
        std::printf("%s\n", update.status().ToString().c_str());
        continue;
      }
      lll::xq::UpdateOptions uo;
      uo.metrics = &lll::GlobalMetrics();
      auto stats = lll::xq::ApplyUpdate(*update, context_doc.get(), uo);
      if (!stats.ok()) {
        std::printf("%s\n", stats.status().ToString().c_str());
        continue;
      }
      // In-place edit, not a copy-on-write publish: the interned chains stay
      // in the session cache and re-validate their overlay guards on the
      // next lookup -- only chains through the edited subtrees miss.
      std::printf("applied %zu statement(s), %zu target node(s)\n",
                  stats->statements, stats->target_nodes);
      continue;
    }
    if (line.rfind(":explain ", 0) == 0) {
      std::string text = line.substr(9);
      if (lll::xq::IsUpdateScript(text)) {
        auto update = lll::xq::CompileUpdateText(text, compile_options);
        if (!update.ok()) {
          std::printf("%s\n", update.status().ToString().c_str());
        } else {
          std::printf("%s", lll::xq::ExplainUpdate(*update, context_doc.get())
                                .c_str());
        }
        continue;
      }
      auto compiled = lll::xq::Compile(line.substr(9), compile_options);
      if (!compiled.ok()) {
        std::printf("%s\n", compiled.status().ToString().c_str());
      } else {
        lll::obs::ExplainOptions eo;
        eo.provenance =
            compile_options.optimize ? "repl, optimized" : "repl, unoptimized";
        // With a context document loaded, [interned] steps render as
        // [interned@vN] -- N being the document's current edit epoch.
        eo.context_document = context_doc.get();
        std::printf("%s", lll::obs::Explain(*compiled, eo).c_str());
      }
      continue;
    }
    if (line == ":profile") {
      exec_options.eval.profile = !exec_options.eval.profile;
      std::printf("profiler: %s\n", exec_options.eval.profile ? "on" : "off");
      continue;
    }
    if (line == ":metrics") {
      std::printf("%s\n", lll::GlobalMetrics().ToJson().c_str());
      continue;
    }

    auto result = lll::xq::Run(line, exec_options, compile_options);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      continue;
    }
    for (const std::string& trace : result->trace_output) {
      std::printf("[trace] %s\n", trace.c_str());
    }
    std::printf("%s\n", result->SerializedItems().c_str());
    if (result->profile != nullptr) {
      std::printf("%s", result->profile->Render().c_str());
    }
  }
  std::printf("\n");
  return 0;
}
