// docgen_report: the paper's central scenario, end to end.
//
// Generates a synthetic IT-architecture model, then produces a "System
// Context" style document from the same template with BOTH generator
// engines -- the XQuery multi-phase pipeline and the native (Java-rewrite)
// engine -- verifies they agree, and prints the cost comparison.
//
//   ./build/examples/docgen_report [--explain] [--profile]
//                                  [--plan-cache-dir DIR] [output-prefix]
//
// writes <prefix>-native.html and <prefix>-xquery.html (default prefix
// "/tmp/awb-report").
//
//   --explain   after generation, EXPLAIN all five XQuery phase programs:
//               optimized plans plus every rewrite decision (including the
//               phase-2 trace() call the optimizer silently deletes) and
//               compile-cache provenance.
//   --profile   per-expression hot-spot report for each phase, generator
//               trace events, and a JSON metrics snapshot.
//   --plan-cache-dir DIR
//               warm boot for the XQuery engine: load DIR/phases.lllp into
//               the phase cache before generating (stale or missing artifact
//               = cold start), and (re)write it afterwards so the next run
//               starts warm. With --explain, warmed phases show `disk-cache`
//               provenance instead of `compiled`.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "core/metrics.h"
#include "docgen/native_engine.h"
#include "docgen/xq_engine.h"
#include "obs/trace_sink.h"
#include "xml/deep_equal.h"

namespace {

constexpr char kSystemContextTemplate[] = R"TPL(<html>
  <head><title>System Context</title></head>
  <body>
    <h1>System Context</h1>
    <table-of-contents/>
    <for nodes="from type:SystemBeingDesigned">
      <section heading="System: {label}">
        <p>Version: <value-of property="version" default="(unversioned)"/></p>
        <section heading="Users">
          <ol>
            <for nodes="from focus; follow has> to:User; sort label">
              <li>
                <if>
                  <test><focus-is-type type="Superuser"/></test>
                  <then><b><label/></b></then>
                  <else><label/></else>
                </if>
                (<value-of property="role" default="no role"/>)
              </li>
            </for>
          </ol>
        </section>
        <section heading="Deployment">
          <table rows="from type:Server; sort label"
                 cols="from type:Program; sort label"
                 relation="runs" corner="server\program"/>
        </section>
        <section heading="Documents">
          <for nodes="from focus; follow has> to:Document; sort label">
            <p><label/> - version <value-of property="version" default="MISSING"/></p>
          </for>
        </section>
      </section>
    </for>
    <section heading="Omissions">
      <p>Model nodes never mentioned above:</p>
      <table-of-omissions/>
    </section>
  </body>
</html>)TPL";

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string prefix = "/tmp/awb-report";
  bool explain = false;
  bool profile = false;
  std::string plan_cache_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--explain") {
      explain = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--plan-cache-dir" && i + 1 < argc) {
      plan_cache_dir = argv[++i];
    } else {
      prefix = arg;
    }
  }

  std::string plan_cache_path;
  if (!plan_cache_dir.empty()) {
    std::filesystem::create_directories(plan_cache_dir);
    plan_cache_path = plan_cache_dir + "/phases.lllp";
    auto loaded = lll::docgen::LoadXQueryPhaseCache(plan_cache_path);
    if (loaded.ok()) {
      std::printf("plan cache: warmed %zu phase plans from %s\n", *loaded,
                  plan_cache_path.c_str());
    } else {
      std::printf("plan cache: cold start (%s)\n",
                  loaded.status().ToString().c_str());
    }
  }

  // Generation progress and fn:trace events land here instead of a printf
  // buffer; replayed at the end under --profile.
  lll::obs::RingBufferTraceSink trace_sink(/*capacity=*/256);

  lll::awb::Metamodel metamodel = lll::awb::MakeItArchitectureMetamodel();
  lll::awb::GeneratorConfig config;
  config.seed = 2026;
  config.users = 8;
  config.documents = 5;
  config.omission_rate = 0.4;
  if (profile) config.trace_sink = &trace_sink;
  lll::awb::Model model = lll::awb::GenerateItModel(&metamodel, config);
  std::printf("model: %zu nodes, %zu relations\n", model.node_count(),
              model.relation_count());

  lll::docgen::GenerateOptions gen_options;
  if (profile) {
    gen_options.profile = true;
    gen_options.trace_sink = &trace_sink;
    gen_options.metrics = &lll::GlobalMetrics();
  }

  auto native = lll::docgen::GenerateNativeFromText(kSystemContextTemplate,
                                                    model, gen_options);
  if (!native.ok()) {
    std::printf("native engine failed: %s\n",
                native.status().ToString().c_str());
    return 1;
  }
  auto xquery = lll::docgen::GenerateXQueryFromText(kSystemContextTemplate,
                                                    model, gen_options);
  if (!xquery.ok()) {
    std::printf("xquery engine failed: %s\n",
                xquery.status().ToString().c_str());
    return 1;
  }

  bool equal = lll::xml::DeepEqual(native->root, xquery->root);
  std::printf("engines agree: %s\n", equal ? "yes" : "NO");
  if (!equal) {
    std::printf("  first difference: %s\n",
                lll::xml::ExplainDifference(native->root, xquery->root).c_str());
  }

  std::printf("\n%-28s %12s %12s\n", "", "native", "xquery");
  std::printf("%-28s %12zu %12zu\n", "nodes visited",
              native->stats.nodes_visited, xquery->stats.nodes_visited);
  std::printf("%-28s %12zu %12zu\n", "toc entries",
              native->stats.toc_entries, xquery->stats.toc_entries);
  std::printf("%-28s %12zu %12zu\n", "omissions listed",
              native->stats.omissions_listed, xquery->stats.omissions_listed);
  std::printf("%-28s %12zu %12zu\n", "whole-document copies",
              native->stats.document_copies, xquery->stats.document_copies);
  std::printf("%-28s %12s %12zu\n", "evaluator steps", "-",
              xquery->stats.eval_steps);
  std::printf("%-28s %12s %12zu\n", "nodes pulled (streamed)", "-",
              xquery->stats.nodes_pulled);
  std::printf("%-28s %12s %12zu\n", "nodes skipped (early exit)", "-",
              xquery->stats.nodes_skipped_early_exit);
  std::printf("%-28s %12s %12zu\n", "reverse runs merged", "-",
              xquery->stats.reverse_runs_merged);
  std::printf("%-28s %12s %12zu\n", "limit push-downs", "-",
              xquery->stats.limit_pushdowns);
  std::printf("%-28s %12s %12zu\n", "nodeset cache hits", "-",
              xquery->stats.nodeset_cache_hits);
  std::printf("%-28s %12s %12zu\n", "nodeset cache misses", "-",
              xquery->stats.nodeset_cache_misses);
  std::printf("%-28s %12s %12zu\n", "nodeset cache invalidations", "-",
              xquery->stats.nodeset_cache_invalidations);
  std::printf("%-28s %12s %12zu\n", "  partial (subtree-scoped)", "-",
              xquery->stats.nodeset_cache_partial_invalidations);
  std::printf("%-28s %12s %12zu\n", "  full (whole-document)", "-",
              xquery->stats.nodeset_cache_invalidations -
                  xquery->stats.nodeset_cache_partial_invalidations);

  if (explain) {
    auto explained = lll::docgen::ExplainXQueryPhases();
    if (!explained.ok()) {
      std::printf("explain failed: %s\n",
                  explained.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s", explained->c_str());
  }

  if (profile) {
    for (const std::string& report : xquery->phase_profiles) {
      std::printf("\n%s", report.c_str());
    }
    auto events = trace_sink.Snapshot();
    std::printf("\n== trace events (%zu, %zu dropped) ==\n", events.size(),
                trace_sink.dropped());
    for (const auto& event : events) {
      std::printf("%s\n", lll::obs::FormatTraceEvent(event).c_str());
    }
    std::printf("\n== metrics ==\n%s\n",
                lll::GlobalMetrics().ToJson().c_str());
  }

  if (!plan_cache_path.empty()) {
    lll::Status st = lll::docgen::AotCompileXQueryPhases(plan_cache_path);
    if (st.ok()) {
      std::printf("plan cache: wrote %s\n", plan_cache_path.c_str());
    } else {
      std::printf("plan cache: save failed: %s\n", st.ToString().c_str());
    }
  }

  std::string native_path = prefix + "-native.html";
  std::string xquery_path = prefix + "-xquery.html";
  if (!WriteFile(native_path, native->Serialized(2)) ||
      !WriteFile(xquery_path, xquery->Serialized(2))) {
    std::printf("could not write output files under %s\n", prefix.c_str());
    return 1;
  }
  std::printf("\nwrote %s and %s\n", native_path.c_str(), xquery_path.c_str());
  return equal ? 0 : 2;
}
