// omissions_ui: the feature that killed the XQuery implementation.
//
// "One useful feature of the Workbench is 'Omissions' -- a window listing
// incomplete parts of the model. ... The Omissions window, as part of the
// UI, is always visible." The UI re-runs its queries constantly, so query
// latency is everything -- and "calling XQuery from Java to evaluate queries
// was preposterously inefficient, and would have made the workbench
// unusably slow."
//
// This example simulates that UI loop: the same omission queries evaluated
// via the native backend and via the XQuery backend, timed.
//
//   ./build/examples/omissions_ui [refresh-count]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awbql/native.h"
#include "awbql/query.h"
#include "awbql/xquery_backend.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  int refreshes = argc > 1 ? std::atoi(argv[1]) : 25;
  if (refreshes < 1) refreshes = 1;

  lll::awb::Metamodel metamodel = lll::awb::MakeItArchitectureMetamodel();
  lll::awb::GeneratorConfig config;
  config.seed = 7;
  config.users = 20;
  config.documents = 15;
  config.programs = 25;
  config.omission_rate = 0.3;
  lll::awb::Model model = lll::awb::GenerateItModel(&metamodel, config);
  std::printf("model: %zu nodes, %zu relations; simulating %d UI refreshes\n",
              model.node_count(), model.relation_count(), refreshes);

  // The stock UI queries behind the Omissions window.
  const std::vector<std::string> query_texts = {
      "from type:Document\nfilter missing:version\nsort label\n",
      "from type:System\nfilter missing:version\nsort label\n",
      "from type:User\nfilter missing:role\nsort label\n",
  };
  std::vector<lll::awbql::Query> queries;
  for (const std::string& text : query_texts) {
    auto query = lll::awbql::ParseQuery(text);
    if (!query.ok()) {
      std::printf("bad query: %s\n", query.status().ToString().c_str());
      return 1;
    }
    queries.push_back(std::move(*query));
  }

  // The one-time report, human-readable.
  std::printf("\nOmissions window contents:\n");
  for (const std::string& line : lll::awbql::OmissionsReport(model)) {
    std::printf("  ! %s\n", line.c_str());
  }

  // Native backend loop.
  auto start = Clock::now();
  size_t native_hits = 0;
  for (int refresh = 0; refresh < refreshes; ++refresh) {
    for (const auto& query : queries) {
      auto result = lll::awbql::EvalNative(query, model);
      if (result.ok()) native_hits += result->size();
    }
  }
  double native_ms = MillisSince(start);

  // XQuery backend loop -- the "calling XQuery from Java" architecture.
  lll::awbql::XQueryBackend backend(&model);
  start = Clock::now();
  size_t xquery_hits = 0;
  for (int refresh = 0; refresh < refreshes; ++refresh) {
    for (const auto& query : queries) {
      auto result = backend.Eval(query);
      if (result.ok()) xquery_hits += result->size();
    }
  }
  double xquery_ms = MillisSince(start);

  if (native_hits != xquery_hits) {
    std::printf("\nbackends disagree: %zu vs %zu results!\n", native_hits,
                xquery_hits);
    return 2;
  }
  std::printf("\n%d refreshes x %zu queries, %zu total results per pass\n",
              refreshes, queries.size(), native_hits / refreshes);
  std::printf("  native backend:  %8.2f ms total, %7.3f ms per refresh\n",
              native_ms, native_ms / refreshes);
  std::printf("  XQuery backend:  %8.2f ms total, %7.3f ms per refresh\n",
              xquery_ms, xquery_ms / refreshes);
  std::printf("  slowdown: %.1fx -- \"preposterously inefficient\"\n",
              xquery_ms / (native_ms > 0 ? native_ms : 1));
  return 0;
}
