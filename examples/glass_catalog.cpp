// glass_catalog: AWB retargeted to "an antique glass dealer", as the paper
// says it was. Demonstrates that nothing in the document generator is
// IT-specific: a different metamodel, a different model, the same template
// language.
//
//   ./build/examples/glass_catalog [output.html]

#include <cstdio>
#include <fstream>
#include <string>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awb/xml_io.h"
#include "docgen/native_engine.h"

namespace {

constexpr char kCatalogTemplate[] = R"TPL(<html>
  <head><title>Antique Glass Catalog</title></head>
  <body>
    <h1>Catalog</h1>
    <table-of-contents/>
    <section heading="Makers">
      <for nodes="from type:Maker; sort label">
        <section heading="{label}">
          <p>Country: <value-of property="country" default="unknown"/>,
             founded <value-of property="founded" default="?"/></p>
          <ul>
            <for nodes="from focus; follow &lt;madeBy; sort label">
              <li><label/>
                (<value-of property="year" default="undated"/>,
                 $<value-of property="priceDollars" default="ask"/>,
                 <value-of property="condition" default="unexamined"/>)
              </li>
            </for>
          </ul>
        </section>
      </for>
    </section>
    <section heading="Collectors and their styles">
      <table rows="from type:Collector; sort label"
             cols="from type:Style; sort label"
             relation="likes" corner="collector\style"/>
    </section>
    <section heading="Unlisted inventory">
      <table-of-omissions types="GlassPiece"/>
    </section>
  </body>
</html>)TPL";

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/glass-catalog.html";

  lll::awb::Metamodel metamodel = lll::awb::MakeGlassCatalogMetamodel();
  lll::awb::GlassGeneratorConfig config;
  config.pieces = 24;
  lll::awb::Model model = lll::awb::GenerateGlassModel(&metamodel, config);
  std::printf("glass model: %zu nodes, %zu relations\n", model.node_count(),
              model.relation_count());

  // Note: no SystemBeingDesigned warning here -- the rule belongs to the IT
  // metamodel, not to AWB.
  size_t cardinality_warnings = 0;
  for (const auto& warning : model.Validate()) {
    if (warning.kind == lll::awb::ModelWarning::Kind::kCardinality) {
      ++cardinality_warnings;
    }
  }
  std::printf("cardinality warnings: %zu (the glass catalog has no "
              "SystemBeingDesigned rule)\n",
              cardinality_warnings);

  auto result = lll::docgen::GenerateNativeFromText(kCatalogTemplate, model);
  if (!result.ok()) {
    std::printf("generation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("generated: %zu toc entries, %zu pieces never listed\n",
              result->stats.toc_entries, result->stats.omissions_listed);

  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path.c_str());
    return 1;
  }
  out << result->Serialized(2);
  std::printf("wrote %s\n", path.c_str());

  // Show off the data-interchange format while we're here.
  std::string model_xml = lll::awb::ExportModelXml(model);
  std::printf("model exports to %zu bytes of clean XML\n", model_xml.size());
  return 0;
}
