// awb_tool: a command-line front end for the whole library -- the utility a
// downstream user would actually run.
//
//   awb_tool generate-model  [--metamodel it|glass] [--seed N] [--users N]
//                            [--documents N] [--omission-rate PCT] > model.xml
//   awb_tool validate        --model model.xml [--metamodel it|glass]
//   awb_tool omissions       --model model.xml [--metamodel it|glass]
//   awb_tool docgen          --model model.xml --template tpl.xml
//                            [--engine native|xquery] [--metamodel it|glass]
//   awb_tool query           --model model.xml [--metamodel it|glass]
//                            [--backend native|xquery] "from type:User ..."
//   awb_tool export-metamodel [--metamodel it|glass|meta]
//
// Query steps on the command line are ';'-separated:
//   awb_tool query --model m.xml "from type:User; follow likes>; sort label"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awb/xml_io.h"
#include "awbql/native.h"
#include "awbql/query.h"
#include "awbql/xquery_backend.h"
#include "core/string_util.h"
#include "docgen/native_engine.h"
#include "docgen/xq_engine.h"

namespace {

using lll::awb::Metamodel;
using lll::awb::Model;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.flags[key] = argv[++i];
      } else {
        args.flags[key] = "true";
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

std::string Flag(const Args& args, const std::string& key,
                 const std::string& fallback) {
  auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : it->second;
}

int64_t IntFlag(const Args& args, const std::string& key, int64_t fallback) {
  auto it = args.flags.find(key);
  if (it == args.flags.end()) return fallback;
  auto parsed = lll::ParseInt(it->second);
  return parsed ? *parsed : fallback;
}

Metamodel PickMetamodel(const Args& args) {
  std::string name = Flag(args, "metamodel", "it");
  if (name == "glass") return lll::awb::MakeGlassCatalogMetamodel();
  if (name == "meta") return lll::awb::MakeAwbMetaMetamodel();
  return lll::awb::MakeItArchitectureMetamodel();
}

lll::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return lll::Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

lll::Result<Model> LoadModel(const Args& args, const Metamodel* mm) {
  std::string path = Flag(args, "model", "");
  if (path.empty()) return lll::Status::Invalid("--model FILE is required");
  LLL_ASSIGN_OR_RETURN(std::string xml_text, ReadFile(path));
  return lll::awb::ImportModelXml(mm, xml_text);
}

int Fail(const lll::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerateModel(const Args& args) {
  Metamodel mm = PickMetamodel(args);
  if (mm.name() == "glass-catalog") {
    lll::awb::GlassGeneratorConfig config;
    config.seed = static_cast<uint64_t>(IntFlag(args, "seed", 7));
    config.pieces = static_cast<size_t>(IntFlag(args, "pieces", 30));
    Model model = lll::awb::GenerateGlassModel(&mm, config);
    std::printf("%s\n", lll::awb::ExportModelXml(model).c_str());
    return 0;
  }
  lll::awb::GeneratorConfig config;
  config.seed = static_cast<uint64_t>(IntFlag(args, "seed", 42));
  config.users = static_cast<size_t>(IntFlag(args, "users", 10));
  config.documents = static_cast<size_t>(IntFlag(args, "documents", 5));
  config.programs = static_cast<size_t>(IntFlag(args, "programs", 12));
  config.omission_rate = IntFlag(args, "omission-rate", 25) / 100.0;
  Model model = lll::awb::GenerateItModel(&mm, config);
  std::printf("%s\n", lll::awb::ExportModelXml(model).c_str());
  return 0;
}

int CmdValidate(const Args& args) {
  Metamodel mm = PickMetamodel(args);
  auto model = LoadModel(args, &mm);
  if (!model.ok()) return Fail(model.status());
  auto warnings = model->Validate();
  std::printf("%zu nodes, %zu relations, %zu warnings\n", model->node_count(),
              model->relation_count(), warnings.size());
  for (const auto& warning : warnings) {
    std::printf("  [%s] %s%s%s\n", ModelWarningKindName(warning.kind),
                warning.subject_id.c_str(),
                warning.subject_id.empty() ? "" : ": ",
                warning.message.c_str());
  }
  return 0;
}

int CmdOmissions(const Args& args) {
  Metamodel mm = PickMetamodel(args);
  auto model = LoadModel(args, &mm);
  if (!model.ok()) return Fail(model.status());
  auto report = lll::awbql::OmissionsReport(*model);
  if (report.empty()) {
    std::printf("no omissions\n");
    return 0;
  }
  for (const std::string& line : report) {
    std::printf("! %s\n", line.c_str());
  }
  return 0;
}

int CmdDocgen(const Args& args) {
  Metamodel mm = PickMetamodel(args);
  auto model = LoadModel(args, &mm);
  if (!model.ok()) return Fail(model.status());
  std::string template_path = Flag(args, "template", "");
  if (template_path.empty()) {
    return Fail(lll::Status::Invalid("--template FILE is required"));
  }
  auto template_text = ReadFile(template_path);
  if (!template_text.ok()) return Fail(template_text.status());

  std::string engine = Flag(args, "engine", "native");
  lll::Result<lll::docgen::DocGenResult> result =
      engine == "xquery"
          ? lll::docgen::GenerateXQueryFromText(*template_text, *model)
          : lll::docgen::GenerateNativeFromText(*template_text, *model);
  if (!result.ok()) return Fail(result.status());
  std::printf("%s\n", result->Serialized(2).c_str());
  std::fprintf(stderr,
               "engine=%s visited=%zu toc=%zu omissions=%zu copies=%zu\n",
               engine.c_str(), result->stats.nodes_visited,
               result->stats.toc_entries, result->stats.omissions_listed,
               result->stats.document_copies);
  return 0;
}

int CmdQuery(const Args& args) {
  Metamodel mm = PickMetamodel(args);
  auto model = LoadModel(args, &mm);
  if (!model.ok()) return Fail(model.status());
  if (args.positional.empty()) {
    return Fail(lll::Status::Invalid("query text is required"));
  }
  // ';'-separated steps on the command line.
  std::string text;
  for (const std::string& part : lll::Split(args.positional[0], ';')) {
    std::string trimmed(lll::TrimWhitespace(part));
    if (!trimmed.empty()) text += trimmed + "\n";
  }
  auto query = lll::awbql::ParseQuery(text);
  if (!query.ok()) return Fail(query.status());

  std::string backend = Flag(args, "backend", "native");
  lll::Result<std::vector<const lll::awb::ModelNode*>> nodes =
      lll::Status::Internal("unset");
  if (backend == "xquery") {
    lll::awbql::XQueryBackend xq_backend(&*model);
    nodes = xq_backend.Eval(*query);
  } else {
    nodes = lll::awbql::EvalNative(*query, *model);
  }
  if (!nodes.ok()) return Fail(nodes.status());
  for (const auto* node : *nodes) {
    std::printf("%s\t%s\t%s\n", node->id().c_str(), node->type().c_str(),
                model->Label(node).c_str());
  }
  std::fprintf(stderr, "%zu results (backend=%s)\n", nodes->size(),
               backend.c_str());
  return 0;
}

int CmdExportMetamodel(const Args& args) {
  Metamodel mm = PickMetamodel(args);
  std::printf("%s\n", lll::awb::ExportMetamodelXml(mm).c_str());
  return 0;
}

int CmdReflect(const Args& args) {
  // AWB retargeted to itself: emit the chosen metamodel AS AN AWB MODEL over
  // the awb-meta metamodel.
  Metamodel described = PickMetamodel(args);
  static const Metamodel& meta =
      *new Metamodel(lll::awb::MakeAwbMetaMetamodel());
  Model reflection = lll::awb::ReflectMetamodel(described, &meta);
  std::printf("%s\n", lll::awb::ExportModelXml(reflection).c_str());
  return 0;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: awb_tool COMMAND [flags]\n"
      "  generate-model   [--metamodel it|glass] [--seed N] [--users N]\n"
      "                   [--documents N] [--omission-rate PCT]\n"
      "  validate         --model FILE [--metamodel it|glass]\n"
      "  omissions        --model FILE [--metamodel it|glass]\n"
      "  docgen           --model FILE --template FILE [--engine native|xquery]\n"
      "  query            --model FILE [--backend native|xquery] \"QUERY\"\n"
      "  export-metamodel [--metamodel it|glass|meta]\n"
      "  reflect          [--metamodel it|glass]  (metamodel as awb-meta model)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.command == "generate-model") return CmdGenerateModel(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "omissions") return CmdOmissions(args);
  if (args.command == "docgen") return CmdDocgen(args);
  if (args.command == "query") return CmdQuery(args);
  if (args.command == "export-metamodel") return CmdExportMetamodel(args);
  if (args.command == "reflect") return CmdReflect(args);
  Usage();
  return args.command.empty() ? 1 : 2;
}
