// The optimizer and the trace-swallowing pathology (E6): "Simply adding the
// trace introduces a dead variable $dummy, which the Galax compiler helpfully
// optimizes away -- along with the call to trace."

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xquery/optimizer.h"
#include "xquery/parser.h"

namespace lll {
namespace {

// The paper's exact debugging pattern.
constexpr char kDeadTraceQuery[] =
    "let $x := 10 "
    "let $dummy := trace(\"x=\", $x) "
    "let $y := 20 "
    "return $x + $y";

// The workaround: "we had to insinuate trace calls into non-dead code".
constexpr char kInsinuatedTraceQuery[] =
    "let $x := trace(\"x=\", 10) "
    "let $y := 20 "
    "return $x + $y";

TEST(OptimizerE6, GalaxEraDceSwallowsTheTrace) {
  xq::CompileOptions copts;  // defaults: DCE on, trace NOT recognized
  auto query = xq::Compile(kDeadTraceQuery, copts);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().eliminated_lets, 1u);
  EXPECT_EQ(query->optimizer_stats().eliminated_trace_calls, 1u);

  auto result = xq::Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "30");         // same answer...
  EXPECT_TRUE(result->trace_output.empty());          // ...but no trace output
  EXPECT_EQ(result->stats.trace_calls, 0u);
}

TEST(OptimizerE6, FixedOptimizerRecognizesTrace) {
  // "The optimizer would be fixed to recognize trace in the next version."
  xq::CompileOptions copts;
  copts.optimizer.recognize_trace = true;
  auto query = xq::Compile(kDeadTraceQuery, copts);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().eliminated_trace_calls, 0u);

  auto result = xq::Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "30");
  ASSERT_EQ(result->trace_output.size(), 1u);
  EXPECT_EQ(result->trace_output[0], "(x=) (10)");
}

TEST(OptimizerE6, InsinuatedTraceSurvivesDce) {
  auto query = xq::Compile(kInsinuatedTraceQuery);  // trace NOT recognized
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().eliminated_trace_calls, 0u);
  auto result = xq::Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "30");
  EXPECT_EQ(result->trace_output.size(), 1u);
}

TEST(OptimizerE6, DisablingOptimizationKeepsEverything) {
  xq::CompileOptions copts;
  copts.optimize = false;
  auto result = xq::Run(kDeadTraceQuery, {}, copts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trace_output.size(), 1u);
}

TEST(Optimizer, DeadLetWithUsedVariableIsKept) {
  auto query = xq::Compile("let $x := 1 let $y := $x + 1 return $y");
  ASSERT_TRUE(query.ok());
  // $x is used by $y, $y by return: nothing eliminated.
  EXPECT_EQ(query->optimizer_stats().eliminated_lets, 0u);
}

TEST(Optimizer, DeadPureLetIsEliminated) {
  auto query = xq::Compile("let $dead := (1,2,3) return 42");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().eliminated_lets, 1u);
  auto result = xq::Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "42");
}

TEST(Optimizer, DeadLetWithErrorCallIsKept) {
  // fn:error is never pure; eliminating it would change program outcomes.
  auto query = xq::Compile("let $dead := error(\"boom\") return 42");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().eliminated_lets, 0u);
  auto result = xq::Execute(*query);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("boom"), std::string::npos);
}

TEST(Optimizer, ShadowedVariableDoesNotCountAsUse) {
  // The inner `let $x` shadows; the outer $x is dead.
  auto query = xq::Compile(
      "let $x := 1 return (let $x := 2 return $x)");
  ASSERT_TRUE(query.ok());
  auto result = xq::Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "2");
}

TEST(Optimizer, DeadLetInsideUserFunctionIsEliminated) {
  xq::CompileOptions copts;
  auto query = xq::Compile(
      "declare function local:f($a) { "
      "  let $dbg := trace(\"a=\", $a) return $a * 2 }; "
      "local:f(21)",
      copts);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().eliminated_trace_calls, 1u);
  auto result = xq::Execute(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "42");
  EXPECT_TRUE(result->trace_output.empty());
}

TEST(Optimizer, ConstantFolding) {
  auto query = xq::Compile("1 + 2 * 3");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().folded_constants, 2u);
  EXPECT_EQ(xq::ExprToString(*query->module().body), "7");
}

TEST(Optimizer, FoldingLeavesDivisionByZeroForRuntime) {
  auto query = xq::Compile("1 idiv 0");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().folded_constants, 0u);
  EXPECT_FALSE(xq::Execute(*query).ok());
}

TEST(Optimizer, PurityAnalysisOfUserFunctions) {
  auto module = xq::ParseModule(
      "declare function local:pure($x) { $x + 1 }; "
      "declare function local:impure($x) { trace(\"v\", $x) }; "
      "1");
  ASSERT_TRUE(module.ok());
  auto call_pure = xq::ParseExpression("local:pure(1)");
  auto call_impure = xq::ParseExpression("local:impure(1)");
  ASSERT_TRUE(call_pure.ok());
  ASSERT_TRUE(call_impure.ok());
  EXPECT_TRUE(
      xq::IsPure(*call_pure->body, *module, /*recognize_trace=*/true));
  EXPECT_FALSE(
      xq::IsPure(*call_impure->body, *module, /*recognize_trace=*/true));
  // Under the Galax-era policy even the "impure" one looks pure.
  EXPECT_TRUE(
      xq::IsPure(*call_impure->body, *module, /*recognize_trace=*/false));
}

TEST(Optimizer, CountVariableUsesRespectsShadowing) {
  auto module =
      xq::ParseExpression("($x, for $x in (1,2) return $x, $x + $x)");
  ASSERT_TRUE(module.ok());
  // Outer $x used: once at the head, twice at the tail; the loop's own $x
  // uses do not count.
  EXPECT_EQ(xq::CountVariableUses(*module->body, "x"), 3u);
}

// --- Order analysis ---------------------------------------------------------

TEST(OrderAnalysis, TransferOrderLattice) {
  using xq::Axis;
  using xq::OrderProp;
  // Forward step-wise proofs: child/attribute keep disjointness, descendant
  // axes lose it (a descendant set can nest), reverse axes prove nothing.
  EXPECT_EQ(xq::TransferOrder(OrderProp::kSingleton, Axis::kChild),
            OrderProp::kOrderedDisjoint);
  EXPECT_EQ(xq::TransferOrder(OrderProp::kOrderedDisjoint, Axis::kChild),
            OrderProp::kOrderedDisjoint);
  EXPECT_EQ(xq::TransferOrder(OrderProp::kOrderedDisjoint, Axis::kAttribute),
            OrderProp::kOrderedDisjoint);
  EXPECT_EQ(xq::TransferOrder(OrderProp::kSingleton, Axis::kDescendant),
            OrderProp::kOrdered);
  EXPECT_EQ(
      xq::TransferOrder(OrderProp::kOrderedDisjoint, Axis::kDescendantOrSelf),
      OrderProp::kOrdered);
  // Ordered-but-possibly-nested input proves nothing for child::—sibling
  // groups of nested contexts interleave.
  EXPECT_EQ(xq::TransferOrder(OrderProp::kOrdered, Axis::kChild),
            OrderProp::kNone);
  EXPECT_EQ(xq::TransferOrder(OrderProp::kOrdered, Axis::kDescendant),
            OrderProp::kNone);
  // self:: preserves whatever the input had.
  EXPECT_EQ(xq::TransferOrder(OrderProp::kOrdered, Axis::kSelf),
            OrderProp::kOrdered);
  // following-sibling only composes from a singleton.
  EXPECT_EQ(xq::TransferOrder(OrderProp::kSingleton, Axis::kFollowingSibling),
            OrderProp::kOrderedDisjoint);
  EXPECT_EQ(
      xq::TransferOrder(OrderProp::kOrderedDisjoint, Axis::kFollowingSibling),
      OrderProp::kNone);
  // parent:: from a singleton stays a singleton.
  EXPECT_EQ(xq::TransferOrder(OrderProp::kSingleton, Axis::kParent),
            OrderProp::kSingleton);
  // Reverse axes are collected in reverse document order: never proven.
  EXPECT_EQ(xq::TransferOrder(OrderProp::kSingleton, Axis::kAncestor),
            OrderProp::kNone);
  EXPECT_EQ(xq::TransferOrder(OrderProp::kSingleton, Axis::kPrecedingSibling),
            OrderProp::kNone);

  EXPECT_EQ(xq::MeetOrder(OrderProp::kSingleton, OrderProp::kOrdered),
            OrderProp::kOrdered);
  EXPECT_EQ(xq::MeetOrder(OrderProp::kNone, OrderProp::kSingleton),
            OrderProp::kNone);
}

TEST(OrderAnalysis, RootedChildChainIsFullyAnnotated) {
  auto query = xq::Compile("/r/a/b");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().ordered_steps_annotated, 3u);
  const xq::Expr& body = *query->module().body;
  ASSERT_EQ(body.kind, xq::ExprKind::kPath);
  for (const xq::PathStep& s : body.steps) {
    EXPECT_TRUE(s.statically_ordered) << xq::AxisName(s.axis);
  }
}

TEST(OrderAnalysis, DescendantLosesDisjointnessForLaterSteps) {
  // //x == /descendant-or-self::node()/child::x. The first step is provably
  // ordered (singleton source) but yields a NESTED set, so the child step
  // cannot be proven and keeps its normalizing sort.
  auto query = xq::Compile("//x");
  ASSERT_TRUE(query.ok());
  const xq::Expr& body = *query->module().body;
  ASSERT_EQ(body.kind, xq::ExprKind::kPath);
  ASSERT_EQ(body.steps.size(), 2u);
  EXPECT_TRUE(body.steps[0].statically_ordered);
  EXPECT_FALSE(body.steps[1].statically_ordered);
  EXPECT_EQ(query->optimizer_stats().ordered_steps_annotated, 1u);
}

TEST(OrderAnalysis, DisablingTheAnalysisDropsAnnotationsNotAnswers) {
  xq::CompileOptions off;
  off.optimizer.order_analysis = false;
  auto query = xq::Compile("/r/a/b", off);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().ordered_steps_annotated, 0u);
  for (const xq::PathStep& s : query->module().body->steps) {
    EXPECT_FALSE(s.statically_ordered);
  }
}

TEST(OrderAnalysis, EvaluatorSkipsProvenSortsAndCountsThem) {
  auto doc = xml::Parse(
      "<r><a><b/><b/></a><a><b/><b/></a><x/><a><b/><x/></a></r>");
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();

  // Fully proven chain: every step's normalization is skipped.
  auto query = xq::Compile("/r/a/b");
  ASSERT_TRUE(query.ok());
  auto r = xq::Execute(*query, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sequence.size(), 5u);
  EXPECT_GT(r->stats.sorts_skipped, 0u);
  EXPECT_EQ(r->stats.sorts_performed, 0u);

  // //b: in the materializing evaluator the child step off the nested
  // descendant set must really sort. (The streaming pipeline sidesteps the
  // sort entirely; pin it off to observe the materializing behavior.)
  auto unproven = xq::Compile("//b");
  ASSERT_TRUE(unproven.ok());
  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;
  auto r2 = xq::Execute(*unproven, materializing);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->sequence.size(), 5u);
  EXPECT_GT(r2->stats.sorts_performed, 0u);
  EXPECT_GT(r2->stats.order_compares, 0u);

  // Streamed, the same query needs no normalizing sort and agrees item for
  // item.
  auto r2s = xq::Execute(*unproven, opts);
  ASSERT_TRUE(r2s.ok());
  EXPECT_EQ(r2s->stats.sorts_performed, 0u);
  EXPECT_EQ(r2s->SerializedItems(), r2->SerializedItems());

  // Same answers with the analysis off -- the sorts come back, the result
  // sequence does not change.
  xq::CompileOptions off;
  off.optimizer.order_analysis = false;
  auto baseline = xq::Compile("/r/a/b", off);
  ASSERT_TRUE(baseline.ok());
  auto r3 = xq::Execute(*baseline, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->SerializedItems(), r->SerializedItems());
}

TEST(OrderAnalysis, UnionOfOverlappingPathsStillNormalizes) {
  auto doc = xml::Parse("<r><a/><b/><a/><b/></r>");
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  auto r = xq::Run("(//b | //a)", opts);
  ASSERT_TRUE(r.ok());
  // Document order restored across the two branches...
  ASSERT_EQ(r->sequence.size(), 4u);
  EXPECT_EQ(r->sequence.at(0).node()->name(), "a");
  EXPECT_EQ(r->sequence.at(1).node()->name(), "b");
  // ...which takes an actual sort.
  EXPECT_GT(r->stats.sorts_performed, 0u);
}

TEST(LimitPushdown, LiteralConsumersAnnotateThePath) {
  auto sub = xq::Compile("subsequence(//a, 1, 3)");
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->optimizer_stats().limits_pushed, 1u);
  ASSERT_EQ(sub->module().body->children.size(), 3u);
  EXPECT_EQ(sub->module().body->children[0]->limit_hint, 3u);
  EXPECT_TRUE(sub->module().body->children[0]->statically_limit_pushable);

  auto head = xq::Compile("head(//a)");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head->optimizer_stats().limits_pushed, 1u);
  EXPECT_EQ(head->module().body->children[0]->limit_hint, 1u);

  // The window is normalized exactly like the builtin: start 0, length 3
  // covers positions [0, 3), so only the first two items can pass.
  auto zero = xq::Compile("subsequence(//a, 0, 3)");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->module().body->children[0]->limit_hint, 2u);

  // A negative literal start parses as unary minus, which the conservative
  // pass does not recognize: no hint, correctness unaffected.
  auto negative = xq::Compile("subsequence(//a, -2, 4)");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->module().body->children[0]->limit_hint, 0u);

  // Dynamic bounds are never pushed.
  auto dynamic = xq::Compile("subsequence(//a, 1, count(//b))");
  ASSERT_TRUE(dynamic.ok());
  EXPECT_EQ(dynamic->optimizer_stats().limits_pushed, 0u);
}

TEST(LimitPushdown, PositionalForWithImmediateWhere) {
  auto le = xq::Compile("for $x at $p in //a where $p le 3 return $x");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->optimizer_stats().limits_pushed, 1u);
  EXPECT_EQ(le->module().body->clauses[0].expr->limit_hint, 3u);

  auto lt = xq::Compile("for $x at $p in //a where $p lt 3 return $x");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->module().body->clauses[0].expr->limit_hint, 2u);

  auto eq = xq::Compile("for $x at $p in //a where $p eq 1 return $x");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->module().body->clauses[0].expr->limit_hint, 1u);

  // An intervening clause could observe (or fail on) tuples past the bound,
  // so a where that is not immediately next blocks the push.
  auto gap = xq::Compile(
      "for $x at $p in //a let $y := $x where $p le 3 return $y");
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(gap->optimizer_stats().limits_pushed, 0u);

  // A bound on something other than the position variable proves nothing.
  auto other = xq::Compile("for $x at $p in //a where $x le 3 return $x");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->optimizer_stats().limits_pushed, 0u);
}

TEST(LimitPushdown, LetBoundPathConsumedOnce) {
  auto once = xq::Compile("let $s := //a return head($s)");
  ASSERT_TRUE(once.ok());
  EXPECT_EQ(once->optimizer_stats().limits_pushed, 1u);
  EXPECT_EQ(once->module().body->clauses[0].expr->limit_hint, 1u);

  // A second use can observe the full sequence.
  auto twice = xq::Compile("let $s := //a return (head($s), count($s))");
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->optimizer_stats().limits_pushed, 0u);
}

TEST(LimitPushdown, UserFunctionShadowingDisablesThePush) {
  auto shadowed = xq::Compile(
      "declare function head($s) { count($s) }; head(//a)");
  if (shadowed.ok()) {
    EXPECT_EQ(shadowed->optimizer_stats().limits_pushed, 0u);
  }
}

TEST(LimitPushdown, DisablingThePassDropsHintsNotAnswers) {
  xq::CompileOptions off;
  off.optimizer.limit_pushdown = false;
  auto query = xq::Compile("subsequence(//a, 1, 3)", off);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->optimizer_stats().limits_pushed, 0u);
  EXPECT_EQ(query->module().body->children[0]->limit_hint, 0u);
}

TEST(TraceBehavior, TraceReturnsLastArgument) {
  // "a function which prints the first argument and returns the value of the
  // second" -- our variadic trace generalizes this.
  auto result = xq::Run("trace(\"label\", 1 + 1) * 10");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "20");
  ASSERT_EQ(result->trace_output.size(), 1u);
  EXPECT_EQ(result->trace_output[0], "(label) (2)");
}

TEST(TraceBehavior, ErrorKillsTheProgramAndLogs) {
  // error($msg) "prints $msg on the console and kills the program" -- the
  // paper's binary-search debugging tool.
  auto result = xq::Run("(1, error(\"HERE\"), 2)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("HERE"), std::string::npos);
}

}  // namespace
}  // namespace lll
