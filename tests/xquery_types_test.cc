// The type system ("Type System" / "Java Types"): sequence types, function
// annotations, the conversion rules, `castable as`, and the annotation
// "metastasis" scenario the paper describes.

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xquery/parser.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;
using testing::EvalWithContext;

TEST(SequenceTypes, Parsing) {
  auto parse = [](const char* text) {
    auto result = xq::ParseSequenceTypeString(text);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    return result.ok() ? result->ToString() : "<ERR>";
  };
  EXPECT_EQ(parse("xs:string"), "xs:string");
  EXPECT_EQ(parse("xs:string*"), "xs:string*");
  EXPECT_EQ(parse("xs:integer?"), "xs:integer?");
  EXPECT_EQ(parse("xs:double+"), "xs:double+");
  EXPECT_EQ(parse("item()*"), "item()*");
  EXPECT_EQ(parse("node()"), "node()");
  EXPECT_EQ(parse("element()"), "element()");
  EXPECT_EQ(parse("element(book)"), "element(book)");
  EXPECT_EQ(parse("text()"), "text()");
  EXPECT_EQ(parse("document-node()"), "document-node()");
  EXPECT_EQ(parse("empty-sequence()"), "empty-sequence()");
  EXPECT_EQ(parse("xs:anyAtomicType"), "xs:anyAtomicType");
  // The baroque synonyms all map somewhere sensible.
  EXPECT_EQ(parse("xs:nonNegativeInteger"), "xs:integer");
  EXPECT_EQ(parse("xs:positiveInteger"), "xs:integer");
  EXPECT_EQ(parse("xs:float"), "xs:double");

  EXPECT_FALSE(xq::ParseSequenceTypeString("xs:noSuchType").ok());
  EXPECT_FALSE(xq::ParseSequenceTypeString("").ok());
}

TEST(FunctionTypes, AnnotatedParametersConvertUntyped) {
  // Attribute values are untyped; an annotated parameter casts them.
  const char* doc = "<r><i v=\"41\"/></r>";
  EXPECT_EQ(EvalWithContext(
                "declare function local:inc($n as xs:integer) { $n + 1 }; "
                "local:inc(/r/i/@v)",
                doc),
            "42");
  // And a non-numeric value fails the cast, with the function named.
  auto result = xq::Run(
      "declare function local:inc($n as xs:integer) { $n + 1 }; "
      "local:inc(<i v=\"forty-one\"/>/@v)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("local:inc"), std::string::npos);
}

TEST(FunctionTypes, IntegerPromotesToDouble) {
  EXPECT_EQ(Eval("declare function local:half($x as xs:double) { $x div 2 }; "
                 "local:half(5)"),
            "2.5");
}

TEST(FunctionTypes, CardinalityEnforced) {
  const char* fn =
      "declare function local:first($s as xs:string) { $s }; ";
  EXPECT_EQ(Eval(std::string(fn) + "local:first(\"a\")"), "a");
  std::string err = EvalError(std::string(fn) + "local:first((\"a\",\"b\"))");
  EXPECT_NE(err.find("exactly one"), std::string::npos);
  err = EvalError(std::string(fn) + "local:first(())");
  EXPECT_NE(err.find("exactly one"), std::string::npos);

  EXPECT_EQ(Eval("declare function local:opt($s as xs:string?) { count($s) }; "
                 "local:opt(())"),
            "0");
  EXPECT_EQ(Eval("declare function local:many($s as xs:string+) { count($s) }; "
                 "local:many((\"a\",\"b\"))"),
            "2");
  EXPECT_NE(EvalError("declare function local:many($s as xs:string+) "
                      "{ count($s) }; local:many(())")
                .find("at least one"),
            std::string::npos);
}

TEST(FunctionTypes, ReturnTypeChecked) {
  EXPECT_EQ(Eval("declare function local:ok() as xs:integer { 42 }; "
                 "local:ok()"),
            "42");
  std::string err = EvalError(
      "declare function local:bad() as xs:integer { \"oops\" }; local:bad()");
  EXPECT_NE(err.find("returning from local:bad"), std::string::npos);
}

TEST(FunctionTypes, NodeKindAnnotations) {
  EXPECT_EQ(Eval("declare function local:tag($e as element()) { name($e) }; "
                 "local:tag(<x/>)"),
            "x");
  EXPECT_EQ(Eval("declare function local:book($e as element(book)) "
                 "{ name($e) }; local:book(<book/>)"),
            "book");
  EXPECT_FALSE(
      xq::Run("declare function local:book($e as element(book)) { name($e) }; "
              "local:book(<magazine/>)")
          .ok());
  EXPECT_FALSE(
      xq::Run("declare function local:tag($e as element()) { name($e) }; "
              "local:tag(42)")
          .ok());
}

// The paper: "once types are used somewhere, they rapidly metastatize and
// need to be used everywhere." One annotated utility forces a cast (or an
// error) at every caller that passes raw untyped data through helpers.
TEST(FunctionTypes, AnnotationMetastasis) {
  // Untyped pipeline: raw attribute data flows through an unannotated
  // helper into an annotated core function -- the helper's output is still
  // untyped, so the core's annotation converts it. Fine.
  EXPECT_EQ(EvalWithContext(
                "declare function local:core($n as xs:integer) { $n * 2 }; "
                "declare function local:helper($x) { local:core($x) }; "
                "local:helper(/r/i/@v)",
                "<r><i v=\"21\"/></r>"),
            "42");
  // But annotate the helper as xs:string (seemed harmless!) and the same
  // call chain now fails inside: the string no longer converts to integer.
  auto result = xq::Run(
      "declare function local:core($n as xs:integer) { $n * 2 }; "
      "declare function local:helper($x as xs:string) { local:core($x) }; "
      "local:helper(\"21\")");
  ASSERT_FALSE(result.ok());
  // The fix is... adding more type machinery at the call site. QED.
  EXPECT_EQ(Eval("declare function local:core($n as xs:integer) { $n * 2 }; "
                 "declare function local:helper($x as xs:string) "
                 "{ local:core($x cast as xs:integer) }; "
                 "local:helper(\"21\")"),
            "42");
}

TEST(CastableAs, BasicProbes) {
  EXPECT_EQ(Eval("\"42\" castable as xs:integer"), "true");
  EXPECT_EQ(Eval("\"4.2\" castable as xs:integer"), "false");
  EXPECT_EQ(Eval("\"4.2\" castable as xs:double"), "true");
  EXPECT_EQ(Eval("\"x\" castable as xs:double"), "false");
  EXPECT_EQ(Eval("\"true\" castable as xs:boolean"), "true");
  EXPECT_EQ(Eval("\"yes\" castable as xs:boolean"), "false");
  EXPECT_EQ(Eval("42 castable as xs:string"), "true");
  EXPECT_EQ(Eval("() castable as xs:integer?"), "true");
  EXPECT_EQ(Eval("() castable as xs:integer"), "false");
  EXPECT_EQ(Eval("(1, 2) castable as xs:integer"), "false");
}

TEST(CastableAs, GuardsTheCast) {
  // The idiom annotations enable: probe before casting.
  EXPECT_EQ(EvalWithContext(
                "for $i in //i return "
                "if (@v castable as xs:integer) then () else () ",
                "<r/>"),
            "");
  EXPECT_EQ(EvalWithContext(
                "sum(for $i in //i "
                "    where $i/@v castable as xs:integer "
                "    return $i/@v cast as xs:integer)",
                "<r><i v=\"1\"/><i v=\"junk\"/><i v=\"2\"/></r>"),
            "3");
}

TEST(InstanceOfMore, UntypedVersusString) {
  // Attribute content is untyped, NOT string -- one of the paper's "two
  // large and slightly-different type systems" gotchas.
  EXPECT_EQ(EvalWithContext("data(/r/@v) instance of xs:untypedAtomic",
                            "<r v=\"x\"/>"),
            "true");
  EXPECT_EQ(EvalWithContext("data(/r/@v) instance of xs:string", "<r v=\"x\"/>"),
            "false");
  EXPECT_EQ(Eval("\"x\" instance of xs:string"), "true");
  EXPECT_EQ(Eval("\"x\" instance of xs:anyAtomicType"), "true");
  EXPECT_EQ(Eval("<a/> instance of xs:anyAtomicType"), "false");
}

TEST(UntypedMode, WorksWithoutAnyAnnotations) {
  // "we used XQuery in the untyped mode, avoiding the type system entirely"
  // -- an entire pipeline with zero annotations must work.
  const char* doc =
      "<orders><o id=\"1\" total=\"10\"/><o id=\"2\" total=\"32\"/></orders>";
  EXPECT_EQ(EvalWithContext(
                "declare function local:big($os) { "
                "  for $o in $os where $o/@total > 20 return string($o/@id) }; "
                "local:big(//o)",
                doc),
            "2");
}

}  // namespace
}  // namespace lll
