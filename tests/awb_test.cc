// Unit tests for the AWB substrate: metamodel hierarchy, model multigraph,
// advisory validation, XML round-trips, and the synthetic generator.

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awb/metamodel.h"
#include "awb/model.h"
#include "awb/xml_io.h"
#include "gtest/gtest.h"

namespace lll::awb {
namespace {

TEST(Metamodel, TypeHierarchy) {
  Metamodel mm = MakeItArchitectureMetamodel();
  ASSERT_TRUE(mm.Validate().ok());
  EXPECT_TRUE(mm.IsNodeSubtype("User", "Person"));
  EXPECT_TRUE(mm.IsNodeSubtype("Superuser", "Person"));
  EXPECT_TRUE(mm.IsNodeSubtype("Superuser", "Entity"));
  EXPECT_TRUE(mm.IsNodeSubtype("Person", "Person"));
  EXPECT_FALSE(mm.IsNodeSubtype("Person", "User"));
  EXPECT_FALSE(mm.IsNodeSubtype("Server", "Person"));
  EXPECT_FALSE(mm.IsNodeSubtype("NoSuch", "Entity"));
}

TEST(Metamodel, RelationHierarchy) {
  Metamodel mm = MakeItArchitectureMetamodel();
  // "favors might be a subtype of likes".
  EXPECT_TRUE(mm.IsRelationSubtype("favors", "likes"));
  EXPECT_TRUE(mm.IsRelationSubtype("likes", "relates"));
  EXPECT_FALSE(mm.IsRelationSubtype("likes", "favors"));
  EXPECT_FALSE(mm.IsRelationSubtype("uses", "likes"));
}

TEST(Metamodel, InheritedProperties) {
  Metamodel mm = MakeItArchitectureMetamodel();
  auto props = mm.AllProperties("Superuser");
  // Inherited root-to-leaf: Entity(name, description) then Person(...), User.
  ASSERT_GE(props.size(), 7u);
  EXPECT_EQ(props[0].name, "name");
  EXPECT_NE(mm.FindProperty("Superuser", "birthYear"), nullptr);
  EXPECT_NE(mm.FindProperty("User", "role"), nullptr);
  EXPECT_EQ(mm.FindProperty("Person", "role"), nullptr);  // declared on User
  EXPECT_EQ(mm.FindProperty("User", "nope"), nullptr);
}

TEST(Metamodel, ValidationCatchesBadDeclarations) {
  Metamodel mm("broken");
  NodeTypeDecl orphan;
  orphan.name = "Child";
  orphan.parent = "Ghost";
  ASSERT_TRUE(mm.AddNodeType(orphan).ok());
  EXPECT_FALSE(mm.Validate().ok());

  Metamodel dup("dup");
  NodeTypeDecl t;
  t.name = "T";
  ASSERT_TRUE(dup.AddNodeType(t).ok());
  EXPECT_FALSE(dup.AddNodeType(t).ok());
}

TEST(Metamodel, PropertyValueTyping) {
  EXPECT_TRUE(ValueMatchesType("42", PropertyType::kInteger));
  EXPECT_FALSE(ValueMatchesType("forty-two", PropertyType::kInteger));
  EXPECT_TRUE(ValueMatchesType("true", PropertyType::kBoolean));
  EXPECT_FALSE(ValueMatchesType("yes", PropertyType::kBoolean));
  EXPECT_TRUE(ValueMatchesType("3.5", PropertyType::kDouble));
  EXPECT_TRUE(ValueMatchesType("anything", PropertyType::kString));
  EXPECT_TRUE(ValueMatchesType("<b>markup</b>", PropertyType::kHtml));
}

TEST(Model, NodesEdgesAndAdjacency) {
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  ModelNode* alice = model.CreateNode("User", "Alice");
  ModelNode* bob = model.CreateNode("User", "Bob");
  ModelNode* carol = model.CreateNode("User", "Carol");
  ASSERT_TRUE(model.Connect("likes", alice, bob).ok());
  ASSERT_TRUE(model.Connect("favors", alice, carol).ok());
  ASSERT_TRUE(model.Connect("likes", bob, carol).ok());

  // Outgoing with subtype semantics: favors counts as likes.
  EXPECT_EQ(model.Outgoing(alice, "likes").size(), 2u);
  EXPECT_EQ(model.Outgoing(alice, "favors").size(), 1u);
  EXPECT_EQ(model.Incoming(carol, "likes").size(), 2u);
  EXPECT_EQ(model.Incoming(alice, "likes").size(), 0u);
  EXPECT_EQ(model.Outgoing(alice).size(), 2u);  // any relation

  EXPECT_EQ(model.Label(alice), "Alice");
  EXPECT_EQ(model.FindNode(alice->id()), alice);
  EXPECT_EQ(model.FindNode("N999"), nullptr);
}

TEST(Model, MultigraphAllowsParallelEdges) {
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  ModelNode* a = model.CreateNode("User", "a");
  ModelNode* b = model.CreateNode("User", "b");
  ASSERT_TRUE(model.Connect("likes", a, b).ok());
  ASSERT_TRUE(model.Connect("likes", a, b).ok());  // parallel edge: fine
  EXPECT_EQ(model.Outgoing(a, "likes").size(), 2u);
}

TEST(Model, NodesOfTypeWithSubtypes) {
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  model.CreateNode("User", "u");
  model.CreateNode("Superuser", "su");
  model.CreateNode("Server", "s");
  EXPECT_EQ(model.NodesOfType("User").size(), 2u);
  EXPECT_EQ(model.NodesOfType("User", /*include_subtypes=*/false).size(), 1u);
  EXPECT_EQ(model.NodesOfType("Person").size(), 2u);
  EXPECT_EQ(model.NodesOfType("Entity").size(), 3u);
}

TEST(Model, AdvisoryValidation) {
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  // No SystemBeingDesigned: a cardinality warning, not an error.
  ModelNode* user = model.CreateNode("User", "u");
  ModelNode* prog = model.CreateNode("Program", "p");
  // Person uses Program: against the metamodel's advice, but allowed.
  ASSERT_TRUE(model.Connect("uses", user, prog).ok());
  // Ad hoc property: allowed, warned.
  user->SetProperty("middleName", "Q.");
  // Bad value for declared integer property.
  user->SetProperty("birthYear", "eighties");

  auto warnings = model.Validate();
  auto count = [&warnings](ModelWarning::Kind kind) {
    size_t n = 0;
    for (const auto& w : warnings) {
      if (w.kind == kind) ++n;
    }
    return n;
  };
  EXPECT_EQ(count(ModelWarning::Kind::kCardinality), 1u);
  EXPECT_EQ(count(ModelWarning::Kind::kEndpointViolation), 1u);
  EXPECT_EQ(count(ModelWarning::Kind::kAdHocProperty), 1u);
  EXPECT_EQ(count(ModelWarning::Kind::kBadPropertyValue), 1u);
}

TEST(Model, CardinalityRuleSatisfiedBySubtypeInstances) {
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  model.CreateNode("SystemBeingDesigned", "Orion");
  auto warnings = model.Validate();
  for (const auto& w : warnings) {
    EXPECT_NE(w.kind, ModelWarning::Kind::kCardinality) << w.message;
  }
}

TEST(Model, TwoSystemBeingDesignedNodesWarn) {
  // "There should have been exactly one SystemBeingDesigned node, but there
  // were two."
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  model.CreateNode("SystemBeingDesigned", "one");
  model.CreateNode("SystemBeingDesigned", "two");
  bool found = false;
  for (const auto& w : model.Validate()) {
    if (w.kind == ModelWarning::Kind::kCardinality) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Model, MissingRecommendedPropertyWarns) {
  Metamodel mm = MakeItArchitectureMetamodel();
  Model model(&mm);
  model.CreateNode("SystemBeingDesigned", "Orion")->SetProperty("version", "1");
  model.CreateNode("Document", "doc-without-version");
  bool found = false;
  for (const auto& w : model.Validate()) {
    if (w.kind == ModelWarning::Kind::kMissingRecommended &&
        w.message.find("version") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GlassCatalog, HasNoSystemBeingDesignedRule) {
  // "the glass catalog doesn't have a SystemBeingDesigned node at all, nor a
  // warning about it."
  Metamodel mm = MakeGlassCatalogMetamodel();
  ASSERT_TRUE(mm.Validate().ok());
  Model model(&mm);
  model.CreateNode("Goblet", "g");
  for (const auto& w : model.Validate()) {
    EXPECT_NE(w.kind, ModelWarning::Kind::kCardinality) << w.message;
  }
}

TEST(AwbMeta, RetargetsToItself) {
  Metamodel mm = MakeAwbMetaMetamodel();
  ASSERT_TRUE(mm.Validate().ok());
  Model model(&mm);
  ModelNode* persons = model.CreateNode("NodeTypeDef", "Person");
  ModelNode* first = model.CreateNode("PropertyDef", "firstName");
  first->SetProperty("valueType", "string");
  ASSERT_TRUE(model.Connect("has", persons, first).ok());
  EXPECT_TRUE(model.Validate().empty());
}

TEST(AwbMeta, ReflectMetamodelDescribesItArchitecture) {
  // "AWB has retargeted to be a workbench for ... (2) itself." Reflect the
  // IT metamodel into an awb-meta model and interrogate it like any model.
  Metamodel it = MakeItArchitectureMetamodel();
  Metamodel meta = MakeAwbMetaMetamodel();
  Model reflection = ReflectMetamodel(it, &meta);

  // One NodeTypeDef per node type, one RelationTypeDef per relation.
  EXPECT_EQ(reflection.NodesOfType("NodeTypeDef").size(),
            it.node_types().size());
  EXPECT_EQ(reflection.NodesOfType("RelationTypeDef").size(),
            it.relation_types().size());

  // Person's properties became PropertyDef nodes hanging off it.
  const ModelNode* person = nullptr;
  for (const ModelNode* n : reflection.NodesOfType("NodeTypeDef")) {
    if (reflection.Label(n) == "Person") person = n;
  }
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(*person->Property("extends"), "Entity");
  EXPECT_EQ(reflection.Outgoing(person, "has").size(), 4u);  // four props

  // The Document.version PropertyDef carries its recommendedness.
  const ModelNode* version = nullptr;
  for (const ModelNode* n : reflection.NodesOfType("PropertyDef")) {
    if (reflection.Label(n) == "Document.version") version = n;
  }
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(*version->Property("recommended"), "true");

  // The reflection is a well-behaved model: only blessed edges, no warnings
  // beyond ad-hoc none.
  EXPECT_TRUE(reflection.Validate().empty());

  // And it round-trips through the interchange format like any other model.
  auto reimported =
      ImportModelXml(&meta, ExportModelXml(reflection));
  ASSERT_TRUE(reimported.ok());
  EXPECT_EQ(reimported->node_count(), reflection.node_count());
}

TEST(XmlIo, ModelRoundTrip) {
  Metamodel mm = MakeItArchitectureMetamodel();
  GeneratorConfig config;
  config.seed = 11;
  Model original = GenerateItModel(&mm, config);

  std::string xml_text = ExportModelXml(original);
  auto imported = ImportModelXml(&mm, xml_text);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  EXPECT_EQ(imported->node_count(), original.node_count());
  EXPECT_EQ(imported->relation_count(), original.relation_count());
  // Spot-check a node's properties survive.
  for (const ModelNode* node : original.nodes()) {
    const ModelNode* copy = imported->FindNode(node->id());
    ASSERT_NE(copy, nullptr) << node->id();
    EXPECT_EQ(copy->type(), node->type());
    EXPECT_EQ(copy->properties(), node->properties());
  }
  // And the re-export is byte-identical (canonical form).
  EXPECT_EQ(ExportModelXml(*imported), xml_text);
}

TEST(XmlIo, MetamodelRoundTrip) {
  Metamodel mm = MakeItArchitectureMetamodel();
  std::string xml_text = ExportMetamodelXml(mm);
  auto imported = ImportMetamodelXml(xml_text);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->name(), mm.name());
  EXPECT_EQ(imported->node_types().size(), mm.node_types().size());
  EXPECT_EQ(imported->relation_types().size(), mm.relation_types().size());
  EXPECT_EQ(imported->rules().size(), mm.rules().size());
  EXPECT_TRUE(imported->IsNodeSubtype("Superuser", "Entity"));
  EXPECT_TRUE(imported->IsRelationSubtype("favors", "likes"));
  const PropertyDecl* version = imported->FindProperty("Document", "version");
  ASSERT_NE(version, nullptr);
  EXPECT_TRUE(version->recommended);
}

TEST(XmlIo, ImportRejectsMalformedModels) {
  Metamodel mm = MakeItArchitectureMetamodel();
  EXPECT_FALSE(ImportModelXml(&mm, "<wrong-root/>").ok());
  EXPECT_FALSE(ImportModelXml(&mm, "<awb-model><node/></awb-model>").ok());
  EXPECT_FALSE(
      ImportModelXml(&mm,
                     "<awb-model><node id=\"N1\" type=\"User\"/>"
                     "<node id=\"N1\" type=\"User\"/></awb-model>")
          .ok());
  EXPECT_FALSE(
      ImportModelXml(&mm, "<awb-model><relation type=\"has\"/></awb-model>")
          .ok());
}

TEST(Generator, DeterministicAndShaped) {
  Metamodel mm = MakeItArchitectureMetamodel();
  GeneratorConfig config;
  config.seed = 5;
  Model a = GenerateItModel(&mm, config);
  Model b = GenerateItModel(&mm, config);
  EXPECT_EQ(ExportModelXml(a), ExportModelXml(b));

  EXPECT_EQ(a.NodesOfType("SystemBeingDesigned").size(), 1u);
  EXPECT_EQ(a.NodesOfType("User").size(), config.users);
  EXPECT_EQ(a.NodesOfType("Server").size(), config.servers);
  EXPECT_GE(a.relation_count(), config.users);  // has-edges at minimum
}

TEST(Generator, OmissionRateProducesOmissions) {
  Metamodel mm = MakeItArchitectureMetamodel();
  GeneratorConfig config;
  config.documents = 40;
  config.omission_rate = 0.5;
  Model model = GenerateItModel(&mm, config);
  size_t missing = 0;
  for (const ModelNode* doc : model.NodesOfType("Document")) {
    if (doc->Property("version") == nullptr) ++missing;
  }
  EXPECT_GT(missing, 5u);
  EXPECT_LT(missing, 35u);
}

TEST(Generator, NoSystemBeingDesignedMode) {
  Metamodel mm = MakeItArchitectureMetamodel();
  GeneratorConfig config;
  config.include_system_being_designed = false;
  Model model = GenerateItModel(&mm, config);
  EXPECT_TRUE(model.NodesOfType("SystemBeingDesigned").empty());
}

TEST(Generator, GlassModel) {
  Metamodel mm = MakeGlassCatalogMetamodel();
  GlassGeneratorConfig config;
  Model model = GenerateGlassModel(&mm, config);
  EXPECT_EQ(model.NodesOfType("GlassPiece").size(), config.pieces);
  EXPECT_EQ(model.NodesOfType("Maker").size(), config.makers);
  // Every piece has a maker edge.
  for (const ModelNode* piece : model.NodesOfType("GlassPiece")) {
    EXPECT_EQ(model.Outgoing(piece, "madeBy").size(), 1u);
  }
}

}  // namespace
}  // namespace lll::awb
