// Concurrency soak for the query server: N reader threads hammer sessions
// while one writer publishes copy-on-write edits for a wall-clock budget.
//
// The invariant under test is snapshot isolation itself. Every published
// version keeps `/r/@n` equal to `count(//item)`; a reader that ever sees
// the two disagree has observed a torn (mid-edit) document -- the one thing
// the publish protocol exists to make impossible. The test also checks that
// each reader observes monotonically non-decreasing versions and that
// pinned sessions stay on their version across publishes.
//
// Run under TSan (ctest -L concurrency on the tsan preset) this doubles as
// the data-race proof for SnapshotStore, the per-snapshot NodeSetCache, and
// the shared QueryCache.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/server.h"
#include "xml/node.h"

namespace lll::server {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kReaders = 4;
constexpr auto kWallBudget = std::chrono::milliseconds(400);

TEST(ServerSoak, ReadersNeverSeeTornSnapshots) {
  MetricsRegistry metrics;
  ServerOptions options;
  options.worker_threads = 2;
  options.metrics = &metrics;
  QueryServer server(options);
  ASSERT_TRUE(server.AddDocumentXml("soak", "<r n=\"1\"><item/></r>").ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> publishes{0};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> torn_reads{0};
  std::atomic<int> version_regressions{0};
  std::atomic<int> reader_errors{0};

  // One pinned spectator session, opened and pinned BEFORE the writer
  // exists: it must keep reading version 1 no matter how many publishes
  // land during the storm.
  Session pinned = server.OpenSession("spectator");
  QueryResponse first = pinned.Query("soak", "count(//item)");
  ASSERT_TRUE(first.status.ok());
  ASSERT_EQ(first.snapshot_version, 1u);

  // The writer: append one <item/> and bump @n to match, via the
  // copy-on-write edit path. @n always equals count(//item) in every
  // PUBLISHED version; only a torn read could ever see them differ.
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto version =
          server.PublishEdit("soak", [](xml::Document* doc, xml::Node* root) {
            xml::Node* r = root->children().front();
            Status st = r->AppendChild(doc->CreateElement("item"));
            if (!st.ok()) return st;
            r->SetAttribute("n",
                            std::to_string(r->children().size()));
            return Status::Ok();
          });
      if (!version.ok()) {
        ADD_FAILURE() << "publish failed: " << version.status().ToString();
        return;
      }
      publishes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      const std::string tenant = "reader" + std::to_string(i);
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // A fresh session per iteration: pin whatever is current, then ask
        // the SAME pinned snapshot two independent questions. Disagreement
        // between them, or between either and the declared @n, is a torn
        // or stale read.
        Session session = server.OpenSession(tenant);
        QueryResponse declared = session.Query("soak", "string(/r/@n)");
        QueryResponse counted = session.Query("soak", "count(//item)");
        if (!declared.status.ok() || !counted.status.ok()) {
          reader_errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (declared.result != counted.result ||
            declared.snapshot_version != counted.snapshot_version) {
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        }
        if (counted.snapshot_version < last_version) {
          version_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = counted.snapshot_version;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(kWallBudget);
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  for (std::thread& t : readers) t.join();

  QueryResponse still_pinned = pinned.Query("soak", "count(//item)");
  ASSERT_TRUE(still_pinned.status.ok());
  EXPECT_EQ(still_pinned.snapshot_version, 1u);
  EXPECT_EQ(still_pinned.result, first.result);

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(version_regressions.load(), 0);
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_GT(publishes.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(server.snapshots_published(), publishes.load());
  EXPECT_EQ(metrics.counter("server.queries_rejected").value(), 0u);

  // The final current snapshot agrees with the writer's ledger.
  QueryResponse end = server.Execute("audit", "soak", "count(//item)");
  ASSERT_TRUE(end.status.ok());
  EXPECT_EQ(end.result, std::to_string(1 + publishes.load()));
  EXPECT_EQ(end.snapshot_version, 1 + publishes.load());
}

TEST(ServerSoak, AsyncSubmitSurvivesConcurrentPublishes) {
  MetricsRegistry metrics;
  ServerOptions options;
  options.worker_threads = 4;
  options.metrics = &metrics;
  QueryServer server(options);
  ASSERT_TRUE(server.AddDocumentXml("soak", "<r n=\"1\"><item/></r>").ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto version =
          server.PublishEdit("soak", [](xml::Document* doc, xml::Node* root) {
            xml::Node* r = root->children().front();
            Status st = r->AppendChild(doc->CreateElement("item"));
            if (!st.ok()) return st;
            r->SetAttribute("n", std::to_string(r->children().size()));
            return Status::Ok();
          });
      ASSERT_TRUE(version.ok());
    }
  });

  constexpr int kJobs = 200;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  int torn = 0;
  for (int i = 0; i < kJobs; ++i) {
    server.Submit("async", "soak", "concat(string(/r/@n), \"|\", count(//item))",
                  [&](QueryResponse resp) {
                    std::lock_guard<std::mutex> lock(mu);
                    if (resp.status.ok()) {
                      // "N|N" -- both halves read the same snapshot.
                      size_t bar = resp.result.find('|');
                      if (bar == std::string::npos ||
                          resp.result.substr(0, bar) !=
                              resp.result.substr(bar + 1)) {
                        ++torn;
                      }
                    } else {
                      ++torn;
                    }
                    ++done;
                    cv.notify_all();
                  });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kJobs; });
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(torn, 0);
}

}  // namespace
}  // namespace lll::server
