// End-to-end integration: the full AWB pipeline the paper describes, wired
// together -- model interchange, document generation on both engines, the
// combined-output-plus-XSLT-splitter workaround, and a couple of "programs
// the authors actually wrote" (binary search with div, a recursive walk).

#include <string>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awb/xml_io.h"
#include "awbql/native.h"
#include "docgen/native_engine.h"
#include "docgen/xq_engine.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/deep_equal.h"
#include "xml/serializer.h"
#include "xslt/xslt.h"

namespace lll {
namespace {

// The whole pipeline: generate -> export -> import (data interchange!) ->
// generate documents with both engines -> combine with a problem report ->
// split with XSLT -> verify every stage.
TEST(Pipeline, ModelToSplitOutputs) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = 31337;
  config.users = 6;
  config.documents = 4;
  config.omission_rate = 0.5;
  awb::Model original = awb::GenerateItModel(&mm, config);

  // Stage 1: interchange. The document generator works from EXPORTED data,
  // exactly as the paper's external generator did.
  std::string exported = awb::ExportModelXml(original);
  auto imported = awb::ImportModelXml(&mm, exported);
  ASSERT_TRUE(imported.ok());

  // Stage 2: both engines generate the document from the re-imported model.
  const char* tpl =
      "<html><body><table-of-contents/>"
      "<section heading=\"Documents\">"
      "<for nodes=\"from type:Document; sort label\">"
      "<p><label/>: <value-of property=\"version\" default=\"MISSING\"/></p>"
      "</for></section>"
      "<section heading=\"Never mentioned\"><table-of-omissions/></section>"
      "</body></html>";
  auto native = docgen::GenerateNativeFromText(tpl, *imported);
  auto xquery = docgen::GenerateXQueryFromText(tpl, *imported);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
  ASSERT_TRUE(xml::DeepEqual(native->root, xquery->root))
      << xml::ExplainDifference(native->root, xquery->root);

  // Stage 3: the single-output workaround. Pack the document and the
  // problem report into one combined tree...
  xml::Document combined;
  xml::Node* streams = combined.CreateElement("streams");
  ASSERT_TRUE(combined.root()->AppendChild(streams).ok());
  xml::Node* doc_stream = combined.CreateElement("stream");
  doc_stream->SetAttribute("name", "document");
  ASSERT_TRUE(streams->AppendChild(doc_stream).ok());
  ASSERT_TRUE(
      doc_stream->AppendChild(combined.ImportNode(native->root)).ok());
  xml::Node* report_stream = combined.CreateElement("stream");
  report_stream->SetAttribute("name", "report");
  ASSERT_TRUE(streams->AppendChild(report_stream).ok());
  xml::Node* report = combined.CreateElement("report");
  ASSERT_TRUE(report_stream->AppendChild(report).ok());
  for (const std::string& line : awbql::OmissionsReport(*imported)) {
    xml::Node* warning = combined.CreateElement("warning");
    ASSERT_TRUE(warning->AppendChild(combined.CreateText(line)).ok());
    ASSERT_TRUE(report->AppendChild(warning).ok());
  }

  // ...and split it apart with the little XSLT program.
  auto split = xslt::SplitStreams(streams);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->size(), 2u);

  // The split document equals the generated document.
  const xml::Node* split_doc = nullptr;
  for (const xml::Node* c : split->at("document")->root()->children()) {
    if (c->is_element()) split_doc = c;
  }
  ASSERT_NE(split_doc, nullptr);
  EXPECT_TRUE(xml::DeepEqual(split_doc, native->root))
      << xml::ExplainDifference(split_doc, native->root);

  // The split report holds the omission warnings (documents with a 50%
  // omission rate virtually always produce some).
  const xml::Node* split_report = nullptr;
  for (const xml::Node* c : split->at("report")->root()->children()) {
    if (c->is_element()) split_report = c;
  }
  ASSERT_NE(split_report, nullptr);
  EXPECT_EQ(split_report->ChildElements("warning").size(),
            awbql::OmissionsReport(*imported).size());
}

// "We only used division 15 times in the document generator, once for
// binary search and the rest for trigonometry." Here is that binary search,
// in XQuery, over a sorted sequence -- with idiv where it belongs.
TEST(PaperPrograms, BinarySearchInXQuery) {
  const char* program =
      "declare function local:bsearch($seq, $target, $lo, $hi) { "
      "  if ($lo gt $hi) then () "
      "  else "
      "    let $mid := ($lo + $hi) idiv 2 "
      "    let $v := $seq[$mid] "
      "    return "
      "      if ($v eq $target) then $mid "
      "      else if ($v lt $target) then "
      "        local:bsearch($seq, $target, $mid + 1, $hi) "
      "      else local:bsearch($seq, $target, $lo, $mid - 1) }; "
      "declare variable $data := for $i in 1 to 100 return $i * 3; "
      "(local:bsearch($data, 42, 1, count($data)), "
      " local:bsearch($data, 300, 1, count($data)), "
      " count(local:bsearch($data, 43, 1, count($data))))";
  EXPECT_EQ(testing::Eval(program), "14 100 0");
}

// The paper's sketch of the recursive walk: "a hundred lines of code, mostly
// lines of the form if ($tag-name = "for") then generate_for(...)". A
// self-contained miniature: count directives in a template, in XQuery.
TEST(PaperPrograms, RecursiveTemplateWalkInXQuery) {
  const char* program =
      "declare function local:walk($n) { "
      "  if ($n instance of element()) then "
      "    (if (name($n) = (\"for\", \"if\", \"label\")) then 1 else 0) + "
      "    sum(for $c in $n/child::node() return local:walk($c)) "
      "  else 0 }; "
      "local:walk(/*)";
  EXPECT_EQ(testing::EvalWithContext(
                program,
                "<ol><for><li><if><then><label/></then></if></li></for>"
                "<p>text</p></ol>"),
            "3");
}

// Glass retarget end to end: same template language, different universe.
TEST(Pipeline, GlassRetargetBothEngines) {
  awb::Metamodel mm = awb::MakeGlassCatalogMetamodel();
  awb::GlassGeneratorConfig config;
  config.pieces = 8;
  config.makers = 3;
  awb::Model model = awb::GenerateGlassModel(&mm, config);
  const char* tpl =
      "<catalog><for nodes=\"from type:Maker; sort label\">"
      "<maker><name><label/></name>"
      "<for nodes=\"from focus; follow &lt;madeBy; sort label\">"
      "<piece><label/></piece></for>"
      "</maker></for></catalog>";
  auto native = docgen::GenerateNativeFromText(tpl, model);
  auto xquery = docgen::GenerateXQueryFromText(tpl, model);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
  EXPECT_TRUE(xml::DeepEqual(native->root, xquery->root))
      << xml::ExplainDifference(native->root, xquery->root);
  // Every piece appears exactly once (every piece has exactly one maker).
  EXPECT_EQ(native->root->DescendantElements("piece").size(), 8u);
}

}  // namespace
}  // namespace lll
