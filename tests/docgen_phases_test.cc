// Unit tests for the individual XQuery phase programs (xq_programs.cc), run
// standalone on handcrafted inputs -- each phase is an XQuery program with
// its own contract, testable in isolation.

#include "gtest/gtest.h"
#include "docgen/xq_programs.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll::docgen {
namespace {

// Runs one phase with `doc` (an element) as doc("doc"); optional model and
// metamodel for phase 2.
std::string RunPhase(const std::string& program, const std::string& doc_xml,
                     const std::string& model_xml = "",
                     const std::string& metamodel_xml = "") {
  auto doc = xml::Parse(doc_xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  xq::ExecuteOptions opts;
  opts.documents["doc"] = (*doc)->DocumentElement();
  std::unique_ptr<xml::Document> model_doc, metamodel_doc;
  if (!model_xml.empty()) {
    auto parsed = xml::Parse(model_xml, {.strip_insignificant_whitespace = true});
    EXPECT_TRUE(parsed.ok());
    model_doc = std::move(*parsed);
    opts.documents["model"] = model_doc->root();
  }
  if (!metamodel_xml.empty()) {
    auto parsed =
        xml::Parse(metamodel_xml, {.strip_insignificant_whitespace = true});
    EXPECT_TRUE(parsed.ok());
    metamodel_doc = std::move(*parsed);
    opts.documents["metamodel"] = metamodel_doc->root();
  }
  auto result = xq::Run(program, opts);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return "<ERROR>";
  return result->SerializedItems();
}

TEST(Phase5Strip, RemovesInternalDataWholesale) {
  EXPECT_EQ(RunPhase(Phase5StripProgram(),
                     "<doc><p>keep</p>"
                     "<INTERNAL-DATA><VISITED node-id=\"N1\"/></INTERNAL-DATA>"
                     "<div><INTERNAL-DATA>deep</INTERNAL-DATA><b>b</b></div>"
                     "</doc>"),
            "<doc><p>keep</p><div><b>b</b></div></doc>");
}

TEST(Phase5Strip, PreservesAttributesAndText) {
  EXPECT_EQ(RunPhase(Phase5StripProgram(),
                     "<doc a=\"1\"><p b=\"2\">x y</p></doc>"),
            "<doc a=\"1\"><p b=\"2\">x y</p></doc>");
}

TEST(Phase3Toc, BuildsTheListFromEntries) {
  std::string out = RunPhase(
      Phase3TocProgram(),
      "<doc><lll-toc-marker/>"
      "<INTERNAL-DATA><TOC-ENTRY depth=\"1\" text=\"One\"/></INTERNAL-DATA>"
      "<INTERNAL-DATA><TOC-ENTRY depth=\"2\" text=\"Two\"/></INTERNAL-DATA>"
      "</doc>");
  EXPECT_NE(out.find("<ul class=\"toc\">"
                     "<li class=\"toc-depth-1\">One</li>"
                     "<li class=\"toc-depth-2\">Two</li></ul>"),
            std::string::npos);
  // The INTERNAL-DATA survives phase 3 (phase 5 strips it).
  EXPECT_NE(out.find("INTERNAL-DATA"), std::string::npos);
}

TEST(Phase3Toc, EmptyTocForNoEntries) {
  EXPECT_EQ(RunPhase(Phase3TocProgram(), "<doc><lll-toc-marker/></doc>"),
            "<doc><ul class=\"toc\"/></doc>");
}

TEST(Phase4Placeholders, SplitsTextNodes) {
  std::string out = RunPhase(
      Phase4PlaceholdersProgram(),
      "<doc>"
      "<INTERNAL-DATA><PLACEHOLDER name=\"T\"><b>bold</b></PLACEHOLDER>"
      "</INTERNAL-DATA>"
      "<p>before T-GOES-HERE after</p></doc>");
  EXPECT_NE(out.find("<p>before <b>bold</b> after</p>"), std::string::npos);
}

TEST(Phase4Placeholders, MultipleOccurrencesAndPlaceholders) {
  std::string out = RunPhase(
      Phase4PlaceholdersProgram(),
      "<doc>"
      "<INTERNAL-DATA><PLACEHOLDER name=\"A\"><x/></PLACEHOLDER>"
      "<PLACEHOLDER name=\"B\"><y/></PLACEHOLDER></INTERNAL-DATA>"
      "<p>A-GOES-HERE and B-GOES-HERE and A-GOES-HERE</p></doc>");
  EXPECT_NE(out.find("<x/> and <y/> and <x/>"), std::string::npos);
}

TEST(Phase4Placeholders, ContentInsideInternalDataIsNotRewritten) {
  // The placeholder definition itself contains the token of another
  // placeholder; definitions are copied verbatim, not expanded.
  std::string out = RunPhase(
      Phase4PlaceholdersProgram(),
      "<doc>"
      "<INTERNAL-DATA><PLACEHOLDER name=\"A\">see B-GOES-HERE</PLACEHOLDER>"
      "<PLACEHOLDER name=\"B\"><y/></PLACEHOLDER></INTERNAL-DATA>"
      "<p>A-GOES-HERE</p></doc>");
  // The body expansion splices A's content verbatim.
  EXPECT_NE(out.find("<p>see B-GOES-HERE</p>"), std::string::npos);
}

TEST(Phase2Omissions, ListsUnvisitedNodesOfRequestedTypes) {
  const char* metamodel =
      "<awb-metamodel name=\"t\">"
      "<node-type name=\"A\"/><node-type name=\"B\" extends=\"A\"/>"
      "</awb-metamodel>";
  const char* model =
      "<awb-model metamodel=\"t\">"
      "<node id=\"N1\" type=\"A\"><property name=\"name\">one</property></node>"
      "<node id=\"N2\" type=\"B\"><property name=\"name\">two</property></node>"
      "<node id=\"N3\" type=\"A\"><property name=\"name\">three</property></node>"
      "</awb-model>";
  std::string out = RunPhase(
      Phase2OmissionsProgram(),
      "<doc>"
      "<INTERNAL-DATA><VISITED node-id=\"N1\"/></INTERNAL-DATA>"
      "<lll-omissions-marker types=\"A\"/></doc>",
      model, metamodel);
  // N1 visited; N2 (a B, subtype of A) and N3 unvisited.
  EXPECT_NE(out.find("<li>two (B)</li>"), std::string::npos);
  EXPECT_NE(out.find("<li>three (A)</li>"), std::string::npos);
  EXPECT_EQ(out.find("<li>one"), std::string::npos);
}

TEST(Phase2Omissions, NoTypesAttrMeansEverything) {
  const char* metamodel = "<awb-metamodel name=\"t\"><node-type name=\"A\"/>"
                          "</awb-metamodel>";
  const char* model =
      "<awb-model metamodel=\"t\">"
      "<node id=\"N1\" type=\"A\"><property name=\"name\">n1</property></node>"
      "</awb-model>";
  std::string out =
      RunPhase(Phase2OmissionsProgram(), "<doc><lll-omissions-marker/></doc>",
               model, metamodel);
  EXPECT_NE(out.find("<li>n1 (A)</li>"), std::string::npos);
}

TEST(PhasePrograms, AllCompileStandalone) {
  for (const std::string* program :
       {&Phase1InterpretProgram(), &Phase2OmissionsProgram(),
        &Phase3TocProgram(), &Phase4PlaceholdersProgram(),
        &Phase5StripProgram()}) {
    auto compiled = xq::Compile(*program);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  }
}

}  // namespace
}  // namespace lll::docgen
