// The document generation subsystem: both engines, directive by directive,
// plus the differential property that error-free templates generate
// deep-equal documents on both.

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "docgen/docgen.h"
#include "docgen/native_engine.h"
#include "docgen/xq_engine.h"
#include "gtest/gtest.h"
#include "xml/deep_equal.h"
#include "xml/serializer.h"

namespace lll::docgen {
namespace {

class DocgenTest : public ::testing::Test {
 protected:
  DocgenTest() : mm_(awb::MakeItArchitectureMetamodel()), model_(&mm_) {
    orion_ = model_.CreateNode("SystemBeingDesigned", "Orion");
    orion_->SetProperty("version", "1.0");
    alice_ = model_.CreateNode("User", "Alice");
    alice_->SetProperty("role", "architect");
    bob_ = model_.CreateNode("Superuser", "Bob");
    carol_ = model_.CreateNode("User", "Carol");
    doc1_ = model_.CreateNode("Document", "DesignDoc");
    doc1_->SetProperty("version", "2.1");
    doc1_->SetProperty("body", "<p>See TABLE-1-GOES-HERE for details.</p>");
    doc2_ = model_.CreateNode("Document", "Unversioned");
    srv_ = model_.CreateNode("Server", "srv-1");
    prog_ = model_.CreateNode("Program", "alpha");
    Must(model_.Connect("has", orion_, alice_));
    Must(model_.Connect("has", orion_, bob_));
    Must(model_.Connect("has", orion_, carol_));
    Must(model_.Connect("has", orion_, doc1_));
    Must(model_.Connect("uses", alice_, orion_));
    Must(model_.Connect("runs", srv_, prog_));
  }

  static void Must(const Result<awb::RelationObject*>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::string Native(const std::string& template_xml,
                     const GenerateOptions& options = {}) {
    auto result = GenerateNativeFromText(template_xml, model_, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->Serialized() : "<FAILED>";
  }

  std::string XQuery(const std::string& template_xml,
                     const GenerateOptions& options = {}) {
    auto result = GenerateXQueryFromText(template_xml, model_, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->Serialized() : "<FAILED>";
  }

  void ExpectBothEqual(const std::string& template_xml,
                       const GenerateOptions& options = {}) {
    auto native = GenerateNativeFromText(template_xml, model_, options);
    auto xquery = GenerateXQueryFromText(template_xml, model_, options);
    ASSERT_TRUE(native.ok()) << native.status().ToString();
    ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
    EXPECT_TRUE(xml::DeepEqual(native->root, xquery->root))
        << "native:  " << native->Serialized() << "\nxquery:  "
        << xquery->Serialized() << "\ndiff: "
        << xml::ExplainDifference(native->root, xquery->root);
  }

  awb::Metamodel mm_;
  awb::Model model_;
  awb::ModelNode* orion_;
  awb::ModelNode* alice_;
  awb::ModelNode* bob_;
  awb::ModelNode* carol_;
  awb::ModelNode* doc1_;
  awb::ModelNode* doc2_;
  awb::ModelNode* srv_;
  awb::ModelNode* prog_;
};

// --- Native engine, directive by directive ------------------------------

TEST_F(DocgenTest, PlainHtmlIsCopied) {
  EXPECT_EQ(Native("<html><body><p class=\"x\">hi</p></body></html>"),
            "<html><body><p class=\"x\">hi</p></body></html>");
}

TEST_F(DocgenTest, ThePaperExampleTemplate) {
  // The paper's running example: a numbered list of users, superusers bolded.
  const char* tpl = R"(<ol>
    <for nodes="from type:User; sort label">
      <li>
        <if>
          <test><focus-is-type type="Superuser"/></test>
          <then><b><label/></b></then>
          <else><label/></else>
        </if>
      </li>
    </for>
  </ol>)";
  EXPECT_EQ(Native(tpl),
            "<ol><li>Alice</li><li><b>Bob</b></li><li>Carol</li></ol>");
}

TEST_F(DocgenTest, ValueOfWithAndWithoutDefault) {
  EXPECT_EQ(Native("<p><for nodes=\"from type:SystemBeingDesigned\">"
                   "<value-of property=\"version\"/></for></p>"),
            "<p>1.0</p>");
  EXPECT_EQ(Native("<p><for nodes=\"from node:" + doc2_->id() + "\">"
                   "<value-of property=\"version\" default=\"draft\"/>"
                   "</for></p>"),
            "<p>draft</p>");
}

TEST_F(DocgenTest, MissingPropertyWithoutDefaultIsGenTrouble) {
  auto result = GenerateNativeFromText(
      "<p><for nodes=\"from node:" + doc2_->id() + "\">"
      "<value-of property=\"version\"/></for></p>",
      model_);
  ASSERT_FALSE(result.ok());
  // The GenTrouble payload: offending node, property, template location.
  std::string report = result.status().ToString();
  EXPECT_NE(report.find(doc2_->id()), std::string::npos);
  EXPECT_NE(report.find("version"), std::string::npos);
  EXPECT_NE(report.find("Unversioned"), std::string::npos);
  EXPECT_NE(report.find("while expanding <value-of"), std::string::npos);
}

TEST_F(DocgenTest, EmbeddedErrorPolicy) {
  GenerateOptions options;
  options.error_policy = GenerateOptions::ErrorPolicy::kEmbed;
  auto result = GenerateNativeFromText(
      "<p><for nodes=\"from node:" + doc2_->id() + "\">"
      "<value-of property=\"version\"/></for>after</p>",
      model_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.errors_embedded, 1u);
  std::string out = result->Serialized();
  EXPECT_NE(out.find("<error>"), std::string::npos);
  EXPECT_NE(out.find("after"), std::string::npos);  // generation continued
}

TEST_F(DocgenTest, SectionsAndTableOfContents) {
  const char* tpl =
      "<doc><table-of-contents/>"
      "<section heading=\"Intro\"><p>text</p>"
      "<section heading=\"Detail\"><p>more</p></section></section>"
      "<section heading=\"Close\"><p>bye</p></section></doc>";
  std::string out = Native(tpl);
  EXPECT_NE(out.find("<ul class=\"toc\">"), std::string::npos);
  EXPECT_NE(out.find("<li class=\"toc-depth-1\">Intro</li>"),
            std::string::npos);
  EXPECT_NE(out.find("<li class=\"toc-depth-2\">Detail</li>"),
            std::string::npos);
  EXPECT_NE(out.find("<h1>Intro</h1>"), std::string::npos);
  EXPECT_NE(out.find("<h2>Detail</h2>"), std::string::npos);
  // The ToC lists entries in document order: Intro, Detail, Close.
  size_t intro = out.find("toc-depth-1\">Intro");
  size_t detail = out.find("toc-depth-2\">Detail");
  size_t close = out.find("toc-depth-1\">Close");
  EXPECT_LT(intro, detail);
  EXPECT_LT(detail, close);
}

TEST_F(DocgenTest, SectionHeadingWithFocusLabel) {
  std::string out = Native(
      "<doc><for nodes=\"from type:User; sort label\">"
      "<section heading=\"About {label}\"><label/></section></for></doc>");
  EXPECT_NE(out.find("<h1>About Alice</h1>"), std::string::npos);
  EXPECT_NE(out.find("<h1>About Carol</h1>"), std::string::npos);
}

TEST_F(DocgenTest, TableOfOmissions) {
  // Visit only the users; documents and servers are omissions.
  auto result = GenerateNativeFromText(
      "<doc><for nodes=\"from type:User\"><label/></for>"
      "<table-of-omissions types=\"Document\"/></doc>",
      model_);
  ASSERT_TRUE(result.ok());
  std::string out = result->Serialized();
  EXPECT_NE(out.find("DesignDoc (Document)"), std::string::npos);
  EXPECT_NE(out.find("Unversioned (Document)"), std::string::npos);
  EXPECT_EQ(out.find("srv-1"), std::string::npos);  // not a Document
  EXPECT_EQ(out.find("Alice ("), std::string::npos);  // visited
  EXPECT_EQ(result->stats.omissions_listed, 2u);
}

TEST_F(DocgenTest, OmissionsWithoutTypesListsEverythingUnvisited) {
  auto result = GenerateNativeFromText(
      "<doc><for nodes=\"from all\"><label/></for>"
      "<table-of-omissions/></doc>",
      model_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.omissions_listed, 0u);  // everything was visited
}

TEST_F(DocgenTest, RelationTable) {
  const char* tpl =
      "<doc><table rows=\"from type:Server; sort label\" "
      "cols=\"from type:Program; sort label\" relation=\"runs\" "
      "corner=\"server\\program\"/></doc>";
  std::string out = Native(tpl);
  EXPECT_EQ(out,
            "<doc><table>"
            "<tr><td>server\\program</td><td>alpha</td></tr>"
            "<tr><td>srv-1</td><td>x</td></tr>"
            "</table></doc>");
}

TEST_F(DocgenTest, RichTextParsesHtmlProperty) {
  std::string out = Native("<doc><for nodes=\"from node:" + doc1_->id() +
                           "\"><rich-text property=\"body\"/></for></doc>");
  EXPECT_NE(out.find("<div class=\"rich-text\"><p>"), std::string::npos);
}

TEST_F(DocgenTest, RichTextFallsBackToTextOnBadMarkup) {
  doc1_->SetProperty("body", "broken < markup");
  std::string out = Native("<doc><for nodes=\"from node:" + doc1_->id() +
                           "\"><rich-text property=\"body\"/></for></doc>");
  EXPECT_NE(out.find("broken &lt; markup"), std::string::npos);
}

TEST_F(DocgenTest, PlaceholderReplacement) {
  // The TABLE-1-GOES-HERE scenario: the token sits inside a messy rich-text
  // blob; the placeholder content is spliced into the middle of the text.
  const char* tpl =
      "<doc>"
      "<placeholder name=\"TABLE-1\"><table rows=\"from type:Server\" "
      "cols=\"from type:Program\" relation=\"runs\"/></placeholder>"
      "<for nodes=\"from node:N5\"><rich-text property=\"body\"/></for>"
      "</doc>";
  auto result = GenerateNativeFromText(tpl, model_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string out = result->Serialized();
  EXPECT_EQ(out.find("TABLE-1-GOES-HERE"), std::string::npos);
  EXPECT_NE(out.find("<p>See <table>"), std::string::npos);
  EXPECT_NE(out.find("</table> for details.</p>"), std::string::npos);
  EXPECT_EQ(result->stats.placeholder_replacements, 1u);
}

TEST_F(DocgenTest, NestedForChangesFocus) {
  std::string out = Native(
      "<doc><for nodes=\"from type:SystemBeingDesigned\">"
      "<h1><label/></h1>"
      "<for nodes=\"from focus; follow has> to:Person; sort label\">"
      "<p><label/></p></for></for></doc>");
  EXPECT_EQ(out,
            "<doc><h1>Orion</h1><p>Alice</p><p>Bob</p><p>Carol</p></doc>");
}

TEST_F(DocgenTest, ConditionCombinators) {
  std::string out = Native(
      "<doc><for nodes=\"from type:User; sort label\">"
      "<if><test><and><focus-has-property name=\"role\"/>"
      "<focus-property-equals name=\"role\" value=\"architect\"/></and></test>"
      "<then><p><label/></p></then></if></for></doc>");
  EXPECT_EQ(out, "<doc><p>Alice</p></doc>");

  out = Native(
      "<doc><for nodes=\"from type:User; sort label\">"
      "<if><test><not><focus-has-property name=\"role\"/></not></test>"
      "<then><p><label/></p></then><else/></if></for></doc>");
  EXPECT_EQ(out, "<doc><p>Bob</p><p>Carol</p></doc>");
}

TEST_F(DocgenTest, NonemptyCondition) {
  std::string out = Native(
      "<doc><if><test><nonempty nodes=\"from type:SystemBeingDesigned\"/>"
      "</test><then>yes</then><else>no</else></if></doc>");
  EXPECT_EQ(out, "<doc>yes</doc>");
  out = Native(
      "<doc><if><test><nonempty nodes=\"from type:Requirement\"/></test>"
      "<then>yes</then><else>no</else></if></doc>");
  EXPECT_EQ(out, "<doc>no</doc>");
}

TEST_F(DocgenTest, StatsAreCollected) {
  auto result = GenerateNativeFromText(
      "<doc><table-of-contents/>"
      "<for nodes=\"from type:User\"><section heading=\"{label}\">"
      "<label/></section></for></doc>",
      model_);
  ASSERT_TRUE(result.ok());
  // `from type:User` is subtype-aware: Alice, Carol, and Bob (a Superuser).
  EXPECT_EQ(result->stats.nodes_visited, 3u);
  EXPECT_EQ(result->stats.toc_entries, 3u);
  EXPECT_EQ(result->stats.document_copies, 0u);  // patched in place
  EXPECT_GT(result->stats.directives_processed, 0u);
}

TEST_F(DocgenTest, MalformedTemplatesAreErrors) {
  EXPECT_FALSE(GenerateNativeFromText("<doc><if><then/></if></doc>", model_).ok());
  EXPECT_FALSE(GenerateNativeFromText("<doc><for>x</for></doc>", model_).ok());
  EXPECT_FALSE(
      GenerateNativeFromText("<doc><value-of/></doc>", model_).ok());
  EXPECT_FALSE(GenerateNativeFromText("<doc><label/></doc>", model_).ok());
  EXPECT_FALSE(GenerateNativeFromText(
                   "<doc><for nodes=\"from type:User\"><section>x</section>"
                   "</for></doc>",
                   model_)
                   .ok());
}

TEST_F(DocgenTest, InitialFocus) {
  GenerateOptions options;
  options.initial_focus_id = alice_->id();
  auto result = GenerateNativeFromText("<p><label/></p>", model_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Serialized(), "<p>Alice</p>");

  options.initial_focus_id = "N999";
  EXPECT_FALSE(GenerateNativeFromText("<p/>", model_, options).ok());
}

// --- The XQuery engine -----------------------------------------------------

TEST_F(DocgenTest, XQueryEngineRunsThePaperTemplate) {
  const char* tpl =
      "<ol><for nodes=\"from type:User; sort label\"><li>"
      "<if><test><focus-is-type type=\"Superuser\"/></test>"
      "<then><b><label/></b></then><else><label/></else></if>"
      "</li></for></ol>";
  EXPECT_EQ(XQuery(tpl),
            "<ol><li>Alice</li><li><b>Bob</b></li><li>Carol</li></ol>");
}

TEST_F(DocgenTest, XQueryEngineCountsPhaseCopies) {
  auto result = GenerateXQueryFromText("<doc><p>x</p></doc>", model_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Four copy phases: omissions, toc, placeholders, strip.
  EXPECT_EQ(result->stats.document_copies, 4u);
  EXPECT_GT(result->stats.eval_steps, 0u);
}

TEST_F(DocgenTest, XQueryEngineSkipsProvenDocumentOrderSorts) {
  // The phase programs are path-heavy (doc("...")//x chains from singleton
  // sources); the order analysis plus dynamic tracking must prove a healthy
  // share of their normalizing sorts unnecessary.
  auto result = GenerateXQueryFromText(
      "<doc><for nodes=\"from type:User; sort label\"><p><label/></p></for>"
      "<table-of-omissions/></doc>",
      model_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->stats.sorts_skipped, 0u);
}

TEST_F(DocgenTest, XQueryEngineEmbedsErrorsAsValues) {
  auto result = GenerateXQueryFromText(
      "<doc><for nodes=\"from node:" + doc2_->id() + "\">"
      "<value-of property=\"version\"/></for></doc>",
      model_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.errors_embedded, 1u);
  std::string out = result->Serialized();
  EXPECT_NE(out.find("<error>"), std::string::npos);
  EXPECT_NE(out.find("has no property 'version'"), std::string::npos);
}

TEST_F(DocgenTest, XQueryEngineInternalDataIsStripped) {
  std::string out = XQuery(
      "<doc><for nodes=\"from type:User\"><label/></for></doc>");
  EXPECT_EQ(out.find("INTERNAL-DATA"), std::string::npos);
  EXPECT_EQ(out.find("VISITED"), std::string::npos);
}

TEST_F(DocgenTest, XQuerySessionMatchesTheFreeFunctionAndInternsAcrossRuns) {
  const char* tpl =
      "<ol><for nodes=\"from type:User; sort label\"><li>"
      "<if><test><focus-is-type type=\"Superuser\"/></test>"
      "<then><b><label/></b></then><else><label/></else></if>"
      "</li></for></ol>";
  auto parsed = ParseTemplate(tpl);
  ASSERT_TRUE(parsed.ok());
  const xml::Node* root = (*parsed)->DocumentElement();

  auto session = XQuerySession::Create(model_);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto reference = GenerateXQueryFromText(tpl, model_);
  ASSERT_TRUE(reference.ok());

  auto gen1 = (*session)->Generate(root);
  ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();
  EXPECT_EQ(gen1->Serialized(), reference->Serialized());
  EXPECT_EQ((*session)->generations(), 1u);

  // Generation 2 reuses generation 1's interned model/metamodel chains: the
  // session cache reports cross-generation hits, and the output is
  // byte-identical.
  const uint64_t hits_after_1 = (*session)->nodeset_cache().hits();
  auto gen2 = (*session)->Generate(root);
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ(gen2->Serialized(), reference->Serialized());
  EXPECT_GT((*session)->nodeset_cache().hits(), hits_after_1);
  EXPECT_GT(gen2->stats.nodeset_cache_hits,
            gen1->stats.nodeset_cache_hits);

  // Scratch-document entries (template, intermediate phases) were purged at
  // the end of each generation: whatever the cache still holds belongs to
  // the pinned model/metamodel documents.
  EXPECT_GT((*session)->nodeset_cache().size(), 0u);
}

TEST_F(DocgenTest, XQuerySessionRegeneratesAfterPinnedModelEdit) {
  // The interactive loop: generate, edit the pinned model document, generate
  // again. The second run must see the edit (no stale cache served) while
  // untouched chains stay warm.
  const char* tpl =
      "<ol><for nodes=\"from type:User; sort label\"><li><label/></li>"
      "</for></ol>";
  auto parsed = ParseTemplate(tpl);
  ASSERT_TRUE(parsed.ok());
  const xml::Node* root = (*parsed)->DocumentElement();

  auto session = XQuerySession::Create(model_);
  ASSERT_TRUE(session.ok());
  auto gen1 = (*session)->Generate(root);
  ASSERT_TRUE(gen1.ok());
  EXPECT_EQ(gen1->Serialized(),
            "<ol><li>Alice</li><li>Bob</li><li>Carol</li></ol>");

  // Rename Carol IN THE PINNED XML DOCUMENT (the session queries the XML,
  // not the live Model object).
  xml::Document* model_doc = (*session)->model_document();
  bool renamed = false;
  for (xml::Node* prop :
       model_doc->DocumentElement()->DescendantElements("property")) {
    auto pname = prop->AttributeValue("name");
    if (pname.has_value() && *pname == "name" &&
        prop->StringValue() == "Carol") {
      prop->children().front()->set_value("Dave");
      renamed = true;
    }
  }
  ASSERT_TRUE(renamed);

  auto gen2 = (*session)->Generate(root);
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ(gen2->Serialized(),
            "<ol><li>Alice</li><li>Bob</li><li>Dave</li></ol>");
}

// --- Differential: both engines agree on error-free templates --------------

TEST_F(DocgenTest, DifferentialSimple) {
  ExpectBothEqual("<html><body><p>hi</p></body></html>");
}

TEST_F(DocgenTest, DifferentialForIfLabel) {
  ExpectBothEqual(
      "<ol><for nodes=\"from type:User; sort label\"><li>"
      "<if><test><focus-is-type type=\"Superuser\"/></test>"
      "<then><b><label/></b></then><else><label/></else></if>"
      "</li></for></ol>");
}

TEST_F(DocgenTest, DifferentialSectionsAndToc) {
  ExpectBothEqual(
      "<doc><table-of-contents/>"
      "<section heading=\"Intro\"><p>text</p>"
      "<section heading=\"Deep\"><p>deeper</p></section></section>"
      "<for nodes=\"from type:User; sort label\">"
      "<section heading=\"About {label}\"><label/></section></for></doc>");
}

TEST_F(DocgenTest, DifferentialOmissions) {
  ExpectBothEqual(
      "<doc><for nodes=\"from type:User; sort label\"><label/></for>"
      "<table-of-omissions types=\"Document, Server\"/></doc>");
}

TEST_F(DocgenTest, DifferentialTable) {
  ExpectBothEqual(
      "<doc><table rows=\"from type:Server; sort label\" "
      "cols=\"from type:Program; sort label\" relation=\"runs\"/></doc>");
}

TEST_F(DocgenTest, DifferentialRichTextAndPlaceholder) {
  ExpectBothEqual(
      "<doc><placeholder name=\"TABLE-1\"><b>the table</b></placeholder>"
      "<for nodes=\"from node:N5\"><rich-text property=\"body\"/></for>"
      "</doc>");
}

TEST_F(DocgenTest, DifferentialValueOfAndConditions) {
  ExpectBothEqual(
      "<doc><for nodes=\"from type:User; sort label\">"
      "<p><label/>: <value-of property=\"role\" default=\"none\"/></p>"
      "<if><test><or><focus-property-equals name=\"role\" value=\"architect\"/>"
      "<focus-is-type type=\"Superuser\"/></or></test>"
      "<then><em>special</em></then></if>"
      "</for></doc>");
}

TEST_F(DocgenTest, DifferentialNestedForWithFocusQueries) {
  ExpectBothEqual(
      "<doc><for nodes=\"from type:SystemBeingDesigned\">"
      "<h1><label/></h1>"
      "<for nodes=\"from focus; follow has> to:Person; sort label\">"
      "<p><label/></p></for></for></doc>");
}

TEST_F(DocgenTest, DifferentialInitialFocus) {
  GenerateOptions options;
  options.initial_focus_id = alice_->id();
  ExpectBothEqual("<p><label/> has role <value-of property=\"role\"/></p>",
                  options);
}

TEST_F(DocgenTest, FocusQueriesAreNotFromAllQueries) {
  // Regression: template normalization once dropped the `from focus` source
  // (emitting `from all`), which the single-system fixture masked. Two
  // systems with disjoint user sets make the difference observable.
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::Model model(&mm);
  auto* sys1 = model.CreateNode("System", "Sys1");
  auto* sys2 = model.CreateNode("System", "Sys2");
  auto* u1 = model.CreateNode("User", "OnlyInOne");
  auto* u2 = model.CreateNode("User", "OnlyInTwo");
  ASSERT_TRUE(model.Connect("has", sys1, u1).ok());
  ASSERT_TRUE(model.Connect("has", sys2, u2).ok());
  const char* tpl =
      "<doc><for nodes=\"from type:System; sort label\">"
      "<sys><name><label/></name>"
      "<for nodes=\"from focus; follow has> to:User; sort label\">"
      "<u><label/></u></for></sys></for></doc>";
  auto native = GenerateNativeFromText(tpl, model);
  auto xquery = GenerateXQueryFromText(tpl, model);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
  const char* expected =
      "<doc><sys><name>Sys1</name><u>OnlyInOne</u></sys>"
      "<sys><name>Sys2</name><u>OnlyInTwo</u></sys></doc>";
  EXPECT_EQ(native->Serialized(), expected);
  EXPECT_EQ(xquery->Serialized(), expected);
}

TEST_F(DocgenTest, DifferentialOnGeneratedModel) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = 99;
  config.users = 5;
  config.documents = 3;
  awb::Model model = awb::GenerateItModel(&mm, config);
  const char* tpl =
      "<html><body><table-of-contents/>"
      "<section heading=\"Users\">"
      "<for nodes=\"from type:User; sort label\"><p><label/> ("
      "<value-of property=\"role\" default=\"?\"/>)</p></for></section>"
      "<section heading=\"Documents\">"
      "<for nodes=\"from type:Document; sort label\"><p><label/>: v"
      "<value-of property=\"version\" default=\"none\"/></p></for></section>"
      "<section heading=\"Omissions\"><table-of-omissions/></section>"
      "</body></html>";
  auto native = GenerateNativeFromText(tpl, model);
  auto xquery = GenerateXQueryFromText(tpl, model);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
  EXPECT_TRUE(xml::DeepEqual(native->root, xquery->root))
      << xml::ExplainDifference(native->root, xquery->root);
  EXPECT_EQ(native->stats.nodes_visited, xquery->stats.nodes_visited);
  EXPECT_EQ(native->stats.toc_entries, xquery->stats.toc_entries);
  EXPECT_EQ(native->stats.omissions_listed, xquery->stats.omissions_listed);
}

}  // namespace
}  // namespace lll::docgen
