// The AWB query calculus: parser, native evaluator, XQuery backend, and the
// differential property that both backends agree on every query.

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awbql/native.h"
#include "awbql/query.h"
#include "awbql/xquery_backend.h"
#include "gtest/gtest.h"
#include "xml/parser.h"

namespace lll::awbql {
namespace {

using awb::Metamodel;
using awb::Model;
using awb::ModelNode;

class AwbqlTest : public ::testing::Test {
 protected:
  AwbqlTest() : mm_(awb::MakeItArchitectureMetamodel()), model_(&mm_) {
    // A tiny model with known answers:
    //   alice likes bob, alice favors carol, bob likes carol
    //   alice uses orion (the SBD); carol uses prog1 (advisory violation)
    //   orion has prog-sub; prog-sub has prog1, prog2
    orion_ = model_.CreateNode("SystemBeingDesigned", "Orion");
    orion_->SetProperty("version", "1.0");
    alice_ = model_.CreateNode("User", "Alice");
    bob_ = model_.CreateNode("User", "Bob");
    carol_ = model_.CreateNode("Superuser", "Carol");
    sub_ = model_.CreateNode("Subsystem", "core");
    prog1_ = model_.CreateNode("Program", "alpha");
    prog2_ = model_.CreateNode("Program", "beta");
    Must(model_.Connect("likes", alice_, bob_));
    Must(model_.Connect("favors", alice_, carol_));
    Must(model_.Connect("likes", bob_, carol_));
    Must(model_.Connect("uses", alice_, orion_));
    Must(model_.Connect("uses", carol_, prog1_));
    Must(model_.Connect("has", orion_, sub_));
    Must(model_.Connect("has", sub_, prog1_));
    Must(model_.Connect("has", sub_, prog2_));
  }

  static void Must(const Result<awb::RelationObject*>& r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::vector<std::string> Labels(
      const std::vector<const ModelNode*>& nodes) const {
    std::vector<std::string> out;
    for (const ModelNode* n : nodes) out.push_back(model_.Label(n));
    return out;
  }

  std::vector<std::string> RunNative(const std::string& text) {
    auto query = ParseQuery(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto result = EvalNative(*query, model_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return Labels(result.ok() ? *result : std::vector<const ModelNode*>{});
  }

  Metamodel mm_;
  Model model_;
  ModelNode* orion_;
  ModelNode* alice_;
  ModelNode* bob_;
  ModelNode* carol_;
  ModelNode* sub_;
  ModelNode* prog1_;
  ModelNode* prog2_;
};

TEST_F(AwbqlTest, NativeMemoKeysFocusAndNoFocusDistinctly) {
  // The memo key encodes "no focus" with a marker byte distinct from any
  // focus id, so an unfocused evaluation can never share an entry with a
  // focused one (not even a hypothetical focus whose id is empty).
  NativeQueryMemo memo;
  auto query = ParseQuery("from type:User\nsort label\n");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto unfocused = EvalNativeCached(*query, model_, &memo, nullptr);
  ASSERT_TRUE(unfocused.ok());
  EXPECT_EQ(memo.misses(), 1u);

  auto focused = EvalNativeCached(*query, model_, &memo, alice_);
  ASSERT_TRUE(focused.ok());
  EXPECT_EQ(memo.misses(), 2u);
  EXPECT_EQ(memo.hits(), 0u);
  EXPECT_EQ(Labels(*focused), Labels(*unfocused));

  // Repeats hit their own entries.
  EXPECT_TRUE(EvalNativeCached(*query, model_, &memo, nullptr).ok());
  EXPECT_TRUE(EvalNativeCached(*query, model_, &memo, alice_).ok());
  EXPECT_EQ(memo.hits(), 2u);
  EXPECT_EQ(memo.size(), 2u);
}

TEST_F(AwbqlTest, ParserRoundTrip) {
  const char* text =
      "from type:User\n"
      "follow likes>\n"
      "follow uses> to:Program\n"
      "filter has:version\n"
      "sort label\n"
      "limit 5\n";
  auto query = ParseQuery(text);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(QueryToText(*query), text);
  auto again = ParseQuery(QueryToText(*query));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(QueryToText(*again), text);
}

TEST_F(AwbqlTest, FocusSourceRoundTripsAndEvaluates) {
  auto query = ParseQuery("from focus\nfollow likes>\nsort label\n");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(QueryToText(*query), "from focus\nfollow likes>\nsort label\n");
  // XML form round trip.
  auto doc = xml::Parse(
      "<query><from focus=\"true\"/><follow relation=\"likes\" "
      "direction=\"forward\"/><sort by=\"label\"/></query>");
  ASSERT_TRUE(doc.ok());
  auto from_xml = ParseQueryXml((*doc)->DocumentElement());
  ASSERT_TRUE(from_xml.ok());
  EXPECT_EQ(QueryToText(*from_xml), QueryToText(*query));
  // Native eval needs a focus...
  EXPECT_FALSE(EvalNative(*query, model_).ok());
  auto with_focus = EvalNative(*query, model_, alice_);
  ASSERT_TRUE(with_focus.ok());
  EXPECT_EQ(Labels(*with_focus), std::vector<std::string>({"Bob", "Carol"}));
  // ...and so does the XQuery backend.
  XQueryBackend backend(&model_);
  EXPECT_FALSE(backend.Eval(*query).ok());
  auto xq_with_focus = backend.Eval(*query, alice_);
  ASSERT_TRUE(xq_with_focus.ok()) << xq_with_focus.status().ToString();
  EXPECT_EQ(Labels(*xq_with_focus),
            std::vector<std::string>({"Bob", "Carol"}));
}

TEST_F(AwbqlTest, ParserErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("follow likes>\n").ok());  // no from
  EXPECT_FALSE(ParseQuery("from all\nfollow likes\n").ok());  // no direction
  EXPECT_FALSE(ParseQuery("from all\nfrobnicate\n").ok());
  EXPECT_FALSE(ParseQuery("from bogus:x\n").ok());
  EXPECT_FALSE(ParseQuery("from all\nlimit many\n").ok());
  EXPECT_FALSE(ParseQuery("from all\nfilter nope:x\n").ok());
}

TEST_F(AwbqlTest, XmlFormMatchesTextForm) {
  auto doc = xml::Parse(
      "<query>"
      "<from type=\"User\"/>"
      "<follow relation=\"likes\" direction=\"forward\"/>"
      "<sort by=\"label\"/>"
      "</query>");
  ASSERT_TRUE(doc.ok());
  auto from_xml = ParseQueryXml((*doc)->DocumentElement());
  ASSERT_TRUE(from_xml.ok()) << from_xml.status().ToString();
  auto from_text = ParseQuery("from type:User\nfollow likes>\nsort label\n");
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(QueryToText(*from_xml), QueryToText(*from_text));
}

TEST_F(AwbqlTest, ThePaperQuery) {
  // "Start at this user; follow the relation likes forwards; follow the
  // relation uses but only to computer programs from there; collect the
  // results, sorted by label."
  auto labels = RunNative("from node:" + alice_->id() +
                          "\nfollow likes>\nfollow uses> to:Program\n"
                          "sort label\n");
  // alice likes/favors {bob, carol}; carol uses prog1 (alpha); bob uses
  // nothing. Orion is not a Program, so alice's own uses-edge is irrelevant.
  EXPECT_EQ(labels, std::vector<std::string>({"alpha"}));
}

TEST_F(AwbqlTest, SubtypeSemanticsInFollow) {
  // favors counts as likes.
  auto labels = RunNative("from node:" + alice_->id() + "\nfollow likes>\nsort label\n");
  EXPECT_EQ(labels, std::vector<std::string>({"Bob", "Carol"}));
  // but likes does not count as favors.
  labels = RunNative("from node:" + alice_->id() + "\nfollow favors>\n");
  EXPECT_EQ(labels, std::vector<std::string>({"Carol"}));
}

TEST_F(AwbqlTest, BackwardFollow) {
  auto labels =
      RunNative("from node:" + carol_->id() + "\nfollow <likes\nsort label\n");
  EXPECT_EQ(labels, std::vector<std::string>({"Alice", "Bob"}));
}

TEST_F(AwbqlTest, TransitiveHasChain) {
  auto labels = RunNative("from type:SystemBeingDesigned\nfollow has>\n"
                          "follow has>\nsort label\n");
  EXPECT_EQ(labels, std::vector<std::string>({"alpha", "beta"}));
}

TEST_F(AwbqlTest, FiltersAndLimit) {
  EXPECT_EQ(RunNative("from type:Person\nfilter type:Superuser\n"),
            std::vector<std::string>({"Carol"}));
  EXPECT_EQ(RunNative("from type:System\nfilter has:version\n"),
            std::vector<std::string>({"Orion"}));
  EXPECT_EQ(RunNative("from type:System\nfilter missing:version\n"),
            std::vector<std::string>({}));
  EXPECT_EQ(RunNative("from type:User\nfilter prop:name=Bob\n"),
            std::vector<std::string>({"Bob"}));
  EXPECT_EQ(RunNative("from type:User\nsort label\nlimit 2\n"),
            std::vector<std::string>({"Alice", "Bob"}));
}

TEST_F(AwbqlTest, DedupCollectsIntoASet) {
  // bob and alice both reach carol via likes: one carol in the result.
  auto labels = RunNative("from type:User\nfollow likes>\nsort label\n");
  EXPECT_EQ(labels, std::vector<std::string>({"Bob", "Carol"}));
}

TEST_F(AwbqlTest, UnknownStartNodeIsAnError) {
  auto query = ParseQuery("from node:N999\n");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(EvalNative(*query, model_).ok());
}

TEST_F(AwbqlTest, XQueryBackendAgreesOnFixedQueries) {
  XQueryBackend backend(&model_);
  for (const char* text : {
           "from all\n",
           "from type:User\nsort label\n",
           "from type:Person\nfilter type:Superuser\n",
           "from type:SystemBeingDesigned\nfollow has>\nfollow has>\nsort label\n",
           "from type:User\nfollow likes>\nsort label\n",
           "from type:User\nfollow likes>\nfollow uses> to:Program\n",
           "from type:System\nfilter has:version\n",
           "from all\nfilter missing:version\nsort label\nlimit 3\n",
           "from type:User\nsort prop:name\n",
       }) {
    auto query = ParseQuery(text);
    ASSERT_TRUE(query.ok()) << text;
    auto native = EvalNative(*query, model_);
    ASSERT_TRUE(native.ok()) << text << ": " << native.status().ToString();
    auto via_xquery = backend.Eval(*query);
    ASSERT_TRUE(via_xquery.ok())
        << text << ": " << via_xquery.status().ToString();
    EXPECT_EQ(Labels(*native), Labels(*via_xquery)) << "query: " << text;
  }
}

TEST_F(AwbqlTest, CompiledProgramLooksLikeXQuery) {
  XQueryBackend backend(&model_);
  auto query = ParseQuery("from type:User\nfollow likes>\nsort label\n");
  ASSERT_TRUE(query.ok());
  std::string program = backend.CompileToXQuery(*query);
  EXPECT_NE(program.find("declare function local:is-node-subtype"),
            std::string::npos);
  EXPECT_NE(program.find("doc(\"model\")"), std::string::npos);
  EXPECT_NE(program.find("order by local:label($n)"), std::string::npos);
}

TEST(AwbqlDifferential, BackendsAgreeOnGeneratedModels) {
  // Property test: on synthetic models of varying size/seed, the two
  // backends agree on a family of queries.
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  for (uint64_t seed : {1u, 2u, 3u}) {
    awb::GeneratorConfig config;
    config.seed = seed;
    config.users = 6;
    config.programs = 8;
    config.documents = 4;
    awb::Model model = awb::GenerateItModel(&mm, config);
    XQueryBackend backend(&model);
    for (const char* text : {
             "from type:User\nfollow likes>\nsort label\n",
             "from type:Document\nfilter missing:version\nsort label\n",
             "from type:SystemBeingDesigned\nfollow has>\nfilter type:Program\n",
             "from type:Server\nfollow runs>\nsort label\n",
             "from type:Person\nfollow uses> to:Program\nsort label\n",
         }) {
      auto query = ParseQuery(text);
      ASSERT_TRUE(query.ok());
      auto native = EvalNative(*query, model);
      auto xquery = backend.Eval(*query);
      ASSERT_TRUE(native.ok()) << text;
      ASSERT_TRUE(xquery.ok()) << text << ": " << xquery.status().ToString();
      std::vector<std::string> native_ids, xquery_ids;
      for (auto* n : *native) native_ids.push_back(n->id());
      for (auto* n : *xquery) xquery_ids.push_back(n->id());
      EXPECT_EQ(native_ids, xquery_ids) << "seed " << seed << " query " << text;
    }
  }
}

TEST(AwbqlOmissions, ReportsMissingVersions) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::Model model(&mm);
  model.CreateNode("SystemBeingDesigned", "Orion")->SetProperty("version", "1");
  model.CreateNode("Document", "good")->SetProperty("version", "2");
  model.CreateNode("Document", "bad");
  auto report = OmissionsReport(model);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0], "bad: missing version");
}

TEST(AwbqlOmissions, ReportsCardinalityProblems) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::Model model(&mm);
  model.CreateNode("User", "lonely");
  auto report = OmissionsReport(model);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_NE(report[0].find("SystemBeingDesigned"), std::string::npos);
}

}  // namespace
}  // namespace lll::awbql
