// Unit tests for the XML infoset, parser, serializer, and deep-equal.

#include "gtest/gtest.h"
#include "xml/deep_equal.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace lll::xml {
namespace {

std::unique_ptr<Document> MustParse(const std::string& text,
                                    const ParseOptions& opts = {}) {
  auto doc = Parse(text, opts);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? std::move(*doc) : nullptr;
}

TEST(XmlTree, BuildAndNavigate) {
  Document doc;
  Node* root = doc.CreateElement("library");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());
  Node* book = doc.CreateElement("book");
  book->SetAttribute("year", "1983");
  ASSERT_TRUE(root->AppendChild(book).ok());
  ASSERT_TRUE(book->AppendChild(doc.CreateText("Tides")).ok());

  EXPECT_EQ(doc.DocumentElement(), root);
  EXPECT_EQ(root->FirstChildElement("book"), book);
  EXPECT_EQ(*book->AttributeValue("year"), "1983");
  EXPECT_EQ(book->StringValue(), "Tides");
  EXPECT_EQ(book->parent(), root);
}

TEST(XmlTree, MutationInsertRemoveReplace) {
  Document doc;
  Node* root = doc.CreateElement("r");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());
  Node* a = doc.CreateElement("a");
  Node* b = doc.CreateElement("b");
  Node* c = doc.CreateElement("c");
  ASSERT_TRUE(root->AppendChild(a).ok());
  ASSERT_TRUE(root->AppendChild(c).ok());
  ASSERT_TRUE(root->InsertChildAt(1, b).ok());
  EXPECT_EQ(Serialize(root), "<r><a/><b/><c/></r>");

  ASSERT_TRUE(root->RemoveChild(b).ok());
  EXPECT_EQ(Serialize(root), "<r><a/><c/></r>");
  EXPECT_EQ(b->parent(), nullptr);

  // Replace c by (b, new text) -- the "rip the node apart" operation the
  // paper wanted for TABLE-1-GOES-HERE.
  Node* t = doc.CreateText("x");
  ASSERT_TRUE(root->ReplaceChild(c, {b, t}).ok());
  EXPECT_EQ(Serialize(root), "<r><a/><b/>x</r>");
}

TEST(XmlTree, MutationErrors) {
  Document doc1, doc2;
  Node* r1 = doc1.CreateElement("r");
  ASSERT_TRUE(doc1.root()->AppendChild(r1).ok());
  Node* alien = doc2.CreateElement("alien");
  EXPECT_FALSE(r1->AppendChild(alien).ok());  // cross-document
  Node* a = doc1.CreateElement("a");
  ASSERT_TRUE(r1->AppendChild(a).ok());
  EXPECT_FALSE(r1->AppendChild(a).ok());      // already parented
  EXPECT_FALSE(a->AppendChild(r1).ok());      // cycle
  Node* text = doc1.CreateText("t");
  EXPECT_FALSE(text->AppendChild(doc1.CreateElement("x")).ok());
  EXPECT_FALSE(r1->InsertChildAt(99, doc1.CreateElement("y")).ok());
  EXPECT_FALSE(r1->RemoveChild(doc1.CreateElement("z")).ok());
}

TEST(XmlTree, AttributeNodes) {
  Document doc;
  Node* el = doc.CreateElement("e");
  Node* attr = doc.CreateAttribute("a", "1");
  ASSERT_TRUE(el->SetAttributeNode(attr).ok());
  EXPECT_EQ(attr->parent(), el);
  // keep_first: a second attribute of the same name is dropped.
  Node* dup = doc.CreateAttribute("a", "2");
  ASSERT_TRUE(el->SetAttributeNode(dup, /*keep_first=*/true).ok());
  EXPECT_EQ(*el->AttributeValue("a"), "1");
  // keep_first=false overwrites the value.
  Node* dup2 = doc.CreateAttribute("a", "3");
  ASSERT_TRUE(el->SetAttributeNode(dup2, /*keep_first=*/false).ok());
  EXPECT_EQ(*el->AttributeValue("a"), "3");
  EXPECT_TRUE(el->RemoveAttribute("a"));
  EXPECT_FALSE(el->RemoveAttribute("a"));
}

TEST(XmlTree, ImportNodeDeepCopies) {
  Document src;
  Node* tree = src.CreateElement("a");
  tree->SetAttribute("k", "v");
  ASSERT_TRUE(tree->AppendChild(src.CreateText("hi")).ok());

  Document dst;
  Node* copy = dst.ImportNode(tree);
  EXPECT_EQ(copy->document(), &dst);
  EXPECT_TRUE(DeepEqual(tree, copy));
  // Mutating the copy does not affect the source.
  copy->SetAttribute("k", "other");
  EXPECT_EQ(*tree->AttributeValue("k"), "v");
}

TEST(XmlParser, BasicDocument) {
  auto doc = MustParse("<a x='1'><b>text</b><c/></a>");
  Node* a = doc->DocumentElement();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "a");
  EXPECT_EQ(*a->AttributeValue("x"), "1");
  EXPECT_EQ(a->children().size(), 2u);
  EXPECT_EQ(a->FirstChildElement("b")->StringValue(), "text");
}

TEST(XmlParser, DeclarationDoctypeCommentsPis) {
  auto doc = MustParse(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a [<!ENTITY junk \"j\">]>\n"
      "<!-- leading -->\n"
      "<a><?target some data?><!-- inner --></a>");
  Node* a = doc->DocumentElement();
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->children().size(), 2u);
  EXPECT_EQ(a->children()[0]->kind(), NodeKind::kProcessingInstruction);
  EXPECT_EQ(a->children()[0]->name(), "target");
  EXPECT_EQ(a->children()[0]->value(), "some data");
  EXPECT_EQ(a->children()[1]->kind(), NodeKind::kComment);
}

TEST(XmlParser, EntitiesAndCharRefs) {
  auto doc = MustParse("<a t=\"&lt;&amp;&quot;\">&lt;x&gt; &#65;&#x42;</a>");
  Node* a = doc->DocumentElement();
  EXPECT_EQ(*a->AttributeValue("t"), "<&\"");
  EXPECT_EQ(a->StringValue(), "<x> AB");
}

TEST(XmlParser, Utf8CharRefs) {
  auto doc = MustParse("<a>&#233;&#x4E2D;</a>");  // é, 中
  EXPECT_EQ(doc->DocumentElement()->StringValue(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(XmlParser, Cdata) {
  auto doc = MustParse("<a><![CDATA[<raw> & ]]]></a>");
  EXPECT_EQ(doc->DocumentElement()->StringValue(), "<raw> & ]");
}

TEST(XmlParser, WhitespaceStripping) {
  ParseOptions opts;
  opts.strip_insignificant_whitespace = true;
  auto doc = MustParse("<a>\n  <b> x </b>\n</a>", opts);
  // The whitespace-only text between <a> and <b> is gone; the text inside
  // <b> is preserved verbatim.
  EXPECT_EQ(doc->DocumentElement()->children().size(), 1u);
  EXPECT_EQ(doc->DocumentElement()->FirstChildElement("b")->StringValue(),
            " x ");
}

struct BadXml {
  const char* label;
  const char* text;
  const char* expect_in_message;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadXml> {};

TEST_P(XmlParserErrorTest, RejectsWithLocatedMessage) {
  auto result = Parse(GetParam().text);
  ASSERT_FALSE(result.ok()) << GetParam().label;
  EXPECT_NE(result.status().message().find(GetParam().expect_in_message),
            std::string::npos)
      << GetParam().label << ": " << result.status().message();
  // Every parse error carries a position.
  EXPECT_NE(result.status().message().find("line"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadXml{"mismatched", "<a><b></a></b>", "mismatched end tag"},
        BadXml{"unterminated", "<a><b>", "missing end tag"},
        BadXml{"bad_entity", "<a>&nope;</a>", "unknown entity"},
        BadXml{"dup_attr", "<a x='1' x='2'/>", "duplicate attribute"},
        BadXml{"attr_lt", "<a x='<'/>", "'<' not allowed"},
        BadXml{"no_root", "   ", "no root element"},
        BadXml{"trailing", "<a/><b/>", "unexpected content"},
        BadXml{"unquoted_attr", "<a x=1/>", "quoted attribute"}),
    [](const ::testing::TestParamInfo<BadXml>& info) {
      return std::string(info.param.label);
    });

TEST(XmlSerializer, Escaping) {
  Document doc;
  Node* el = doc.CreateElement("e");
  el->SetAttribute("a", "1 < 2 & \"q\"");
  ASSERT_TRUE(el->AppendChild(doc.CreateText("a < b & c > d")).ok());
  EXPECT_EQ(Serialize(el),
            "<e a=\"1 &lt; 2 &amp; &quot;q&quot;\">"
            "a &lt; b &amp; c &gt; d</e>");
}

TEST(XmlSerializer, PrettyPrinting) {
  auto doc = MustParse("<a><b><c/></b></a>");
  SerializeOptions opts;
  opts.indent = 2;
  EXPECT_EQ(Serialize(doc->DocumentElement(), opts),
            "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
}

TEST(XmlSerializer, HtmlMode) {
  auto doc = MustParse("<body><p>a<br/>b</p><div/><img src=\"x\"/></body>");
  SerializeOptions opts;
  opts.html = true;
  EXPECT_EQ(Serialize(doc->DocumentElement(), opts),
            "<body><p>a<br>b</p><div></div><img src=\"x\"></body>");
  // Default XML mode keeps self-closing.
  EXPECT_EQ(Serialize(doc->DocumentElement()),
            "<body><p>a<br/>b</p><div/><img src=\"x\"/></body>");
}

TEST(XmlSerializer, VoidElementTable) {
  EXPECT_TRUE(IsHtmlVoidElement("br"));
  EXPECT_TRUE(IsHtmlVoidElement("BR"));
  EXPECT_TRUE(IsHtmlVoidElement("Img"));
  EXPECT_FALSE(IsHtmlVoidElement("div"));
  EXPECT_FALSE(IsHtmlVoidElement("table"));
}

TEST(XmlSerializer, RoundTripPreservesStructure) {
  const char* text =
      "<model><node id=\"n1\" type=\"Person\"><prop name=\"firstName\">"
      "Ada</prop></node><rel from=\"n1\" to=\"n2\"/></model>";
  auto doc = MustParse(text);
  std::string serialized = Serialize(doc->DocumentElement());
  auto doc2 = MustParse(serialized);
  EXPECT_TRUE(
      DeepEqual(doc->DocumentElement(), doc2->DocumentElement()))
      << ExplainDifference(doc->DocumentElement(), doc2->DocumentElement());
}

TEST(XmlDeepEqual, DetectsDifferences) {
  auto a = MustParse("<a x=\"1\"><b>t</b></a>");
  auto b = MustParse("<a x=\"2\"><b>t</b></a>");
  auto c = MustParse("<a x=\"1\"><b>u</b></a>");
  auto d = MustParse("<a x=\"1\"><b>t</b><c/></a>");
  EXPECT_FALSE(DeepEqual(a->DocumentElement(), b->DocumentElement()));
  EXPECT_FALSE(DeepEqual(a->DocumentElement(), c->DocumentElement()));
  EXPECT_FALSE(DeepEqual(a->DocumentElement(), d->DocumentElement()));
  EXPECT_TRUE(DeepEqual(a->DocumentElement(), a->DocumentElement()));
  EXPECT_NE(ExplainDifference(a->DocumentElement(), b->DocumentElement()),
            "(equal)");
}

TEST(XmlDeepEqual, AttributeOrderIgnored) {
  auto a = MustParse("<a x=\"1\" y=\"2\"/>");
  auto b = MustParse("<a y=\"2\" x=\"1\"/>");
  EXPECT_TRUE(DeepEqual(a->DocumentElement(), b->DocumentElement()));
}

TEST(XmlDeepEqual, CommentsIgnoredByDefault) {
  auto a = MustParse("<a><!--note--><b/></a>");
  auto b = MustParse("<a><b/></a>");
  EXPECT_TRUE(DeepEqual(a->DocumentElement(), b->DocumentElement()));
  DeepEqualOptions strict;
  strict.ignore_comments_and_pis = false;
  EXPECT_FALSE(DeepEqual(a->DocumentElement(), b->DocumentElement(), strict));
}

TEST(XmlDocumentOrder, OrderAndAttributes) {
  auto doc = MustParse("<a x=\"1\"><b/><c><d/></c></a>");
  Node* a = doc->DocumentElement();
  Node* b = a->children()[0];
  Node* c = a->children()[1];
  Node* d = c->children()[0];
  Node* x = a->attributes()[0];
  EXPECT_LT(CompareDocumentOrder(a, b), 0);
  EXPECT_LT(CompareDocumentOrder(b, c), 0);
  EXPECT_LT(CompareDocumentOrder(c, d), 0);
  EXPECT_LT(CompareDocumentOrder(b, d), 0);
  EXPECT_GT(CompareDocumentOrder(d, b), 0);
  EXPECT_EQ(CompareDocumentOrder(c, c), 0);
  // Attributes come after their element, before its children.
  EXPECT_LT(CompareDocumentOrder(a, x), 0);
  EXPECT_LT(CompareDocumentOrder(x, b), 0);
}

TEST(XmlParser, ParseFileMissing) {
  auto result = ParseFile("/nonexistent/path.xml");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(XmlClone, DeepCopiesRootedTreeOnly) {
  const std::string source_xml =
      "<r a=\"1\"><x>text<!--c--><y k=\"v\"/></x><z/></r>";
  auto doc = Parse(source_xml);
  ASSERT_TRUE(doc.ok());
  // Detached construction debris must not be carried into the clone.
  (*doc)->CreateElement("orphan");

  std::unique_ptr<Document> clone = CloneDocument(**doc);
  ASSERT_EQ(clone->root()->children().size(), 1u);
  EXPECT_TRUE(DeepEqual((*doc)->root()->children().front(),
                        clone->root()->children().front()));
  EXPECT_EQ(Serialize(clone->root()->children().front()), source_xml);

  // The copy is independent: mutating it leaves the source untouched, and
  // both documents build their own order indexes over their own nodes.
  clone->root()->children().front()->SetAttribute("a", "2");
  EXPECT_EQ(Serialize((*doc)->root()->children().front()), source_xml);
  clone->EnsureOrderIndex();
  const Node* x = clone->root()->children().front()->children().front();
  const Node* z = clone->root()->children().front()->children().back();
  EXPECT_LT(CompareDocumentOrder(x, z), 0);
}

}  // namespace
}  // namespace lll::xml
