// Robustness and failure injection: malformed inputs must produce located
// errors, never crashes; resource limits must trip cleanly; deep inputs must
// not smash the stack.

#include <string>

#include "core/rng.h"
#include "docgen/native_engine.h"
#include "docgen/xq_engine.h"
#include "awb/builtin_metamodels.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll {
namespace {

TEST(Robustness, EvaluationStepBudget) {
  xq::ExecuteOptions opts;
  opts.eval.max_steps = 1000;
  auto result = xq::Run("count(for $i in 1 to 100000 return $i * 2)", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("budget"), std::string::npos);

  // The same budget is plenty for a small query.
  auto small = xq::Run("1 + 1", opts);
  EXPECT_TRUE(small.ok());
}

TEST(Robustness, RangeGuard) {
  auto result = xq::Run("count(1 to 100000000)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("16M"), std::string::npos);
}

TEST(Robustness, DeepXmlNesting) {
  // 2000 levels of nesting parse and serialize without incident.
  std::string xml;
  for (int i = 0; i < 2000; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < 2000; ++i) xml += "</d>";
  auto doc = xml::Parse(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->DocumentElement()->StringValue(), "x");
}

TEST(Robustness, DeepExpressionNesting) {
  std::string query;
  for (int i = 0; i < 500; ++i) query += "(1 + ";
  query += "0";
  for (int i = 0; i < 500; ++i) query += ")";
  auto result = xq::Run(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SerializedItems(), "500");
}

TEST(Robustness, GarbageQueriesErrorCleanly) {
  // Deterministic pseudo-random garbage: every input must yield a Status,
  // never a crash, and parse errors must carry a location.
  Rng rng(987654);
  const char charset[] =
      " \t\n()[]{}<>/@$.,;:=+-*|\"'abcdefXYZ0123456789_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    size_t length = rng.Below(60);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(charset[rng.Below(sizeof(charset) - 1)]);
    }
    auto result = xq::Run(garbage);
    if (!result.ok() &&
        result.status().code() == StatusCode::kParseError) {
      EXPECT_NE(result.status().message().find("line"), std::string::npos)
          << garbage;
    }
  }
}

TEST(Robustness, GarbageXmlErrorsCleanly) {
  Rng rng(13579);
  const char charset[] = " <>=&;/\"'abcXYZ!?-[]";
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage = "<";
    size_t length = rng.Below(50);
    for (size_t i = 0; i < length; ++i) {
      garbage.push_back(charset[rng.Below(sizeof(charset) - 1)]);
    }
    auto result = xml::Parse(garbage);
    // Either it happens to be well-formed, or it is a located parse error.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError) << garbage;
    }
  }
}

TEST(Robustness, UnterminatedConstructs) {
  for (const char* query : {
           "\"unterminated",
           "(: never closed",
           "<a>",
           "<a attr=\"x>",
           "let $x :=",
           "for $x in",
           "if (1) then 2",
           "1 +",
           "element {",
           "declare function local:f() { 1 }",  // missing ';'
       }) {
    auto result = xq::Run(query);
    EXPECT_FALSE(result.ok()) << query;
  }
}

TEST(Robustness, TemplateCycleSafety) {
  // A placeholder whose content contains its own token: the native engine's
  // fixpoint guard must terminate (the content is spliced verbatim after the
  // guard trips, never looping forever).
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::Model model(&mm);
  auto result = docgen::GenerateNativeFromText(
      "<doc><placeholder name=\"LOOP\">again LOOP-GOES-HERE</placeholder>"
      "<p>LOOP-GOES-HERE</p></doc>",
      model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Guarded expansion: bounded number of replacements, then stop.
  EXPECT_LE(result->stats.placeholder_replacements, 20u);
}

TEST(Robustness, XQueryEngineTemplateErrorsAreValues) {
  // A template that is pure errors still produces a document.
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::Model model(&mm);
  auto result = docgen::GenerateXQueryFromText(
      "<doc><label/><value-of property=\"x\"/>"
      "<if><then/></if></doc>",
      model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.errors_embedded, 3u);
}

TEST(Robustness, NativeEngineStopsAtFirstErrorWhenPropagating) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::Model model(&mm);
  auto result = docgen::GenerateNativeFromText(
      "<doc><label/><value-of property=\"x\"/></doc>", model);
  ASSERT_FALSE(result.ok());
  // The <label/> failure arrives; the <value-of> is never reached.
  EXPECT_NE(result.status().message().find("label"), std::string::npos);
}

TEST(Robustness, HugeAttributeAndTextValues) {
  std::string big(100000, 'x');
  std::string xml = "<a k=\"" + big + "\">" + big + "</a>";
  auto doc = xml::Parse(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->DocumentElement()->AttributeValue("k")->size(),
            big.size());
  // Round trip.
  auto again = xml::Parse(xml::Serialize((*doc)->DocumentElement()));
  ASSERT_TRUE(again.ok());
}

TEST(Robustness, ManySiblings) {
  std::string xml = "<r>";
  for (int i = 0; i < 20000; ++i) xml += "<c/>";
  xml += "</r>";
  auto doc = xml::Parse(xml);
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  auto result = xq::Run("count(/r/c)", opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "20000");
}

TEST(Robustness, RecursiveUserFunctionsRespectDepthLimit) {
  // Indirect recursion also trips the limit.
  auto result = xq::Run(
      "declare function local:a($n) { local:b($n + 1) }; "
      "declare function local:b($n) { local:a($n + 1) }; "
      "local:a(0)");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("recursion"), std::string::npos);
}

}  // namespace
}  // namespace lll
