// Queries adapted from the W3C "XML Query Use Cases" document the paper
// cites as [UC] -- "The example XQuery programs from the XQuery use cases
// are a few tens of lines". These pin the engine against the canonical
// workloads XQuery was designed for (use case "XMP", the bibliography).

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::EvalWithContext;

// The classic bib.xml sample data, abridged.
constexpr char kBib[] = R"(<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>)";

// Q1: books published by Addison-Wesley after 1991, as <book> elements with
// year and title.
TEST(UseCaseXmp, Q1PublisherAndYear) {
  const char* query = R"(
    <bib>{
      for $b in /bib/book
      where $b/publisher = "Addison-Wesley" and $b/@year > 1991
      return <book year="{string($b/@year)}">{string($b/title)}</book>
    }</bib>)";
  EXPECT_EQ(EvalWithContext(query, kBib),
            "<bib>"
            "<book year=\"1994\">TCP/IP Illustrated</book>"
            "<book year=\"1992\">Advanced Programming in the Unix "
            "environment</book>"
            "</bib>");
}

// Q3: for each book, title and authors grouped in a <result>.
TEST(UseCaseXmp, Q3TitleAuthorPairs) {
  const char* query = R"(
    count(for $b in /bib/book
          return <result>{$b/title}{$b/author}</result>))";
  EXPECT_EQ(EvalWithContext(query, kBib), "4");
  // The grouped third book carries its three authors.
  const char* third = R"(
    string-join(
      for $a in (for $b in /bib/book
                 return <result>{$b/title}{$b/author}</result>)[3]/author/last
      return string($a), ","))";
  EXPECT_EQ(EvalWithContext(third, kBib), "Abiteboul,Buneman,Suciu");
}

// Q4: for each author, the titles of their books (grouping by value).
TEST(UseCaseXmp, Q4GroupByAuthor) {
  const char* query = R"(
    for $last in distinct-values(/bib/book/author/last)
    order by $last
    return
      <author name="{$last}">{
        count(/bib/book[author/last = $last])
      }</author>)";
  EXPECT_EQ(EvalWithContext(query, kBib),
            "<author name=\"Abiteboul\">1</author>"
            "<author name=\"Buneman\">1</author>"
            "<author name=\"Stevens\">2</author>"
            "<author name=\"Suciu\">1</author>");
}

// Q5 flavor: join against a second document (reviews) via fn:doc.
TEST(UseCaseXmp, Q5JoinWithSecondDocument) {
  auto bib = xml::Parse(kBib);
  auto reviews = xml::Parse(
      "<reviews>"
      "<entry><title>Data on the Web</title><rating>5</rating></entry>"
      "<entry><title>TCP/IP Illustrated</title><rating>4</rating></entry>"
      "</reviews>");
  ASSERT_TRUE(bib.ok() && reviews.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*bib)->root();
  opts.documents["reviews"] = (*reviews)->root();
  auto result = xq::Run(
      "for $b in /bib/book, $e in doc(\"reviews\")//entry "
      "where $b/title = $e/title "
      "order by string($b/title) "
      "return <rated title=\"{string($b/title)}\" "
      "rating=\"{string($e/rating)}\"/>",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SerializedItems(),
            "<rated title=\"Data on the Web\" rating=\"5\"/>"
            "<rated title=\"TCP/IP Illustrated\" rating=\"4\"/>");
}

// Q6: books with an editor but no author (existence tests).
TEST(UseCaseXmp, Q6EditorsOnly) {
  const char* query = R"(
    for $b in /bib/book
    where exists($b/editor) and empty($b/author)
    return string($b/editor/last))";
  EXPECT_EQ(EvalWithContext(query, kBib), "Gerbarg");
}

// Q10: prices, min/max/avg summary.
TEST(UseCaseXmp, Q10PriceSummary) {
  EXPECT_EQ(EvalWithContext("min(/bib/book/price)", kBib), "39.95");
  EXPECT_EQ(EvalWithContext("max(/bib/book/price)", kBib), "129.95");
  EXPECT_EQ(EvalWithContext(
                "floor(avg(for $p in /bib/book/price return number($p)))",
                kBib),
            "75");
}

// Q11: books priced below the average (nested aggregation).
TEST(UseCaseXmp, Q11BelowAverage) {
  const char* query = R"(
    let $avg := avg(for $p in /bib/book/price return number($p))
    for $b in /bib/book
    where number($b/price) < $avg
    order by string($b/title)
    return string($b/title))";
  EXPECT_EQ(EvalWithContext(query, kBib),
            "Advanced Programming in the Unix environment "
            "Data on the Web "
            "TCP/IP Illustrated");
}

// --- Use case "TREE": queries that preserve hierarchy -------------------
// The W3C use-case document's TREE scenario is, delightfully, "Preparing a
// table of contents" -- the exact job the paper's generator struggled with.

constexpr char kBook[] = R"(<book>
  <title>Data on the Web</title>
  <section id="intro" difficulty="easy">
    <title>Introduction</title>
    <p>text</p>
    <section><title>Audience</title><p>text</p></section>
    <section><title>Web Data and the Two Cultures</title>
      <p>text</p><figure><title>Traditional client/server</title></figure>
    </section>
  </section>
  <section id="syntax" difficulty="medium">
    <title>A Syntax For Data</title>
    <p>text</p>
    <section><title>Base Types</title><p>text</p></section>
    <section><title>Representing Relational Databases</title>
      <p>text</p><figure><title>Relational data</title></figure>
    </section>
  </section>
</book>)";

// TREE Q1: a table of contents -- nested sections with only their titles.
TEST(UseCaseTree, Q1TableOfContents) {
  const char* query = R"(
    declare function local:toc($s) {
      <section>{
        text { string($s/title[1]) },
        for $sub in $s/section return local:toc($sub)
      }</section>
    };
    <toc>{ for $s in /book/section return local:toc($s) }</toc>)";
  std::string out = EvalWithContext(query, kBook);
  EXPECT_NE(out.find("<toc><section>Introduction<section>Audience</section>"),
            std::string::npos);
  EXPECT_NE(out.find("<section>A Syntax For Data"), std::string::npos);
  // Paragraphs and figures are gone; nesting is preserved.
  EXPECT_EQ(out.find("<p>"), std::string::npos);
  EXPECT_EQ(out.find("figure"), std::string::npos);
}

// TREE Q2: all figure titles, wherever they occur.
TEST(UseCaseTree, Q2FigureList) {
  EXPECT_EQ(EvalWithContext(
                "string-join(for $f in //figure return string($f/title), "
                "\"; \")",
                kBook),
            "Traditional client/server; Relational data");
}

// TREE Q3/Q4: counting sections and figures in the whole book.
TEST(UseCaseTree, Q3Q4Counts) {
  EXPECT_EQ(EvalWithContext("count(//section)", kBook), "6");
  EXPECT_EQ(EvalWithContext("count(//figure)", kBook), "2");
}

// TREE Q5: how many top-level sections, and what are their difficulty tags?
TEST(UseCaseTree, Q5TopSections) {
  EXPECT_EQ(EvalWithContext("count(/book/section)", kBook), "2");
  EXPECT_EQ(EvalWithContext(
                "string-join(for $s in /book/section "
                "return string($s/@difficulty), \",\")",
                kBook),
            "easy,medium");
}

// The "flatten everything" query from the paper's rationale section:
// FOR x in some-nodes RETURN children(x) produces one flat list.
TEST(UseCaseXmp, FlatteningRationale) {
  // 4 + 4 + 6 + 4 child elements across the four books.
  EXPECT_EQ(EvalWithContext("count(for $b in /bib/book return $b/child::*)",
                            kBib),
            "18");
  // Nested FORs produce a one-dimensional list too.
  EXPECT_EQ(EvalWithContext(
                "count(for $b in /bib/book return "
                "      for $a in $b/author return $a)",
                kBib),
            "5");
}

}  // namespace
}  // namespace lll
