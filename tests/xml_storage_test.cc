// Property tests for the arena-backed structure-of-arrays node storage.
//
// The oracle is a shadow tree of plain heap structs linked by pointers --
// exactly the representation the old Node implementation used. Every random
// mutation is applied to both; after each batch the SoA document must agree
// with the shadow on kind, name, value, parentage, child/attribute order,
// IndexInParent, and string value. CompactStorage and CloneDocument are
// folded into the mutation mix, since both rewrite the index pools.
//
// Also here: the 100k-depth regression tests for the iterative StringValue /
// SerializeTo paths, and the concurrency claims (shared read-only documents,
// NameTable interning) the TSan build audits via the `concurrency` label.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "xml/name_table.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace lll::xml {
namespace {

// The pointer-built oracle: one heap struct per node, child/attribute lists
// as plain pointer vectors. Owned flat by the harness so detach/remove never
// destroys a node (matching arena semantics).
struct Shadow {
  NodeKind kind;
  std::string name;
  std::string value;
  Shadow* parent = nullptr;
  std::vector<Shadow*> children;
  std::vector<Shadow*> attrs;
};

std::string ShadowStringValue(const Shadow* s) {
  if (s->kind == NodeKind::kText || s->kind == NodeKind::kComment ||
      s->kind == NodeKind::kAttribute ||
      s->kind == NodeKind::kProcessingInstruction) {
    return s->value;
  }
  std::string out;
  std::vector<const Shadow*> stack(s->children.rbegin(), s->children.rend());
  while (!stack.empty()) {
    const Shadow* n = stack.back();
    stack.pop_back();
    if (n->kind == NodeKind::kText) {
      out += n->value;
    } else if (n->kind == NodeKind::kElement) {
      stack.insert(stack.end(), n->children.rbegin(), n->children.rend());
    }
  }
  return out;
}

class Harness {
 public:
  Harness() {
    pairs_.push_back({doc_->root(), NewShadow(NodeKind::kDocument, "", "")});
    map_[doc_->root()] = pairs_.back().second;
  }

  Document* doc() { return doc_.get(); }

  void Mutate(Rng& rng) {
    switch (rng.Below(10)) {
      case 0:
      case 1:
      case 2:
        AppendFresh(rng);
        break;
      case 3:
        InsertFresh(rng);
        break;
      case 4:
        RemoveRandomChild(rng);
        break;
      case 5:
        ReplaceRandomChild(rng);
        break;
      case 6:
        SetRandomAttribute(rng);
        break;
      case 7:
        RemoveRandomAttribute(rng);
        break;
      case 8:
        SetRandomValue(rng);
        break;
      case 9:
        DetachRandom(rng);
        break;
    }
  }

  void Verify() {
    for (const auto& [node, shadow] : pairs_) {
      ASSERT_EQ(node->kind(), shadow->kind);
      EXPECT_EQ(node->name(), shadow->name);
      EXPECT_EQ(std::string(node->value()), shadow->value);
      if (shadow->parent == nullptr) {
        EXPECT_EQ(node->parent(), nullptr);
      } else {
        ASSERT_NE(node->parent(), nullptr);
        EXPECT_EQ(map_.at(node->parent()), shadow->parent);
        // O(1) IndexInParent must match the shadow list position.
        size_t expect = SIZE_MAX;
        const auto& list = node->is_attribute() ? shadow->parent->attrs
                                                : shadow->parent->children;
        for (size_t i = 0; i < list.size(); ++i) {
          if (list[i] == shadow) expect = i;
        }
        EXPECT_EQ(node->IndexInParent(), expect);
      }
      NodeList kids = node->children();
      ASSERT_EQ(kids.size(), shadow->children.size());
      for (size_t i = 0; i < kids.size(); ++i) {
        EXPECT_EQ(map_.at(kids[i]), shadow->children[i]);
      }
      NodeList attrs = node->attributes();
      ASSERT_EQ(attrs.size(), shadow->attrs.size());
      for (size_t i = 0; i < attrs.size(); ++i) {
        EXPECT_EQ(map_.at(attrs[i]), shadow->attrs[i]);
      }
      EXPECT_EQ(node->StringValue(), ShadowStringValue(shadow));
    }
  }

  // Round-trips the rooted tree through CloneDocument and compares serialized
  // forms (debris -- detached subtrees -- is intentionally dropped by clone).
  void VerifyClone() {
    std::unique_ptr<Document> clone = CloneDocument(*doc_);
    EXPECT_EQ(Serialize(clone->root()), Serialize(doc_->root()));
    EXPECT_EQ(clone->storage_stats().pool_slack_slots, 0u);
    EXPECT_TRUE(clone->index_is_order());
  }

 private:
  Shadow* NewShadow(NodeKind kind, std::string name, std::string value) {
    shadows_.push_back(std::make_unique<Shadow>());
    Shadow* s = shadows_.back().get();
    s->kind = kind;
    s->name = std::move(name);
    s->value = std::move(value);
    return s;
  }

  std::pair<Node*, Shadow*> Pick(Rng& rng) {
    return pairs_[rng.Below(pairs_.size())];
  }

  // A random attach point: document root or an attached, non-attribute node.
  std::pair<Node*, Shadow*> PickParent(Rng& rng) {
    for (int tries = 0; tries < 8; ++tries) {
      auto [n, s] = Pick(rng);
      if (n->is_element() || n->is_document()) return {n, s};
    }
    return pairs_[0];
  }

  std::pair<Node*, Shadow*> CreateFresh(Rng& rng) {
    static const char* kNames[] = {"alpha", "beta", "gamma", "delta"};
    std::string payload = "v" + std::to_string(pairs_.size());
    Node* n;
    Shadow* s;
    switch (rng.Below(4)) {
      case 0:
        n = doc_->CreateText(payload);
        s = NewShadow(NodeKind::kText, "", payload);
        break;
      case 1:
        n = doc_->CreateComment(payload);
        s = NewShadow(NodeKind::kComment, "", payload);
        break;
      default:
        n = doc_->CreateElement(kNames[rng.Below(4)]);
        s = NewShadow(NodeKind::kElement, n->name(), "");
        break;
    }
    pairs_.push_back({n, s});
    map_[n] = s;
    return {n, s};
  }

  void AppendFresh(Rng& rng) {
    auto [p, sp] = PickParent(rng);
    auto [c, sc] = CreateFresh(rng);
    ASSERT_TRUE(p->AppendChild(c).ok());
    sc->parent = sp;
    sp->children.push_back(sc);
  }

  void InsertFresh(Rng& rng) {
    auto [p, sp] = PickParent(rng);
    auto [c, sc] = CreateFresh(rng);
    size_t at = rng.Below(sp->children.size() + 1);
    ASSERT_TRUE(p->InsertChildAt(at, c).ok());
    sc->parent = sp;
    sp->children.insert(sp->children.begin() + static_cast<ptrdiff_t>(at), sc);
  }

  void RemoveRandomChild(Rng& rng) {
    auto [p, sp] = PickParent(rng);
    if (sp->children.empty()) return;
    size_t at = rng.Below(sp->children.size());
    ASSERT_TRUE(p->RemoveChild(p->children()[at]).ok());
    sp->children[at]->parent = nullptr;
    sp->children.erase(sp->children.begin() + static_cast<ptrdiff_t>(at));
  }

  void ReplaceRandomChild(Rng& rng) {
    auto [p, sp] = PickParent(rng);
    if (sp->children.empty()) return;
    size_t at = rng.Below(sp->children.size());
    std::vector<Node*> repl;
    std::vector<Shadow*> srepl;
    for (uint64_t i = 0, n = rng.Below(3); i < n; ++i) {
      auto [c, sc] = CreateFresh(rng);
      repl.push_back(c);
      srepl.push_back(sc);
    }
    ASSERT_TRUE(p->ReplaceChild(p->children()[at], repl).ok());
    sp->children[at]->parent = nullptr;
    sp->children.erase(sp->children.begin() + static_cast<ptrdiff_t>(at));
    for (size_t i = 0; i < srepl.size(); ++i) {
      srepl[i]->parent = sp;
      sp->children.insert(
          sp->children.begin() + static_cast<ptrdiff_t>(at + i), srepl[i]);
    }
  }

  void SetRandomAttribute(Rng& rng) {
    auto [p, sp] = Pick(rng);
    if (!p->is_element()) return;
    std::string name = "a" + std::to_string(rng.Below(3));
    std::string value = "w" + std::to_string(pairs_.size());
    p->SetAttribute(name, value);
    for (Shadow* a : sp->attrs) {
      if (a->name == name) {
        a->value = value;
        return;
      }
    }
    // New attribute node: pair it with the real node SetAttribute created.
    Node* an = p->AttributeNode(name);
    ASSERT_NE(an, nullptr);
    Shadow* sa = NewShadow(NodeKind::kAttribute, name, value);
    sa->parent = sp;
    sp->attrs.push_back(sa);
    pairs_.push_back({an, sa});
    map_[an] = sa;
  }

  void RemoveRandomAttribute(Rng& rng) {
    auto [p, sp] = Pick(rng);
    if (!p->is_element() || sp->attrs.empty()) return;
    size_t at = rng.Below(sp->attrs.size());
    ASSERT_TRUE(p->RemoveAttribute(sp->attrs[at]->name));
    sp->attrs[at]->parent = nullptr;
    sp->attrs.erase(sp->attrs.begin() + static_cast<ptrdiff_t>(at));
  }

  void SetRandomValue(Rng& rng) {
    auto [n, s] = Pick(rng);
    if (!n->is_text() && n->kind() != NodeKind::kComment &&
        !n->is_attribute()) {
      return;
    }
    std::string value = "u" + std::to_string(rng.Below(1000));
    n->set_value(value);
    s->value = value;
  }

  void DetachRandom(Rng& rng) {
    auto [n, s] = Pick(rng);
    if (s->parent == nullptr || n->is_document()) return;
    n->Detach();
    auto& list = n->is_attribute() ? s->parent->attrs : s->parent->children;
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == s) {
        list.erase(list.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    s->parent = nullptr;
  }

  std::unique_ptr<Document> doc_ = std::make_unique<Document>();
  std::vector<std::unique_ptr<Shadow>> shadows_;
  std::vector<std::pair<Node*, Shadow*>> pairs_;
  std::unordered_map<const Node*, Shadow*> map_;
};

TEST(XmlStorageProperty, AgreesWithPointerBuiltOracle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x5DEECE66Dull);
    Harness h;
    for (int batch = 0; batch < 12; ++batch) {
      for (int i = 0; i < 40; ++i) h.Mutate(rng);
      if (batch % 4 == 3) h.doc()->CompactStorage();
      h.Verify();
      if (testing::Test::HasFailure()) return;
    }
    h.VerifyClone();
  }
}

TEST(XmlStorageProperty, CompactStorageDropsSlackAndPreservesTree) {
  Rng rng(42);
  Harness h;
  for (int i = 0; i < 300; ++i) h.Mutate(rng);
  std::string before = Serialize(h.doc()->root());
  h.doc()->CompactStorage();
  EXPECT_EQ(h.doc()->storage_stats().pool_slack_slots, 0u);
  EXPECT_EQ(Serialize(h.doc()->root()), before);
  h.Verify();
}

// --- Deep-recursion regressions --------------------------------------------

constexpr int kDeep = 100'000;

std::unique_ptr<Document> BuildDeepChain() {
  auto doc = std::make_unique<Document>();
  Node* cur = doc->root();
  for (int i = 0; i < kDeep; ++i) {
    Node* e = doc->CreateElement("d");
    EXPECT_TRUE(cur->AppendChild(e).ok());
    cur = e;
  }
  EXPECT_TRUE(cur->AppendChild(doc->CreateText("bottom")).ok());
  return doc;
}

TEST(XmlStorageDeep, StringValueIsIterative) {
  auto doc = BuildDeepChain();
  EXPECT_EQ(doc->root()->StringValue(), "bottom");
  EXPECT_EQ(doc->DocumentElement()->StringValue(), "bottom");
}

TEST(XmlStorageDeep, SerializeIsIterative) {
  auto doc = BuildDeepChain();
  std::string out = Serialize(doc->root());
  EXPECT_EQ(out.size(), static_cast<size_t>(kDeep) * 7 + 6);
  EXPECT_EQ(out.substr(0, 6), "<d><d>");
  EXPECT_EQ(out.substr(out.size() - 8), "</d></d>");
}

TEST(XmlStorageDeep, ParseIsIterative) {
  // The parser keeps its own open-element stack; 100k levels of nesting
  // must parse without touching the call-stack limit.
  std::string xml;
  xml.reserve(static_cast<size_t>(kDeep) * 7 + 1);
  for (int i = 0; i < kDeep; ++i) xml += "<d>";
  xml += "x";
  for (int i = 0; i < kDeep; ++i) xml += "</d>";
  auto doc = Parse(xml);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ((*doc)->DocumentElement()->StringValue(), "x");
}

TEST(XmlStorageDeep, CloneAndDescendantsAreIterative) {
  auto doc = BuildDeepChain();
  std::unique_ptr<Document> clone = CloneDocument(*doc);
  EXPECT_EQ(clone->storage_stats().node_count, doc->storage_stats().node_count);
  EXPECT_EQ(clone->root()->StringValue(), "bottom");
  EXPECT_EQ(doc->root()->DescendantElements("d").size(),
            static_cast<size_t>(kDeep));
}

// --- Concurrency claims (TSan audits these via -L concurrency) -------------

TEST(XmlStorageConcurrency, NameTableInternAndGetRace) {
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::atomic<uint32_t> ids[kNames] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      for (int i = 0; i < kNames; ++i) {
        // Overlapping vocabularies: every thread interns every name, half
        // in reverse, so first-sight insertion races with repeat lookups.
        int k = (t % 2 == 0) ? i : kNames - 1 - i;
        std::string name = "race-name-" + std::to_string(k);
        uint32_t id = NameTable::Intern(name);
        uint32_t seen = ids[k].exchange(id, std::memory_order_relaxed);
        if (seen != 0) EXPECT_EQ(seen, id);
        EXPECT_EQ(NameTable::Get(id), name);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(NameTable::interned_count(), static_cast<uint64_t>(kNames));
  EXPECT_GT(NameTable::interned_bytes(), 0u);
}

TEST(XmlStorageConcurrency, SharedReadOnlyDocumentTraversal) {
  // One published (frozen) document, many readers -- the server's snapshot
  // pattern. EnsureOrderIndex is called once by the publisher; after that,
  // traversal, string values, and order compares must be data-race free.
  auto doc = std::make_unique<Document>();
  Node* root = doc->CreateElement("lib");
  ASSERT_TRUE(doc->root()->AppendChild(root).ok());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Node* shelf = doc->CreateElement("shelf");
    shelf->SetAttribute("id", std::to_string(i));
    ASSERT_TRUE(root->AppendChild(shelf).ok());
    for (uint64_t j = 0, n = rng.Below(5); j < n; ++j) {
      Node* book = doc->CreateElement("book");
      ASSERT_TRUE(book->AppendChild(doc->CreateText("x")).ok());
      ASSERT_TRUE(shelf->AppendChild(book).ok());
    }
  }
  doc->CompactStorage();
  doc->EnsureOrderIndex();

  const Document* shared = doc.get();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([shared] {
      const Node* root = shared->DocumentElement();
      std::vector<Node*> shelves = root->DescendantElements("shelf");
      EXPECT_EQ(shelves.size(), 200u);
      size_t books = 0;
      for (const Node* shelf : shelves) {
        EXPECT_TRUE(shelf->AttributeValue("id").has_value());
        for (const Node* book : shelf->children()) {
          EXPECT_EQ(book->StringValue(), "x");
          ++books;
        }
      }
      for (size_t i = 1; i < shelves.size(); ++i) {
        EXPECT_LT(CompareDocumentOrder(shelves[i - 1], shelves[i]), 0);
      }
      EXPECT_EQ(books, root->StringValue().size());
    });
  }
  for (auto& th : threads) th.join();
}

// --- Subtree edit-version overlay -------------------------------------------

constexpr char kVersionedDoc[] =
    "<r><a id=\"a\"><b/></a><c id=\"c\"><d/></c></r>";

TEST(XmlEditVersions, BumpStampsExactlyTheAncestorChain) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  Node* b = a->children()[0];
  Node* c = r->children()[1];

  // Before anybody observed a version, the whole overlay is the uniform
  // epoch 0 -- parse-time attaches never materialize per-node stamps.
  EXPECT_EQ(doc->subtree_version_of(r->index()), 0u);
  EXPECT_EQ(doc->local_version_of(b->index()), 0u);

  // First post-observation edit: append under <b>. Exactly b, a, r (the
  // ancestor chain) advance their subtree versions; <c>'s corner of the
  // tree stays at epoch 0.
  const uint64_t before = doc->edit_epoch();
  ASSERT_TRUE(b->AppendChild(doc->CreateElement("leaf")).ok());
  const uint64_t epoch = doc->edit_epoch();
  EXPECT_GT(epoch, before);
  EXPECT_EQ(doc->subtree_version_of(b->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(a->index()), epoch);
  EXPECT_GE(doc->subtree_version_of(r->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(c->index()), 0u);

  // Local version: only the edited node itself; its parent records the
  // child-local change instead.
  EXPECT_EQ(doc->local_version_of(b->index()), epoch);
  EXPECT_EQ(doc->local_version_of(a->index()), 0u);
  EXPECT_EQ(doc->child_local_version_of(a->index()), epoch);
  EXPECT_EQ(doc->child_local_version_of(r->index()), 0u);
}

TEST(XmlEditVersions, AttributeValueEditBumpsTheOwner) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  Node* c = r->children()[1];
  (void)doc->subtree_version_of(r->index());  // observe: materialize on edit

  // Rewriting <a>'s existing id attribute is a LOCAL change to <a> (the
  // node an [@id=...] predicate depends on), invisible to <c>.
  a->SetAttribute("id", "a2");
  const uint64_t epoch = doc->edit_epoch();
  EXPECT_EQ(doc->local_version_of(a->index()), epoch);
  EXPECT_EQ(doc->child_local_version_of(r->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(c->index()), 0u);
  EXPECT_EQ(doc->local_version_of(c->index()), 0u);
}

TEST(XmlEditVersions, RemovalBumpsTheFormerParent) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* c = r->children()[1];
  Node* d = c->children()[0];
  (void)doc->subtree_version_of(r->index());

  ASSERT_TRUE(c->RemoveChild(d).ok());
  const uint64_t epoch = doc->edit_epoch();
  EXPECT_GT(epoch, 0u);
  EXPECT_EQ(doc->subtree_version_of(c->index()), epoch);
  EXPECT_EQ(doc->local_version_of(c->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(r->children()[0]->index()), 0u);
}

TEST(XmlEditVersions, RenameChargesLocalAndParentChildList) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  Node* b = a->children()[0];
  Node* c = r->children()[1];
  (void)doc->subtree_version_of(r->index());  // observe: materialize on edit

  // Renaming <b> is a local change to <b> (name tests on b itself) AND a
  // child-list change to <a> (a cached a/bb chain must now see <b> gone),
  // with the subtree chain above advancing as usual. <c> stays untouched.
  ASSERT_TRUE(b->Rename("bb").ok());
  const uint64_t epoch = doc->edit_epoch();
  EXPECT_GT(epoch, 0u);
  EXPECT_EQ(b->name(), "bb");
  EXPECT_EQ(doc->local_version_of(b->index()), epoch);
  EXPECT_EQ(doc->child_local_version_of(a->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(b->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(a->index()), epoch);
  EXPECT_GE(doc->subtree_version_of(r->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(c->index()), 0u);
  EXPECT_EQ(doc->local_version_of(c->index()), 0u);
}

TEST(XmlEditVersions, AttributeRenameChargesTheOwner) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  Node* c = r->children()[1];
  (void)doc->subtree_version_of(r->index());

  // Renaming @id is a LOCAL change to its owner <a> -- the node an [@id]
  // predicate guard hangs off -- exactly like a value rewrite.
  Node* id_attr = a->attributes()[0];
  ASSERT_TRUE(id_attr->Rename("key").ok());
  const uint64_t epoch = doc->edit_epoch();
  EXPECT_EQ(doc->local_version_of(a->index()), epoch);
  EXPECT_EQ(doc->child_local_version_of(r->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(c->index()), 0u);
}

TEST(XmlEditVersions, RenameRejectsBadTargetsAndNames) {
  auto parsed = Parse("<r>text<!--note--></r>",
                      {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  (void)doc->subtree_version_of(r->index());

  // Text and comment nodes have no name; malformed QNames never land. None
  // of these may charge the overlay.
  EXPECT_FALSE(r->children()[0]->Rename("x").ok());
  EXPECT_FALSE(r->children()[1]->Rename("x").ok());
  EXPECT_FALSE(r->Rename("").ok());
  EXPECT_FALSE(r->Rename("1bad").ok());
  EXPECT_FALSE(r->Rename("a:b:c").ok());
  EXPECT_FALSE(r->Rename("sp ace").ok());
  EXPECT_EQ(doc->edit_epoch(), 0u);
  EXPECT_EQ(doc->local_version_of(r->index()), 0u);

  EXPECT_TRUE(r->Rename("ns:root").ok());  // one colon is a fine QName
  EXPECT_GT(doc->edit_epoch(), 0u);
}

TEST(XmlEditVersions, EveryUpdatePrimitiveBumpsTheOverlay) {
  // The update sublanguage routes onto AppendChild / InsertChildAt /
  // RemoveChild (Detach) / ReplaceChild / Rename. Each one must move the
  // edit epoch -- a primitive that forgets BumpEditVersion would let stale
  // cached chains keep validating.
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  (void)doc->subtree_version_of(r->index());

  uint64_t last = doc->edit_epoch();
  ASSERT_TRUE(a->AppendChild(doc->CreateElement("x")).ok());
  EXPECT_GT(doc->edit_epoch(), last);
  last = doc->edit_epoch();
  ASSERT_TRUE(a->InsertChildAt(0, doc->CreateElement("y")).ok());
  EXPECT_GT(doc->edit_epoch(), last);
  last = doc->edit_epoch();
  ASSERT_TRUE(a->RemoveChild(a->children()[0]).ok());
  EXPECT_GT(doc->edit_epoch(), last);
  last = doc->edit_epoch();
  ASSERT_TRUE(
      a->ReplaceChild(a->children()[0], {doc->CreateElement("z")}).ok());
  EXPECT_GT(doc->edit_epoch(), last);
  last = doc->edit_epoch();
  ASSERT_TRUE(a->Rename("aa").ok());
  EXPECT_GT(doc->edit_epoch(), last);
}

TEST(XmlEditVersions, WantEditVersionsStampsWithoutAPriorRead) {
  // The lazy overlay only materializes when an edit lands AFTER some reader
  // asked for a version. The server's publish path migrates guard-stamped
  // cache entries onto a fresh clone and edits it before any reader sees
  // it, so it opts the clone in explicitly via WantEditVersions() -- the
  // edit must stamp even though the first version read comes later.
  // Without the opt-in, versions stay at the uniform 0 and migrated
  // entries whose chains the edit dirtied would keep validating.
  {
    // Control: no opt-in, no prior read -- the edit moves only the epoch
    // and the overlay stays at the uniform 0. (The version read at the end
    // sets the wanted-flag, so this arm uses its own document.)
    auto parsed =
        Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
    ASSERT_TRUE(parsed.ok());
    Document* doc = parsed->get();
    Node* r = doc->DocumentElement();
    ASSERT_TRUE(r->AppendChild(doc->CreateElement("x")).ok());
    EXPECT_EQ(doc->subtree_version_of(r->index()), 0u);
  }
  {
    // The publish path's exact sequence: clone a never-observed document,
    // opt the clone in, edit -- the overlay must stamp.
    auto parsed =
        Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
    ASSERT_TRUE(parsed.ok());
    std::vector<uint32_t> node_map;
    std::unique_ptr<Document> clone = CloneDocument(**parsed, &node_map);
    clone->WantEditVersions();
    Node* cr = clone->DocumentElement();
    ASSERT_TRUE(cr->AppendChild(clone->CreateElement("y")).ok());
    EXPECT_GT(clone->subtree_version_of(cr->index()), 0u);
    EXPECT_GT(clone->local_version_of(cr->index()), 0u);
  }
}

TEST(XmlEditVersions, CloneCarriesOverlayFastPath) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  (void)doc->subtree_version_of(r->index());
  // A value edit creates no nodes, so parse order stays document order and
  // CloneDocument keeps its identity (array-copy) path. The overlay must
  // travel verbatim.
  a->SetAttribute("id", "a2");
  const uint64_t epoch = doc->edit_epoch();
  doc->EnsureOrderIndex();
  std::unique_ptr<Document> clone = CloneDocument(*doc);
  Node* cr = clone->DocumentElement();
  Node* ca = cr->children()[0];
  Node* cc = cr->children()[1];
  EXPECT_EQ(clone->edit_epoch(), epoch);
  EXPECT_EQ(clone->subtree_version_of(ca->index()), epoch);
  EXPECT_EQ(clone->subtree_version_of(cc->index()), 0u);
  EXPECT_EQ(clone->local_version_of(ca->index()), epoch);

  // The histories diverge after the clone: edits to one side are invisible
  // to the other.
  ASSERT_TRUE(ca->AppendChild(clone->CreateElement("leaf2")).ok());
  EXPECT_GT(clone->subtree_version_of(ca->index()), epoch);
  EXPECT_EQ(doc->subtree_version_of(a->index()), epoch);
}

TEST(XmlEditVersions, CloneCarriesOverlaySlowPath) {
  auto parsed = Parse(kVersionedDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(parsed.ok());
  Document* doc = parsed->get();
  Node* r = doc->DocumentElement();
  Node* a = r->children()[0];
  Node* c = r->children()[1];
  (void)doc->subtree_version_of(r->index());

  // Detach <d> from <c>: the document now has an unattached slot, which
  // forces CloneDocument onto the traversal (remapping) path.
  ASSERT_TRUE(c->RemoveChild(c->children()[0]).ok());
  const uint64_t removal_epoch = doc->edit_epoch();
  a->SetAttribute("id", "a3");
  const uint64_t attr_epoch = doc->edit_epoch();

  std::unique_ptr<Document> clone = CloneDocument(*doc);
  Node* cr = clone->DocumentElement();
  Node* ca = cr->children()[0];
  Node* cc = cr->children()[1];
  EXPECT_EQ(clone->edit_epoch(), doc->edit_epoch());
  // Versions follow the nodes through the index remap.
  EXPECT_EQ(clone->local_version_of(ca->index()), attr_epoch);
  EXPECT_EQ(clone->subtree_version_of(cc->index()), removal_epoch);
  EXPECT_EQ(clone->subtree_version_of(ca->index()), attr_epoch);
}

}  // namespace
}  // namespace lll::xml
