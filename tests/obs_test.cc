// The observability subsystem: trace sinks (unit + concurrency; run under
// ThreadSanitizer via the `concurrency` ctest label), the per-expression
// profiler, and the paper's trace-vs-DCE pathology pinned as a regression
// test in both directions.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll {
namespace {

obs::TraceEvent Event(const std::string& message) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kEngine;
  e.source = "test";
  e.message = message;
  return e;
}

// --- Sinks ------------------------------------------------------------------

TEST(TraceSinkTest, CollectingSinkStoresEverythingInOrder) {
  obs::CollectingTraceSink sink;
  sink.Emit(Event("one"));
  sink.Emit(Event("two"));
  ASSERT_EQ(sink.size(), 2u);
  std::vector<obs::TraceEvent> events = sink.Events();
  EXPECT_EQ(events[0].message, "one");
  EXPECT_EQ(events[1].message, "two");
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(sink.JoinedMessages(), "one\ntwo");
  EXPECT_EQ(sink.emitted(), 2u);

  std::vector<obs::TraceEvent> taken = sink.TakeEvents();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSinkTest, FormatIncludesKindSourceAndLocation) {
  obs::TraceEvent e = Event("boom");
  e.kind = obs::TraceEvent::Kind::kTrace;
  e.source = "fn:trace";
  e.line = 3;
  e.col = 7;
  std::string line = obs::FormatTraceEvent(e);
  EXPECT_NE(line.find("trace"), std::string::npos) << line;
  EXPECT_NE(line.find("fn:trace"), std::string::npos) << line;
  EXPECT_NE(line.find("3:7"), std::string::npos) << line;
  EXPECT_NE(line.find("boom"), std::string::npos) << line;
}

TEST(TraceSinkTest, RingBufferKeepsNewestAndCountsDropped) {
  obs::RingBufferTraceSink sink(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) sink.Emit(Event("m" + std::to_string(i)));
  std::vector<obs::TraceEvent> snapshot = sink.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].message, "m2");
  EXPECT_EQ(snapshot[2].message, "m4");
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.emitted(), 5u);
}

TEST(TraceSinkTest, TeeFansOutToBothSinks) {
  obs::CollectingTraceSink a;
  obs::CollectingTraceSink b;
  obs::TeeTraceSink tee(&a, &b);
  tee.Emit(Event("x"));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(TraceSinkConcurrencyTest, ParallelEmittersLoseNothing) {
  obs::CollectingTraceSink collect;
  obs::RingBufferTraceSink ring(/*capacity=*/64);
  obs::TeeTraceSink tee(&collect, &ring);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tee, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tee.Emit(Event("t" + std::to_string(t) + ":" + std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(collect.size(), kTotal);
  EXPECT_EQ(ring.Snapshot().size(), 64u);
  EXPECT_EQ(ring.dropped(), kTotal - 64);
  // Sequence numbers are unique: the max seen must be kTotal - 1.
  uint64_t max_seq = 0;
  for (const obs::TraceEvent& e : collect.Events()) {
    max_seq = std::max(max_seq, e.seq);
  }
  EXPECT_EQ(max_seq, kTotal - 1);
}

// --- Profiler ---------------------------------------------------------------

TEST(ProfilerTest, AttributesSelfAndTotalTime) {
  obs::Profiler p;
  int outer = 0, inner = 0;
  {
    obs::Profiler::Scope a(&p, &outer, [] { return std::string("outer"); });
    obs::Profiler::Scope b(&p, &inner, [] { return std::string("inner"); });
  }
  obs::ProfileReport report = p.TakeReport();
  ASSERT_EQ(report.entries.size(), 2u);
  uint64_t outer_total = 0, inner_total = 0;
  for (const obs::ProfileEntry& e : report.entries) {
    if (e.label == "outer") outer_total = e.total_ns;
    if (e.label == "inner") inner_total = e.total_ns;
    EXPECT_EQ(e.calls, 1u);
  }
  // The outer frame's inclusive time covers the inner frame's.
  EXPECT_GE(outer_total, inner_total);
  EXPECT_GE(report.wall_ns, outer_total);
}

TEST(ProfilerTest, RecursionChargesTotalOnceAndCallsEveryTime) {
  obs::Profiler p;
  int site = 0;
  std::function<void(int)> recurse = [&](int depth) {
    obs::Profiler::Scope s(&p, &site, [] { return std::string("rec"); });
    if (depth > 0) recurse(depth - 1);
  };
  recurse(5);
  obs::ProfileReport report = p.TakeReport();
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].calls, 6u);
  // Inclusive time is charged only on the outermost frame, so it cannot
  // exceed the evaluation's wall time (the naive scheme multiplies it by
  // the recursion depth).
  EXPECT_LE(report.entries[0].total_ns, report.wall_ns);
}

TEST(ProfilerTest, RealQueryCoverageAtLeastNinetyPercent) {
  auto doc = xml::Parse(
      "<lib>"
      "<book year=\"2001\"><pages>100</pages></book>"
      "<book year=\"1999\"><pages>250</pages></book>"
      "<book year=\"2010\"><pages>75</pages></book>"
      "</lib>");
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  opts.eval.profile = true;
  auto result = xq::Run(
      "sum(for $i in (1 to 500) return "
      "  count(//book[number(@year) < 2000 + ($i mod 3)]/pages))",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->profile, nullptr);
  // The acceptance bar: per-site self time accounts for >=90% of the
  // evaluation's wall time -- no big anonymous gaps.
  EXPECT_GE(result->profile->Coverage(), 0.9)
      << result->profile->Render();
  EXPECT_GT(result->profile->entries.size(), 3u);
  // The report renders with labels and a wall-time line.
  std::string rendered = result->profile->Render();
  EXPECT_NE(rendered.find("wall"), std::string::npos) << rendered;
}

TEST(ProfilerTest, ProfileAbsentWhenNotRequested) {
  auto result = xq::Run("1 + 1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profile, nullptr);
}

// --- fn:trace through the sink ---------------------------------------------

TEST(TraceThroughSinkTest, LiveTraceReachesSinkWithLocation) {
  obs::CollectingTraceSink sink;
  xq::ExecuteOptions opts;
  opts.eval.trace_sink = &sink;
  auto result = xq::Run("\n  trace(\"hello\", 42)", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(sink.size(), 1u);
  obs::TraceEvent event = sink.Events()[0];
  EXPECT_EQ(event.kind, obs::TraceEvent::Kind::kTrace);
  EXPECT_EQ(event.source, "fn:trace");
  EXPECT_NE(event.message.find("hello"), std::string::npos);
  EXPECT_NE(event.message.find("42"), std::string::npos);
  // The satellite: events carry the source position of the trace() call.
  EXPECT_EQ(event.line, 2u);
  EXPECT_GT(event.col, 0u);
  // And the classic path still works.
  ASSERT_EQ(result->trace_output.size(), 1u);
}

// --- The paper's pathology, pinned ------------------------------------------
//
// "My demands that the optimizer be fixed to know about the special nature
// of the trace function fell on deaf ears" -- a trace() inside a dead let
// vanishes with it. Pin both directions so neither regresses silently.

constexpr char kDeadTraceQuery[] =
    "let $dbg := trace(\"you will not see this\", 1)\n"
    "return 7";

TEST(TraceDcePathologyTest, DefaultOptimizerSwallowsTraceVisibly) {
  obs::CollectingTraceSink sink;
  xq::CompileOptions copts;  // recognize_trace defaults to false: Galax mode
  auto compiled = xq::Compile(kDeadTraceQuery, copts);
  ASSERT_TRUE(compiled.ok());
  // The deletion happened...
  EXPECT_GT(compiled->optimizer_stats().eliminated_trace_calls, 0u);
  // ...and is no longer silent: the rewrite notes record it for EXPLAIN.
  bool noted = false;
  for (const auto& note : compiled->optimizer_stats().notes) {
    if (note.kind == xq::RewriteNote::Kind::kTraceSwallowed) noted = true;
  }
  EXPECT_TRUE(noted);

  xq::ExecuteOptions opts;
  opts.eval.trace_sink = &sink;
  auto result = xq::Execute(*compiled, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "7");
  EXPECT_EQ(sink.size(), 0u);  // the pathology: no event, anywhere
  EXPECT_TRUE(result->trace_output.empty());
}

TEST(TraceDcePathologyTest, RecognizeTraceDeliversTheEvent) {
  obs::CollectingTraceSink sink;
  xq::CompileOptions copts;
  copts.optimizer.recognize_trace = true;  // the fix Bloom asked for
  auto compiled = xq::Compile(kDeadTraceQuery, copts);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->optimizer_stats().eliminated_trace_calls, 0u);

  xq::ExecuteOptions opts;
  opts.eval.trace_sink = &sink;
  auto result = xq::Execute(*compiled, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SerializedItems(), "7");
  ASSERT_EQ(sink.size(), 1u);
  obs::TraceEvent event = sink.Events()[0];
  EXPECT_NE(event.message.find("you will not see this"), std::string::npos);
  EXPECT_EQ(event.line, 1u);
  EXPECT_GT(event.col, 0u);
}

}  // namespace
}  // namespace lll
