// Unit tests for lll::Status, lll::Result, string utilities, and the RNG.

#include <cmath>

#include "core/result.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/string_util.h"
#include "gtest/gtest.h"

namespace lll {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::NotFound("missing child");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing child");
  EXPECT_EQ(st.ToString(), "NotFound: missing child");
}

TEST(Status, GenTroubleContextStacks) {
  // The Java-rewrite error discipline: one message plus data-context frames.
  Status st = Status::CardinalityError(
      "There should have been exactly one SystemBeingDesigned node, "
      "but there were two.");
  st.AddContext("while expanding <system-context> in template node t4");
  st.AddContext("while generating document 'System Context'");
  EXPECT_EQ(st.context().size(), 2u);
  std::string report = st.ToString();
  EXPECT_NE(report.find("SystemBeingDesigned"), std::string::npos);
  EXPECT_NE(report.find("template node t4"), std::string::npos);
  EXPECT_NE(report.find("System Context"), std::string::npos);
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kCardinalityError,
        StatusCode::kConstructionError, StatusCode::kUnsupported,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(const std::string& s) {
  auto v = ParseInt(s);
  if (!v) return Status::Invalid("not a number: " + s);
  if (*v <= 0) return Status::OutOfRange("not positive: " + s);
  return static_cast<int>(*v);
}

Result<int> DoublePositive(const std::string& s) {
  LLL_ASSIGN_OR_RETURN(int v, ParsePositive(s));
  return v * 2;
}

TEST(Result, ValueAndErrorPaths) {
  auto ok = DoublePositive("21");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  auto bad = DoublePositive("x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto neg = DoublePositive("-3");
  EXPECT_FALSE(neg.ok());
  EXPECT_EQ(neg.status().code(), StatusCode::kOutOfRange);
}

TEST(Result, ValueOr) {
  EXPECT_EQ(ParsePositive("7").value_or(-1), 7);
  EXPECT_EQ(ParsePositive("z").value_or(-1), -1);
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace("\t\n x \r\n"), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringUtil, NormalizeSpace) {
  EXPECT_EQ(NormalizeSpace("  a   b\tc \n"), "a b c");
  EXPECT_EQ(NormalizeSpace(""), "");
  EXPECT_EQ(NormalizeSpace("solo"), "solo");
}

TEST(StringUtil, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split(",", ',').size(), 2u);
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtil, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("table-of-contents", "table"));
  EXPECT_FALSE(StartsWith("tab", "table"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_TRUE(Contains("abcdef", "cde"));
  EXPECT_FALSE(Contains("abc", "x"));
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // no re-scanning of output
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // empty needle is identity
}

TEST(StringUtil, ParseIntStrict) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
  EXPECT_EQ(ParseInt("+5").value(), 5);
  EXPECT_FALSE(ParseInt("42x").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("4.2").has_value());
}

TEST(StringUtil, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_TRUE(std::isnan(ParseDouble("NaN").value()));
  EXPECT_TRUE(std::isinf(ParseDouble("INF").value()));
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
  EXPECT_EQ(FormatDouble(std::nan("")), "NaN");
  EXPECT_EQ(FormatDouble(HUGE_VAL), "INF");
}

TEST(StringUtil, XmlNameValidation) {
  EXPECT_TRUE(IsValidXmlName("foo"));
  EXPECT_TRUE(IsValidXmlName("table-of-contents"));
  EXPECT_TRUE(IsValidXmlName("_x"));
  EXPECT_TRUE(IsValidXmlName("ns:local"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1bad"));
  EXPECT_FALSE(IsValidXmlName("no space"));
  EXPECT_FALSE(IsValidXmlName("-dash"));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, RangeStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace lll
