// EXPLAIN: the facility that finally answers "what did the optimizer do to
// my query?". Golden-substring tests over the rendered output: section
// structure, provenance, and one note per rewrite family (constant folds,
// dead lets, swallowed traces, order-analysis verdicts).

#include <string>

#include "gtest/gtest.h"
#include "obs/explain.h"
#include "xquery/engine.h"

namespace lll {
namespace {

std::string ExplainQuery(const std::string& source,
                         const xq::CompileOptions& copts = {},
                         const obs::ExplainOptions& eopts = {}) {
  auto compiled = xq::Compile(source, copts);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return obs::Explain(*compiled, eopts);
}

TEST(ExplainTest, SectionsAndProvenanceHeader) {
  obs::ExplainOptions eo;
  eo.provenance = "compile cache miss (compiled)";
  std::string out = ExplainQuery("1 + 2", {}, eo);
  EXPECT_NE(out.find("EXPLAIN"), std::string::npos) << out;
  EXPECT_NE(out.find("compile cache miss (compiled)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("== plan =="), std::string::npos) << out;
  EXPECT_NE(out.find("== rewrites =="), std::string::npos) << out;
  EXPECT_NE(out.find("== summary =="), std::string::npos) << out;
}

TEST(ExplainTest, ConstantFoldIsAnnotated) {
  std::string out = ExplainQuery("1 + 2");
  EXPECT_NE(out.find("constant-folded"), std::string::npos) << out;
  // The plan shows the folded literal, not the original addition.
  EXPECT_NE(out.find("3"), std::string::npos) << out;
}

TEST(ExplainTest, DeadLetAndSwallowedTraceAreAnnotatedWithLocation) {
  std::string out = ExplainQuery(
      "let $dbg := trace(\"gone\", 1)\n"
      "return 7");
  EXPECT_NE(out.find("dead-let-eliminated"), std::string::npos) << out;
  EXPECT_NE(out.find("trace-swallowed"), std::string::npos) << out;
  EXPECT_NE(out.find("$dbg"), std::string::npos) << out;
  // Every note carries its source position; the let sits on line 1.
  EXPECT_NE(out.find("1:"), std::string::npos) << out;
}

TEST(ExplainTest, RecognizeTraceLeavesNoSwallowNote) {
  xq::CompileOptions copts;
  copts.optimizer.recognize_trace = true;
  std::string out = ExplainQuery(
      "let $dbg := trace(\"kept\", 1)\n"
      "return 7",
      copts);
  EXPECT_EQ(out.find("trace-swallowed"), std::string::npos) << out;
}

TEST(ExplainTest, OrderAnalysisVerdictShowsInPlanAndNotes) {
  std::string out = ExplainQuery("/library/book/title");
  // PR 2's order analysis proves forward child chains document-ordered;
  // EXPLAIN surfaces both the [ordered] plan annotation and the note.
  EXPECT_NE(out.find("[ordered]"), std::string::npos) << out;
  EXPECT_NE(out.find("ordered-step"), std::string::npos) << out;
  EXPECT_NE(out.find("sort skipped"), std::string::npos) << out;
}

TEST(ExplainTest, ReverseAxisStepsAreMarkedStreamedRev) {
  std::string out = ExplainQuery("//d/ancestor::a");
  EXPECT_NE(out.find("step ancestor::a [streamed-rev]"), std::string::npos)
      << out;
  // Forward steps keep the plain marker.
  EXPECT_NE(out.find("[streamed]"), std::string::npos) << out;
}

TEST(ExplainTest, TracePredicateDisqualifiesStreamingAnnotation) {
  // The trace-parity rule: a predicate containing fn:trace (or any user
  // function) must not be annotated streamable, or EXPLAIN would promise a
  // plan the evaluator refuses to run.
  std::string out = ExplainQuery("//a[trace(@k)]");
  EXPECT_EQ(out.find("child::a [streamed]"), std::string::npos) << out;
  std::string udf = ExplainQuery(
      "declare function local:p($n) { true() }; //a[local:p(.)]");
  EXPECT_EQ(udf.find("child::a [streamed]"), std::string::npos) << udf;
}

TEST(ExplainTest, LimitPushdownShowsHintNoteAndSummary) {
  std::string out = ExplainQuery("subsequence(//a, 1, 3)");
  EXPECT_NE(out.find("[limit 3]"), std::string::npos) << out;
  EXPECT_NE(out.find("limit-pushed"), std::string::npos) << out;
  EXPECT_NE(out.find("limits_pushed: 1"), std::string::npos) << out;

  std::string head = ExplainQuery("head(//a/b)");
  EXPECT_NE(head.find("[limit 1]"), std::string::npos) << head;

  // A non-literal bound cannot be pushed.
  std::string dynamic = ExplainQuery("subsequence(//a, 1, count(//b))");
  EXPECT_EQ(dynamic.find("[limit"), std::string::npos) << dynamic;
  EXPECT_NE(dynamic.find("limits_pushed: 0"), std::string::npos) << dynamic;
}

TEST(ExplainTest, UnoptimizedCompileHasNoRewrites) {
  xq::CompileOptions copts;
  copts.optimize = false;
  std::string out = ExplainQuery("1 + 2", copts);
  // The plan shows the raw addition and the rewrite log is empty.
  EXPECT_EQ(out.find("constant-folded"), std::string::npos) << out;
  EXPECT_NE(out.find("+"), std::string::npos) << out;
}

TEST(ExplainTest, FunctionsAndVariablesGetTheirOwnSections) {
  std::string out = ExplainQuery(
      "declare function local:twice($x) { $x * 2 };\n"
      "declare variable $base := 10;\n"
      "local:twice($base)");
  EXPECT_NE(out.find("== function local:twice#1 =="), std::string::npos)
      << out;
  EXPECT_NE(out.find("== variable $base =="), std::string::npos) << out;
}

TEST(ExplainExprTest, DepthCapElides) {
  xq::CompileOptions copts;
  copts.optimize = false;
  auto compiled = xq::Compile("((((1))))+(2+(3+(4+(5+6))))", copts);
  ASSERT_TRUE(compiled.ok());
  std::string shallow =
      obs::ExplainExpr(*compiled->module().body, /*max_depth=*/1);
  EXPECT_NE(shallow.find("..."), std::string::npos) << shallow;
  std::string deep = obs::ExplainExpr(*compiled->module().body);
  EXPECT_EQ(deep.find("..."), std::string::npos) << deep;
}

}  // namespace
}  // namespace lll
