// Concurrency stress tests, labeled `concurrency` so they can be run under
// ThreadSanitizer (-DLLL_SANITIZE=thread) in isolation. The common pattern:
// compute a single-threaded oracle first, hammer the same work from many
// threads, and require byte-for-byte identical answers.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "core/thread_pool.h"
#include "docgen/native_engine.h"
#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xquery/engine.h"
#include "xquery/query_cache.h"

namespace lll {
namespace {

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForIsReusable) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(100, [&](size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, ZeroThreadPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<size_t> order;  // no atomics needed: everything is inline
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 50);
}

// --- Shared CompiledQuery, many executors -----------------------------------

// The engine.h concurrency contract, enforced: one CompiledQuery, many
// threads calling Execute, every result identical to the single-threaded one.
TEST(SharedCompiledQueryTest, ManyThreadsManyExecutionsMatchOracle) {
  // A query with real moving parts: construction, FLWOR, sorting, and a
  // recursive user function -- enough to touch most evaluator state.
  const char* kQuery = R"XQ(
declare function local:fib($n) {
  if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2)
};
let $items := for $i in 1 to 8 order by -$i return <n v="{$i}">{local:fib($i)}</n>
return <out>{$items}</out>
)XQ";
  auto compiled_result = xq::Compile(kQuery);
  ASSERT_TRUE(compiled_result.ok()) << compiled_result.status().ToString();
  const xq::CompiledQuery compiled = std::move(*compiled_result);

  auto oracle_result = xq::Execute(compiled);
  ASSERT_TRUE(oracle_result.ok());
  const std::string oracle = oracle_result->SerializedItems();
  ASSERT_FALSE(oracle.empty());

  constexpr int kThreads = 8;
  constexpr int kExecutionsPerThread = 25;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&compiled, &oracle, &failures, t] {
      for (int i = 0; i < kExecutionsPerThread; ++i) {
        auto r = xq::Execute(compiled);
        if (!r.ok()) {
          failures[t] = r.status().ToString();
          return;
        }
        if (r->SerializedItems() != oracle) {
          failures[t] = "result diverged from oracle";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }
}

// --- QueryCache under contention --------------------------------------------

// Tiny capacity + more distinct queries than slots: every thread keeps
// forcing evictions while the others hold live handles to evicted entries.
TEST(QueryCacheConcurrencyTest, TinyCacheManyThreadsStaysCoherent) {
  xq::QueryCache cache(/*capacity=*/4);
  constexpr int kDistinctQueries = 16;
  constexpr int kThreads = 8;
  constexpr int kLookupsPerThread = 100;

  // Query i must evaluate to i; precompute the texts.
  std::vector<std::string> queries;
  for (int i = 0; i < kDistinctQueries; ++i) {
    queries.push_back("sum(1 to " + std::to_string(i) + ")");
  }
  std::vector<std::string> expected;
  for (int i = 0; i < kDistinctQueries; ++i) {
    expected.push_back(std::to_string(i * (i + 1) / 2));
  }

  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the query list at its own stride, so threads are
      // always asking for different entries at the same instant.
      for (int i = 0; i < kLookupsPerThread; ++i) {
        int q = (i * (t + 1) + t) % kDistinctQueries;
        auto compiled = cache.GetOrCompile(queries[q]);
        if (!compiled.ok()) {
          failures[t] = compiled.status().ToString();
          return;
        }
        auto result = xq::Execute(**compiled);
        if (!result.ok()) {
          failures[t] = result.status().ToString();
          return;
        }
        if (result->SerializedItems() != expected[q]) {
          failures[t] = "query " + queries[q] + " produced " +
                        result->SerializedItems() + ", want " + expected[q];
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }

  CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, uint64_t{kThreads} * kLookupsPerThread);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(s.evictions, 0u);  // 16 queries through 4 slots must evict
}

// --- Shared document-order index ---------------------------------------------

// Many threads share one input document whose order-key index starts STALE;
// every `//` query forces document-order sorts, so the threads race to
// (re)build the index. The mutex-guarded rebuild plus release/acquire version
// publication must make this TSan-clean and the answers identical.
TEST(SharedDocumentOrderIndexTest, ConcurrentQueriesRebuildOnce) {
  // A bushy document: enough nodes that sorts actually compare things.
  std::string text = "<root>";
  for (int i = 0; i < 40; ++i) {
    text += "<group id='" + std::to_string(i) + "'>";
    for (int j = 0; j < 5; ++j) text += "<leaf/>";
    text += "</group>";
  }
  text += "</root>";
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  // Parsing mutates structure, so the index is stale at this point.
  ASSERT_FALSE((*doc)->order_index_fresh());

  auto compiled = xq::Compile("count(//leaf) + count(//group)");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        xq::ExecuteOptions opts;
        opts.context_node = (*doc)->root();
        auto r = xq::Execute(*compiled, opts);
        if (!r.ok()) {
          failures[t] = r.status().ToString();
          return;
        }
        if (r->SerializedItems() != "240") {
          failures[t] = "got " + r->SerializedItems() + ", want 240";
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }
  EXPECT_TRUE((*doc)->order_index_fresh());
}

// Raw comparator hammering: threads compare random-ish node pairs directly
// while the index is initially stale. Checksums must match a single-threaded
// oracle pass.
TEST(SharedDocumentOrderIndexTest, ConcurrentDirectComparesMatchOracle) {
  xml::Document doc;
  xml::Node* root = doc.CreateElement("r");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());
  std::vector<xml::Node*> nodes;
  std::vector<xml::Node*> elems;
  for (int i = 0; i < 64; ++i) {
    xml::Node* e = doc.CreateElement("e");
    xml::Node* parent =
        (i % 3 == 0 || elems.empty()) ? root : elems[static_cast<size_t>(i / 2)];
    ASSERT_TRUE(parent->AppendChild(e).ok());
    e->SetAttribute("k", std::to_string(i));
    elems.push_back(e);
    nodes.push_back(e);
    nodes.push_back(e->AttributeNode("k"));
  }

  auto checksum = [&nodes] {
    long sum = 0;
    for (size_t a = 0; a < nodes.size(); ++a) {
      for (size_t b = a + 1; b < nodes.size(); ++b) {
        sum += xml::CompareDocumentOrder(nodes[a], nodes[b]);
      }
    }
    return sum;
  };
  const long oracle = checksum();

  // Invalidate the index without disturbing the relative order of `nodes`:
  // creating a (detached) node bumps the structure version but only shifts
  // existing keys uniformly. The threads below race to rebuild.
  doc.CreateElement("spare");
  ASSERT_FALSE(doc.order_index_fresh());

  constexpr int kThreads = 8;
  std::vector<long> sums(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { sums[static_cast<size_t>(t)] = checksum(); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[static_cast<size_t>(t)], oracle) << "thread " << t;
  }
}

// --- Parallel docgen --------------------------------------------------------

class ParallelDocgenTest : public ::testing::Test {
 protected:
  ParallelDocgenTest() : mm_(awb::MakeItArchitectureMetamodel()) {
    awb::GeneratorConfig config;
    config.seed = 20260806;
    config.users = 8;
    config.servers = 3;
    config.subsystems = 4;
    config.programs = 10;
    config.requirements = 6;
    config.documents = 4;
    model_ = std::make_unique<awb::Model>(
        awb::GenerateItModel(&mm_, config));
  }

  awb::Metamodel mm_;
  std::unique_ptr<awb::Model> model_;
};

// A template with one of everything the merge has to get right: multiple
// top-level sections (toc entries from different chunks), a fan-out <for>,
// a table of contents *before* the sections it lists, a placeholder defined
// in one chunk and used in another, and a table of omissions at the end.
const char kBatchTemplate[] = R"(<doc>
<table-of-contents/>
<placeholder name="SERVER-TABLE"><table rows="from type:Server; sort label"
  cols="from type:Program; sort label" relation="runs" corner="server\prog"/></placeholder>
<section heading="Users"><p>SERVER-TABLE-GOES-HERE</p></section>
<for nodes="from type:User; sort label">
  <section heading="About {label}"><label/>
    <for nodes="from focus; follow likes>; sort label"><p>likes <label/></p></for>
  </section>
</for>
<section heading="Programs">
  <for nodes="from type:Program; sort label"><p><value-of property="language" default="?"/></p></for>
</section>
<table-of-omissions types="Document"/>
</doc>)";

TEST_F(ParallelDocgenTest, ParallelOutputIsByteIdenticalToSequential) {
  auto doc = docgen::ParseTemplate(kBatchTemplate);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const xml::Node* root = (*doc)->DocumentElement();

  auto sequential = docgen::GenerateNative(root, *model_);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  const std::string want = sequential->Serialized(2);
  ASSERT_FALSE(want.empty());

  // Several pool shapes, including 0 workers (inline) and more workers than
  // a single core can run at once.
  for (size_t workers : {size_t{0}, size_t{1}, size_t{4}, size_t{8}}) {
    ThreadPool pool(workers);
    auto parallel =
        docgen::GenerateNativeParallel(root, *model_, {}, &pool);
    ASSERT_TRUE(parallel.ok())
        << workers << " workers: " << parallel.status().ToString();
    EXPECT_EQ(parallel->Serialized(2), want) << workers << " workers";
    EXPECT_EQ(parallel->stats.nodes_visited, sequential->stats.nodes_visited);
    EXPECT_EQ(parallel->stats.toc_entries, sequential->stats.toc_entries);
    EXPECT_EQ(parallel->stats.directives_processed,
              sequential->stats.directives_processed);
    EXPECT_EQ(parallel->stats.omissions_listed,
              sequential->stats.omissions_listed);
    EXPECT_EQ(parallel->stats.placeholders_defined,
              sequential->stats.placeholders_defined);
    EXPECT_EQ(parallel->stats.placeholder_replacements,
              sequential->stats.placeholder_replacements);
  }

  // A null pool must work too (pure inline batch path).
  auto inline_run = docgen::GenerateNativeParallel(root, *model_, {}, nullptr);
  ASSERT_TRUE(inline_run.ok());
  EXPECT_EQ(inline_run->Serialized(2), want);
}

TEST_F(ParallelDocgenTest, ErrorPolicyEmbedMatchesSequentially) {
  // Missing `version` on some Documents (omission_rate > 0) plus no default
  // makes <value-of> embed errors; the embedded errors must land in the same
  // places in parallel mode.
  const char* tmpl =
      "<doc><for nodes=\"from type:Document; sort label\">"
      "<p><value-of property=\"version\"/></p></for></doc>";
  auto doc = docgen::ParseTemplate(tmpl);
  ASSERT_TRUE(doc.ok());
  docgen::GenerateOptions options;
  options.error_policy = docgen::GenerateOptions::ErrorPolicy::kEmbed;

  auto sequential =
      docgen::GenerateNative((*doc)->DocumentElement(), *model_, options);
  ASSERT_TRUE(sequential.ok());

  ThreadPool pool(4);
  auto parallel = docgen::GenerateNativeParallel((*doc)->DocumentElement(),
                                                 *model_, options, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->Serialized(2), sequential->Serialized(2));
  EXPECT_EQ(parallel->stats.errors_embedded, sequential->stats.errors_embedded);
}

TEST_F(ParallelDocgenTest, ErrorPolicyPropagateReturnsFirstErrorInOrder) {
  // Two failing directives; the parallel engine must report the first one in
  // document order no matter which chunk finishes first.
  const char* tmpl =
      "<doc><p><value-of property=\"x\"/></p>"
      "<p><label/></p></doc>";  // both fail: no focus
  auto doc = docgen::ParseTemplate(tmpl);
  ASSERT_TRUE(doc.ok());

  auto sequential = docgen::GenerateNative((*doc)->DocumentElement(), *model_);
  ASSERT_FALSE(sequential.ok());

  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    auto parallel = docgen::GenerateNativeParallel((*doc)->DocumentElement(),
                                                   *model_, {}, &pool);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().ToString(), sequential.status().ToString());
  }
}

}  // namespace
}  // namespace lll
