// Tests for the streaming path pipeline: differential agreement with the
// materializing evaluator, early-exit accounting, and the deep-tree
// regression for the iterative descendant collector.

#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll {
namespace {

// A document with enough shape variety to exercise every streamable axis:
// repeated names at several depths, attributes, text, and siblings.
constexpr char kDoc[] =
    "<r id=\"root\">"
    "  <a k=\"1\"><b><c>one</c><d/></b><b w=\"x\"><c>two</c></b></a>"
    "  <a><c>three</c><b><d p=\"q\"/><c>four</c></b></a>"
    "  <d><a><b><c>five</c></b></a><c>six</c></d>"
    "  <b/><a k=\"2\"/>"
    "</r>";

// Runs `query` against `xml` twice -- streaming pipeline on (the default)
// and off -- and expects identical serialized results. Returns the shared
// serialization for further assertions.
std::string EvalBothModes(const std::string& query, const std::string& xml) {
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return "<PARSE ERROR>";
  auto compiled = xq::Compile(query);
  EXPECT_TRUE(compiled.ok()) << query << "\n" << compiled.status().ToString();
  if (!compiled.ok()) return "<COMPILE ERROR>";

  xq::ExecuteOptions streamed_opts;
  streamed_opts.context_node = (*doc)->root();
  xq::ExecuteOptions materializing_opts = streamed_opts;
  materializing_opts.eval.streaming = false;

  auto streamed = xq::Execute(*compiled, streamed_opts);
  auto materialized = xq::Execute(*compiled, materializing_opts);
  EXPECT_EQ(streamed.ok(), materialized.ok()) << query;
  if (!streamed.ok() || !materialized.ok()) return "<ERROR>";
  EXPECT_EQ(streamed->SerializedItems(), materialized->SerializedItems())
      << "streamed and materializing evaluators diverge on: " << query;
  // The materializing arm never pulls through the pipeline.
  EXPECT_EQ(materialized->stats.nodes_pulled, 0u) << query;
  return streamed->SerializedItems();
}

TEST(Streaming, AgreesOnCorePathShapes) {
  const char* queries[] = {
      "//c",
      "//c/text()",
      "/r/a/b/c",
      "//b[1]",
      "//b[2]",
      "(//b)[1]",
      "(//c)[3]",
      "//a[@k]",
      "//a[@k=\"2\"]",
      "//b[c]",
      "//b[c][1]",
      "//*[@w]",
      "/r/a//c",
      "//a/b/following-sibling::b",
      "//d/ancestor::a",          // reverse axis: streamed reverse merge
      "//c/ancestor::b",
      "//c/ancestor-or-self::*",
      "//c/parent::b",
      "//d/parent::*",
      "//b/preceding-sibling::b",
      "//c/preceding-sibling::*",
      "(//d/ancestor::a)[1]",
      "//c/ancestor::a[1]",       // per-context nearest matching ancestor
      "//c/ancestor::*[2]",
      "//d/ancestor-or-self::d",
      "exists(//c/ancestor::d)",
      "count(//c/ancestor::a)",
      "//d/ancestor::a/c",        // reverse then forward again
      "//@p/ancestor::b",         // attribute context: slotted after owner
      "//@k/parent::a",
      "//a/@k/ancestor-or-self::*",
      "//c[last()]",              // last(): streaming disqualified
      "(//c)[last()]",
      "count(//c)",
      "exists(//b/d)",
      "empty(//nosuch)",
      "exists(//nosuch)",
      "//a[b/c]",
      "string(//c[1])",
  };
  for (const char* q : queries) EvalBothModes(q, kDoc);
}

// The property test: a few hundred randomly composed path expressions,
// evaluated in both modes over a randomly grown document. Any divergence
// between the streamed pipeline and the reference evaluator fails with the
// offending query text.
TEST(Streaming, DifferentialRandomPaths) {
  // The generators live in test_util.h so the server differential test can
  // run the exact same 440-query workload through sessions. Reverse axes
  // appear as explicit prefixes; attribute steps as "@k" (the only attribute
  // name the generator emits), so ancestor-from-attribute exercises the
  // "slotted after owner" order keys.
  std::mt19937 rng(20260806);  // fixed seed: failures must reproduce
  std::string xml = testing::RandomPathWorkloadDocument(&rng);
  std::vector<std::string> queries =
      testing::RandomPathWorkloadQueries(&rng, 440);

  int checked = 0;
  for (const std::string& query : queries) {
    EvalBothModes(query, xml);
    ++checked;
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
  EXPECT_GE(checked, 400);
}

TEST(Streaming, EarlyExitSkipsWorkOnFirstMatch) {
  // A wide document: one thousand <x> leaves under one root.
  std::string xml = "<r>";
  for (int i = 0; i < 1000; ++i) {
    xml += "<x n=\"" + std::to_string(i) + "\"/>";
  }
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();

  auto first = xq::Compile("(//x)[1]");
  ASSERT_TRUE(first.ok());
  auto r = xq::Execute(*first, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->SerializedItems(), "<x n=\"0\"/>");
  // The pipeline stopped after the first match: nearly the whole candidate
  // space was abandoned unvisited, and only a handful of nodes were pulled.
  EXPECT_GT(r->stats.nodes_skipped_early_exit, 900u);
  EXPECT_LT(r->stats.nodes_pulled, 100u);

  auto probe = xq::Compile("exists(//x)");
  ASSERT_TRUE(probe.ok());
  auto e = xq::Execute(*probe, opts);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->SerializedItems(), "true");
  EXPECT_LT(e->stats.nodes_pulled, 100u);

  // The prefixed spellings take the same limit-1 probe (EvalFunctionCall
  // strips "fn:" before the name check).
  for (const char* q : {"fn:exists(//x)", "fn:empty(//x)"}) {
    auto prefixed = xq::Compile(q);
    ASSERT_TRUE(prefixed.ok()) << q;
    auto p = xq::Execute(*prefixed, opts);
    ASSERT_TRUE(p.ok()) << q;
    EXPECT_EQ(p->SerializedItems(),
              std::string(q).find("empty") != std::string::npos ? "false"
                                                                : "true")
        << q;
    EXPECT_LT(p->stats.nodes_pulled, 100u) << q;
  }

  // With streaming off the same queries visit everything and pull nothing
  // through the (absent) pipeline.
  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;
  auto m = xq::Execute(*first, materializing);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->SerializedItems(), "<x n=\"0\"/>");
  EXPECT_EQ(m->stats.nodes_pulled, 0u);
  EXPECT_EQ(m->stats.nodes_skipped_early_exit, 0u);
}

TEST(Streaming, PerStepPositionalPredicateStopsPerRun) {
  // //item[1] is per-parent: the first item of EVERY group. Early exit
  // applies within each group's run, not to the whole result.
  const std::string xml =
      "<r><g><item>1</item><item>2</item><item>3</item></g>"
      "<g><item>4</item><item>5</item></g></r>";
  // Adjacent text nodes serialize with no separator: "1" then "4".
  EXPECT_EQ(testing::EvalWithContext("//item[1]/text()", xml), "14");
  EXPECT_EQ(EvalBothModes("//item[1]/text()", xml), "14");
  EXPECT_EQ(EvalBothModes("(//item)[1]/text()", xml), "1");
  EXPECT_EQ(EvalBothModes("//item[2]/text()", xml), "25");
  EXPECT_EQ(EvalBothModes("string((//item)[2])", xml), "2");
}

TEST(Streaming, ReverseAxisMergesRunsWithoutSorting) {
  // 40 groups, each a 5-deep <y> chain holding two <x/> leaves: 80 ancestor
  // runs of depth ~6 feed the k-way merge.
  std::string xml = "<r>";
  for (int g = 0; g < 40; ++g) {
    for (int d = 0; d < 5; ++d) xml += "<y>";
    xml += "<x/><x/>";
    for (int d = 0; d < 5; ++d) xml += "</y>";
  }
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();

  // Differential agreement on the merge + dedup itself.
  EvalBothModes("count(//x/ancestor::y)", xml);      // 200 after dedup
  EvalBothModes("//x/ancestor::y[1]", xml);          // nearest per context
  EvalBothModes("(//x/ancestor::y)[1]", xml);        // global first
  EvalBothModes("//x/ancestor-or-self::*[2]", xml);
  EvalBothModes("//x/preceding-sibling::x", xml);

  // Every <x> context contributes one non-empty ancestor run to the merge.
  auto compiled = xq::Compile("count(//x/ancestor::y)");
  ASSERT_TRUE(compiled.ok());
  auto r = xq::Execute(*compiled, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->SerializedItems(), "200");
  EXPECT_EQ(r->stats.reverse_runs_merged, 80u);
  // The merge emits document order directly; no normalizing sort of the
  // 80*5-candidate multiset happens downstream.
  EXPECT_EQ(r->stats.sorts_performed, 0u);

  // The materializing arm never builds runs.
  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;
  auto m = xq::Execute(*compiled, materializing);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->SerializedItems(), "200");
  EXPECT_EQ(m->stats.reverse_runs_merged, 0u);

  // A per-run [1] predicate keeps only the nearest ancestor and exhausts
  // each run after its first candidate.
  auto nearest = xq::Compile("count(//x/ancestor::y[1])");
  ASSERT_TRUE(nearest.ok());
  auto n = xq::Execute(*nearest, opts);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->SerializedItems(), "40");  // 80 runs, 40 distinct nearest <y>
}

TEST(Streaming, TraceInPredicateKeepsEventParity) {
  // fn:trace inside a step predicate disqualifies streaming for that step
  // (trace-parity rule): the streamed plan must fall back so that BOTH the
  // result bytes and the trace event stream are identical to the
  // materializing evaluator -- even under early-exit probes that would
  // otherwise skip predicate evaluations entirely.
  const std::string xml =
      "<r><x n=\"1\"/><x n=\"2\"/><x n=\"3\"/><x n=\"4\"/></r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  const char* queries[] = {
      "exists(//x[trace(@n, \"probe\")])",
      "(//x[trace(@n, \"first\")])[1]",
      "//x[trace(position()) < 3]",  // trace returns its last argument
      "count(//x[trace(@n, \"all\")])",
  };
  for (const char* q : queries) {
    auto compiled = xq::Compile(q);
    ASSERT_TRUE(compiled.ok()) << q;
    xq::ExecuteOptions opts;
    opts.context_node = (*doc)->root();
    xq::ExecuteOptions materializing = opts;
    materializing.eval.streaming = false;
    auto streamed = xq::Execute(*compiled, opts);
    auto reference = xq::Execute(*compiled, materializing);
    ASSERT_TRUE(streamed.ok() && reference.ok()) << q;
    EXPECT_EQ(streamed->SerializedItems(), reference->SerializedItems()) << q;
    EXPECT_EQ(streamed->trace_output, reference->trace_output)
        << "trace event streams diverge on: " << q;
    EXPECT_FALSE(streamed->trace_output.empty()) << q;
  }
}

TEST(Streaming, NestedProbeSkipsAreNotDoubleCounted) {
  // Each [y] probe early-exits after finding <y/> and abandons the sibling
  // <z/>. Those probe abandons must NOT be charged to
  // nodes_skipped_early_exit: the <z/> candidates are pulled (and charged)
  // by the outer walk afterwards. A full drain therefore skips exactly 0.
  std::string xml = "<r>";
  for (int i = 0; i < 10; ++i) xml += "<x><y/><z/></x>";
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();

  auto full = xq::Compile("count(//x[y])");
  ASSERT_TRUE(full.ok());
  auto r = xq::Execute(*full, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->SerializedItems(), "10");
  EXPECT_EQ(r->stats.nodes_skipped_early_exit, 0u);

  // Under an outer early exit the charge must be identical whether the
  // nested probe itself early-exited ([y] abandons <z/>) or ran dry ([z]
  // scans past <y/>): only the outer pipeline's unvisited candidates count.
  auto probe_y = xq::Compile("(//x[y])[1]");
  auto probe_z = xq::Compile("(//x[z])[1]");
  ASSERT_TRUE(probe_y.ok() && probe_z.ok());
  auto ry = xq::Execute(*probe_y, opts);
  auto rz = xq::Execute(*probe_z, opts);
  ASSERT_TRUE(ry.ok() && rz.ok());
  EXPECT_EQ(ry->stats.nodes_skipped_early_exit,
            rz->stats.nodes_skipped_early_exit);
  EXPECT_GT(ry->stats.nodes_skipped_early_exit, 10u);  // the other 9 subtrees
}

TEST(Streaming, LimitHintStopsPullingEarly) {
  std::string xml = "<r>";
  for (int i = 0; i < 1000; ++i) {
    xml += "<x n=\"" + std::to_string(i) + "\"/>";
  }
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;

  struct PushedCase {
    const char* query;
    const char* expected;
  };
  const PushedCase cases[] = {
      {"subsequence(//x, 1, 2)", "<x n=\"0\"/><x n=\"1\"/>"},
      {"subsequence(//x, 2, 2)", "<x n=\"1\"/><x n=\"2\"/>"},
      {"fn:head(//x)", "<x n=\"0\"/>"},
      {"for $v at $p in //x where $p le 2 return $v",
       "<x n=\"0\"/><x n=\"1\"/>"},
      {"let $s := //x return head($s)", "<x n=\"0\"/>"},
  };
  for (const PushedCase& c : cases) {
    auto compiled = xq::Compile(c.query);
    ASSERT_TRUE(compiled.ok()) << c.query;
    auto streamed = xq::Execute(*compiled, opts);
    ASSERT_TRUE(streamed.ok()) << c.query;
    EXPECT_EQ(streamed->SerializedItems(), c.expected) << c.query;
    EXPECT_EQ(streamed->stats.limit_pushdowns, 1u) << c.query;
    // The pipeline stopped pulling after the demanded prefix.
    EXPECT_LT(streamed->stats.nodes_pulled, 100u) << c.query;
    EXPECT_GT(streamed->stats.nodes_skipped_early_exit, 900u) << c.query;
    // streaming=false ignores the hint and stays byte-identical.
    auto reference = xq::Execute(*compiled, materializing);
    ASSERT_TRUE(reference.ok()) << c.query;
    EXPECT_EQ(reference->SerializedItems(), c.expected) << c.query;
    EXPECT_EQ(reference->stats.limit_pushdowns, 0u) << c.query;
  }

  // Non-literal bounds, multiple uses, and intervening clauses are not
  // pushed -- the full scan must still produce correct results.
  const char* unpushed[] = {
      "subsequence(//x, 1, count(//x))",
      "let $s := //x return (head($s), count($s))",
      "for $v at $p in //x let $n := $v where $p le 2 return $n",
  };
  for (const char* q : unpushed) {
    auto compiled = xq::Compile(q);
    ASSERT_TRUE(compiled.ok()) << q;
    auto streamed = xq::Execute(*compiled, opts);
    ASSERT_TRUE(streamed.ok()) << q;
    EXPECT_EQ(streamed->stats.limit_pushdowns, 0u) << q;
    auto reference = xq::Execute(*compiled, materializing);
    ASSERT_TRUE(reference.ok()) << q;
    EXPECT_EQ(streamed->SerializedItems(), reference->SerializedItems()) << q;
  }
}

TEST(Streaming, DeepTreeDoesNotOverflowTheStack) {
  // A 100k-deep element chain. Built programmatically (the parser is not
  // under test here); both the streamed descendant walk and the
  // materializing CollectDescendants must traverse it iteratively.
  constexpr size_t kDepth = 100000;
  xml::Document doc;
  xml::Node* cursor = doc.root();
  for (size_t i = 0; i < kDepth; ++i) {
    xml::Node* child = doc.CreateElement(i + 1 == kDepth ? "leaf" : "n");
    ASSERT_TRUE(cursor->AppendChild(child).ok());
    cursor = child;
  }

  auto count = xq::Compile("count(//n)");
  ASSERT_TRUE(count.ok());
  xq::ExecuteOptions opts;
  opts.context_node = doc.root();
  auto streamed = xq::Execute(*count, opts);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->SerializedItems(), std::to_string(kDepth - 1));

  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;
  auto reference = xq::Execute(*count, materializing);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->SerializedItems(), std::to_string(kDepth - 1));

  // Early exit deep in the chain must unwind iteratively too.
  auto probe = xq::Compile("exists(//leaf)");
  ASSERT_TRUE(probe.ok());
  auto e = xq::Execute(*probe, opts);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->SerializedItems(), "true");
}

}  // namespace
}  // namespace lll
