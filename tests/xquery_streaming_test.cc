// Tests for the streaming path pipeline: differential agreement with the
// materializing evaluator, early-exit accounting, and the deep-tree
// regression for the iterative descendant collector.

#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll {
namespace {

// A document with enough shape variety to exercise every streamable axis:
// repeated names at several depths, attributes, text, and siblings.
constexpr char kDoc[] =
    "<r id=\"root\">"
    "  <a k=\"1\"><b><c>one</c><d/></b><b w=\"x\"><c>two</c></b></a>"
    "  <a><c>three</c><b><d p=\"q\"/><c>four</c></b></a>"
    "  <d><a><b><c>five</c></b></a><c>six</c></d>"
    "  <b/><a k=\"2\"/>"
    "</r>";

// Runs `query` against `xml` twice -- streaming pipeline on (the default)
// and off -- and expects identical serialized results. Returns the shared
// serialization for further assertions.
std::string EvalBothModes(const std::string& query, const std::string& xml) {
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return "<PARSE ERROR>";
  auto compiled = xq::Compile(query);
  EXPECT_TRUE(compiled.ok()) << query << "\n" << compiled.status().ToString();
  if (!compiled.ok()) return "<COMPILE ERROR>";

  xq::ExecuteOptions streamed_opts;
  streamed_opts.context_node = (*doc)->root();
  xq::ExecuteOptions materializing_opts = streamed_opts;
  materializing_opts.eval.streaming = false;

  auto streamed = xq::Execute(*compiled, streamed_opts);
  auto materialized = xq::Execute(*compiled, materializing_opts);
  EXPECT_EQ(streamed.ok(), materialized.ok()) << query;
  if (!streamed.ok() || !materialized.ok()) return "<ERROR>";
  EXPECT_EQ(streamed->SerializedItems(), materialized->SerializedItems())
      << "streamed and materializing evaluators diverge on: " << query;
  // The materializing arm never pulls through the pipeline.
  EXPECT_EQ(materialized->stats.nodes_pulled, 0u) << query;
  return streamed->SerializedItems();
}

TEST(Streaming, AgreesOnCorePathShapes) {
  const char* queries[] = {
      "//c",
      "//c/text()",
      "/r/a/b/c",
      "//b[1]",
      "//b[2]",
      "(//b)[1]",
      "(//c)[3]",
      "//a[@k]",
      "//a[@k=\"2\"]",
      "//b[c]",
      "//b[c][1]",
      "//*[@w]",
      "/r/a//c",
      "//a/b/following-sibling::b",
      "//d/ancestor::a",          // reverse axis: materializing fallback
      "//c[last()]",              // last(): streaming disqualified
      "(//c)[last()]",
      "count(//c)",
      "exists(//b/d)",
      "empty(//nosuch)",
      "exists(//nosuch)",
      "//a[b/c]",
      "string(//c[1])",
  };
  for (const char* q : queries) EvalBothModes(q, kDoc);
}

// The property test: a few hundred randomly composed path expressions,
// evaluated in both modes over a randomly grown document. Any divergence
// between the streamed pipeline and the reference evaluator fails with the
// offending query text.
TEST(Streaming, DifferentialRandomPaths) {
  std::mt19937 rng(20260806);  // fixed seed: failures must reproduce
  auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };

  // Grow a random document as text: ~200 elements, names drawn from a small
  // alphabet so paths collide with real structure often.
  const char* names[] = {"a", "b", "c", "d"};
  std::string xml = "<r>";
  std::vector<std::string> open;
  for (int i = 0; i < 200; ++i) {
    int action = pick(open.size() > 6 ? 3 : 2);
    if (action == 2 && !open.empty()) {
      xml += "</" + open.back() + ">";
      open.pop_back();
      continue;
    }
    std::string name = names[pick(4)];
    xml += "<" + name;
    if (pick(3) == 0) xml += " k=\"" + std::to_string(pick(4)) + "\"";
    if (action == 0) {
      xml += "/>";
    } else {
      xml += ">";
      open.push_back(name);
      if (pick(4) == 0) xml += "t" + std::to_string(pick(9));
    }
  }
  while (!open.empty()) {
    xml += "</" + open.back() + ">";
    open.pop_back();
  }
  xml += "</r>";

  const char* axes[] = {"/", "//", "/", "//"};
  const char* tests[] = {"a", "b", "c", "d", "*", "a", "b"};
  const char* preds[] = {"",      "",       "[1]",    "[2]",
                         "[last()]", "[@k]",   "[@k=\"1\"]", "[c]",
                         "[position() < 3]", "[b/c]"};
  int checked = 0;
  for (int i = 0; i < 320; ++i) {
    std::string path;
    int steps = 1 + pick(4);
    for (int s = 0; s < steps; ++s) {
      path += axes[pick(4)];
      path += tests[pick(7)];
      path += preds[pick(10)];
    }
    std::string query = path;
    switch (pick(6)) {
      case 0:
        query = "(" + path + ")[" + std::to_string(1 + pick(3)) + "]";
        break;
      case 1:
        query = "exists(" + path + ")";
        break;
      case 2:
        query = "count(" + path + ")";
        break;
      default:
        break;  // the bare path
    }
    EvalBothModes(query, xml);
    ++checked;
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }
  EXPECT_GE(checked, 300);
}

TEST(Streaming, EarlyExitSkipsWorkOnFirstMatch) {
  // A wide document: one thousand <x> leaves under one root.
  std::string xml = "<r>";
  for (int i = 0; i < 1000; ++i) {
    xml += "<x n=\"" + std::to_string(i) + "\"/>";
  }
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();

  auto first = xq::Compile("(//x)[1]");
  ASSERT_TRUE(first.ok());
  auto r = xq::Execute(*first, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->SerializedItems(), "<x n=\"0\"/>");
  // The pipeline stopped after the first match: nearly the whole candidate
  // space was abandoned unvisited, and only a handful of nodes were pulled.
  EXPECT_GT(r->stats.nodes_skipped_early_exit, 900u);
  EXPECT_LT(r->stats.nodes_pulled, 100u);

  auto probe = xq::Compile("exists(//x)");
  ASSERT_TRUE(probe.ok());
  auto e = xq::Execute(*probe, opts);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->SerializedItems(), "true");
  EXPECT_LT(e->stats.nodes_pulled, 100u);

  // The prefixed spellings take the same limit-1 probe (EvalFunctionCall
  // strips "fn:" before the name check).
  for (const char* q : {"fn:exists(//x)", "fn:empty(//x)"}) {
    auto prefixed = xq::Compile(q);
    ASSERT_TRUE(prefixed.ok()) << q;
    auto p = xq::Execute(*prefixed, opts);
    ASSERT_TRUE(p.ok()) << q;
    EXPECT_EQ(p->SerializedItems(),
              std::string(q).find("empty") != std::string::npos ? "false"
                                                                : "true")
        << q;
    EXPECT_LT(p->stats.nodes_pulled, 100u) << q;
  }

  // With streaming off the same queries visit everything and pull nothing
  // through the (absent) pipeline.
  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;
  auto m = xq::Execute(*first, materializing);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->SerializedItems(), "<x n=\"0\"/>");
  EXPECT_EQ(m->stats.nodes_pulled, 0u);
  EXPECT_EQ(m->stats.nodes_skipped_early_exit, 0u);
}

TEST(Streaming, PerStepPositionalPredicateStopsPerRun) {
  // //item[1] is per-parent: the first item of EVERY group. Early exit
  // applies within each group's run, not to the whole result.
  const std::string xml =
      "<r><g><item>1</item><item>2</item><item>3</item></g>"
      "<g><item>4</item><item>5</item></g></r>";
  // Adjacent text nodes serialize with no separator: "1" then "4".
  EXPECT_EQ(testing::EvalWithContext("//item[1]/text()", xml), "14");
  EXPECT_EQ(EvalBothModes("//item[1]/text()", xml), "14");
  EXPECT_EQ(EvalBothModes("(//item)[1]/text()", xml), "1");
  EXPECT_EQ(EvalBothModes("//item[2]/text()", xml), "25");
  EXPECT_EQ(EvalBothModes("string((//item)[2])", xml), "2");
}

TEST(Streaming, DeepTreeDoesNotOverflowTheStack) {
  // A 100k-deep element chain. Built programmatically (the parser is not
  // under test here); both the streamed descendant walk and the
  // materializing CollectDescendants must traverse it iteratively.
  constexpr size_t kDepth = 100000;
  xml::Document doc;
  xml::Node* cursor = doc.root();
  for (size_t i = 0; i < kDepth; ++i) {
    xml::Node* child = doc.CreateElement(i + 1 == kDepth ? "leaf" : "n");
    ASSERT_TRUE(cursor->AppendChild(child).ok());
    cursor = child;
  }

  auto count = xq::Compile("count(//n)");
  ASSERT_TRUE(count.ok());
  xq::ExecuteOptions opts;
  opts.context_node = doc.root();
  auto streamed = xq::Execute(*count, opts);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed->SerializedItems(), std::to_string(kDepth - 1));

  xq::ExecuteOptions materializing = opts;
  materializing.eval.streaming = false;
  auto reference = xq::Execute(*count, materializing);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->SerializedItems(), std::to_string(kDepth - 1));

  // Early exit deep in the chain must unwind iteratively too.
  auto probe = xq::Compile("exists(//leaf)");
  ASSERT_TRUE(probe.ok());
  auto e = xq::Execute(*probe, opts);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->SerializedItems(), "true");
}

}  // namespace
}  // namespace lll
