// Randomized differential testing of the document generator: generate
// random (error-free) templates over the directive grammar and random
// models, run both engines, require deep-equal output and matching stats.
// This is the capstone oracle: any semantic drift between the native engine
// and the XQuery interpreter shows up here.

#include <string>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "core/rng.h"
#include "docgen/native_engine.h"
#include "docgen/xq_engine.h"
#include "gtest/gtest.h"
#include "xml/deep_equal.h"

namespace lll::docgen {
namespace {

// --- Random template generator ----------------------------------------

// Queries that are valid against the IT metamodel and never error.
const char* kQueries[] = {
    "from type:User; sort label",
    "from type:Person",
    "from type:Document; sort label",
    "from type:Entity; filter has:name; sort label; limit 4",
    "from type:SystemBeingDesigned",
    "from focus",
    "from focus; follow has> to:Person; sort label",
    "from focus; follow has>; sort label",
    "from all; filter type:Server",
};

// Conditions that never error when a focus exists.
const char* kConditions[] = {
    "<focus-is-type type=\"Superuser\"/>",
    "<focus-is-type type=\"Person\"/>",
    "<focus-has-property name=\"role\"/>",
    "<focus-has-property name=\"version\"/>",
    "<focus-property-equals name=\"role\" value=\"architect\"/>",
};

// Random body content; `has_focus` gates directives that need one.
std::string RandomBody(Rng* rng, int depth, bool has_focus);

std::string RandomDirective(Rng* rng, int depth, bool has_focus) {
  switch (rng->Below(has_focus ? 8 : 5)) {
    case 0: {  // for over a non-focus query (focus queries need a focus)
      const char* query = kQueries[rng->Below(has_focus ? 9 : 5)];
      return std::string("<for nodes=\"") + query + "\">" +
             RandomBody(rng, depth + 1, true) + "</for>";
    }
    case 1:
      return "<section heading=\"S" + std::to_string(rng->Below(100)) + "\">" +
             RandomBody(rng, depth + 1, has_focus) + "</section>";
    case 2:
      return "<p>text " + std::to_string(rng->Below(10)) + "</p>";
    case 3:
      return "<table-of-contents/>";
    case 4:
      return "<table-of-omissions types=\"Document\"/>";
    case 5:  // focus-dependent from here down
      return "<label/>";
    case 6:
      return "<value-of property=\"role\" default=\"none\"/>";
    default: {
      std::string condition = kConditions[rng->Below(5)];
      std::string out = std::string("<if><test>") + condition +
                        "</test><then>" + RandomBody(rng, depth + 1, true) +
                        "</then>";
      if (rng->Chance(0.5)) {
        out += "<else>" + RandomBody(rng, depth + 1, true) + "</else>";
      }
      return out + "</if>";
    }
  }
}

std::string RandomBody(Rng* rng, int depth, bool has_focus) {
  if (depth >= 4) return "leaf";
  std::string out;
  size_t pieces = 1 + rng->Below(3);
  for (size_t i = 0; i < pieces; ++i) {
    if (rng->Chance(0.3)) {
      out += "t" + std::to_string(rng->Below(10)) + " ";
    } else {
      out += RandomDirective(rng, depth, has_focus);
    }
  }
  return out;
}

class DocgenDifferentialProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DocgenDifferentialProperty, EnginesAgreeOnRandomTemplates) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = GetParam() * 17 + 1;
  config.users = 4;
  config.documents = 3;
  config.servers = 2;
  config.programs = 3;
  awb::Model model = awb::GenerateItModel(&mm, config);

  Rng rng(GetParam());
  std::string tpl = "<doc>" + RandomBody(&rng, 0, false) + "</doc>";

  auto native = GenerateNativeFromText(tpl, model);
  auto xquery = GenerateXQueryFromText(tpl, model);
  ASSERT_TRUE(native.ok()) << tpl << "\n" << native.status().ToString();
  ASSERT_TRUE(xquery.ok()) << tpl << "\n" << xquery.status().ToString();
  EXPECT_TRUE(xml::DeepEqual(native->root, xquery->root))
      << "template: " << tpl << "\nnative: " << native->Serialized()
      << "\nxquery: " << xquery->Serialized() << "\ndiff: "
      << xml::ExplainDifference(native->root, xquery->root);
  EXPECT_EQ(native->stats.nodes_visited, xquery->stats.nodes_visited) << tpl;
  EXPECT_EQ(native->stats.toc_entries, xquery->stats.toc_entries) << tpl;
  EXPECT_EQ(native->stats.omissions_listed, xquery->stats.omissions_listed)
      << tpl;
  EXPECT_EQ(native->stats.errors_embedded, 0u) << tpl;
  EXPECT_EQ(xquery->stats.errors_embedded, 0u) << tpl;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DocgenDifferentialProperty,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace lll::docgen
