// Systematic coverage of the fn:/math: builtin library -- every function the
// paper's document generator could have leaned on, with edge cases.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;
using testing::EvalWithContext;

// A table-driven sweep: query -> expected serialized result.
struct Case {
  const char* query;
  const char* expected;
};

class FunctionCaseTest : public ::testing::TestWithParam<Case> {};

TEST_P(FunctionCaseTest, Evaluates) {
  EXPECT_EQ(Eval(GetParam().query), GetParam().expected) << GetParam().query;
}

INSTANTIATE_TEST_SUITE_P(
    Cardinality, FunctionCaseTest,
    ::testing::Values(
        Case{"count(())", "0"},
        Case{"count((1,2,3))", "3"},
        Case{"empty(())", "true"},
        Case{"empty((1))", "false"},
        Case{"exists(())", "false"},
        Case{"exists(0)", "true"},
        Case{"not(())", "true"},
        Case{"not(\"x\")", "false"},
        Case{"boolean((0))", "false"},
        Case{"exactly-one(5)", "5"},
        Case{"zero-or-one(())", ""},
        Case{"one-or-more((1,2))", "1 2"}));

INSTANTIATE_TEST_SUITE_P(
    SequenceOps, FunctionCaseTest,
    ::testing::Values(
        Case{"reverse((1,2,3))", "3 2 1"},
        Case{"reverse(())", ""},
        Case{"subsequence((1,2,3,4,5), 2)", "2 3 4 5"},
        Case{"subsequence((1,2,3,4,5), 2, 2)", "2 3"},
        Case{"subsequence((1,2,3), 0)", "1 2 3"},
        Case{"subsequence((1,2,3), 2.5)", "3"},  // rounds to 3 per spec
        // fn:round rounds half UP: floor(-2.5 + 0.5) = -2, so the window is
        // [-2, 3) and two items pass. std::round's half-away-from-zero would
        // give -3 and wrongly admit a third.
        Case{"subsequence((1,2,3,4), -2.5, 5)", "1 2"},
        Case{"subsequence((1,2,3,4,5), 1.5, 2)", "2 3"},
        Case{"subsequence((1,2,3), -5)", "1 2 3"},
        Case{"subsequence((1,2,3), -5, 7)", "1"},  // window [-5, 2)
        Case{"subsequence((1,2,3), 2, 1000000000)", "2 3"},
        // NaN start or length selects nothing (every comparison fails).
        Case{"subsequence((1,2,3), number(\"zz\"), 2)", ""},
        Case{"subsequence((1,2,3), 2, number(\"zz\"))", ""},
        Case{"head((1,2,3))", "1"},
        Case{"head(())", ""},
        Case{"fn:head((4,5))", "4"},
        Case{"tail((1,2,3))", "2 3"},
        Case{"tail((1))", ""},
        Case{"tail(())", ""},
        Case{"insert-before((1,2,3), 2, (9,8))", "1 9 8 2 3"},
        Case{"insert-before((1,2,3), 99, 0)", "1 2 3 0"},
        Case{"insert-before((1,2,3), 0, 0)", "0 1 2 3"},
        Case{"remove((1,2,3), 2)", "1 3"},
        Case{"remove((1,2,3), 9)", "1 2 3"},
        Case{"index-of((10,20,10,30), 10)", "1 3"},
        Case{"index-of((\"a\",\"b\"), \"c\")", ""},
        Case{"distinct-values((1, 2, 1, 1.0, \"1\"))", "1 2 1"},
        Case{"string-join((\"a\",\"b\",\"c\"), \"-\")", "a-b-c"},
        Case{"string-join((), \",\")", ""}));

INSTANTIATE_TEST_SUITE_P(
    Strings, FunctionCaseTest,
    ::testing::Values(
        Case{"concat(\"a\", \"b\", \"c\", \"d\")", "abcd"},
        Case{"concat(\"x\", (), \"y\")", "xy"},  // empty arg -> ""
        Case{"concat(\"n=\", 5)", "n=5"},
        Case{"substring(\"hello\", 2)", "ello"},
        Case{"substring(\"hello\", 2, 3)", "ell"},
        Case{"substring(\"hello\", 0)", "hello"},
        Case{"substring(\"hello\", 1.5, 2.6)", "ell"},  // spec rounding
        Case{"string-length(\"abc\")", "3"},
        Case{"string-length(\"\")", "0"},
        Case{"contains(\"banana\", \"nan\")", "true"},
        Case{"contains(\"banana\", \"\")", "true"},
        Case{"starts-with(\"banana\", \"ban\")", "true"},
        Case{"ends-with(\"banana\", \"ana\")", "true"},
        Case{"upper-case(\"mIxEd\")", "MIXED"},
        Case{"lower-case(\"mIxEd\")", "mixed"},
        Case{"normalize-space(\"  a   b \")", "a b"},
        Case{"translate(\"abcabc\", \"abc\", \"ABC\")", "ABCABC"},
        Case{"translate(\"abc\", \"b\", \"\")", "ac"},  // dropped chars
        Case{"translate(\"abc\", \"\", \"x\")", "abc"},
        Case{"substring-before(\"key=value\", \"=\")", "key"},
        Case{"substring-after(\"key=value\", \"=\")", "value"},
        Case{"substring-before(\"abc\", \"x\")", ""},
        Case{"substring-after(\"abc\", \"x\")", ""},
        Case{"string-join(tokenize(\"a,b,,c\", \",\"), \"|\")", "a|b||c"},
        Case{"count(tokenize(\"abc\", \",\"))", "1"},
        Case{"replace(\"aXbXc\", \"X\", \"--\")", "a--b--c"},
        Case{"string(42)", "42"},
        Case{"string(())", ""},
        Case{"string(true())", "true"}));

INSTANTIATE_TEST_SUITE_P(
    Numbers, FunctionCaseTest,
    ::testing::Values(
        Case{"sum(())", "0"},
        Case{"sum((1,2,3))", "6"},
        Case{"sum((1, 2.5))", "3.5"},
        Case{"avg((2,4,6))", "4"},
        Case{"avg(())", ""},
        Case{"max((3,1,2))", "3"},
        Case{"min((3,1,2))", "1"},
        Case{"max(())", ""},
        Case{"max((\"pear\", \"apple\"))", "pear"},
        Case{"min((\"pear\", \"apple\"))", "apple"},
        Case{"abs(-5)", "5"},
        Case{"abs(-2.5)", "2.5"},
        Case{"abs(())", ""},
        Case{"floor(2.7)", "2"},
        Case{"floor(-2.1)", "-3"},
        Case{"ceiling(2.1)", "3"},
        Case{"ceiling(-2.7)", "-2"},
        Case{"round(2.5)", "3"},
        Case{"round(-2.5)", "-2"},  // round half toward +inf, per spec
        Case{"round(2.4)", "2"},
        Case{"number(\"12.5\")", "12.5"},
        Case{"number(\"oops\")", "NaN"},
        Case{"number(())", "NaN"},
        Case{"number(true())", "1"}));

INSTANTIATE_TEST_SUITE_P(
    Math, FunctionCaseTest,
    ::testing::Values(
        Case{"math:sqrt(9)", "3"},
        Case{"math:pow(2, 10)", "1024"},
        Case{"math:sin(0)", "0"},
        Case{"math:cos(0)", "1"},
        Case{"math:exp(0)", "1"},
        Case{"math:log(1)", "0"},
        Case{"math:atan2(0, 1)", "0"},
        Case{"floor(math:pi() * 100) div 100", "3.14"},
        // The paper's binary search needed division; its trig needed these.
        Case{"math:sqrt(()) ", ""}));

INSTANTIATE_TEST_SUITE_P(
    StringsMore, FunctionCaseTest,
    ::testing::Values(
        Case{"compare(\"a\", \"b\")", "-1"},
        Case{"compare(\"b\", \"a\")", "1"},
        Case{"compare(\"a\", \"a\")", "0"},
        Case{"compare((), \"a\")", ""},
        Case{"matches(\"banana\", \"nan\")", "true"},
        Case{"matches(\"banana\", \"xyz\")", "false"},
        Case{"string-to-codepoints(\"AB\")", "65 66"},
        Case{"string-to-codepoints(\"\")", ""},
        Case{"codepoints-to-string((72, 105))", "Hi"},
        Case{"codepoints-to-string(string-to-codepoints(\"round\"))",
             "round"}));

TEST(Functions, CodepointsRange) {
  EXPECT_FALSE(xq::Run("codepoints-to-string(0)").ok());
  EXPECT_FALSE(xq::Run("codepoints-to-string(99999)").ok());
}

TEST(Functions, DeepEqual) {
  EXPECT_EQ(Eval("deep-equal((1,2), (1,2))"), "true");
  EXPECT_EQ(Eval("deep-equal((1,2), (2,1))"), "false");
  EXPECT_EQ(Eval("deep-equal((), ())"), "true");
  EXPECT_EQ(Eval("deep-equal(<a x=\"1\"><b/></a>, <a x=\"1\"><b/></a>)"),
            "true");
  EXPECT_EQ(Eval("deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)"), "false");
  EXPECT_EQ(Eval("deep-equal(1, \"1\")"), "false");
}

TEST(Functions, DataAtomizes) {
  EXPECT_EQ(Eval("data(<a>text</a>)"), "text");
  EXPECT_EQ(Eval("data((1, <a>2</a>))"), "1 2");
  // Atomized node values are untyped: they coerce toward numbers.
  EXPECT_EQ(Eval("data(<a>2</a>) + 1"), "3");
}

TEST(Functions, NameAndLocalName) {
  EXPECT_EQ(Eval("name(<foo/>)"), "foo");
  EXPECT_EQ(Eval("local-name(<ns:foo/>)"), "foo");
  EXPECT_EQ(Eval("name(<ns:foo/>)"), "ns:foo");
  EXPECT_EQ(Eval("name(())"), "");
  EXPECT_EQ(EvalWithContext("name(/r/@k)", "<r k=\"v\"/>"), "k");
}

TEST(Functions, RootFunction) {
  EXPECT_EQ(EvalWithContext("name(root(//c)/child::*[1])", "<a><b><c/></b></a>"),
            "a");
}

TEST(Functions, PositionAndLastRequireFocus) {
  EXPECT_NE(EvalError("position()").find("focus"), std::string::npos);
  EXPECT_NE(EvalError("last()").find("focus"), std::string::npos);
}

TEST(Functions, DocRegistryAndErrors) {
  auto doc = xml::Parse("<data><v>7</v></data>");
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.documents["data"] = (*doc)->root();
  auto result = xq::Run("string(doc(\"data\")/data/v)", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SerializedItems(), "7");

  auto missing = xq::Run("doc(\"nope\")", opts);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("FODC0002"), std::string::npos);
}

TEST(Functions, ParseXmlFragmentExtension) {
  EXPECT_EQ(Eval("count(parse-xml-fragment(\"<a/><b/>\"))"), "2");
  EXPECT_EQ(Eval("<out>{parse-xml-fragment(\"<p>hi</p>\")}</out>"),
            "<out><p>hi</p></out>");
  // Not well-formed: empty sequence, not an error.
  EXPECT_EQ(Eval("count(parse-xml-fragment(\"<broken\"))"), "0");
  EXPECT_EQ(Eval("count(parse-xml-fragment(\"\"))"), "0");
  // Plain text is a text node.
  EXPECT_EQ(Eval("count(parse-xml-fragment(\"just text\"))"), "1");
}

TEST(Functions, ErrorFunctionFamilies) {
  EXPECT_NE(EvalError("error()").find("FOER0000"), std::string::npos);
  EXPECT_NE(EvalError("error(\"custom\")").find("custom"), std::string::npos);
  EXPECT_NE(EvalError("error(\"CODE1\", \"details\")").find("CODE1"),
            std::string::npos);
}

TEST(Functions, ArityErrors) {
  EXPECT_NE(EvalError("count()").find("unknown function"), std::string::npos);
  EXPECT_NE(EvalError("count(1, 2)").find("unknown function"),
            std::string::npos);
  EXPECT_NE(EvalError("substring(\"x\")").find("unknown function"),
            std::string::npos);
}

TEST(Functions, FnPrefixIsAccepted) {
  EXPECT_EQ(Eval("fn:count((1,2))"), "2");
  EXPECT_EQ(Eval("fn:concat(\"a\", \"b\")"), "ab");
}

TEST(Functions, CardinalityViolationsInArguments) {
  EXPECT_FALSE(xq::Run("contains((\"a\",\"b\"), \"a\")").ok());
  EXPECT_FALSE(xq::Run("string((1,2))").ok());
  EXPECT_FALSE(xq::Run("exactly-one(())").ok());
  EXPECT_FALSE(xq::Run("exactly-one((1,2))").ok());
  EXPECT_FALSE(xq::Run("zero-or-one((1,2))").ok());
  EXPECT_FALSE(xq::Run("one-or-more(())").ok());
}

TEST(Functions, AggregateTypeErrors) {
  EXPECT_FALSE(xq::Run("sum((\"a\",\"b\"))").ok());
  EXPECT_FALSE(xq::Run("avg((1, \"x\"))").ok());
  EXPECT_FALSE(xq::Run("max((1, \"x\"))").ok());
}

TEST(Functions, UntypedAggregation) {
  // Attribute values (untyped) aggregate numerically.
  EXPECT_EQ(EvalWithContext("sum(//i/@v)", "<r><i v=\"1\"/><i v=\"2\"/></r>"),
            "3");
  EXPECT_EQ(EvalWithContext("max(//i/@v)", "<r><i v=\"5\"/><i v=\"2\"/></r>"),
            "5");
}

TEST(Functions, StringZeroArgFormsUseFocus) {
  EXPECT_EQ(EvalWithContext("string(/a/b[string-length() = 2])",
                            "<a><b>xy</b><b>xyz</b></a>"),
            "xy");
  EXPECT_EQ(EvalWithContext("string(/a/b[normalize-space() = \"q\"])",
                            "<a><b> q </b><b>z</b></a>"),
            " q ");
}

}  // namespace
}  // namespace lll
