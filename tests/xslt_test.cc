// The mini-XSLT subset: patterns, template rules, instructions, built-in
// rules, and the stream splitter of E11.

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xslt/xslt.h"

namespace lll::xslt {
namespace {

std::unique_ptr<xml::Document> MustParse(const std::string& text) {
  auto doc = xml::Parse(text, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(*doc);
}

std::string Transform(const std::string& stylesheet, const std::string& input) {
  auto sheet = Stylesheet::CompileText(stylesheet);
  EXPECT_TRUE(sheet.ok()) << sheet.status().ToString();
  if (!sheet.ok()) return "<COMPILE FAILED>";
  auto doc = MustParse(input);
  auto out = sheet->Apply(doc->root());
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return "<APPLY FAILED>";
  return xml::Serialize((*out)->root());
}

TEST(Pattern, Parsing) {
  EXPECT_TRUE(ParsePattern("book").ok());
  EXPECT_TRUE(ParsePattern("a/b/c").ok());
  EXPECT_TRUE(ParsePattern("*").ok());
  EXPECT_TRUE(ParsePattern("/").ok());
  EXPECT_TRUE(ParsePattern("text()").ok());
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("a//b").ok());
  EXPECT_FALSE(ParsePattern("1bad").ok());
}

TEST(Pattern, Matching) {
  auto doc = MustParse("<a><b><c>t</c></b><d/></a>");
  const xml::Node* a = doc->DocumentElement();
  const xml::Node* b = a->children()[0];
  const xml::Node* c = b->children()[0];
  const xml::Node* t = c->children()[0];

  EXPECT_TRUE(Matches(*ParsePattern("c"), c));
  EXPECT_FALSE(Matches(*ParsePattern("c"), b));
  EXPECT_TRUE(Matches(*ParsePattern("b/c"), c));
  EXPECT_FALSE(Matches(*ParsePattern("d/c"), c));
  EXPECT_TRUE(Matches(*ParsePattern("a/b/c"), c));
  EXPECT_TRUE(Matches(*ParsePattern("*"), c));
  EXPECT_FALSE(Matches(*ParsePattern("*"), t));
  EXPECT_TRUE(Matches(*ParsePattern("text()"), t));
  EXPECT_TRUE(Matches(*ParsePattern("/"), doc->root()));
  EXPECT_FALSE(Matches(*ParsePattern("/"), a));
  // Rooted name pattern: /a matches only the document element.
  EXPECT_TRUE(Matches(*ParsePattern("/a"), a));
  EXPECT_FALSE(Matches(*ParsePattern("/b"), b));
}

TEST(Xslt, IdentityIshTransform) {
  // Template for the root element that copies it wholesale.
  std::string out = Transform(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:copy-of select=\"doc\"/></xsl:template></xsl:stylesheet>",
      "<doc><a x=\"1\">t</a></doc>");
  EXPECT_EQ(out, "<doc><a x=\"1\">t</a></doc>");
}

TEST(Xslt, BuiltInRulesCopyTextOnly) {
  // No templates at all: elements recurse, text copies.
  std::string out = Transform("<xsl:stylesheet></xsl:stylesheet>",
                              "<doc><a>hello </a><b>world</b></doc>");
  EXPECT_EQ(out, "hello world");
}

TEST(Xslt, TemplateDispatchByName) {
  std::string out = Transform(
      "<xsl:stylesheet>"
      "<xsl:template match=\"item\"><li><xsl:apply-templates/></li>"
      "</xsl:template>"
      "<xsl:template match=\"list\"><ul><xsl:apply-templates/></ul>"
      "</xsl:template>"
      "</xsl:stylesheet>",
      "<list><item>a</item><item>b</item></list>");
  EXPECT_EQ(out, "<ul><li>a</li><li>b</li></ul>");
}

TEST(Xslt, PriorityAndSpecificity) {
  // The path pattern beats the bare name; explicit priority beats both.
  std::string out = Transform(
      "<xsl:stylesheet>"
      "<xsl:template match=\"b\"><plain/></xsl:template>"
      "<xsl:template match=\"a/b\"><qualified/></xsl:template>"
      "</xsl:stylesheet>",
      "<a><b/></a>");
  EXPECT_EQ(out, "<qualified/>");

  out = Transform(
      "<xsl:stylesheet>"
      "<xsl:template match=\"b\" priority=\"10\"><boosted/></xsl:template>"
      "<xsl:template match=\"a/b\"><qualified/></xsl:template>"
      "</xsl:stylesheet>",
      "<a><b/></a>");
  EXPECT_EQ(out, "<boosted/>");
}

TEST(Xslt, ValueOfAndForEach) {
  std::string out = Transform(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<names><xsl:for-each select=\"people/person\">"
      "<n><xsl:value-of select=\"@name\"/></n>"
      "</xsl:for-each></names>"
      "</xsl:template></xsl:stylesheet>",
      "<people><person name=\"Ada\"/><person name=\"Alan\"/></people>");
  EXPECT_EQ(out, "<names><n>Ada</n><n>Alan</n></names>");
}

TEST(Xslt, IfInstruction) {
  std::string out = Transform(
      "<xsl:stylesheet><xsl:template match=\"p\">"
      "<xsl:if test=\"@keep = 'yes'\"><kept><xsl:apply-templates/></kept>"
      "</xsl:if></xsl:template></xsl:stylesheet>",
      "<doc><p keep=\"yes\">a</p><p keep=\"no\">b</p></doc>");
  EXPECT_EQ(out, "<kept>a</kept>");
}

TEST(Xslt, ElementAttributeText) {
  std::string out = Transform(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:element name=\"made\">"
      "<xsl:attribute name=\"from\"><xsl:value-of select=\"doc/@id\"/>"
      "</xsl:attribute>"
      "<xsl:text>body</xsl:text>"
      "</xsl:element></xsl:template></xsl:stylesheet>",
      "<doc id=\"d7\"/>");
  EXPECT_EQ(out, "<made from=\"d7\">body</made>");
}

TEST(Xslt, AttributeValueTemplates) {
  std::string out = Transform(
      "<xsl:stylesheet><xsl:template match=\"person\">"
      "<a href=\"/people/{@id}\"><xsl:value-of select=\"@name\"/></a>"
      "</xsl:template></xsl:stylesheet>",
      "<people><person id=\"p1\" name=\"Ada\"/></people>");
  EXPECT_EQ(out, "<a href=\"/people/p1\">Ada</a>");
}

TEST(Xslt, XPathSelectsArePoweredByTheXQueryEngine) {
  // count(), predicates, descendant axis -- the full path language.
  std::string out = Transform(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<stats n=\"{count(//item)}\">"
      "<xsl:value-of select=\"(//item)[2]/@v\"/></stats>"
      "</xsl:template></xsl:stylesheet>",
      "<doc><item v=\"a\"/><group><item v=\"b\"/></group></doc>");
  EXPECT_EQ(out, "<stats n=\"2\">b</stats>");
}

TEST(Xslt, ChooseWhenOtherwise) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"p\">"
      "<xsl:choose>"
      "<xsl:when test=\"@k = 'a'\"><aa/></xsl:when>"
      "<xsl:when test=\"@k = 'b'\"><bb/></xsl:when>"
      "<xsl:otherwise><other v=\"{@k}\"/></xsl:otherwise>"
      "</xsl:choose>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(Transform(sheet, "<d><p k=\"a\"/><p k=\"b\"/><p k=\"z\"/></d>"),
            "<aa/><bb/><other v=\"z\"/>");
}

TEST(Xslt, ChooseWithoutMatchingBranchEmitsNothing) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"p\">"
      "<xsl:choose><xsl:when test=\"@k = 'a'\"><aa/></xsl:when></xsl:choose>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(Transform(sheet, "<d><p k=\"z\"/></d>"), "");
}

TEST(Xslt, ChooseRejectsStrayChildren) {
  auto sheet = Stylesheet::CompileText(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:choose><bogus/></xsl:choose>"
      "</xsl:template></xsl:stylesheet>");
  ASSERT_TRUE(sheet.ok());
  auto doc = MustParse("<d/>");
  EXPECT_FALSE(sheet->Apply(doc->root()).ok());
}

TEST(Xslt, CompileErrors) {
  EXPECT_FALSE(Stylesheet::CompileText("<wrong/>").ok());
  EXPECT_FALSE(
      Stylesheet::CompileText(
          "<xsl:stylesheet><xsl:template/></xsl:stylesheet>")
          .ok());
  EXPECT_FALSE(Stylesheet::CompileText(
                   "<xsl:stylesheet><xsl:other match=\"x\"/></xsl:stylesheet>")
                   .ok());
}

TEST(Xslt, RuntimeErrors) {
  auto sheet = Stylesheet::CompileText(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:value-of/></xsl:template></xsl:stylesheet>");
  ASSERT_TRUE(sheet.ok());
  auto doc = MustParse("<doc/>");
  EXPECT_FALSE(sheet->Apply(doc->root()).ok());

  auto unsupported = Stylesheet::CompileText(
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:call-template name=\"x\"/></xsl:template></xsl:stylesheet>");
  ASSERT_TRUE(unsupported.ok());
  EXPECT_FALSE(unsupported->Apply(doc->root()).ok());
}

TEST(StreamSplitting, ThePaperWorkaround) {
  // "the XQuery component could produce a big XML file with all the output
  // streams as children of the root element, and a little XSLT program could
  // split them apart."
  auto combined = MustParse(
      "<streams>"
      "<stream name=\"document\"><html><body>doc</body></html></stream>"
      "<stream name=\"report\"><report><warning>w1</warning></report></stream>"
      "</streams>");
  auto streams = SplitStreams(combined->DocumentElement());
  ASSERT_TRUE(streams.ok()) << streams.status().ToString();
  ASSERT_EQ(streams->size(), 2u);
  EXPECT_EQ(xml::Serialize(streams->at("document")->root()),
            "<html><body>doc</body></html>");
  EXPECT_EQ(xml::Serialize(streams->at("report")->root()),
            "<report><warning>w1</warning></report>");
}

TEST(StreamSplitting, Errors) {
  auto bad = MustParse("<streams><stream/></streams>");
  EXPECT_FALSE(SplitStreams(bad->DocumentElement()).ok());
  auto dup = MustParse(
      "<streams><stream name=\"a\"/><stream name=\"a\"/></streams>");
  EXPECT_FALSE(SplitStreams(dup->DocumentElement()).ok());
  EXPECT_FALSE(SplitStreams(nullptr).ok());
}

}  // namespace
}  // namespace lll::xslt
