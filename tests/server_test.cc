// Unit tests for the multi-tenant query server: the copy-on-write publish
// protocol, session snapshot pinning, admission control, eval budgets /
// deadlines as graceful rejections, EXPLAIN provenance, async Submit, and
// snapshot-pinned batch docgen.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awb/xml_io.h"
#include "gtest/gtest.h"
#include "server/server.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace lll::server {
namespace {

constexpr char kCatalog[] =
    "<catalog>"
    "<item id=\"1\"><name>lens</name></item>"
    "<item id=\"2\"><name>prism</name></item>"
    "<item id=\"3\"><name>mirror</name></item>"
    "</catalog>";

ServerOptions TestOptions(MetricsRegistry* metrics) {
  ServerOptions options;
  options.worker_threads = 2;
  options.metrics = metrics;
  return options;
}

TEST(SnapshotStore, PublishProtocolVersionsMonotonically) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());
  // Duplicate names are publishes, not installs.
  EXPECT_FALSE(server.AddDocumentXml("cat", kCatalog).ok());

  SnapshotPtr v1 = server.CurrentSnapshot("cat");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);

  auto v2 = server.PublishEdit("cat", [](xml::Document* doc, xml::Node* root) {
    xml::Node* element = root->children().front();
    element->AppendChild(doc->CreateElement("item"));
    return Status::Ok();
  });
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, 2u);

  auto v3 = server.PublishXml("cat", "<catalog><item id=\"9\"/></catalog>");
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, 3u);
  EXPECT_EQ(server.snapshots_published(), 2u);

  // The version-1 snapshot is untouched by both publishes: copy-on-write
  // means the old tree still serializes exactly as loaded.
  EXPECT_EQ(server.CurrentSnapshot("cat")->version(), 3u);
  EXPECT_EQ(xml::Serialize(v1->root()->children().front()), kCatalog);

  // A failing edit publishes nothing.
  auto failed = server.PublishEdit("cat", [](xml::Document*, xml::Node*) {
    return Status::Invalid("nope");
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(server.CurrentSnapshot("cat")->version(), 3u);
}

TEST(Sessions, PinnedSnapshotsGiveRepeatableReads) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  Session session = server.OpenSession("acme");
  QueryResponse before = session.Query("cat", "count(//item)");
  ASSERT_TRUE(before.status.ok()) << before.status.ToString();
  EXPECT_EQ(before.result, "3");
  EXPECT_EQ(before.snapshot_version, 1u);
  EXPECT_EQ(session.pinned_version("cat"), 1u);

  ASSERT_TRUE(server.PublishXml("cat", "<catalog/>").ok());

  // Same session: still the pinned version-1 snapshot.
  QueryResponse pinned = session.Query("cat", "count(//item)");
  EXPECT_EQ(pinned.result, "3");
  EXPECT_EQ(pinned.snapshot_version, 1u);

  // Unpinned Execute and a fresh session see the new version.
  QueryResponse current = server.Execute("acme", "cat", "count(//item)");
  EXPECT_EQ(current.result, "0");
  EXPECT_EQ(current.snapshot_version, 2u);

  session.Refresh();
  QueryResponse refreshed = session.Query("cat", "count(//item)");
  EXPECT_EQ(refreshed.result, "0");
  EXPECT_EQ(refreshed.snapshot_version, 2u);
}

TEST(Sessions, PerSnapshotNodeSetCacheIsSharedAcrossQueries) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  QueryResponse first = server.Execute("acme", "cat", "//item/name");
  ASSERT_TRUE(first.status.ok());
  EXPECT_GE(first.stats.nodeset_cache_misses, 1u);
  EXPECT_EQ(first.stats.nodeset_cache_hits, 0u);

  // A different tenant, same snapshot: the interned prefix is shared.
  QueryResponse second = server.Execute("globex", "cat", "//item/name");
  ASSERT_TRUE(second.status.ok());
  EXPECT_GE(second.stats.nodeset_cache_hits, 1u);
  EXPECT_EQ(first.result, second.result);

  // A publish installs a fresh snapshot with a fresh (empty) cache.
  ASSERT_TRUE(server.PublishXml("cat", kCatalog).ok());
  QueryResponse after = server.Execute("acme", "cat", "//item/name");
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.stats.nodeset_cache_hits, 0u);
  EXPECT_EQ(after.result, first.result);
}

TEST(Sessions, PinnedCacheSurvivesUnrelatedSubtreePublish) {
  // The clone-carried edit-version overlay at work across the publish path:
  // a pinned reader's warm, subtree-anchored cache entries keep validating
  // after a publish edits an UNRELATED subtree, because (a) the publish
  // edits a clone, never the pinned snapshot's document, and (b) the
  // clone carries the overlay, so the new snapshot's versions show exactly
  // which subtree the edit touched.
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  constexpr char kModels[] =
      "<library><models>"
      "<model id=\"m1\"><parts><part/><part/></parts></model>"
      "<model id=\"m2\"><parts><part/></parts></model>"
      "</models></library>";
  ASSERT_TRUE(server.AddDocumentXml("lib", kModels).ok());

  const char* query = "/library/models/model[@id = \"m1\"]/parts/part";
  Session session = server.OpenSession("acme");
  QueryResponse cold = session.Query("lib", query);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_GE(cold.stats.nodeset_cache_misses, 1u);

  QueryResponse warm = session.Query("lib", query);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_GE(warm.stats.nodeset_cache_hits, 1u);
  EXPECT_EQ(warm.result, cold.result);

  // Publish an edit to model m2 -- a subtree the cached m1 chain does not
  // depend on.
  auto v2 = server.PublishEdit("lib", [](xml::Document* doc, xml::Node* root) {
    xml::Node* models = root->children().front()->children().front();
    xml::Node* m2_parts = models->children()[1]->children().front();
    return m2_parts->AppendChild(doc->CreateElement("part"));
  });
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();

  // The pinned session still reads version 1 and still HITS its warm entry:
  // no invalidation reached the pinned snapshot.
  QueryResponse pinned = session.Query("lib", query);
  ASSERT_TRUE(pinned.status.ok());
  EXPECT_EQ(pinned.snapshot_version, 1u);
  EXPECT_GE(pinned.stats.nodeset_cache_hits, 1u);
  EXPECT_EQ(pinned.stats.nodeset_cache_invalidations, 0u);
  EXPECT_EQ(pinned.result, cold.result);

  // The published clone carried the overlay: its edit history extends the
  // pinned document's, and the m1 chain's answer is unchanged on the new
  // version too.
  SnapshotPtr current = server.CurrentSnapshot("lib");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version(), 2u);
  session.Refresh();
  QueryResponse refreshed = session.Query("lib", query);
  ASSERT_TRUE(refreshed.status.ok());
  EXPECT_EQ(refreshed.snapshot_version, 2u);
  EXPECT_EQ(refreshed.result, cold.result);
}

TEST(Admission, ZeroInflightQuotaDisablesATenant) {
  MetricsRegistry metrics;
  ServerOptions options = TestOptions(&metrics);
  QueryServer server(options);
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  TenantQuota disabled;
  disabled.max_inflight = 0;
  server.SetQuota("blocked", disabled);

  QueryResponse resp = server.Execute("blocked", "cat", "count(//item)");
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(resp.rejected);
  EXPECT_EQ(metrics.counter("server.queries_rejected").value(), 1u);
  EXPECT_EQ(metrics.counter("server.tenant.blocked.rejected").value(), 1u);

  // Other tenants are untouched by the blocked tenant's quota.
  QueryResponse ok = server.Execute("acme", "cat", "count(//item)");
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.result, "3");
  EXPECT_EQ(metrics.counter("server.queries_rejected").value(), 1u);
}

TEST(Admission, InflightCapRejectsConcurrentExcess) {
  MetricsRegistry metrics;
  ServerOptions options = TestOptions(&metrics);
  TenantQuota one;
  one.max_inflight = 1;
  options.default_quota = one;
  QueryServer server(options);
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  // Hold the single slot with a slow query on another thread, then knock.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  std::atomic<bool> release{false};
  std::thread holder([&] {
    // A deliberately slow query: repeated full scans. Signal once running.
    {
      std::lock_guard<std::mutex> lock(mu);
      started = true;
    }
    cv.notify_all();
    while (!release.load()) {
      server.Execute("acme", "cat", "count(//*//*)");
    }
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  // The holder loops executing; eventually we collide with an in-flight one.
  bool saw_rejection = false;
  for (int i = 0; i < 10000 && !saw_rejection; ++i) {
    QueryResponse resp = server.Execute("acme", "cat", "1");
    if (resp.rejected) saw_rejection = true;
  }
  release.store(true);
  holder.join();
  EXPECT_TRUE(saw_rejection);
  EXPECT_GE(metrics.counter("server.queries_rejected").value(), 1u);
}

// The budget satellite: a pathological deep // query under a tiny step
// budget returns a structured kResourceExhausted error (not a crash, not a
// timeout), increments server.queries_rejected, and leaves nothing partial
// in the snapshot's node-set cache -- an unrestricted re-run agrees with the
// cache-free materializing evaluator byte for byte.
TEST(Quotas, StepBudgetRejectsPathologicalQueryGracefully) {
  MetricsRegistry metrics;
  ServerOptions options = TestOptions(&metrics);
  QueryServer server(options);

  std::string deep;
  for (int i = 0; i < 60; ++i) deep += "<a k=\"" + std::to_string(i) + "\">";
  deep += "<b/>";
  for (int i = 0; i < 60; ++i) deep += "</a>";
  ASSERT_TRUE(server.AddDocumentXml("deep", deep).ok());

  TenantQuota tiny;
  tiny.max_eval_steps = 30;
  server.SetQuota("meek", tiny);

  const std::string pathological = "//a[.//b]//a[.//b]//b";
  QueryResponse resp = server.Execute("meek", "deep", pathological);
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(resp.rejected);
  EXPECT_NE(resp.status.message().find("budget"), std::string::npos);
  EXPECT_EQ(metrics.counter("server.queries_rejected").value(), 1u);
  EXPECT_EQ(metrics.counter("server.tenant.meek.rejected").value(), 1u);

  // Whatever the killed run left in the per-snapshot cache must not be a
  // truncated node set: an unlimited tenant re-running the same query gets
  // exactly the answer of a cache-free, non-streaming library evaluation.
  QueryResponse rerun = server.Execute("acme", "deep", pathological);
  ASSERT_TRUE(rerun.status.ok()) << rerun.status.ToString();

  auto doc = xml::Parse(deep, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions reference;
  reference.context_node = (*doc)->root();
  reference.eval.streaming = false;  // the differential baseline
  auto baseline = xq::Run(pathological, reference);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(rerun.result, baseline->SerializedItems());

  // The rejection did not poison the tenant: the meek tenant can still run
  // affordable queries.
  QueryResponse small = server.Execute("meek", "deep", "count(/a)");
  EXPECT_TRUE(small.status.ok()) << small.status.ToString();
}

TEST(Quotas, WallDeadlineAbandonsRunawayQueries) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  TenantQuota impatient;
  impatient.timeout_ms = 1;
  server.SetQuota("impatient", impatient);

  // Hundreds of thousands of evaluator steps -- far beyond 1ms of work.
  QueryResponse resp = server.Execute(
      "impatient", "cat", "count(for $i in 1 to 300000 return $i + 1)");
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(resp.rejected);
  EXPECT_NE(resp.status.message().find("deadline"), std::string::npos);
  EXPECT_GE(metrics.counter("server.queries_rejected").value(), 1u);
}

TEST(Quotas, ShutdownCancelsInFlightEvaluationGracefully) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  server.Shutdown();
  QueryResponse resp = server.Execute(
      "acme", "cat", "count(for $i in 1 to 300000 return $i + 1)");
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(resp.status.message().find("cancelled"), std::string::npos);
}

TEST(Queries, ResourceErrorsAreNotCatchableByTryCatch) {
  // A tenant must not be able to mask the server's budget enforcement with
  // the language's own exception handling.
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());
  TenantQuota tiny;
  tiny.max_eval_steps = 50;
  server.SetQuota("meek", tiny);

  QueryResponse resp = server.Execute(
      "meek", "cat",
      "try { count(for $i in 1 to 100000 return $i) } catch { -1 }");
  EXPECT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(resp.rejected);
}

TEST(Queries, ErrorsAndRejectionsAreDistinguished) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  // Unknown document: an error, not a rejection.
  QueryResponse missing = server.Execute("acme", "nope", "1");
  EXPECT_FALSE(missing.status.ok());
  EXPECT_FALSE(missing.rejected);
  EXPECT_EQ(missing.status.code(), StatusCode::kNotFound);

  // Compile error: an error, not a rejection.
  QueryResponse bad = server.Execute("acme", "cat", "1 +");
  EXPECT_FALSE(bad.status.ok());
  EXPECT_FALSE(bad.rejected);
  EXPECT_EQ(metrics.counter("server.compile_errors").value(), 1u);

  // Dynamic error: an error, not a rejection.
  QueryResponse dynamic = server.Execute("acme", "cat", "error(\"boom\")");
  EXPECT_FALSE(dynamic.status.ok());
  EXPECT_FALSE(dynamic.rejected);
  EXPECT_EQ(metrics.counter("server.queries_rejected").value(), 0u);
  EXPECT_GE(metrics.counter("server.query_errors").value(), 2u);
}

TEST(Explain, CarriesSnapshotAndCacheProvenance) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());
  ASSERT_TRUE(server.PublishXml("cat", kCatalog).ok());

  auto cold = server.Explain("cat", "(//item)[1]");
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_NE(cold->find("snapshot version 2"), std::string::npos);
  EXPECT_NE(cold->find("server plan: compiled"), std::string::npos);
  EXPECT_NE(cold->find("== plan =="), std::string::npos);

  auto warm = server.Explain("cat", "(//item)[1]");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("server plan: memory-cache"), std::string::npos);
}

TEST(Submit, AsyncQueriesCompleteOnTheWorkerPool) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());

  constexpr int kJobs = 16;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::vector<std::string> results;
  for (int i = 0; i < kJobs; ++i) {
    server.Submit("acme", "cat", "count(//item)", [&](QueryResponse resp) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(resp.status.ok() ? resp.result : "<error>");
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == kJobs; });
  for (const std::string& r : results) EXPECT_EQ(r, "3");
}

TEST(Docgen, BatchGenerationPinsOneModelSnapshot) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));

  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = 7;
  config.users = 3;
  config.programs = 2;
  awb::Model model = awb::GenerateItModel(&mm, config);
  ASSERT_TRUE(
      server.AddDocumentXml("model", awb::ExportModelXml(model)).ok());

  const std::vector<std::string> templates = {
      "<html><for nodes=\"from type:User\"><p><label/></p></for></html>",
      "<html><h1>Users: <for nodes=\"from type:User\"><label/>; "
      "</for></h1></html>",
  };
  auto reports = server.GenerateReports("acme", "model", &mm, templates);
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), 2u);
  EXPECT_NE((*reports)[0].find("<p>"), std::string::npos);

  // Publishing an EMPTY model afterwards does not disturb what the pinned
  // run produced, and a new batch sees the new state.
  awb::Model empty_model(&mm);
  ASSERT_TRUE(
      server.PublishXml("model", awb::ExportModelXml(empty_model)).ok());
  auto after = server.GenerateReports("acme", "model", &mm, templates);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ((*after)[0].find("<p>"), std::string::npos);
  EXPECT_EQ(metrics.counter("server.reports_generated").value(), 4u);
}

TEST(Metrics, ServerCountersAndLatencyHistogramsAreExported) {
  MetricsRegistry metrics;
  QueryServer server(TestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("cat", kCatalog).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server.Execute("acme", "cat", "count(//item)").status.ok());
  }
  EXPECT_EQ(metrics.counter("server.queries").value(), 5u);
  EXPECT_EQ(metrics.counter("server.queries_ok").value(), 5u);
  EXPECT_EQ(metrics.counter("server.tenant.acme.queries").value(), 5u);
  EXPECT_EQ(metrics.histogram("server.query_us").count(), 5u);
  EXPECT_EQ(metrics.histogram("server.tenant.acme.query_us").count(), 5u);
  // The compiled query was cached after the first execution.
  EXPECT_EQ(metrics.counter("server.query_cache_hits").value(), 4u);

  std::string json = server.MetricsJson();
  EXPECT_NE(json.find("server.queries"), std::string::npos);
  EXPECT_NE(json.find("server.query_us"), std::string::npos);
  EXPECT_NE(json.find("server.query_cache.lookups"), std::string::npos);
}

}  // namespace
}  // namespace lll::server
