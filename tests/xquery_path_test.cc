// Fine-grained XPath semantics: step predicates vs. filter predicates,
// reverse-axis positions, unions/intersections, and document-order rules.
// These are the behaviors that make `//item[2]` and `(//item)[2]` different
// queries -- the kind of thing the paper's authors learned the hard way.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;
using testing::EvalWithContext;

constexpr char kDoc[] =
    "<doc>"
    "<group><item v=\"1\"/><item v=\"2\"/></group>"
    "<group><item v=\"3\"/></group>"
    "<group><item v=\"4\"/><item v=\"5\"/><item v=\"6\"/></group>"
    "</doc>";

TEST(PathSemantics, StepPredicateCountsPerParent) {
  // //item[2]: items that are the SECOND item child of their parent.
  EXPECT_EQ(EvalWithContext(
                "string-join(for $i in //item[2] return string($i/@v), \",\")",
                kDoc),
            "2,5");
}

TEST(PathSemantics, FilterPredicateCountsAcrossTheSequence) {
  // (//item)[2]: the second item in the whole document.
  EXPECT_EQ(EvalWithContext("string((//item)[2]/@v)", kDoc), "2");
  EXPECT_EQ(EvalWithContext("string((//item)[last()]/@v)", kDoc), "6");
}

TEST(PathSemantics, LastInStepPredicates) {
  // //item[last()]: the last item of EACH group.
  EXPECT_EQ(EvalWithContext("string-join(for $i in //item[last()] "
                            "return string($i/@v), \",\")",
                            kDoc),
            "2,3,6");
}

TEST(PathSemantics, ChainedPredicates) {
  // [position() > 1][1] applies left to right: drop the first, keep the new
  // first.
  EXPECT_EQ(EvalWithContext("string((//item)[position() > 1][1]/@v)", kDoc),
            "2");
  EXPECT_EQ(Eval("(1 to 10)[. mod 2 = 0][position() le 2]"), "2 4");
}

TEST(PathSemantics, ReverseAxisPositions) {
  const char* doc = "<a><b/><c/><d/><e/></a>";
  // preceding-sibling counts from nearest to farthest.
  EXPECT_EQ(EvalWithContext("name(//d/preceding-sibling::*[1])", doc), "c");
  EXPECT_EQ(EvalWithContext("name(//d/preceding-sibling::*[2])", doc), "b");
  // ancestor axis likewise.
  const char* nested = "<x><y><z><w/></z></y></x>";
  EXPECT_EQ(EvalWithContext("name(//w/ancestor::*[1])", nested), "z");
  EXPECT_EQ(EvalWithContext("name(//w/ancestor::*[3])", nested), "x");
  // But the RESULT is in document order regardless.
  EXPECT_EQ(EvalWithContext(
                "string-join(for $a in //w/ancestor::* return name($a), \",\")",
                nested),
            "x,y,z");
}

TEST(PathSemantics, UnionIntersectExcept) {
  const char* doc = "<a><b/><c/><d/></a>";
  EXPECT_EQ(EvalWithContext("count(//b | //c | //b)", doc), "2");
  EXPECT_EQ(EvalWithContext(
                "string-join(for $n in (//c | //b) return name($n), \",\")",
                doc),
            "b,c");  // document order, not query order
  EXPECT_EQ(EvalWithContext("count((//b, //c) intersect //b)", doc), "1");
  EXPECT_EQ(EvalWithContext(
                "string-join(for $n in (//b, //c, //d) except //c "
                "return name($n), \",\")",
                doc),
            "b,d");
  EXPECT_NE(EvalError("(1, 2) union (3)").find("node"), std::string::npos);
}

TEST(PathSemantics, AttributesAreNotChildren) {
  const char* doc = "<a k=\"v\"><b/></a>";
  EXPECT_EQ(EvalWithContext("count(/a/child::node())", doc), "1");
  EXPECT_EQ(EvalWithContext("count(/a/attribute::*)", doc), "1");
  EXPECT_EQ(EvalWithContext("count(/a/@*)", doc), "1");
  // Descendant axis never yields attributes.
  EXPECT_EQ(EvalWithContext("count(//@k)", doc), "1");  // but @ after // works
  EXPECT_EQ(EvalWithContext("count(/a/descendant::node())", doc), "1");
}

TEST(PathSemantics, TextAndCommentNodeTests) {
  auto doc = xml::Parse("<a>one<b>two</b><!--note-->three</a>");
  ASSERT_TRUE(doc.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  EXPECT_EQ(xq::Run("count(/a/text())", opts)->SerializedItems(), "2");
  EXPECT_EQ(xq::Run("count(//text())", opts)->SerializedItems(), "3");
  EXPECT_EQ(xq::Run("count(/a/comment())", opts)->SerializedItems(), "1");
  EXPECT_EQ(xq::Run("string(/a/text()[1])", opts)->SerializedItems(), "one");
  EXPECT_EQ(xq::Run("count(/a/node())", opts)->SerializedItems(), "4");
}

TEST(PathSemantics, ParentOfAttribute) {
  EXPECT_EQ(EvalWithContext("name(//@v[1]/parent::*)",
                            "<a><item v=\"1\"/></a>"),
            "item");
}

TEST(PathSemantics, PathOverAtomicsIsATypeError) {
  EXPECT_NE(EvalError("(1, 2)/child::x").find("XPTY0019"), std::string::npos);
  EXPECT_NE(EvalError("\"s\"/x").find("XPTY0019"), std::string::npos);
}

TEST(PathSemantics, RootAndLoneSlash) {
  const char* doc = "<a><b/></a>";
  EXPECT_EQ(EvalWithContext("count(/)", doc), "1");
  EXPECT_EQ(EvalWithContext("name(/a)", doc), "a");
  EXPECT_EQ(EvalWithContext("count(//b/ancestor-or-self::node())", doc), "3");
  // From a deep node, / gets back to the document root.
  EXPECT_EQ(EvalWithContext("for $b in //b return count($b/ancestor::node())",
                            doc),
            "2");
}

TEST(PathSemantics, PredicatesSeeTheFocusFunctions) {
  EXPECT_EQ(EvalWithContext(
                "string-join(for $g in /doc/group[count(item) ge 2] "
                "return string(count($g/item)), \",\")",
                kDoc),
            "2,3");
  // position() inside a where-less FLWOR body is the PREDICATE focus, not
  // the for variable's index -- classic confusion, pinned here.
  EXPECT_EQ(EvalWithContext("count(//item[position() = last()])", kDoc), "3");
}

TEST(PathSemantics, DescendantOrSelfAbbreviation) {
  const char* doc = "<a><a><a/></a></a>";
  EXPECT_EQ(EvalWithContext("count(//a)", doc), "3");
  EXPECT_EQ(EvalWithContext("count(/a//a)", doc), "2");
  EXPECT_EQ(EvalWithContext("count(//a//a)", doc), "2");
}

TEST(PathSemantics, PathsFromVariables) {
  EXPECT_EQ(EvalWithContext(
                "let $groups := /doc/group return count($groups[3]/item)",
                kDoc),
            "3");
  EXPECT_EQ(EvalWithContext(
                "let $d := /doc return string(($d/group/item)[4]/@v)", kDoc),
            "4");
}

}  // namespace
}  // namespace lll
