// The "lessons applied" extension module: the paper's Moral, implemented.
//   Moral #1: basic data structures  -> the map: function family
//   Moral #4: exception handling     -> try { } catch { }
// These tests show the exact pains of the paper dissolving once the little
// language grows the missing constructs.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;

// --- try/catch (Moral #4) -------------------------------------------------

TEST(TryCatch, CatchesDynamicErrors) {
  EXPECT_EQ(Eval("try { 1 idiv 0 } catch { -1 }"), "-1");
  EXPECT_EQ(Eval("try { 1 + 1 } catch { -1 }"), "2");
  EXPECT_EQ(Eval("try { error(\"boom\") } catch { \"saved\" }"), "saved");
  EXPECT_EQ(Eval("try { exactly-one(()) } catch { \"none\" }"), "none");
}

TEST(TryCatch, HandlerSeesTheErrorDescription) {
  EXPECT_EQ(Eval("try { error(\"the reactor\") } "
                 "catch { concat(\"trouble: \", $err:description) }"),
            "trouble: fn:error: the reactor");
  EXPECT_EQ(Eval("try { 1 idiv 0 } catch { $err:code }"), "InvalidArgument");
}

TEST(TryCatch, XQuery30StyleCatchAllMarker) {
  EXPECT_EQ(Eval("try { error() } catch * { \"ok\" }"), "ok");
}

TEST(TryCatch, Nests) {
  EXPECT_EQ(Eval("try { try { error(\"inner\") } catch { error(\"outer\") } }"
                 " catch { $err:description }"),
            "fn:error: outer");
}

TEST(TryCatch, ErrorsInTheHandlerPropagate) {
  EXPECT_NE(EvalError("try { error(\"a\") } catch { error(\"b\") }")
                .find("b"),
            std::string::npos);
}

TEST(TryCatch, ResourceLimitsAreNotCatchable) {
  // A handler must not mask a runaway query.
  xq::ExecuteOptions opts;
  opts.eval.max_steps = 500;
  auto result = xq::Run(
      "try { count(for $i in 1 to 100000 return $i) } catch { -1 }", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("budget"), std::string::npos);

  auto recursion = xq::Run(
      "declare function local:loop($n) { local:loop($n + 1) }; "
      "try { local:loop(0) } catch { -1 }");
  EXPECT_FALSE(recursion.ok());
}

TEST(TryCatch, DissolvesThePapersSixLinePattern) {
  // The paper's required-child pattern, rewritten with the extension: the
  // utility just errors, intermediate layers do nothing, the top catches.
  const char* program =
      "declare function local:required-child($e, $name) { "
      "  let $c := $e/child::*[name(.) = $name] "
      "  return if (empty($c)) then "
      "    error(concat(\"no <\", $name, \"> child\")) else $c[1] }; "
      "declare function local:middle($e) { "
      "  local:required-child($e, \"then\") }; "  // no checking here!
      "try { string(local:middle(<if><test/></if>)) } "
      "catch { concat(\"report: \", $err:description) }";
  EXPECT_EQ(Eval(program), "report: fn:error: no <then> child");
}

TEST(TryCatch, TryIsStillAValidElementAndStepName) {
  // `try` remains contextual: only `try {` begins the expression.
  EXPECT_EQ(Eval("<try/>"), "<try/>");
  EXPECT_EQ(Eval("count(<a><try/></a>/try)"), "1");
}

// --- map: (Moral #1) ------------------------------------------------------

TEST(Maps, BasicOperations) {
  EXPECT_EQ(Eval("map:size(map:new())"), "0");
  EXPECT_EQ(Eval("map:size(map:put(map:new(), \"a\", 1))"), "1");
  EXPECT_EQ(Eval("map:get(map:put(map:new(), \"a\", 42), \"a\")"), "42");
  EXPECT_EQ(Eval("map:get(map:new(), \"missing\")"), "");
  EXPECT_EQ(Eval("map:contains(map:put(map:new(), \"k\", 1), \"k\")"), "true");
  EXPECT_EQ(Eval("map:contains(map:new(), \"k\")"), "false");
  EXPECT_EQ(Eval("let $m := map:put(map:put(map:new(), \"a\", 1), \"b\", 2) "
                 "return string-join(map:keys($m), \",\")"),
            "a,b");
  EXPECT_EQ(Eval("map:size(map:remove(map:put(map:new(), \"a\", 1), \"a\"))"),
            "0");
}

TEST(Maps, PutOverwrites) {
  EXPECT_EQ(Eval("map:get(map:put(map:put(map:new(), \"k\", 1), \"k\", 2), "
                 "\"k\")"),
            "2");
}

TEST(Maps, ValuesAreSequencesAndDoNotFlatten) {
  // THE point: E1's impossibility, possible. A map holds (1,2,3) as a
  // value; getting it back gives exactly (1,2,3), not a blend.
  EXPECT_EQ(Eval("let $m := map:put(map:put(map:new(), \"x\", (1,2,3)), "
                 "                  \"y\", ()) "
                 "return (count(map:get($m, \"x\")), "
                 "        count(map:get($m, \"y\")))"),
            "3 0");
  // Even attribute nodes survive storage un-folded.
  EXPECT_EQ(Eval("let $m := map:put(map:new(), \"a\", attribute y {\"w\"}) "
                 "return string(map:get($m, \"a\"))"),
            "w");
}

TEST(Maps, ImmutableValueSemantics) {
  EXPECT_EQ(Eval("let $m1 := map:put(map:new(), \"a\", 1) "
                 "let $m2 := map:put($m1, \"b\", 2) "
                 "return (map:size($m1), map:size($m2))"),
            "1 2");
}

TEST(Maps, MapsInSequencesDoNotFlatten) {
  // Maps are items: a sequence of maps is a sequence of maps.
  EXPECT_EQ(Eval("count((map:new(), map:new(), map:new()))"), "3");
  EXPECT_EQ(Eval("let $ms := (map:put(map:new(), \"k\", 1), "
                 "            map:put(map:new(), \"k\", 2)) "
                 "return map:get($ms[2], \"k\")"),
            "2");
}

TEST(Maps, KeysAtomize) {
  // Numeric and node keys become their string forms.
  EXPECT_EQ(Eval("map:get(map:put(map:new(), 42, \"v\"), \"42\")"), "v");
  EXPECT_EQ(Eval("map:get(map:put(map:new(), <k>a</k>, 1), \"a\")"), "1");
}

TEST(Maps, TypeErrors) {
  EXPECT_FALSE(xq::Run("map:get(1, \"k\")").ok());
  EXPECT_FALSE(xq::Run("map:put((), \"k\", 1)").ok());
  EXPECT_FALSE(xq::Run("map:size((map:new(), map:new()))").ok());
  // Maps refuse comparison and element content.
  EXPECT_FALSE(xq::Run("map:new() = map:new()").ok());
  EXPECT_FALSE(xq::Run("<a>{map:new()}</a>").ok());
  EXPECT_FALSE(xq::Run("if (map:new()) then 1 else 2").ok());
  // A map as a key is rejected.
  EXPECT_FALSE(xq::Run("map:put(map:new(), map:new(), 1)").ok());
}

TEST(Maps, WordCountIdiom) {
  // The workhorse the paper missed: counting occurrences.
  const char* program =
      "declare function local:tally($m, $words) { "
      "  if (empty($words)) then $m "
      "  else "
      "    let $w := $words[1] "
      "    let $n := map:get($m, $w) "
      "    let $m2 := map:put($m, $w, (if (empty($n)) then 1 else $n + 1)) "
      "    return local:tally($m2, $words[position() > 1]) }; "
      "let $m := local:tally(map:new(), tokenize(\"a b a c a b\", \" \")) "
      "return (map:get($m, \"a\"), map:get($m, \"b\"), map:get($m, \"c\"))";
  EXPECT_EQ(Eval(program), "3 2 1");
}

}  // namespace
}  // namespace lll
