// The metrics layer: instrument semantics, registry behavior, the JSON
// snapshot, and the lock-free concurrency contract (run this binary under
// ThreadSanitizer via the `concurrency` ctest label).

#include <string>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "gtest/gtest.h"

namespace lll {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, CountSumMaxMean) {
  Histogram h;
  h.Observe(1);
  h.Observe(2);
  h.Observe(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(HistogramTest, ZeroLandsInBucketZero) {
  Histogram h;
  h.Observe(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.ApproxPercentile(50), 0u);
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  uint64_t p50 = h.ApproxPercentile(50);
  uint64_t p95 = h.ApproxPercentile(95);
  uint64_t p99 = h.ApproxPercentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Exponential buckets: the answer is approximate but must stay within the
  // observed range and the right order of magnitude.
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p99, 1024u);
}

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_NE(&reg.counter("y"), &a);
  // Counter, gauge, and histogram namespaces are independent.
  reg.gauge("x").Set(5);
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(MetricsRegistryTest, ToJsonSnapshot) {
  MetricsRegistry reg;
  reg.counter("b.count").Increment(2);
  reg.counter("a.count").Increment();
  reg.gauge("cache.size").Set(3);
  reg.histogram("lat_us").Observe(100);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"b.count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache.size\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  // Keys come out sorted, so snapshots diff cleanly.
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
}

TEST(MetricsRegistryTest, ResetDropsInstruments) {
  MetricsRegistry reg;
  reg.counter("x").Increment(7);
  reg.Reset();
  EXPECT_EQ(reg.counter("x").value(), 0u);
}

// --- Concurrency (TSan target) ---------------------------------------------

TEST(MetricsConcurrencyTest, ParallelCounterIncrementsAllLand) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve through the registry every time: name lookup must be safe
      // against concurrent lookups and creations.
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("shared").Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsConcurrencyTest, ParallelMixedInstrumentsAndSnapshots) {
  MetricsRegistry reg;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      std::string mine = "t" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter(mine).Increment();
        reg.histogram("h").Observe(static_cast<uint64_t>(i));
        reg.gauge("g").Set(i);
        if (i % 1000 == 0) {
          // Snapshotting while writers run must be safe (values are torn-free
          // per instrument, not a consistent cut -- that is the contract).
          std::string json = reg.ToJson();
          EXPECT_FALSE(json.empty());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("t" + std::to_string(t)).value(),
              static_cast<uint64_t>(kPerThread));
  }
  EXPECT_EQ(reg.histogram("h").count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GlobalMetricsTest, IsSingleton) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
}

}  // namespace
}  // namespace lll
