// Shared-snapshot differential fuzz: the seeded 440-query random path
// workload (tests/test_util.h) executed from four concurrent server sessions
// against ONE shared snapshot must be byte-identical to a single-threaded
// library execution of the same queries against the same document.
//
// This extends the streamed-vs-materializing differential suite
// (xquery_streaming_test.cc) with the server's concurrency dimensions: a
// shared compiled-query cache, a shared per-snapshot node-set interning
// cache, and -- in the second test -- a publisher republishing concurrently
// while every session stays pinned to version 1.

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll::server {
namespace {

constexpr int kSessions = 4;
constexpr int kQueries = 440;
constexpr uint32_t kSeed = 20260806;

// One baseline row: whether the library accepted the query, and what it
// serialized to. Rejections must match too -- a query that errors
// single-threaded must error identically on the server.
struct Expectation {
  bool ok = false;
  std::string text;  // serialized items, or the status string
};

std::vector<Expectation> SingleThreadedBaseline(
    const std::string& xml, const std::vector<std::string>& queries) {
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok());
  std::vector<Expectation> rows;
  rows.reserve(queries.size());
  for (const std::string& query : queries) {
    xq::ExecuteOptions opts;
    opts.context_node = (*doc)->root();
    auto result = xq::Run(query, opts);
    Expectation row;
    row.ok = result.ok();
    row.text = result.ok() ? result->SerializedItems()
                           : result.status().ToString();
    rows.push_back(std::move(row));
  }
  return rows;
}

void RunSessionAgainstBaseline(QueryServer* server, const std::string& tenant,
                               const std::vector<std::string>& queries,
                               const std::vector<Expectation>& expected,
                               uint64_t expected_version) {
  Session session = server->OpenSession(tenant);
  int mismatches = 0;
  for (size_t i = 0; i < queries.size() && mismatches < 5; ++i) {
    QueryResponse resp = session.Query("shared", queries[i]);
    if (resp.status.ok() != expected[i].ok) {
      ++mismatches;
      ADD_FAILURE() << tenant << " query #" << i << ": " << queries[i]
                    << "\n  server ok=" << resp.status.ok()
                    << " baseline ok=" << expected[i].ok << "\n  server: "
                    << (resp.status.ok() ? resp.result
                                         : resp.status.ToString())
                    << "\n  baseline: " << expected[i].text;
      continue;
    }
    if (resp.status.ok() && resp.result != expected[i].text) {
      ++mismatches;
      ADD_FAILURE() << tenant << " diverged on query #" << i << ": "
                    << queries[i] << "\n  server:   " << resp.result
                    << "\n  baseline: " << expected[i].text;
    }
    if (resp.status.ok() && resp.snapshot_version != expected_version) {
      ++mismatches;
      ADD_FAILURE() << tenant << " drifted off its pinned snapshot on query #"
                    << i << ": version " << resp.snapshot_version
                    << " != " << expected_version;
    }
  }
}

TEST(ServerDifferential, FourSessionsMatchSingleThreadedExecution) {
  // Seeded contract: document first, then queries (test_util.h).
  std::mt19937 rng(kSeed);
  std::string xml = testing::RandomPathWorkloadDocument(&rng);
  std::vector<std::string> queries =
      testing::RandomPathWorkloadQueries(&rng, kQueries);
  std::vector<Expectation> expected = SingleThreadedBaseline(xml, queries);

  MetricsRegistry metrics;
  ServerOptions options;
  options.worker_threads = 2;
  // Big enough that the 440 distinct queries never evict each other -- the
  // cache-sharing assertion below must measure sharing, not LRU churn.
  options.query_cache_capacity = 1024;
  options.metrics = &metrics;
  QueryServer server(options);
  ASSERT_TRUE(server.AddDocumentXml("shared", xml).ok());

  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      RunSessionAgainstBaseline(&server, "session" + std::to_string(s),
                                queries, expected, /*expected_version=*/1);
    });
  }
  for (std::thread& t : threads) t.join();

  // All four sessions ran the full suite through the shared caches.
  EXPECT_EQ(metrics.counter("server.queries").value(),
            static_cast<uint64_t>(kSessions) * kQueries);
  EXPECT_EQ(metrics.counter("server.queries_rejected").value(), 0u);
  // The four sessions share one compile cache. Concurrent first
  // encounters of the same query may each compile it (GetOrCompile
  // compiles outside the lock), so the exact hit count is scheduling
  // dependent -- but the bulk of the 4x440 lookups must be shared.
  EXPECT_GE(metrics.counter("server.query_cache_hits").value(),
            static_cast<uint64_t>(2 * kQueries));
}

TEST(ServerDifferential, PinnedSessionsIgnoreConcurrentPublishes) {
  std::mt19937 rng(kSeed);
  std::string xml = testing::RandomPathWorkloadDocument(&rng);
  std::vector<std::string> queries =
      testing::RandomPathWorkloadQueries(&rng, kQueries);
  std::vector<Expectation> expected = SingleThreadedBaseline(xml, queries);

  MetricsRegistry metrics;
  ServerOptions options;
  options.worker_threads = 2;
  options.metrics = &metrics;
  QueryServer server(options);
  ASSERT_TRUE(server.AddDocumentXml("shared", xml).ok());

  // Pin every session to version 1 before the publisher starts.
  std::vector<Session> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(server.OpenSession("pinned" + std::to_string(s)));
    QueryResponse warm = sessions.back().Query("shared", "count(/r)");
    ASSERT_TRUE(warm.status.ok());
    ASSERT_EQ(warm.snapshot_version, 1u);
  }

  // The publisher replaces the document with a deliberately DIFFERENT one;
  // only a session that loses its pin could ever notice.
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto version = server.PublishXml("shared", "<r><decoy/></r>");
      ASSERT_TRUE(version.ok());
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    Session* session = &sessions[s];
    threads.emplace_back([&, session, s] {
      int mismatches = 0;
      for (size_t i = 0; i < queries.size() && mismatches < 5; ++i) {
        QueryResponse resp = session->Query("shared", queries[i]);
        if (resp.status.ok() != expected[i].ok ||
            (resp.status.ok() && resp.result != expected[i].text)) {
          ++mismatches;
          ADD_FAILURE() << "pinned" << s << " diverged on #" << i << ": "
                        << queries[i];
        }
        if (resp.status.ok() && resp.snapshot_version != 1u) {
          ++mismatches;
          ADD_FAILURE() << "pinned" << s << " lost its pin on #" << i;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  EXPECT_GT(server.snapshots_published(), 0u);
}

}  // namespace
}  // namespace lll::server
