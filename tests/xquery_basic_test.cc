// Core expression-language coverage for the XQuery engine: literals,
// sequences, arithmetic, FLWOR, quantifiers, paths, predicates, functions.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;
using testing::EvalWithContext;

TEST(XQueryBasic, Literals) {
  EXPECT_EQ(Eval("42"), "42");
  EXPECT_EQ(Eval("3.5"), "3.5");
  EXPECT_EQ(Eval("\"hello\""), "hello");
  EXPECT_EQ(Eval("'single'"), "single");
  EXPECT_EQ(Eval("\"say \"\"hi\"\"\""), "say \"hi\"");
  EXPECT_EQ(Eval("()"), "");
}

TEST(XQueryBasic, SequencesFlatten) {
  EXPECT_EQ(Eval("(1,2,3)"), "1 2 3");
  EXPECT_EQ(Eval("(1,(2,3,4),(),(5,((6,7))))"), "1 2 3 4 5 6 7");
  EXPECT_EQ(Eval("count((1,(2,3),()))"), "3");
}

TEST(XQueryBasic, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3"), "7");
  EXPECT_EQ(Eval("(1 + 2) * 3"), "9");
  EXPECT_EQ(Eval("7 idiv 2"), "3");
  EXPECT_EQ(Eval("7 mod 2"), "1");
  EXPECT_EQ(Eval("1 div 2"), "0.5");
  EXPECT_EQ(Eval("-(5)"), "-5");
  EXPECT_EQ(Eval("2 + 2.5"), "4.5");
}

TEST(XQueryBasic, DivisionByZeroIsAnError) {
  EXPECT_NE(EvalError("1 div 0").find("FOAR0001"), std::string::npos);
  EXPECT_NE(EvalError("1 idiv 0").find("FOAR0001"), std::string::npos);
  EXPECT_NE(EvalError("1 mod 0").find("FOAR0001"), std::string::npos);
}

TEST(XQueryBasic, EmptyOperandPropagates) {
  EXPECT_EQ(Eval("() + 1"), "");
  EXPECT_EQ(Eval("1 * ()"), "");
  EXPECT_EQ(Eval("-(())"), "");
}

TEST(XQueryBasic, RangeExpression) {
  EXPECT_EQ(Eval("1 to 5"), "1 2 3 4 5");
  EXPECT_EQ(Eval("5 to 1"), "");
  EXPECT_EQ(Eval("count(1 to 100)"), "100");
  EXPECT_EQ(Eval("(1 to 3, 7 to 8)"), "1 2 3 7 8");
}

TEST(XQueryBasic, IfThenElse) {
  EXPECT_EQ(Eval("if (1 < 2) then \"yes\" else \"no\""), "yes");
  EXPECT_EQ(Eval("if (()) then \"yes\" else \"no\""), "no");
  EXPECT_EQ(Eval("if (\"\") then 1 else 2"), "2");
  EXPECT_EQ(Eval("if (\"x\") then 1 else 2"), "1");
}

TEST(XQueryBasic, BooleanConnectives) {
  EXPECT_EQ(Eval("true() and false()"), "false");
  EXPECT_EQ(Eval("true() or false()"), "true");
  EXPECT_EQ(Eval("not(true())"), "false");
  // Short-circuit: the right side would error if evaluated.
  EXPECT_EQ(Eval("false() and (1 idiv 0 = 1)"), "false");
  EXPECT_EQ(Eval("true() or (1 idiv 0 = 1)"), "true");
}

TEST(XQueryBasic, FlworForAndLet) {
  EXPECT_EQ(Eval("for $x in (1,2,3) return $x * 2"), "2 4 6");
  EXPECT_EQ(Eval("let $x := 5 return $x + 1"), "6");
  EXPECT_EQ(Eval("for $x in (1,2), $y in (10,20) return $x + $y"),
            "11 21 12 22");
  EXPECT_EQ(Eval("for $x at $i in (\"a\",\"b\",\"c\") return $i"), "1 2 3");
}

TEST(XQueryBasic, FlworWhere) {
  EXPECT_EQ(Eval("for $x in 1 to 10 where $x mod 2 = 0 return $x"),
            "2 4 6 8 10");
}

TEST(XQueryBasic, FlworOrderBy) {
  EXPECT_EQ(Eval("for $x in (3,1,2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(Eval("for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1");
  EXPECT_EQ(
      Eval("for $s in (\"pear\",\"apple\",\"fig\") order by $s return $s"),
      "apple fig pear");
  // Secondary key breaks ties.
  EXPECT_EQ(Eval("for $p in ((1,2),(1,1)) return ()"), "");
  EXPECT_EQ(Eval("for $x in (\"bb\",\"a\",\"cc\") "
                 "order by string-length($x), $x return $x"),
            "a bb cc");
}

TEST(XQueryBasic, FlworOrderByEmptyLeast) {
  EXPECT_EQ(Eval("for $x in (2, 1) order by (if ($x = 1) then () else $x) "
                 "return $x"),
            "1 2");
}

TEST(XQueryBasic, Quantifiers) {
  EXPECT_EQ(Eval("some $x in (1,2,3) satisfies $x > 2"), "true");
  EXPECT_EQ(Eval("every $x in (1,2,3) satisfies $x > 2"), "false");
  EXPECT_EQ(Eval("every $x in () satisfies $x > 2"), "true");
  EXPECT_EQ(Eval("some $x in () satisfies $x > 2"), "false");
}

TEST(XQueryBasic, PathsOverDocument) {
  const char* doc = R"(<lib>
    <book year="1983"><title>Tides</title></book>
    <book year="2001"><title>Waves</title></book>
  </lib>)";
  EXPECT_EQ(EvalWithContext("count(/lib/book)", doc), "2");
  EXPECT_EQ(EvalWithContext("string(/lib/book[1]/title)", doc), "Tides");
  EXPECT_EQ(EvalWithContext("string(/lib/book[@year=\"2001\"]/title)", doc),
            "Waves");
  EXPECT_EQ(EvalWithContext("count(//title)", doc), "2");
  EXPECT_EQ(EvalWithContext("string(//book[2]/@year)", doc), "2001");
}

TEST(XQueryBasic, Axes) {
  const char* doc =
      "<a><b><c/><d/></b><b2/></a>";
  EXPECT_EQ(EvalWithContext("name(//c/parent::b)", doc), "b");
  EXPECT_EQ(EvalWithContext("count(//c/ancestor::*)", doc), "2");
  EXPECT_EQ(EvalWithContext("count(//c/ancestor-or-self::*)", doc), "3");
  EXPECT_EQ(EvalWithContext("name(//c/following-sibling::*)", doc), "d");
  EXPECT_EQ(EvalWithContext("name(//d/preceding-sibling::*)", doc), "c");
  EXPECT_EQ(EvalWithContext("count(/a/descendant::*)", doc), "4");
  EXPECT_EQ(EvalWithContext("name(//b/self::b)", doc), "b");
  // parent::book idiom from the paper: parent only if it has that name.
  EXPECT_EQ(EvalWithContext("count(//c/parent::zzz)", doc), "0");
}

TEST(XQueryBasic, PathResultsAreDocOrderedAndDeduped) {
  const char* doc = "<a><b><c/></b><b><c/></b></a>";
  // Both b elements' descendants unioned, duplicates removed.
  EXPECT_EQ(EvalWithContext("count((//b | //b))", doc), "2");
  EXPECT_EQ(EvalWithContext("count((//c, //c))", doc), "4");  // comma keeps dups
  EXPECT_EQ(
      EvalWithContext("string-join(for $n in //b/c return name($n), \",\")",
                      doc),
      "c,c");
}

TEST(XQueryBasic, FilterExpressions) {
  EXPECT_EQ(Eval("(1,2,3)[2]"), "2");
  EXPECT_EQ(Eval("(\"a\",\"b\",\"c\")[position() > 1]"), "b c");
  EXPECT_EQ(Eval("(1 to 10)[. mod 3 = 0]"), "3 6 9");
  EXPECT_EQ(Eval("(1,2,3)[4]"), "");
  EXPECT_EQ(Eval("(1 to 5)[last()]"), "5");
}

TEST(XQueryBasic, PredicatePositionAndLast) {
  const char* doc = "<a><x>1</x><x>2</x><x>3</x></a>";
  EXPECT_EQ(EvalWithContext("string(/a/x[last()])", doc), "3");
  EXPECT_EQ(EvalWithContext("string(/a/x[position() = 2])", doc), "2");
}

TEST(XQueryBasic, UserFunctions) {
  EXPECT_EQ(Eval("declare function local:double($x) { $x * 2 }; "
                 "local:double(21)"),
            "42");
  EXPECT_EQ(Eval("declare function local:fact($n) { "
                 "  if ($n le 1) then 1 else $n * local:fact($n - 1) }; "
                 "local:fact(10)"),
            "3628800");
  // Mutual recursion.
  EXPECT_EQ(Eval("declare function local:odd($n) { "
                 "  if ($n = 0) then false() else local:even($n - 1) }; "
                 "declare function local:even($n) { "
                 "  if ($n = 0) then true() else local:odd($n - 1) }; "
                 "local:even(10)"),
            "true");
}

TEST(XQueryBasic, GlobalVariables) {
  EXPECT_EQ(Eval("declare variable $base := 10; $base + 5"), "15");
  EXPECT_EQ(Eval("declare variable $a := 2; declare variable $b := $a * 3; "
                 "$b"),
            "6");
}

TEST(XQueryBasic, DeepRecursionIsAnErrorNotACrash) {
  std::string err = EvalError(
      "declare function local:loop($n) { local:loop($n + 1) }; local:loop(0)");
  EXPECT_NE(err.find("recursion"), std::string::npos);
}

TEST(XQueryBasic, UnknownFunctionAndVariable) {
  EXPECT_NE(EvalError("no-such-fn(1)").find("unknown function"),
            std::string::npos);
  EXPECT_NE(EvalError("$nope").find("not found"), std::string::npos);
}

TEST(XQueryBasic, CastAs) {
  EXPECT_EQ(Eval("\"42\" cast as xs:integer"), "42");
  EXPECT_EQ(Eval("3.9 cast as xs:integer"), "3");
  EXPECT_EQ(Eval("42 cast as xs:string"), "42");
  EXPECT_EQ(Eval("\"true\" cast as xs:boolean"), "true");
  EXPECT_EQ(Eval("1 cast as xs:boolean"), "true");
  EXPECT_NE(EvalError("\"x\" cast as xs:integer").find("cannot cast"),
            std::string::npos);
}

TEST(XQueryBasic, InstanceOf) {
  EXPECT_EQ(Eval("42 instance of xs:integer"), "true");
  EXPECT_EQ(Eval("42 instance of xs:string"), "false");
  EXPECT_EQ(Eval("(1,2) instance of xs:integer*"), "true");
  EXPECT_EQ(Eval("(1,2) instance of xs:integer"), "false");
  EXPECT_EQ(Eval("() instance of empty-sequence()"), "true");
  EXPECT_EQ(Eval("<a/> instance of element()"), "true");
  EXPECT_EQ(Eval("<a/> instance of element(a)"), "true");
  EXPECT_EQ(Eval("<a/> instance of element(b)"), "false");
}

TEST(XQueryBasic, XQueryCommentsAreSkipped) {
  EXPECT_EQ(Eval("1 (: plus :) + (: nested (: deeply :) :) 2"), "3");
}

}  // namespace
}  // namespace lll
