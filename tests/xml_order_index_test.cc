// Property tests for the document-order key index (Document::EnsureOrderIndex
// + CompareDocumentOrder). The retained structural comparator
// (CompareDocumentOrderStructural) is the oracle: the two must agree on EVERY
// pair -- elements, text, attributes, detached subtrees, cross-document --
// across random trees and random structural mutations, with the index going
// stale and rebuilding mid-stream.

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "xml/node.h"

namespace lll::xml {
namespace {

// Every node ever created in one Document, tracked by the test (the arena
// does not expose its node list).
struct Forest {
  std::unique_ptr<Document> doc = std::make_unique<Document>();
  std::vector<Node*> all;       // every node, attached or not
  std::vector<Node*> elements;  // elements only (mutation targets)

  Forest() {
    all.push_back(doc->root());
  }

  Node* AddElement(Rng& rng) {
    Node* e = doc->CreateElement("e" + std::to_string(all.size()));
    all.push_back(e);
    elements.push_back(e);
    AttachSomewhere(e, rng);
    return e;
  }

  void AddText(Rng& rng) {
    Node* t = doc->CreateText("t" + std::to_string(all.size()));
    all.push_back(t);
    AttachSomewhere(t, rng);
  }

  void AddAttribute(Rng& rng) {
    if (elements.empty()) return;
    Node* owner = elements[rng.Below(elements.size())];
    Node* a = doc->CreateAttribute("a" + std::to_string(all.size()), "v");
    all.push_back(a);
    if (rng.Chance(0.8)) {
      ASSERT_TRUE(owner->SetAttributeNode(a).ok());
    }  // else: stays detached -- attribute nodes may live outside any element
  }

  // Attaches `n` under a random element (or the document root), or leaves it
  // detached with some probability -- detached subtrees are first-class here.
  void AttachSomewhere(Node* n, Rng& rng) {
    if (rng.Chance(0.15)) return;  // detached
    Node* parent = rng.Chance(0.1) || elements.empty()
                       ? doc->root()
                       : elements[rng.Below(elements.size())];
    if (parent == n) return;
    size_t slot = parent->children().empty()
                      ? 0
                      : rng.Below(parent->children().size() + 1);
    ASSERT_TRUE(parent->InsertChildAt(slot, n).ok());
  }

  // One random structural mutation.
  void Mutate(Rng& rng) {
    switch (rng.Below(5)) {
      case 0:
        AddElement(rng);
        break;
      case 1:
        AddText(rng);
        break;
      case 2:
        AddAttribute(rng);
        break;
      case 3: {  // detach a random attached element (subtree becomes a root)
        if (elements.empty()) break;
        Node* victim = elements[rng.Below(elements.size())];
        if (victim->parent() != nullptr && !victim->is_attribute()) {
          victim->Detach();
        }
        break;
      }
      case 4: {  // re-attach a detached element under a new parent
        std::vector<Node*> detached;
        for (Node* e : elements) {
          if (e->parent() == nullptr) detached.push_back(e);
        }
        if (detached.empty()) break;
        Node* n = detached[rng.Below(detached.size())];
        // Avoid creating a cycle: only attach under the document root.
        ASSERT_TRUE(doc->root()->AppendChild(n).ok());
        break;
      }
    }
  }
};

void ExpectAllPairsAgree(const Forest& f, const std::string& where) {
  for (Node* a : f.all) {
    for (Node* b : f.all) {
      int want = CompareDocumentOrderStructural(a, b);
      int got = CompareDocumentOrder(a, b);
      ASSERT_EQ(got, want)
          << where << ": key comparator disagrees with structural oracle for "
          << NodeKindName(a->kind()) << " '" << a->name() << "' vs "
          << NodeKindName(b->kind()) << " '" << b->name() << "'";
      // Antisymmetry holds for both by construction of the check above, but
      // assert it explicitly once so a broken oracle cannot hide a broken key.
      ASSERT_EQ(got, -CompareDocumentOrder(b, a)) << where;
    }
  }
}

TEST(OrderIndexProperty, AgreesWithStructuralOracleUnderRandomMutation) {
  for (uint64_t seed : {1u, 7u, 20260806u, 424242u}) {
    Rng rng(seed);
    Forest f;
    // Grow an initial random forest.
    for (int i = 0; i < 60; ++i) f.Mutate(rng);
    ExpectAllPairsAgree(f, "seed " + std::to_string(seed) + " initial");
    // Interleave comparisons (which build the index) with mutations (which
    // invalidate it) -- the rebuild-if-stale path must stay correct.
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 6; ++i) f.Mutate(rng);
      ExpectAllPairsAgree(f, "seed " + std::to_string(seed) + " round " +
                                 std::to_string(round));
    }
  }
}

TEST(OrderIndexProperty, AttributesSlotAfterOwnerBeforeChildren) {
  Document doc;
  Node* root = doc.CreateElement("r");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());
  root->SetAttribute("a", "1");
  root->SetAttribute("b", "2");
  Node* child = doc.CreateElement("c");
  ASSERT_TRUE(root->AppendChild(child).ok());

  Node* attr_a = root->AttributeNode("a");
  Node* attr_b = root->AttributeNode("b");
  ASSERT_NE(attr_a, nullptr);
  ASSERT_NE(attr_b, nullptr);
  EXPECT_EQ(CompareDocumentOrder(root, attr_a), -1);
  EXPECT_EQ(CompareDocumentOrder(attr_a, attr_b), -1);  // insertion order
  EXPECT_EQ(CompareDocumentOrder(attr_b, child), -1);
  EXPECT_EQ(CompareDocumentOrder(attr_a, attr_a), 0);
}

TEST(OrderIndexProperty, DetachedSubtreeKeepsInternalOrder) {
  Document doc;
  Node* root = doc.CreateElement("r");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());
  Node* sub = doc.CreateElement("sub");
  ASSERT_TRUE(root->AppendChild(sub).ok());
  Node* x = doc.CreateElement("x");
  Node* y = doc.CreateElement("y");
  ASSERT_TRUE(sub->AppendChild(x).ok());
  ASSERT_TRUE(sub->AppendChild(y).ok());

  sub->Detach();
  // Within the detached tree, order is still structural preorder.
  EXPECT_EQ(CompareDocumentOrder(sub, x), -1);
  EXPECT_EQ(CompareDocumentOrder(x, y), -1);
  // Across trees of one document, both comparators give the same stable
  // arbitrary answer.
  EXPECT_EQ(CompareDocumentOrder(root, sub),
            CompareDocumentOrderStructural(root, sub));
  EXPECT_EQ(CompareDocumentOrder(root, y),
            CompareDocumentOrderStructural(root, y));
}

TEST(OrderIndexProperty, CrossDocumentCompareIsStableAndAntisymmetric) {
  Document d1, d2;
  Node* a = d1.CreateElement("a");
  ASSERT_TRUE(d1.root()->AppendChild(a).ok());
  Node* b = d2.CreateElement("b");
  ASSERT_TRUE(d2.root()->AppendChild(b).ok());

  int first = CompareDocumentOrder(a, b);
  EXPECT_NE(first, 0);
  EXPECT_EQ(CompareDocumentOrder(b, a), -first);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(CompareDocumentOrder(a, b), first);  // stable
  }
  EXPECT_EQ(first, CompareDocumentOrderStructural(a, b));
}

TEST(OrderIndexProperty, MutationInvalidatesAndRebuildGivesFreshKeys) {
  Document doc;
  Node* root = doc.CreateElement("r");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());
  Node* first = doc.CreateElement("first");
  Node* last = doc.CreateElement("last");
  ASSERT_TRUE(root->AppendChild(first).ok());
  ASSERT_TRUE(root->AppendChild(last).ok());

  // A compare builds the index.
  EXPECT_EQ(CompareDocumentOrder(first, last), -1);
  EXPECT_TRUE(doc.order_index_fresh());

  // Structural mutation invalidates it...
  uint64_t version_before = doc.structure_version();
  Node* newcomer = doc.CreateElement("newcomer");
  ASSERT_TRUE(root->InsertChildAt(0, newcomer).ok());
  EXPECT_FALSE(doc.order_index_fresh());
  EXPECT_GT(doc.structure_version(), version_before);

  // ...and the next compare sees the post-mutation order.
  EXPECT_EQ(CompareDocumentOrder(newcomer, first), -1);
  EXPECT_EQ(CompareDocumentOrder(newcomer, last), -1);
  EXPECT_TRUE(doc.order_index_fresh());

  // Moving a node mid-stream flips an already-computed answer.
  last->Detach();
  ASSERT_TRUE(root->InsertChildAt(0, last).ok());
  EXPECT_EQ(CompareDocumentOrder(first, last), 1);
}

TEST(OrderIndexProperty, EveryMutationKindBumpsStructureVersion) {
  Document doc;
  Node* root = doc.CreateElement("r");
  ASSERT_TRUE(doc.root()->AppendChild(root).ok());

  auto bumped = [&doc](auto&& mutate) {
    uint64_t before = doc.structure_version();
    mutate();
    return doc.structure_version() > before;
  };

  Node* child = nullptr;
  EXPECT_TRUE(bumped([&] { child = doc.CreateElement("c"); }));
  EXPECT_TRUE(bumped([&] { ASSERT_TRUE(root->AppendChild(child).ok()); }));
  EXPECT_TRUE(bumped([&] { root->SetAttribute("k", "v"); }));
  EXPECT_TRUE(bumped([&] { root->RemoveAttribute("k"); }));
  EXPECT_TRUE(bumped([&] { child->Detach(); }));
  // Pure value mutation does NOT invalidate: order is structural.
  uint64_t before = doc.structure_version();
  root->set_value("ignored");
  EXPECT_EQ(doc.structure_version(), before);
}

}  // namespace
}  // namespace lll::xml
