// The caching layer, bottom up: the generic LruCache, the compiled-XQuery
// QueryCache, and the AWB-QL parse cache. Concurrency is exercised
// separately in concurrency_test.cc; these tests pin down the single-thread
// semantics -- recency order, eviction, the capacity-0 passthrough mode, and
// the counter invariants the stats report.

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "awbql/query.h"
#include "core/lru_cache.h"
#include "gtest/gtest.h"
#include "xquery/query_cache.h"

namespace lll {
namespace {

std::shared_ptr<const int> Boxed(int v) {
  return std::make_shared<const int>(v);
}

TEST(LruCacheTest, GetReturnsWhatPutStored) {
  LruCache<int> cache(4);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", Boxed(1));
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedFirst) {
  LruCache<int> cache(3);
  cache.Put("a", Boxed(1));
  cache.Put("b", Boxed(2));
  cache.Put("c", Boxed(3));
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_NE(cache.Get("a"), nullptr);
  cache.Put("d", Boxed(4));  // evicts "b"

  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_NE(cache.Get("d"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCacheTest, KeysByRecencyTracksTouchOrder) {
  LruCache<int> cache(3);
  cache.Put("a", Boxed(1));
  cache.Put("b", Boxed(2));
  cache.Put("c", Boxed(3));
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.KeysByRecency(), (std::list<std::string>{"a", "c", "b"}));
  cache.Put("b", Boxed(20));  // overwrite refreshes recency too
  EXPECT_EQ(cache.KeysByRecency(), (std::list<std::string>{"b", "a", "c"}));
}

TEST(LruCacheTest, HandleSurvivesEviction) {
  LruCache<int> cache(1);
  cache.Put("a", Boxed(7));
  auto handle = cache.Get("a");
  ASSERT_NE(handle, nullptr);
  cache.Put("b", Boxed(8));  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(*handle, 7);  // still valid: eviction only drops the cache's ref
}

TEST(LruCacheTest, CapacityZeroIsPassthrough) {
  LruCache<int> cache(0);
  cache.Put("a", Boxed(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  // Nothing stored, so nothing was ever evicted either.
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(LruCacheTest, StatsInvariantHolds) {
  LruCache<int> cache(2);
  cache.Put("a", Boxed(1));
  (void)cache.Get("a");     // hit
  (void)cache.Get("b");     // miss
  (void)cache.Get("a");     // hit
  (void)cache.Get("zzz");   // miss
  CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 4u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(LruCacheTest, ClearEmptiesWithoutCountingEvictions) {
  LruCache<int> cache(4);
  cache.Put("a", Boxed(1));
  cache.Put("b", Boxed(2));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// --- xq::QueryCache ---------------------------------------------------------

TEST(QueryCacheTest, HitReturnsTheSameCompiledHandle) {
  xq::QueryCache cache(8);
  auto first = cache.GetOrCompile("1 + 2");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.GetOrCompile("1 + 2");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // literally the same object
  CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(QueryCacheTest, DistinctCompileOptionsGetDistinctEntries) {
  xq::QueryCache cache(8);
  xq::CompileOptions optimized;   // defaults: optimize = true
  xq::CompileOptions plain;
  plain.optimize = false;
  auto a = cache.GetOrCompile("1 to 5", optimized);
  auto b = cache.GetOrCompile("1 to 5", plain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(xq::QueryCache::MakeKey("1 to 5", optimized),
            xq::QueryCache::MakeKey("1 to 5", plain));
}

TEST(QueryCacheTest, CapacityZeroAlwaysRecompiles) {
  xq::QueryCache cache(0);
  auto a = cache.GetOrCompile("2 * 3");
  auto b = cache.GetOrCompile("2 * 3");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());  // fresh compile each time
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(QueryCacheTest, CompileErrorsAreReportedAndNotCached) {
  xq::QueryCache cache(8);
  auto bad = cache.GetOrCompile("let $x := ");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(cache.size(), 0u);
  // And the error is stable on retry (nothing poisoned).
  EXPECT_FALSE(cache.GetOrCompile("let $x := ").ok());
}

TEST(QueryCacheTest, LruEvictionAcrossQueries) {
  xq::QueryCache cache(2);
  ASSERT_TRUE(cache.GetOrCompile("1").ok());
  ASSERT_TRUE(cache.GetOrCompile("2").ok());
  ASSERT_TRUE(cache.GetOrCompile("3").ok());  // evicts "1"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // "1" is gone: looking it up again is a miss (then a recompile).
  uint64_t misses_before = cache.stats().misses;
  ASSERT_TRUE(cache.GetOrCompile("1").ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

// --- awbql::QueryParseCache -------------------------------------------------

TEST(QueryParseCacheTest, ParsesOnceAndShares) {
  awbql::QueryParseCache cache(8);
  auto a = cache.GetOrParse("from type:User\nsort label\n");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = cache.GetOrParse("from type:User\nsort label\n");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
  EXPECT_EQ((*a)->source_kind, awbql::Query::SourceKind::kType);
  ASSERT_EQ((*a)->steps.size(), 1u);
}

TEST(QueryParseCacheTest, ParseErrorsAreNotCached) {
  awbql::QueryParseCache cache(8);
  EXPECT_FALSE(cache.GetOrParse("follow likes>\n").ok());  // no 'from'
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace lll
