// Parser-level coverage: precedence, prolog forms, constructor syntax,
// error positions. Golden assertions use ExprToString's canonical rendering.

#include "gtest/gtest.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace lll::xq {
namespace {

std::string Ast(const std::string& source) {
  auto module = ParseExpression(source);
  EXPECT_TRUE(module.ok()) << source << ": " << module.status().ToString();
  return module.ok() ? ExprToString(*module->body) : "<ERR>";
}

std::string ParseErr(const std::string& source) {
  auto module = ParseModule(source);
  EXPECT_FALSE(module.ok()) << source;
  return module.ok() ? "" : module.status().message();
}

TEST(ParserPrecedence, ArithmeticLadder) {
  EXPECT_EQ(Ast("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Ast("1 * 2 + 3"), "((1 * 2) + 3)");
  EXPECT_EQ(Ast("1 - 2 - 3"), "((1 - 2) - 3)");  // left associative
  EXPECT_EQ(Ast("8 idiv 4 idiv 2"), "((8 idiv 4) idiv 2)");
  EXPECT_EQ(Ast("-2 + 3"), "((-2) + 3)");
  EXPECT_EQ(Ast("2 + -3"), "(2 + (-3))");
}

TEST(ParserPrecedence, ComparisonBindsLooserThanArithmetic) {
  EXPECT_EQ(Ast("1 + 2 = 3"), "((1 + 2) = 3)");
  EXPECT_EQ(Ast("1 lt 2 + 3"), "(1 lt (2 + 3))");
}

TEST(ParserPrecedence, BooleanLadder) {
  EXPECT_EQ(Ast("1 = 1 and 2 = 2 or 3 = 3"),
            "(((1 = 1) and (2 = 2)) or (3 = 3))");
  EXPECT_EQ(Ast("1 = 1 or 2 = 2 and 3 = 3"),
            "((1 = 1) or ((2 = 2) and (3 = 3)))");
}

TEST(ParserPrecedence, RangeAndUnion) {
  EXPECT_EQ(Ast("1 to 2 + 3"), "(1 to (2 + 3))");
  EXPECT_EQ(Ast("$a | $b | $c"), "(($a union $b) union $c)");
}

TEST(ParserPrecedence, CommaIsWeakest) {
  EXPECT_EQ(Ast("1, 2 + 3, 4"), "(1, (2 + 3), 4)");
}

TEST(ParserForms, FlworRendering) {
  EXPECT_EQ(Ast("for $x in (1,2) let $y := $x return $y"),
            "for $x in (1, 2) let $y := $x return $y");
  EXPECT_EQ(Ast("for $x at $i in $s return $i"),
            "for $x at $i in $s return $i");
  EXPECT_EQ(Ast("for $x in $s where $x order by $x descending return $x"),
            "for $x in $s where $x order by $x descending return $x");
}

TEST(ParserForms, QuantifiersAndIf) {
  EXPECT_EQ(Ast("some $x in $s satisfies $x"),
            "some $x in $s satisfies $x");
  EXPECT_EQ(Ast("if ($c) then 1 else 2"), "if ($c) then 1 else 2");
}

TEST(ParserForms, PathRendering) {
  EXPECT_EQ(Ast("a/b"), "/child::a/child::b");
  EXPECT_EQ(Ast("/a//b"),
            "(root)/child::a/descendant-or-self::node()/child::b");
  EXPECT_EQ(Ast("$x/@y"), "$x/attribute::y");
  EXPECT_EQ(Ast("../z"), "/parent::node()/child::z");
  EXPECT_EQ(Ast("a[1][2]"), "/child::a[1][2]");
}

TEST(ParserForms, NumberLiterals) {
  EXPECT_EQ(Ast("42"), "42");
  EXPECT_EQ(Ast("4.25"), "4.25");
  EXPECT_EQ(Ast("1e3"), "1000");
  EXPECT_EQ(Ast("1.5E2"), "150");
  // "4." is 4 then context-dependent '.'; keep it simple: integer + error.
}

TEST(ParserForms, StringEscapes) {
  EXPECT_EQ(Ast("\"a&amp;b\""), "\"a&b\"");
  EXPECT_EQ(Ast("'it''s'"), "\"it's\"");
  EXPECT_EQ(Ast("\"say \"\"hi\"\"\""), "\"say \"hi\"\"");
}

TEST(ParserProlog, FunctionsAndVariables) {
  auto module = ParseModule(
      "declare namespace my = \"urn:x\"; "
      "declare boundary-space strip; "
      "declare variable $limit := 10; "
      "declare function local:f($a, $b as xs:integer) as xs:integer "
      "{ $a + $b }; "
      "local:f(1, 2)");
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  EXPECT_EQ(module->variables.size(), 1u);
  EXPECT_EQ(module->variables[0].name, "limit");
  ASSERT_EQ(module->functions.size(), 1u);
  const FunctionDecl& fn = module->functions[0];
  EXPECT_EQ(fn.name, "local:f");
  EXPECT_EQ(fn.params.size(), 2u);
  EXPECT_FALSE(fn.has_param_type[0]);
  EXPECT_TRUE(fn.has_param_type[1]);
  EXPECT_TRUE(fn.has_return_type);
  EXPECT_EQ(fn.return_type.ToString(), "xs:integer");
}

TEST(ParserProlog, DuplicateArityOverloads) {
  // Same name, different arities: both declared and callable.
  auto module = ParseModule(
      "declare function local:f($a) { $a }; "
      "declare function local:f($a, $b) { $a + $b }; "
      "(local:f(1), local:f(1, 2))");
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(module->functions.size(), 2u);
}

TEST(ParserConstructors, DirectForms) {
  EXPECT_EQ(Ast("<a/>"), "<a></a>");
  EXPECT_EQ(Ast("<a x=\"1\"><b/></a>"), "<a x=\"...\"><b></b></a>");
}

TEST(ParserConstructors, ComputedForms) {
  EXPECT_EQ(Ast("element foo { 1 }"), "element foo {...}");
  EXPECT_EQ(Ast("element {$n} { 1 }"), "element {...} {...}");
  EXPECT_EQ(Ast("attribute a { 1 }"), "attribute a {...}");
  EXPECT_EQ(Ast("text { \"x\" }"), "text {...}");
  EXPECT_EQ(Ast("comment { \"x\" }"), "comment {...}");
  EXPECT_EQ(Ast("document { <r/> }"), "document {...}");
}

TEST(ParserConstructors, ElementAsPlainStepStillWorks) {
  // "element" and "text" are also legitimate element names in paths.
  EXPECT_EQ(Ast("a/element"), "/child::a/child::element");
  EXPECT_EQ(Ast("$x/document"), "$x/child::document");
}

TEST(ParserErrors, PositionsAreReported) {
  EXPECT_NE(ParseErr("1 +").find("line 1"), std::string::npos);
  EXPECT_NE(ParseErr("\n\n  let $x 5 return $x").find("line 3"),
            std::string::npos);
  EXPECT_NE(ParseErr("<a>\n<b>\n</c></a>").find("line 3"), std::string::npos);
}

TEST(ParserErrors, SpecificMessages) {
  EXPECT_NE(ParseErr("for $x return 1").find("'in'"), std::string::npos);
  EXPECT_NE(ParseErr("let $x = 1 return $x").find(":="), std::string::npos);
  EXPECT_NE(ParseErr("if (1) then 2").find("else"), std::string::npos);
  EXPECT_NE(ParseErr("some $x in (1)").find("satisfies"), std::string::npos);
  EXPECT_NE(ParseErr("zebra::x").find("unknown axis"), std::string::npos);
  EXPECT_NE(ParseErr("declare function f() { 1 }").find(";"),
            std::string::npos);
  EXPECT_NE(ParseErr("1 2").find("trailing"), std::string::npos);
}

TEST(ParserAst, CloneAndCount) {
  auto module = ParseExpression(
      "for $x in (1 to 10) where $x > 2 order by $x return <v a=\"{$x}\">{$x"
      "}</v>");
  ASSERT_TRUE(module.ok());
  size_t n = CountExprNodes(*module->body);
  EXPECT_GT(n, 8u);
  ExprPtr clone = CloneExpr(*module->body);
  EXPECT_EQ(CountExprNodes(*clone), n);
  EXPECT_EQ(ExprToString(*clone), ExprToString(*module->body));
}

TEST(ParserLexical, WhitespaceFlexibility) {
  EXPECT_EQ(Ast("1+2"), "(1 + 2)");
  EXPECT_EQ(Ast("  1  +  2  "), "(1 + 2)");
  EXPECT_EQ(Ast("count ( ( 1 , 2 ) )"), "count((1, 2))");
  EXPECT_EQ(Ast("a / b"), "/child::a/child::b");
}

TEST(ParserLexical, KeywordsAreContextual) {
  // Keywords work as element names and child steps.
  EXPECT_EQ(Ast("<for/>"), "<for></for>");
  EXPECT_EQ(Ast("$x/return"), "$x/child::return");
  EXPECT_EQ(Ast("$x/if"), "$x/child::if");
  // And as variables.
  EXPECT_EQ(Ast("let $for := 1 return $for"), "let $for := 1 return $for");
}

}  // namespace
}  // namespace lll::xq
