#ifndef LLL_TESTS_TEST_UTIL_H_
#define LLL_TESTS_TEST_UTIL_H_

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xquery/engine.h"
#include "xquery/update_eval.h"

namespace lll::testing {

// Runs a query with no context and returns the serialized result; fails the
// current test on any error.
inline std::string Eval(const std::string& query) {
  auto result = xq::Run(query);
  EXPECT_TRUE(result.ok()) << "query: " << query << "\n"
                           << result.status().ToString();
  if (!result.ok()) return "<ERROR: " + result.status().ToString() + ">";
  return result->SerializedItems();
}

// Runs a query against a context document given as XML text.
inline std::string EvalWithContext(const std::string& query,
                                   const std::string& xml) {
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return "<PARSE ERROR>";
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  auto result = xq::Run(query, opts);
  EXPECT_TRUE(result.ok()) << "query: " << query << "\n"
                           << result.status().ToString();
  if (!result.ok()) return "<ERROR: " + result.status().ToString() + ">";
  return result->SerializedItems();
}

// Expects the query to fail; returns the status message (empty on
// unexpected success).
inline std::string EvalError(const std::string& query) {
  auto result = xq::Run(query);
  EXPECT_FALSE(result.ok()) << "query unexpectedly succeeded: " << query
                            << " -> " << result->SerializedItems();
  if (result.ok()) return "";
  return result.status().ToString();
}

// --- The shared random path workload ---------------------------------------
//
// The generator behind the differential suites: a randomly grown document
// plus randomly composed path queries (forward/reverse axes, attributes,
// predicates, early-exit wrappers). xquery_streaming_test runs it streamed
// vs. materializing; the server differential test runs it four-sessions
// concurrent vs. single-threaded. Call the document generator FIRST, then
// the query generator, on the same engine -- that ordering is part of the
// seeded contract.

// Grows a random document as text: ~200 elements, names drawn from a small
// alphabet so paths collide with real structure often.
inline std::string RandomPathWorkloadDocument(std::mt19937* rng) {
  auto pick = [rng](int n) { return static_cast<int>((*rng)() % n); };
  const char* names[] = {"a", "b", "c", "d"};
  std::string xml = "<r>";
  std::vector<std::string> open;
  for (int i = 0; i < 200; ++i) {
    int action = pick(open.size() > 6 ? 3 : 2);
    if (action == 2 && !open.empty()) {
      xml += "</" + open.back() + ">";
      open.pop_back();
      continue;
    }
    std::string name = names[pick(4)];
    xml += "<" + name;
    if (pick(3) == 0) xml += " k=\"" + std::to_string(pick(4)) + "\"";
    if (action == 0) {
      xml += "/>";
    } else {
      xml += ">";
      open.push_back(name);
      if (pick(4) == 0) xml += "t" + std::to_string(pick(9));
    }
  }
  while (!open.empty()) {
    xml += "</" + open.back() + ">";
    open.pop_back();
  }
  xml += "</r>";
  return xml;
}

// Composes `count` random path queries: 1-4 steps over /, //, explicit
// reverse-axis prefixes and attribute steps, a predicate per step, and an
// early-exit wrapper ((..)[N], exists, count, subsequence, fn:head,
// positional for) one time in three.
inline std::vector<std::string> RandomPathWorkloadQueries(std::mt19937* rng,
                                                          int count) {
  auto pick = [rng](int n) { return static_cast<int>((*rng)() % n); };
  const char* axes[] = {"/", "//", "/", "//"};
  const char* tests[] = {"a", "b", "c", "d", "*", "a", "b"};
  const char* axis_prefixes[] = {"",          "",           "",
                                 "",          "",           "",
                                 "ancestor::", "ancestor-or-self::",
                                 "preceding-sibling::", "parent::"};
  const char* preds[] = {"",      "",       "[1]",    "[2]",
                         "[last()]", "[@k]",   "[@k=\"1\"]", "[c]",
                         "[position() < 3]", "[b/c]"};
  std::vector<std::string> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    std::string path;
    int steps = 1 + pick(4);
    for (int s = 0; s < steps; ++s) {
      path += axes[pick(4)];
      if (pick(10) == 0) {
        path += "@k";
        path += preds[pick(2)];  // attributes: no children, plain or bare
        continue;
      }
      path += axis_prefixes[pick(10)];
      path += tests[pick(7)];
      path += preds[pick(10)];
    }
    std::string query = path;
    switch (pick(9)) {
      case 0:
        query = "(" + path + ")[" + std::to_string(1 + pick(3)) + "]";
        break;
      case 1:
        query = "exists(" + path + ")";
        break;
      case 2:
        query = "count(" + path + ")";
        break;
      case 3:
        query = "subsequence(" + path + ", 1, " + std::to_string(1 + pick(3)) +
                ")";
        break;
      case 4:
        query = "fn:head(" + path + ")";
        break;
      case 5:
        query = "for $v at $p in " + path + " where $p le " +
                std::to_string(1 + pick(3)) + " return $v";
        break;
      default:
        break;  // the bare path
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

// --- Random in-place edits (mutate-between-runs differentials) --------------

// Every element of the document, in document order (excluding the synthetic
// document root node itself).
inline std::vector<xml::Node*> AllElements(xml::Document* doc) {
  std::vector<xml::Node*> out;
  std::vector<xml::Node*> stack;
  if (doc->DocumentElement() != nullptr) stack.push_back(doc->DocumentElement());
  while (!stack.empty()) {
    xml::Node* n = stack.back();
    stack.pop_back();
    out.push_back(n);
    std::vector<xml::Node*> kids;
    for (xml::Node* c : n->children()) {
      if (c->is_element()) kids.push_back(c);
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

// Applies ONE random edit to the document, drawn from the same structural
// vocabulary the path workload exercises. Three ops go through the raw
// mutators (append an element child with a k attribute half the time,
// remove a childless element, rewrite an element's k attribute); three go
// through the update LANGUAGE (rename, replace, insert-before), composed as
// statements against the node's canonical path and applied via
// CompileUpdateText + ApplyUpdate -- so the differential batteries exercise
// the update pipeline's target selection and mutation routing too, not just
// hand-called primitives. Every op bumps the document's structure/subtree
// versions through the ordinary mutators; this is the "mutate" half of the
// mutate-between-runs differential: after each edit, a cached evaluation
// must still agree byte-for-byte with a fresh one. Returns a description of
// the edit for failure messages.
inline std::string ApplyRandomEdit(xml::Document* doc, std::mt19937* rng) {
  auto pick = [rng](size_t n) { return static_cast<size_t>((*rng)() % n); };
  std::vector<xml::Node*> elements = AllElements(doc);
  if (elements.empty()) return "no-op (empty document)";
  const char* names[] = {"a", "b", "c", "d"};
  // Runs one update-language statement; true iff it compiled, applied, and
  // actually touched exactly the intended node.
  auto apply_statement = [doc](const std::string& stmt) {
    auto compiled = xq::CompileUpdateText(stmt);
    if (!compiled.ok()) {
      ADD_FAILURE() << "generated statement failed to compile: " << stmt
                    << "\n" << compiled.status().ToString();
      return false;
    }
    auto stats = xq::ApplyUpdate(*compiled, doc);
    return stats.ok() && stats->target_nodes == 1;
  };
  for (int attempt = 0; attempt < 8; ++attempt) {
    xml::Node* target = elements[pick(elements.size())];
    switch (pick(6)) {
      case 0: {  // append a fresh element child
        xml::Node* child = doc->CreateElement(names[pick(4)]);
        if (pick(2) == 0) {
          child->SetAttribute("k", std::to_string(pick(4)));
        }
        if (!target->AppendChild(child).ok()) continue;
        return "append <" + child->name() + "> under <" + target->name() + ">";
      }
      case 1: {  // remove a childless element (never the document element)
        if (target == doc->DocumentElement() || !target->children().empty()) {
          continue;
        }
        xml::Node* parent = target->parent();
        if (parent == nullptr) continue;
        std::string desc =
            "remove <" + target->name() + "> from <" + parent->name() + ">";
        if (!parent->RemoveChild(target).ok()) continue;
        return desc;
      }
      case 2: {  // "rename PATH as NAME" -- structure intact, names move
        std::string stmt = "rename " + xq::NodePathOf(target) + " as " +
                           names[pick(4)];
        if (!apply_statement(stmt)) continue;
        return stmt;
      }
      case 3: {  // "replace PATH with <fresh/>" (childless, not the root elem)
        if (target == doc->DocumentElement() || !target->children().empty()) {
          continue;
        }
        std::string payload = std::string("<") + names[pick(4)];
        if (pick(2) == 0) payload += " k=\"" + std::to_string(pick(4)) + "\"";
        payload += "/>";
        std::string stmt =
            "replace " + xq::NodePathOf(target) + " with " + payload;
        if (!apply_statement(stmt)) continue;
        return stmt;
      }
      case 4: {  // "insert <fresh/> before PATH" (not before the root elem)
        if (target == doc->DocumentElement()) continue;
        std::string stmt = std::string("insert <") + names[pick(4)] +
                           "/> before " + xq::NodePathOf(target);
        if (!apply_statement(stmt)) continue;
        return stmt;
      }
      default: {  // rewrite (or introduce) the k attribute
        target->SetAttribute("k", std::to_string(pick(9)));
        return "set @k on <" + target->name() + ">";
      }
    }
  }
  // All attempts hit ineligible targets; fall back to the always-legal edit.
  elements[0]->SetAttribute("k", "fallback");
  return "set @k on the document element (fallback)";
}

}  // namespace lll::testing

#endif  // LLL_TESTS_TEST_UTIL_H_
