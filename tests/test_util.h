#ifndef LLL_TESTS_TEST_UTIL_H_
#define LLL_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xquery/engine.h"

namespace lll::testing {

// Runs a query with no context and returns the serialized result; fails the
// current test on any error.
inline std::string Eval(const std::string& query) {
  auto result = xq::Run(query);
  EXPECT_TRUE(result.ok()) << "query: " << query << "\n"
                           << result.status().ToString();
  if (!result.ok()) return "<ERROR: " + result.status().ToString() + ">";
  return result->SerializedItems();
}

// Runs a query against a context document given as XML text.
inline std::string EvalWithContext(const std::string& query,
                                   const std::string& xml) {
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return "<PARSE ERROR>";
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  auto result = xq::Run(query, opts);
  EXPECT_TRUE(result.ok()) << "query: " << query << "\n"
                           << result.status().ToString();
  if (!result.ok()) return "<ERROR: " + result.status().ToString() + ">";
  return result->SerializedItems();
}

// Expects the query to fail; returns the status message (empty on
// unexpected success).
inline std::string EvalError(const std::string& query) {
  auto result = xq::Run(query);
  EXPECT_FALSE(result.ok()) << "query unexpectedly succeeded: " << query
                            << " -> " << result->SerializedItems();
  if (result.ok()) return "";
  return result.status().ToString();
}

}  // namespace lll::testing

#endif  // LLL_TESTS_TEST_UTIL_H_
