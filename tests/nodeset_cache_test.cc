// Tests for the versioned node-set interning cache: unit behavior of
// NodeSetCache itself (guard validation against the document's subtree
// edit-version overlay), end-to-end interning through the evaluator,
// subtree-scoped invalidation under document mutation, foldable-predicate
// interning, and shared-cache concurrency tests (run under ThreadSanitizer
// via the "concurrency" ctest label).

#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "xml/parser.h"
#include "xquery/engine.h"
#include "xquery/nodeset_cache.h"

namespace lll {
namespace {

using Guard = xq::CachedNodeSet::Guard;
using GuardKind = xq::CachedNodeSet::GuardKind;

constexpr char kDoc[] =
    "<lib><shelf><book id=\"1\"/><book id=\"2\"/></shelf>"
    "<shelf><book id=\"3\"/></shelf></lib>";

// The anchored-subtree workload shape: singleton chains down to per-model
// subtrees, distinguishable by @id.
constexpr char kLibrary[] =
    "<library><models>"
    "<model id=\"m1\"><parts><part n=\"1\"/><part n=\"2\"/></parts></model>"
    "<model id=\"m2\"><parts><part n=\"3\"/></parts></model>"
    "</models></library>";

TEST(NodeSetCache, HitMissAndStaleOutcomes) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache(8);
  std::string key = xq::NodeSetCache::MakeKey(d->root(), "child::lib/");

  xq::NodeSetCache::Outcome outcome;
  EXPECT_EQ(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kMiss);
  EXPECT_EQ(cache.misses(), 1u);

  // A whole-tree entry: one subtree guard on the base (root) node.
  std::vector<Guard> guards = {
      xq::NodeSetCache::GuardFor(d->root(), GuardKind::kSubtree)};
  xdm::Sequence nodes(xdm::Item::NodeRef(d->DocumentElement()));
  cache.Put(key, d->doc_id(), guards, /*subtree_scoped=*/false,
            std::move(nodes));

  auto entry = cache.Get(d, key, &outcome);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);
  EXPECT_EQ(entry->nodes.size(), 1u);
  EXPECT_FALSE(entry->subtree_scoped);
  EXPECT_EQ(cache.hits(), 1u);

  // Mutate the document: the entry is still stored, but the root's subtree
  // version moved past the guard stamp, so the lookup reports a (countable)
  // full invalidation.
  ASSERT_TRUE(
      d->DocumentElement()->AppendChild(d->CreateElement("shelf")).ok());
  EXPECT_EQ(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kStale);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.partial_invalidations(), 0u);
}

TEST(NodeSetCache, SubtreeGuardScopesInvalidation) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xml::Node* lib = d->DocumentElement();
  xml::Node* shelf1 = lib->children()[0];
  xml::Node* shelf2 = lib->children()[1];

  // An entry anchored under shelf1: guards say "lib's child list is
  // unchanged, and nothing under shelf1 changed" -- the shape the evaluator
  // records for /lib/shelf[1]-style anchored chains.
  xq::NodeSetCache cache(8);
  std::string key = xq::NodeSetCache::MakeKey(d->root(), "anchored-shelf1");
  std::vector<Guard> guards = {
      xq::NodeSetCache::GuardFor(lib, GuardKind::kLocal),
      xq::NodeSetCache::GuardFor(shelf1, GuardKind::kSubtree)};
  cache.Put(key, d->doc_id(), guards, /*subtree_scoped=*/true,
            xdm::Sequence(xdm::Item::NodeRef(shelf1->children()[0])));

  // An edit in the OTHER shelf's subtree leaves every guard intact.
  xq::NodeSetCache::Outcome outcome;
  ASSERT_TRUE(shelf2->AppendChild(d->CreateElement("book")).ok());
  EXPECT_NE(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);
  EXPECT_EQ(cache.invalidations(), 0u);

  // An edit under shelf1 fails the subtree guard -- and because the entry
  // was subtree-scoped, it counts as a PARTIAL invalidation.
  ASSERT_TRUE(shelf1->AppendChild(d->CreateElement("book")).ok());
  EXPECT_EQ(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kStalePartial);
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.partial_invalidations(), 1u);
}

TEST(NodeSetCache, LocalChildrenGuardCatchesSiblingAttributeFlip) {
  auto doc = xml::Parse(kLibrary, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xml::Node* models = d->DocumentElement()->children()[0];
  xml::Node* m2 = models->children()[1];

  // The guard pair the evaluator records when it descends through an
  // attribute-only predicate (model[@id="m1"]): the parent's own child list
  // AND no direct child's local state (its @id) may change.
  xq::NodeSetCache cache(8);
  std::string key = xq::NodeSetCache::MakeKey(d->root(), "model-by-id");
  std::vector<Guard> guards = {
      xq::NodeSetCache::GuardFor(models, GuardKind::kLocal),
      xq::NodeSetCache::GuardFor(models, GuardKind::kLocalChildren)};
  cache.Put(key, d->doc_id(), guards, /*subtree_scoped=*/true,
            xdm::Sequence(xdm::Item::NodeRef(models->children()[0])));

  // Deep edits inside a model do NOT touch models' child-local version.
  xml::Node* m2_parts = m2->children()[0];
  ASSERT_TRUE(m2_parts->AppendChild(d->CreateElement("part")).ok());
  xq::NodeSetCache::Outcome outcome;
  EXPECT_NE(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);

  // Flipping a SIBLING model's @id fails the kLocalChildren guard: the
  // predicate's selection could now be different.
  m2->SetAttribute("id", "m1");
  EXPECT_EQ(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kStalePartial);
  EXPECT_EQ(cache.partial_invalidations(), 1u);
}

TEST(NodeSetCache, GuardForStampsCurrentVersion) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xml::Node* lib = d->DocumentElement();

  Guard before = xq::NodeSetCache::GuardFor(lib, GuardKind::kSubtree);
  EXPECT_EQ(before.node, lib->index());
  EXPECT_EQ(before.kind, GuardKind::kSubtree);
  EXPECT_EQ(before.version, d->subtree_version_of(lib->index()));

  ASSERT_TRUE(lib->AppendChild(d->CreateElement("shelf")).ok());
  Guard after = xq::NodeSetCache::GuardFor(lib, GuardKind::kSubtree);
  EXPECT_NE(after.version, before.version);
}

TEST(NodeSetCache, ZeroCapacityIsPassthrough) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache(0);
  std::string key = xq::NodeSetCache::MakeKey(d->root(), "x");
  cache.Put(key, d->doc_id(),
            {xq::NodeSetCache::GuardFor(d->root(), GuardKind::kSubtree)},
            false, xdm::Sequence());
  EXPECT_EQ(cache.Get(d, key), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(NodeSetCache, ForeignDocIdReportsStaleNotHit) {
  // An entry stamped with another document's id must never validate, even
  // when the overlay versions happen to agree. This is the guard against
  // allocator address reuse: the key embeds the base node's doc_id + index,
  // so a new Document reusing an id-free key scheme could otherwise serve a
  // dead document's pointers.
  auto doc1 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  auto doc2 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  xml::Document* d1 = doc1->get();
  xml::Document* d2 = doc2->get();
  ASSERT_NE(d1->doc_id(), d2->doc_id());

  xq::NodeSetCache cache(8);
  std::string key = "recycled|child::lib/";
  cache.Put(key, d1->doc_id(),
            {xq::NodeSetCache::GuardFor(d1->root(), GuardKind::kSubtree)},
            false, xdm::Sequence(xdm::Item::NodeRef(d1->DocumentElement())));

  xq::NodeSetCache::Outcome outcome;
  EXPECT_NE(cache.Get(d1, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(d2, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kStale);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(NodeSetCache, DistinctBaseNodesInternSeparately) {
  auto doc1 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  auto doc2 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  EXPECT_NE(xq::NodeSetCache::MakeKey((*doc1)->root(), "child::lib/"),
            xq::NodeSetCache::MakeKey((*doc2)->root(), "child::lib/"));
}

TEST(NodeSetCache, RetainDocumentsDropsForeignEntries) {
  auto doc1 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  auto doc2 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  xml::Document* d1 = doc1->get();
  xml::Document* d2 = doc2->get();

  xq::NodeSetCache cache(8);
  auto put = [&cache](xml::Document* d, const std::string& fp) {
    cache.Put(xq::NodeSetCache::MakeKey(d->root(), fp), d->doc_id(),
              {xq::NodeSetCache::GuardFor(d->root(), GuardKind::kSubtree)},
              false, xdm::Sequence(xdm::Item::NodeRef(d->DocumentElement())));
  };
  put(d1, "a");
  put(d1, "b");
  put(d2, "a");
  ASSERT_EQ(cache.size(), 3u);

  // Keep only d1: the d2 entry (about to lose its arena in the session
  // pattern) is purged; d1's survive and still hit.
  EXPECT_EQ(cache.RetainDocuments({d1->doc_id()}), 1u);
  EXPECT_EQ(cache.size(), 2u);
  xq::NodeSetCache::Outcome outcome;
  EXPECT_NE(
      cache.Get(d1, xq::NodeSetCache::MakeKey(d1->root(), "a"), &outcome),
      nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(d2, xq::NodeSetCache::MakeKey(d2->root(), "a")),
            nullptr);
}

// End-to-end: repeated evaluations of the same rooted, predicate-free step
// chain through one shared cache hit on the second run.
TEST(NodeSetCacheIntegration, RepeatedQueriesHit) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::NodeSetCache cache;
  auto query = xq::Compile("//book");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  opts.eval.nodeset_cache = &cache;

  auto r1 = xq::Execute(*query, opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->sequence.size(), 3u);
  EXPECT_GT(r1->stats.nodeset_cache_misses, 0u);
  EXPECT_EQ(r1->stats.nodeset_cache_hits, 0u);

  auto r2 = xq::Execute(*query, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->stats.nodeset_cache_hits, 0u);
  EXPECT_EQ(r2->SerializedItems(), r1->SerializedItems());

  // A different chain over the same document is its own entry.
  auto other = xq::Compile("//shelf");
  ASSERT_TRUE(other.ok());
  auto r3 = xq::Execute(*other, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(r3->stats.nodeset_cache_misses, 0u);
  EXPECT_EQ(r3->sequence.size(), 2u);
}

TEST(NodeSetCacheIntegration, MutationInvalidatesAndRecomputes) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache;
  auto query = xq::Compile("count(//book)");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.context_node = d->root();
  opts.eval.nodeset_cache = &cache;

  auto r1 = xq::Execute(*query, opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->SerializedItems(), "3");
  auto warm = xq::Execute(*query, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->stats.nodeset_cache_hits, 0u);

  // Grow the document: the warm entry must NOT be served again.
  xml::Node* shelf = d->DocumentElement()->children().front();
  xml::Node* book = d->CreateElement("book");
  book->SetAttribute("id", "4");
  ASSERT_TRUE(shelf->AppendChild(book).ok());

  auto r2 = xq::Execute(*query, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->SerializedItems(), "4");
  EXPECT_GT(r2->stats.nodeset_cache_invalidations, 0u);
  EXPECT_EQ(r2->stats.nodeset_cache_hits, 0u);

  // And the recomputed entry is served at the new version.
  auto r3 = xq::Execute(*query, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->SerializedItems(), "4");
  EXPECT_GT(r3->stats.nodeset_cache_hits, 0u);
}

TEST(NodeSetCacheIntegration, FoldedPredicateChainsIntern) {
  // Step chains with pure, focus-independent predicates now intern: the
  // predicate text folds into the fingerprint. Before predicate folding,
  // model[@id=...] chains bypassed the cache entirely.
  auto doc = xml::Parse(kLibrary, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::NodeSetCache cache;
  auto query = xq::Compile("/library/models/model[@id = \"m1\"]/parts/part");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  opts.eval.nodeset_cache = &cache;

  auto r1 = xq::Execute(*query, opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->sequence.size(), 2u);
  EXPECT_GT(r1->stats.nodeset_cache_misses, 0u);

  auto r2 = xq::Execute(*query, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->stats.nodeset_cache_hits, 0u);
  EXPECT_EQ(r2->SerializedItems(), r1->SerializedItems());

  // A different predicate value is a different fingerprint, not a hit on
  // (or collision with) the m1 entry.
  auto other = xq::Compile("/library/models/model[@id = \"m2\"]/parts/part");
  ASSERT_TRUE(other.ok());
  auto r3 = xq::Execute(*other, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->sequence.size(), 1u);
  EXPECT_GT(r3->stats.nodeset_cache_misses, 0u);
}

TEST(NodeSetCacheIntegration, EditOutsideAnchoredSubtreeKeepsEntries) {
  // The tentpole behavior: an anchored chain's cached result survives edits
  // to unrelated subtrees, and an edit inside its own anchor invalidates it
  // as a PARTIAL (subtree-scoped) invalidation.
  auto doc = xml::Parse(kLibrary, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache;
  auto query = xq::Compile("/library/models/model[@id = \"m1\"]/parts/part");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.context_node = d->root();
  opts.eval.nodeset_cache = &cache;

  auto cold = xq::Execute(*query, opts);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->sequence.size(), 2u);

  // Edit model m2's subtree: m1's cached chain must still be served.
  xml::Node* models = d->DocumentElement()->children()[0];
  xml::Node* m2_parts = models->children()[1]->children()[0];
  ASSERT_TRUE(m2_parts->AppendChild(d->CreateElement("part")).ok());

  auto warm = xq::Execute(*query, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->SerializedItems(), cold->SerializedItems());
  EXPECT_GT(warm->stats.nodeset_cache_hits, 0u);
  EXPECT_EQ(warm->stats.nodeset_cache_invalidations, 0u);

  // Edit m1's own subtree: the entry goes stale, and the stats call it a
  // partial (subtree-scoped) invalidation, not a whole-document one.
  xml::Node* m1_parts = models->children()[0]->children()[0];
  ASSERT_TRUE(m1_parts->AppendChild(d->CreateElement("part")).ok());

  auto after = xq::Execute(*query, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->sequence.size(), 3u);
  EXPECT_GT(after->stats.nodeset_cache_invalidations, 0u);
  EXPECT_GT(after->stats.nodeset_cache_partial_invalidations, 0u);
}

TEST(NodeSetCacheIntegration, ConstructedDocumentsAreNotInterned) {
  // Regression: a session-scoped cache outlives each query's construction
  // arena (QueryResult.arena is per-query). Interning a set rooted at an
  // arena document would leave raw pointers into a freed arena behind; a
  // re-run whose identically-built arena lands at the recycled address
  // would then be served garbage. Arena-rooted paths must bypass the cache
  // entirely.
  xq::NodeSetCache cache;
  auto query = xq::Compile("let $d := document { <a><b/></a> } return $d/a");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.eval.nodeset_cache = &cache;

  for (int run = 0; run < 3; ++run) {
    auto r = xq::Execute(*query, opts);
    ASSERT_TRUE(r.ok()) << run;
    EXPECT_EQ(r->SerializedItems(), "<a><b/></a>") << run;
    EXPECT_EQ(r->stats.nodeset_cache_hits, 0u) << run;
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NodeSetCacheIntegration, LimitedProbesAreNotInterned) {
  // exists() probes pull a 1-item prefix; interning that truncated set
  // would poison later full evaluations. Verify the full query still sees
  // everything after a probe primed (or rather, did not prime) the cache.
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::NodeSetCache cache;
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  opts.eval.nodeset_cache = &cache;

  auto probe = xq::Compile("exists(//book)");
  ASSERT_TRUE(probe.ok());
  auto p = xq::Execute(*probe, opts);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->SerializedItems(), "true");

  auto full = xq::Compile("count(//book)");
  ASSERT_TRUE(full.ok());
  auto f = xq::Execute(*full, opts);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->SerializedItems(), "3");
}

// The mutate-between-runs differential: grow a random document, run the
// shared 440-query path workload with a persistent cache, apply a random
// edit, and re-run -- every cached evaluation must agree byte-for-byte with
// a fresh, cache-free one after every edit. 8 seeds.
TEST(NodeSetCacheIntegration, DifferentialMutateBetweenRuns) {
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(20260807 + seed);
    std::string xml = testing::RandomPathWorkloadDocument(&rng);
    auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
    ASSERT_TRUE(doc.ok()) << "seed " << seed;
    std::vector<std::string> query_texts =
        testing::RandomPathWorkloadQueries(&rng, 40);

    std::vector<xq::CompiledQuery> queries;
    for (const std::string& q : query_texts) {
      auto compiled = xq::Compile(q);
      ASSERT_TRUE(compiled.ok()) << q;
      queries.push_back(std::move(*compiled));
    }

    xq::NodeSetCache cache(64);
    for (int round = 0; round < 4; ++round) {
      std::string edit;
      if (round > 0) edit = testing::ApplyRandomEdit(doc->get(), &rng);
      for (size_t i = 0; i < queries.size(); ++i) {
        xq::ExecuteOptions cached_opts;
        cached_opts.context_node = (*doc)->root();
        cached_opts.eval.nodeset_cache = &cache;
        auto cached = xq::Execute(queries[i], cached_opts);

        xq::ExecuteOptions fresh_opts;
        fresh_opts.context_node = (*doc)->root();
        auto fresh = xq::Execute(queries[i], fresh_opts);

        ASSERT_EQ(cached.ok(), fresh.ok())
            << "seed " << seed << " round " << round << " query "
            << query_texts[i] << " edit: " << edit;
        if (!cached.ok()) continue;
        EXPECT_EQ(cached->SerializedItems(), fresh->SerializedItems())
            << "seed " << seed << " round " << round << " query "
            << query_texts[i] << " edit: " << edit;
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// Many threads evaluating through ONE shared cache over ONE read-only
// document. Carries the "concurrency" ctest label so the TSan preset
// exercises the Get/Put and counter paths under contention.
TEST(NodeSetCacheConcurrency, SharedCacheParallelEvaluations) {
  std::string xml = "<r>";
  for (int i = 0; i < 50; ++i) {
    xml += "<s><book id=\"" + std::to_string(i) + "\"/></s>";
  }
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  (*doc)->EnsureOrderIndex();  // pre-build: mutations are off the table now

  xq::NodeSetCache cache(32);
  auto by_books = xq::Compile("count(//book)");
  auto by_shelves = xq::Compile("count(//s)");
  ASSERT_TRUE(by_books.ok() && by_shelves.ok());

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const xq::CompiledQuery& q =
            (i + t) % 2 == 0 ? *by_books : *by_shelves;
        const char* want = (i + t) % 2 == 0 ? "50" : "50";
        xq::ExecuteOptions opts;
        opts.context_node = (*doc)->root();
        opts.eval.nodeset_cache = &cache;
        auto r = xq::Execute(q, opts);
        if (!r.ok() || r->SerializedItems() != want) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  // Everyone after the first computation should have hit.
  EXPECT_GT(cache.hits(), 0u);
}

// Mutate-between-PHASES under threads: parallel readers share one cache
// over one document; between phases (all readers joined), the main thread
// applies a random edit. TSan audits that guard validation against the
// overlay is race-free with concurrent Get/Put, and every phase's results
// stay byte-identical to a fresh evaluation after the edit.
TEST(NodeSetCacheConcurrency, MutateBetweenParallelPhases) {
  std::mt19937 rng(20260807);
  std::string xml = testing::RandomPathWorkloadDocument(&rng);
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());

  const char* query_texts[] = {"count(//a)", "count(//b/c)", "//d[@k]",
                               "count(//*[@k = \"1\"])"};
  std::vector<xq::CompiledQuery> queries;
  for (const char* q : query_texts) {
    auto compiled = xq::Compile(q);
    ASSERT_TRUE(compiled.ok()) << q;
    queries.push_back(std::move(*compiled));
  }

  xq::NodeSetCache cache(32);
  constexpr int kThreads = 4;
  constexpr int kPhases = 6;
  for (int phase = 0; phase < kPhases; ++phase) {
    if (phase > 0) {
      testing::ApplyRandomEdit(doc->get(), &rng);
      // Rebuild the order index before readers come back: lazy index
      // (re)builds are not part of the read-only contract.
      (*doc)->EnsureOrderIndex();
    }
    // Fresh reference results for this phase, computed without the cache.
    std::vector<std::string> want;
    for (auto& q : queries) {
      xq::ExecuteOptions opts;
      opts.context_node = (*doc)->root();
      auto r = xq::Execute(q, opts);
      ASSERT_TRUE(r.ok());
      want.push_back(r->SerializedItems());
    }

    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 10; ++i) {
          size_t qi = static_cast<size_t>(t + i) % queries.size();
          xq::ExecuteOptions opts;
          opts.context_node = (*doc)->root();
          opts.eval.nodeset_cache = &cache;
          auto r = xq::Execute(queries[qi], opts);
          if (!r.ok() || r->SerializedItems() != want[qi]) ++failures[t];
        }
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(failures[t], 0) << "phase " << phase << " thread " << t;
    }
  }
}

}  // namespace
}  // namespace lll
