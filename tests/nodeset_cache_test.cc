// Tests for the versioned node-set interning cache: unit behavior of
// NodeSetCache itself, end-to-end interning through the evaluator,
// invalidation under document mutation, and a shared-cache concurrency test
// (run under ThreadSanitizer via the "concurrency" ctest label).

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "xml/parser.h"
#include "xquery/engine.h"
#include "xquery/nodeset_cache.h"

namespace lll {
namespace {

constexpr char kDoc[] =
    "<lib><shelf><book id=\"1\"/><book id=\"2\"/></shelf>"
    "<shelf><book id=\"3\"/></shelf></lib>";

TEST(NodeSetCache, HitMissAndStaleOutcomes) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache(8);
  std::string key = xq::NodeSetCache::MakeKey(d->root(), "child::lib/");

  xq::NodeSetCache::Outcome outcome;
  EXPECT_EQ(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kMiss);
  EXPECT_EQ(cache.misses(), 1u);

  uint64_t version = d->structure_version();
  xdm::Sequence nodes(xdm::Item::NodeRef(d->DocumentElement()));
  cache.Put(key, d->doc_id(), version, std::move(nodes));

  auto entry = cache.Get(d, key, &outcome);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);
  EXPECT_EQ(entry->structure_version, version);
  EXPECT_EQ(entry->nodes.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);

  // Mutate the document: the entry is still stored, but the version stamp
  // no longer matches, so the lookup reports a (countable) invalidation.
  ASSERT_TRUE(
      d->DocumentElement()->AppendChild(d->CreateElement("shelf")).ok());
  EXPECT_GT(d->structure_version(), version);
  EXPECT_EQ(cache.Get(d, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kStale);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(NodeSetCache, ZeroCapacityIsPassthrough) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache(0);
  std::string key = xq::NodeSetCache::MakeKey(d->root(), "x");
  cache.Put(key, d->doc_id(), d->structure_version(), xdm::Sequence());
  EXPECT_EQ(cache.Get(d, key), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(NodeSetCache, ForeignDocIdReportsStaleNotHit) {
  // An entry stamped with another document's id must never validate, even
  // when the structure versions happen to agree. This is the guard against
  // allocator address reuse: the key embeds the base node's address, so a
  // new Document at a recycled address could otherwise serve a dead
  // document's pointers.
  auto doc1 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  auto doc2 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  xml::Document* d1 = doc1->get();
  xml::Document* d2 = doc2->get();
  ASSERT_NE(d1->doc_id(), d2->doc_id());
  ASSERT_EQ(d1->structure_version(), d2->structure_version());

  xq::NodeSetCache cache(8);
  std::string key = "recycled|child::lib/";
  cache.Put(key, d1->doc_id(), d1->structure_version(),
            xdm::Sequence(xdm::Item::NodeRef(d1->DocumentElement())));

  xq::NodeSetCache::Outcome outcome;
  EXPECT_NE(cache.Get(d1, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kHit);
  EXPECT_EQ(cache.Get(d2, key, &outcome), nullptr);
  EXPECT_EQ(outcome, xq::NodeSetCache::Outcome::kStale);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(NodeSetCache, DistinctBaseNodesInternSeparately) {
  auto doc1 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  auto doc2 = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  EXPECT_NE(xq::NodeSetCache::MakeKey((*doc1)->root(), "child::lib/"),
            xq::NodeSetCache::MakeKey((*doc2)->root(), "child::lib/"));
}

// End-to-end: repeated evaluations of the same rooted, predicate-free step
// chain through one shared cache hit on the second run.
TEST(NodeSetCacheIntegration, RepeatedQueriesHit) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::NodeSetCache cache;
  auto query = xq::Compile("//book");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  opts.eval.nodeset_cache = &cache;

  auto r1 = xq::Execute(*query, opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->sequence.size(), 3u);
  EXPECT_GT(r1->stats.nodeset_cache_misses, 0u);
  EXPECT_EQ(r1->stats.nodeset_cache_hits, 0u);

  auto r2 = xq::Execute(*query, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->stats.nodeset_cache_hits, 0u);
  EXPECT_EQ(r2->SerializedItems(), r1->SerializedItems());

  // A different chain over the same document is its own entry.
  auto other = xq::Compile("//shelf");
  ASSERT_TRUE(other.ok());
  auto r3 = xq::Execute(*other, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_GT(r3->stats.nodeset_cache_misses, 0u);
  EXPECT_EQ(r3->sequence.size(), 2u);
}

TEST(NodeSetCacheIntegration, MutationInvalidatesAndRecomputes) {
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xml::Document* d = doc->get();
  xq::NodeSetCache cache;
  auto query = xq::Compile("count(//book)");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.context_node = d->root();
  opts.eval.nodeset_cache = &cache;

  auto r1 = xq::Execute(*query, opts);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->SerializedItems(), "3");
  auto warm = xq::Execute(*query, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->stats.nodeset_cache_hits, 0u);

  // Grow the document: the warm entry must NOT be served again.
  xml::Node* shelf = d->DocumentElement()->children().front();
  xml::Node* book = d->CreateElement("book");
  book->SetAttribute("id", "4");
  ASSERT_TRUE(shelf->AppendChild(book).ok());

  auto r2 = xq::Execute(*query, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->SerializedItems(), "4");
  EXPECT_GT(r2->stats.nodeset_cache_invalidations, 0u);
  EXPECT_EQ(r2->stats.nodeset_cache_hits, 0u);

  // And the recomputed entry is served at the new version.
  auto r3 = xq::Execute(*query, opts);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->SerializedItems(), "4");
  EXPECT_GT(r3->stats.nodeset_cache_hits, 0u);
}

TEST(NodeSetCacheIntegration, ConstructedDocumentsAreNotInterned) {
  // Regression: a session-scoped cache outlives each query's construction
  // arena (QueryResult.arena is per-query). Interning a set rooted at an
  // arena document would leave raw pointers into a freed arena behind; a
  // re-run whose identically-built arena lands at the recycled address
  // (same structure_version) would then be served garbage. Arena-rooted
  // paths must bypass the cache entirely.
  xq::NodeSetCache cache;
  auto query = xq::Compile("let $d := document { <a><b/></a> } return $d/a");
  ASSERT_TRUE(query.ok());
  xq::ExecuteOptions opts;
  opts.eval.nodeset_cache = &cache;

  for (int run = 0; run < 3; ++run) {
    auto r = xq::Execute(*query, opts);
    ASSERT_TRUE(r.ok()) << run;
    EXPECT_EQ(r->SerializedItems(), "<a><b/></a>") << run;
    EXPECT_EQ(r->stats.nodeset_cache_hits, 0u) << run;
  }
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NodeSetCacheIntegration, LimitedProbesAreNotInterned) {
  // exists() probes pull a 1-item prefix; interning that truncated set
  // would poison later full evaluations. Verify the full query still sees
  // everything after a probe primed (or rather, did not prime) the cache.
  auto doc = xml::Parse(kDoc, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  xq::NodeSetCache cache;
  xq::ExecuteOptions opts;
  opts.context_node = (*doc)->root();
  opts.eval.nodeset_cache = &cache;

  auto probe = xq::Compile("exists(//book)");
  ASSERT_TRUE(probe.ok());
  auto p = xq::Execute(*probe, opts);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->SerializedItems(), "true");

  auto full = xq::Compile("count(//book)");
  ASSERT_TRUE(full.ok());
  auto f = xq::Execute(*full, opts);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->SerializedItems(), "3");
}

// Many threads evaluating through ONE shared cache over ONE read-only
// document. Carries the "concurrency" ctest label so the TSan preset
// exercises the Get/Put and counter paths under contention.
TEST(NodeSetCacheConcurrency, SharedCacheParallelEvaluations) {
  std::string xml = "<r>";
  for (int i = 0; i < 50; ++i) {
    xml += "<s><book id=\"" + std::to_string(i) + "\"/></s>";
  }
  xml += "</r>";
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(doc.ok());
  (*doc)->EnsureOrderIndex();  // pre-build: mutations are off the table now

  xq::NodeSetCache cache(32);
  auto by_books = xq::Compile("count(//book)");
  auto by_shelves = xq::Compile("count(//s)");
  ASSERT_TRUE(by_books.ok() && by_shelves.ok());

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const xq::CompiledQuery& q =
            (i + t) % 2 == 0 ? *by_books : *by_shelves;
        const char* want = (i + t) % 2 == 0 ? "50" : "50";
        xq::ExecuteOptions opts;
        opts.context_node = (*doc)->root();
        opts.eval.nodeset_cache = &cache;
        auto r = xq::Execute(q, opts);
        if (!r.ok() || r->SerializedItems() != want) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  // Everyone after the first computation should have hit.
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace lll
