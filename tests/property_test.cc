// Property tests: randomized invariants over the XML layer, the XQuery
// engine, the optimizer, and the two awbql backends. All randomness is
// seeded (lll::Rng) so failures replay exactly.

#include <string>
#include <vector>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awb/xml_io.h"
#include "awbql/native.h"
#include "awbql/xquery_backend.h"
#include "core/rng.h"
#include "gtest/gtest.h"
#include "xdm/compare.h"
#include "xml/deep_equal.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"

namespace lll {
namespace {

// --- Random XML documents ---------------------------------------------------

const char* kNames[] = {"alpha", "b", "c-d", "data.x", "_under", "ns:qual"};
const char* kTexts[] = {"plain",       "a < b & c > d", "\"quoted\"",
                        "  spaced  ",  "line\nbreak",   "tab\there",
                        "unicode \xC3\xA9", "{braces}"};

void BuildRandomElement(Rng* rng, xml::Document* doc, xml::Node* parent,
                        int depth) {
  xml::Node* element = doc->CreateElement(kNames[rng->Below(6)]);
  ASSERT_TRUE(parent->AppendChild(element).ok());
  size_t attrs = rng->Below(3);
  for (size_t i = 0; i < attrs; ++i) {
    element->SetAttribute(std::string(kNames[rng->Below(6)]) +
                              std::to_string(i),
                          kTexts[rng->Below(8)]);
  }
  size_t children = depth >= 4 ? 0 : rng->Below(4);
  bool last_was_text = false;  // adjacent text nodes cannot round-trip
  for (size_t i = 0; i < children; ++i) {
    switch (rng->Below(4)) {
      case 0:
        if (last_was_text) break;
        ASSERT_TRUE(
            element->AppendChild(doc->CreateText(kTexts[rng->Below(8)])).ok());
        last_was_text = true;
        break;
      case 1:
        ASSERT_TRUE(element->AppendChild(doc->CreateComment("note")).ok());
        last_was_text = false;
        break;
      default:
        BuildRandomElement(rng, doc, element, depth + 1);
        last_was_text = false;
        break;
    }
  }
}

class XmlRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripProperty, SerializeParseIsIdentity) {
  Rng rng(GetParam());
  xml::Document doc;
  BuildRandomElement(&rng, &doc, doc.root(), 0);
  std::string serialized = xml::Serialize(doc.root());
  auto reparsed = xml::Parse(serialized);
  ASSERT_TRUE(reparsed.ok()) << serialized << "\n"
                             << reparsed.status().ToString();
  xml::DeepEqualOptions strict;
  strict.ignore_comments_and_pis = false;
  EXPECT_TRUE(xml::DeepEqual(doc.DocumentElement(),
                             (*reparsed)->DocumentElement(), strict))
      << serialized << "\n"
      << xml::ExplainDifference(doc.DocumentElement(),
                                (*reparsed)->DocumentElement(), strict);
}

TEST_P(XmlRoundTripProperty, ReserializationIsStable) {
  Rng rng(GetParam() ^ 0xABCDEF);
  xml::Document doc;
  BuildRandomElement(&rng, &doc, doc.root(), 0);
  std::string once = xml::Serialize(doc.root());
  auto reparsed = xml::Parse(once);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(xml::Serialize((*reparsed)->root()), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 21));

// --- Document order is a total order ------------------------------------

TEST(DocumentOrderProperty, TotalOrderOnRandomTree) {
  Rng rng(77);
  xml::Document doc;
  BuildRandomElement(&rng, &doc, doc.root(), 0);
  // Collect all nodes.
  std::vector<const xml::Node*> nodes;
  std::vector<const xml::Node*> stack = {doc.root()};
  while (!stack.empty()) {
    const xml::Node* n = stack.back();
    stack.pop_back();
    nodes.push_back(n);
    for (const xml::Node* a : n->attributes()) nodes.push_back(a);
    for (const xml::Node* c : n->children()) stack.push_back(c);
  }
  ASSERT_GE(nodes.size(), 3u);
  for (const xml::Node* a : nodes) {
    EXPECT_EQ(xml::CompareDocumentOrder(a, a), 0);
    for (const xml::Node* b : nodes) {
      int ab = xml::CompareDocumentOrder(a, b);
      int ba = xml::CompareDocumentOrder(b, a);
      EXPECT_EQ(ab, -ba);  // antisymmetry
      if (a != b) {
        EXPECT_NE(ab, 0);
      }
    }
  }
  // Transitivity on a sample.
  for (size_t i = 0; i + 2 < nodes.size(); i += 3) {
    const xml::Node* a = nodes[i];
    const xml::Node* b = nodes[i + 1];
    const xml::Node* c = nodes[i + 2];
    if (xml::CompareDocumentOrder(a, b) < 0 &&
        xml::CompareDocumentOrder(b, c) < 0) {
      EXPECT_LT(xml::CompareDocumentOrder(a, c), 0);
    }
  }
}

// --- Sequence flattening ---------------------------------------------------

// Builds a random nested sequence expression and the flat list of its
// integer leaves; evaluation must produce exactly the leaves, in order.
std::string RandomNestedSequence(Rng* rng, int depth,
                                 std::vector<int64_t>* leaves) {
  size_t arity = rng->Below(4);  // 0..3 members
  std::string out = "(";
  bool first = true;
  for (size_t i = 0; i < arity; ++i) {
    if (!first) out += ", ";
    first = false;
    if (depth < 3 && rng->Chance(0.4)) {
      out += RandomNestedSequence(rng, depth + 1, leaves);
    } else {
      int64_t value = rng->Range(0, 99);
      leaves->push_back(value);
      out += std::to_string(value);
    }
  }
  out += ")";
  return out;
}

class FlatteningProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatteningProperty, NestedSequencesFlattenToLeaves) {
  Rng rng(GetParam());
  std::vector<int64_t> leaves;
  std::string query = RandomNestedSequence(&rng, 0, &leaves);
  auto result = xq::Run(query);
  ASSERT_TRUE(result.ok()) << query;
  ASSERT_EQ(result->sequence.size(), leaves.size()) << query;
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(result->sequence.at(i).integer_value(), leaves[i]) << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatteningProperty,
                         ::testing::Range<uint64_t>(100, 130));

// --- Optimizer soundness -----------------------------------------------

// Random arithmetic/let/if queries; the optimizer must not change values.
std::string RandomArithExpr(Rng* rng, int depth, int bound_vars);

std::string RandomAtom(Rng* rng, int bound_vars) {
  if (bound_vars > 0 && rng->Chance(0.4)) {
    return "$v" + std::to_string(rng->Below(static_cast<uint64_t>(bound_vars)));
  }
  return std::to_string(rng->Range(-20, 20));
}

std::string RandomArithExpr(Rng* rng, int depth, int bound_vars) {
  if (depth >= 3 || rng->Chance(0.3)) return RandomAtom(rng, bound_vars);
  switch (rng->Below(5)) {
    case 0:
      return "(" + RandomArithExpr(rng, depth + 1, bound_vars) + " + " +
             RandomArithExpr(rng, depth + 1, bound_vars) + ")";
    case 1:
      return "(" + RandomArithExpr(rng, depth + 1, bound_vars) + " - " +
             RandomArithExpr(rng, depth + 1, bound_vars) + ")";
    case 2:
      return "(" + RandomArithExpr(rng, depth + 1, bound_vars) + " * " +
             RandomArithExpr(rng, depth + 1, bound_vars) + ")";
    case 3:
      return "(if (" + RandomArithExpr(rng, depth + 1, bound_vars) +
             " > 0) then " + RandomArithExpr(rng, depth + 1, bound_vars) +
             " else " + RandomArithExpr(rng, depth + 1, bound_vars) + ")";
    default: {
      // let with a possibly-dead binding, possibly traced.
      std::string binding = RandomArithExpr(rng, depth + 1, bound_vars);
      if (rng->Chance(0.3)) binding = "trace(\"t\", " + binding + ")";
      return "(let $v" + std::to_string(bound_vars) + " := " + binding +
             " return " + RandomArithExpr(rng, depth + 1, bound_vars + 1) +
             ")";
    }
  }
}

class OptimizerSoundnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerSoundnessProperty, SameValueWithAndWithoutOptimizer) {
  Rng rng(GetParam());
  std::string query = RandomArithExpr(&rng, 0, 0);

  xq::CompileOptions no_opt;
  no_opt.optimize = false;
  auto plain = xq::Run(query, {}, no_opt);

  xq::CompileOptions with_opt;  // default: DCE + folding, trace unrecognized
  auto optimized = xq::Run(query, {}, with_opt);

  ASSERT_EQ(plain.ok(), optimized.ok()) << query;
  if (!plain.ok()) return;  // both failed identically (e.g. div by zero)
  EXPECT_EQ(plain->SerializedItems(), optimized->SerializedItems()) << query;
  // DCE may only REMOVE trace output, never add.
  EXPECT_LE(optimized->trace_output.size(), plain->trace_output.size())
      << query;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSoundnessProperty,
                         ::testing::Range<uint64_t>(200, 240));

// --- General comparison symmetry ------------------------------------------

class ComparisonSymmetryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComparisonSymmetryProperty, EqualityIsSymmetric) {
  Rng rng(GetParam());
  auto random_sequence = [&rng]() {
    xdm::Sequence seq;
    size_t n = rng.Below(5);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Below(3)) {
        case 0:
          seq.Append(xdm::Item::Integer(rng.Range(0, 5)));
          break;
        case 1:
          seq.Append(xdm::Item::Double(static_cast<double>(rng.Range(0, 5))));
          break;
        default:
          seq.Append(xdm::Item::Untyped(std::to_string(rng.Range(0, 5))));
          break;
      }
    }
    return seq;
  };
  for (int trial = 0; trial < 50; ++trial) {
    xdm::Sequence a = random_sequence();
    xdm::Sequence b = random_sequence();
    auto ab = xdm::GeneralCompare(xdm::CompareOp::kEq, a, b);
    auto ba = xdm::GeneralCompare(xdm::CompareOp::kEq, b, a);
    ASSERT_EQ(ab.ok(), ba.ok());
    if (ab.ok()) {
      EXPECT_EQ(*ab, *ba) << a.DebugString() << " vs " << b.DebugString();
    }
    // = and != can both be true, but on singletons they are complementary.
    if (a.size() == 1 && b.size() == 1 && ab.ok()) {
      auto ne = xdm::GeneralCompare(xdm::CompareOp::kNe, a, b);
      ASSERT_TRUE(ne.ok());
      EXPECT_NE(*ab, *ne);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComparisonSymmetryProperty,
                         ::testing::Range<uint64_t>(300, 310));

// --- awbql backends agree on random queries -----------------------------

std::string RandomAwbQuery(Rng* rng) {
  const char* sources[] = {"from all", "from type:User", "from type:Entity",
                           "from type:Person", "from type:Document"};
  const char* relations[] = {"likes", "has", "uses", "runs", "relates"};
  const char* types[] = {"User", "Program", "Person", "Document", "Server"};
  std::string query = std::string(sources[rng->Below(5)]) + "\n";
  size_t steps = rng->Below(4);
  for (size_t i = 0; i < steps; ++i) {
    switch (rng->Below(5)) {
      case 0:
        query += std::string("follow ") + relations[rng->Below(5)] + ">\n";
        break;
      case 1:
        query += std::string("follow <") + relations[rng->Below(5)] + "\n";
        break;
      case 2:
        query += std::string("follow ") + relations[rng->Below(5)] +
                 "> to:" + types[rng->Below(5)] + "\n";
        break;
      case 3:
        query += std::string("filter type:") + types[rng->Below(5)] + "\n";
        break;
      default:
        query += "filter has:version\n";
        break;
    }
  }
  if (rng->Chance(0.5)) query += "sort label\n";
  if (rng->Chance(0.3)) query += "limit " + std::to_string(rng->Below(6)) + "\n";
  return query;
}

class AwbqlBackendProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AwbqlBackendProperty, BackendsAgreeOnRandomQueries) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = GetParam();
  config.users = 5;
  config.programs = 6;
  config.documents = 3;
  awb::Model model = awb::GenerateItModel(&mm, config);
  awbql::XQueryBackend backend(&model);

  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 6; ++trial) {
    std::string text = RandomAwbQuery(&rng);
    auto query = awbql::ParseQuery(text);
    ASSERT_TRUE(query.ok()) << text;
    auto native = awbql::EvalNative(*query, model);
    auto xquery = backend.Eval(*query);
    ASSERT_TRUE(native.ok()) << text;
    ASSERT_TRUE(xquery.ok()) << text << ": " << xquery.status().ToString();
    std::vector<std::string> native_ids, xquery_ids;
    for (auto* n : *native) native_ids.push_back(n->id());
    for (auto* n : *xquery) xquery_ids.push_back(n->id());
    EXPECT_EQ(native_ids, xquery_ids) << "seed " << GetParam() << "\n" << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AwbqlBackendProperty,
                         ::testing::Range<uint64_t>(400, 410));

// --- Model XML round-trip over many configurations -----------------------

class ModelRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelRoundTripProperty, ExportImportExportIsStable) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  Rng rng(GetParam());
  awb::GeneratorConfig config;
  config.seed = GetParam();
  config.users = rng.Below(8);
  config.documents = rng.Below(5);
  config.programs = rng.Below(10);
  config.omission_rate = rng.Uniform();
  config.violation_rate = rng.Uniform() * 0.5;
  config.include_system_being_designed = rng.Chance(0.8);
  awb::Model model = awb::GenerateItModel(&mm, config);
  std::string exported = awb::ExportModelXml(model);
  auto imported = awb::ImportModelXml(&mm, exported);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(awb::ExportModelXml(*imported), exported);
  // Warnings are a function of content, so they round-trip too.
  EXPECT_EQ(model.Validate().size(), imported->Validate().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTripProperty,
                         ::testing::Range<uint64_t>(500, 515));

}  // namespace
}  // namespace lll
