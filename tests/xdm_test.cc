// Unit tests for the XQuery Data Model: items, flat sequences, EBV,
// atomization, and the two comparison families.

#include <cmath>

#include "gtest/gtest.h"
#include "xdm/compare.h"
#include "xdm/item.h"
#include "xdm/sequence.h"
#include "xml/parser.h"

namespace lll::xdm {
namespace {

TEST(Item, KindsAndAccessors) {
  EXPECT_EQ(Item::String("s").kind(), ItemKind::kString);
  EXPECT_EQ(Item::Untyped("u").kind(), ItemKind::kUntyped);
  EXPECT_EQ(Item::Boolean(true).kind(), ItemKind::kBoolean);
  EXPECT_EQ(Item::Integer(3).kind(), ItemKind::kInteger);
  EXPECT_EQ(Item::Double(2.5).kind(), ItemKind::kDouble);
  EXPECT_TRUE(Item::Integer(3).is_numeric());
  EXPECT_TRUE(Item::Untyped("x").is_stringlike());
  EXPECT_FALSE(Item::Boolean(true).is_numeric());
}

TEST(Item, StringForms) {
  EXPECT_EQ(Item::String("abc").StringForm(), "abc");
  EXPECT_EQ(Item::Boolean(true).StringForm(), "true");
  EXPECT_EQ(Item::Boolean(false).StringForm(), "false");
  EXPECT_EQ(Item::Integer(-4).StringForm(), "-4");
  EXPECT_EQ(Item::Double(2.0).StringForm(), "2");
  EXPECT_EQ(Item::Double(0.25).StringForm(), "0.25");
}

TEST(Item, NumericValueCoercions) {
  EXPECT_DOUBLE_EQ(Item::Integer(7).NumericValue().value(), 7.0);
  EXPECT_DOUBLE_EQ(Item::Double(1.5).NumericValue().value(), 1.5);
  EXPECT_DOUBLE_EQ(Item::Untyped(" 42 ").NumericValue().value(), 42.0);
  EXPECT_FALSE(Item::Untyped("forty-two").NumericValue().ok());
  EXPECT_FALSE(Item::String("42").NumericValue().ok());  // strings don't coerce
  EXPECT_FALSE(Item::Boolean(true).NumericValue().ok());
}

TEST(Item, AtomizationOfNodes) {
  auto doc = xml::Parse("<a>hel<b>lo</b></a>");
  ASSERT_TRUE(doc.ok());
  Item node = Item::NodeRef((*doc)->DocumentElement());
  Item atom = node.Atomized();
  EXPECT_EQ(atom.kind(), ItemKind::kUntyped);
  EXPECT_EQ(atom.string_value(), "hello");
}

TEST(Sequence, FlatteningByConstruction) {
  // There is no way to express ((a,b),(c)) -- AppendSequence concatenates.
  Sequence inner1;
  inner1.Append(Item::Integer(1));
  inner1.Append(Item::Integer(2));
  Sequence inner2;
  inner2.Append(Item::Integer(3));
  Sequence outer;
  outer.AppendSequence(inner1);
  outer.AppendSequence(Sequence());  // () vanishes
  outer.AppendSequence(inner2);
  EXPECT_EQ(outer.size(), 3u);
  EXPECT_EQ(outer.DebugString(), "(1, 2, 3)");
}

TEST(Sequence, SingletonIsTheValue) {
  // "(1) being indifferently the value 1, or a singleton sequence".
  Sequence s = Sequence::Singleton(Item::Integer(1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.at(0).IdenticalTo(Item::Integer(1)));
}

TEST(Sequence, DocumentOrderDedup) {
  auto doc = xml::Parse("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto* a = (*doc)->DocumentElement();
  auto* b = a->children()[0];
  auto* c = a->children()[1];
  Sequence s;
  s.Append(Item::NodeRef(c));
  s.Append(Item::NodeRef(b));
  s.Append(Item::NodeRef(c));
  s.SortDocumentOrderAndDedup();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(0).node(), b);
  EXPECT_EQ(s.at(1).node(), c);
}

TEST(Sequence, OrderedDedupedBitTracksSortState) {
  auto doc = xml::Parse("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto* a = (*doc)->DocumentElement();
  auto* b = a->children()[0];
  auto* c = a->children()[1];

  Sequence s;
  s.Append(Item::NodeRef(c));
  s.Append(Item::NodeRef(b));
  EXPECT_FALSE(s.ordered_deduped());
  size_t compares = 0;
  EXPECT_TRUE(s.SortDocumentOrderAndDedup(&compares));
  EXPECT_TRUE(s.ordered_deduped());
  EXPECT_GT(compares, 0u);

  // Second normalization is a no-op: the bit short-circuits it.
  compares = 0;
  EXPECT_FALSE(s.SortDocumentOrderAndDedup(&compares));
  EXPECT_EQ(compares, 0u);

  // Any append invalidates the invariant.
  s.Append(Item::NodeRef(b));
  EXPECT_FALSE(s.ordered_deduped());
}

TEST(Sequence, AppendSequencePropagatesOrderBitOnlyIntoEmpty) {
  auto doc = xml::Parse("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto* a = (*doc)->DocumentElement();

  Sequence sorted;
  sorted.Append(Item::NodeRef(a->children()[1]));
  sorted.Append(Item::NodeRef(a->children()[0]));
  sorted.SortDocumentOrderAndDedup();
  ASSERT_TRUE(sorted.ordered_deduped());

  // empty += sorted keeps the invariant (copy and move forms).
  Sequence into_empty;
  into_empty.AppendSequence(sorted);
  EXPECT_TRUE(into_empty.ordered_deduped());

  Sequence into_empty_mv;
  Sequence src = sorted;
  into_empty_mv.AppendSequence(std::move(src));
  EXPECT_TRUE(into_empty_mv.ordered_deduped());
  EXPECT_EQ(into_empty_mv.size(), 2u);

  // nonempty += nonempty drops it.
  Sequence both = sorted;
  both.AppendSequence(sorted);
  EXPECT_FALSE(both.ordered_deduped());
  EXPECT_EQ(both.size(), 4u);

  // anything += empty is a no-op and keeps it.
  Sequence keep = sorted;
  keep.AppendSequence(Sequence());
  EXPECT_TRUE(keep.ordered_deduped());
}

TEST(Sequence, MoveAppendTransfersItems) {
  Sequence dst;
  dst.Append(Item::Integer(1));
  Sequence src;
  src.Append(Item::Integer(2));
  src.Append(Item::Integer(3));
  dst.AppendSequence(std::move(src));
  ASSERT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.at(2).integer_value(), 3);
  EXPECT_TRUE(src.empty());  // moved-from source is drained
}

TEST(EffectiveBooleanValue, Rules) {
  auto ebv = [](Sequence s) { return EffectiveBooleanValue(s).value(); };
  EXPECT_FALSE(ebv(Sequence()));
  EXPECT_TRUE(ebv(Sequence(Item::Boolean(true))));
  EXPECT_FALSE(ebv(Sequence(Item::Boolean(false))));
  EXPECT_FALSE(ebv(Sequence(Item::String(""))));
  EXPECT_TRUE(ebv(Sequence(Item::String("x"))));
  EXPECT_FALSE(ebv(Sequence(Item::Integer(0))));
  EXPECT_TRUE(ebv(Sequence(Item::Integer(-1))));
  EXPECT_FALSE(ebv(Sequence(Item::Double(std::nan("")))));

  auto doc = xml::Parse("<a/>");
  ASSERT_TRUE(doc.ok());
  Sequence nodes(Item::NodeRef((*doc)->DocumentElement()));
  nodes.Append(Item::Integer(1));
  EXPECT_TRUE(ebv(nodes));  // first item a node -> true regardless of rest

  Sequence multi;
  multi.Append(Item::Integer(1));
  multi.Append(Item::Integer(2));
  EXPECT_FALSE(EffectiveBooleanValue(multi).ok());  // err:FORG0006
}

TEST(ValueCompare, NumericPromotionAndStrings) {
  auto eq = [](Item a, Item b) {
    return ValueCompare(CompareOp::kEq, a, b).value();
  };
  EXPECT_TRUE(eq(Item::Integer(2), Item::Double(2.0)));
  EXPECT_TRUE(eq(Item::String("a"), Item::String("a")));
  EXPECT_TRUE(eq(Item::Untyped("a"), Item::String("a")));
  EXPECT_FALSE(eq(Item::Integer(1), Item::Integer(2)));
  EXPECT_TRUE(ValueCompare(CompareOp::kLt, Item::String("a"),
                           Item::String("b")).value());
  // String vs number: type error.
  EXPECT_FALSE(ValueCompare(CompareOp::kEq, Item::String("1"),
                            Item::Integer(1)).ok());
  // Boolean vs boolean fine; boolean vs string not.
  EXPECT_TRUE(eq(Item::Boolean(true), Item::Boolean(true)));
  EXPECT_FALSE(ValueCompare(CompareOp::kEq, Item::Boolean(true),
                            Item::String("true")).ok());
}

TEST(ValueCompare, NaNComparesFalseExceptNe) {
  Item nan = Item::Double(std::nan(""));
  EXPECT_FALSE(ValueCompare(CompareOp::kEq, nan, nan).value());
  EXPECT_TRUE(ValueCompare(CompareOp::kNe, nan, nan).value());
  EXPECT_FALSE(ValueCompare(CompareOp::kLt, nan, Item::Double(1)).value());
}

TEST(GeneralCompare, Existential) {
  Sequence s123;
  s123.Append(Item::Integer(1));
  s123.Append(Item::Integer(2));
  s123.Append(Item::Integer(3));
  Sequence s1(Item::Integer(1));
  Sequence s9(Item::Integer(9));
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, s1, s123).value());
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, s123, s1).value());
  EXPECT_FALSE(GeneralCompare(CompareOp::kEq, s1, s9).value());
  // (1,2,3) < (1): no pair satisfies <, so false.
  EXPECT_FALSE(GeneralCompare(CompareOp::kLt, s123, s1).value());
  // (1,2,3) < (9): every pair satisfies <, so true.
  EXPECT_TRUE(GeneralCompare(CompareOp::kLt, s123, s9).value());
  // (1,2,3) is both < and > (2): existential semantics at their weirdest.
  Sequence s2(Item::Integer(2));
  EXPECT_TRUE(GeneralCompare(CompareOp::kLt, s123, s2).value());
  EXPECT_TRUE(GeneralCompare(CompareOp::kGt, s123, s2).value());
}

TEST(GeneralCompare, UntypedCoercesTowardNumbers) {
  Sequence untyped(Item::Untyped("5"));
  Sequence five(Item::Integer(5));
  Sequence text5(Item::String("5"));
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, untyped, five).value());
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, untyped, text5).value());
  // But a plain string against a number stays a type error.
  EXPECT_FALSE(GeneralCompare(CompareOp::kEq, text5, five).ok());
}

TEST(GeneralCompare, EmptySequencesAlwaysFalse) {
  Sequence empty;
  Sequence one(Item::Integer(1));
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(GeneralCompare(op, empty, one).value());
    EXPECT_FALSE(GeneralCompare(op, one, empty).value());
    EXPECT_FALSE(GeneralCompare(op, empty, empty).value());
  }
}

TEST(DistinctValues, KeepsFirstOccurrence) {
  Sequence s;
  s.Append(Item::Integer(1));
  s.Append(Item::String("a"));
  s.Append(Item::Integer(1));
  s.Append(Item::Double(1.0));  // eq to integer 1
  s.Append(Item::String("a"));
  s.Append(Item::String("b"));
  Sequence d = DistinctValues(s).value();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.DebugString(), "(1, a, b)");
}

TEST(DeepEqualSequences, MixedContent) {
  auto doc1 = xml::Parse("<a x=\"1\"><b/></a>");
  auto doc2 = xml::Parse("<a x=\"1\"><b/></a>");
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  Sequence s1;
  s1.Append(Item::Integer(1));
  s1.Append(Item::NodeRef((*doc1)->DocumentElement()));
  Sequence s2;
  s2.Append(Item::Integer(1));
  s2.Append(Item::NodeRef((*doc2)->DocumentElement()));
  EXPECT_TRUE(DeepEqualSequences(s1, s2).value());
  s2.Append(Item::Integer(9));
  EXPECT_FALSE(DeepEqualSequences(s1, s2).value());  // length mismatch
}

TEST(DeepEqualSequences, NaNEqualsNaN) {
  Sequence a(Item::Double(std::nan("")));
  Sequence b(Item::Double(std::nan("")));
  EXPECT_TRUE(DeepEqualSequences(a, b).value());
}

TEST(RequireSingleton, Errors) {
  Sequence empty;
  Sequence two;
  two.Append(Item::Integer(1));
  two.Append(Item::Integer(2));
  EXPECT_FALSE(RequireSingleton(empty, "t").ok());
  EXPECT_FALSE(RequireSingleton(two, "t").ok());
  EXPECT_TRUE(RequireSingleton(Sequence(Item::Integer(1)), "t").ok());
  EXPECT_TRUE(RequireAtMostOne(empty, "t").ok());
  EXPECT_FALSE(RequireAtMostOne(two, "t").ok());
}

}  // namespace
}  // namespace lll::xdm
