// The FLUX-style update sublanguage: grammar, snapshot semantics (targets
// bind pre-update), conflict rejection, mutation routing through the
// edit-version overlay, EXPLAIN for update plans, and the server's
// publish-path integration (subtree-scoped invalidation of the migrated
// node-set cache).

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/update_eval.h"
#include "xquery/update_parser.h"

namespace lll::xq {
namespace {

std::unique_ptr<xml::Document> ParseDoc(const std::string& xml) {
  auto doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? std::move(*doc) : nullptr;
}

std::string Apply(const std::string& xml, const std::string& script,
                  UpdateStats* stats = nullptr) {
  auto doc = ParseDoc(xml);
  if (doc == nullptr) return "<PARSE ERROR>";
  auto compiled = CompileUpdateText(script);
  if (!compiled.ok()) return "<COMPILE: " + compiled.status().ToString() + ">";
  auto result = ApplyUpdate(*compiled, doc.get());
  if (!result.ok()) return "<APPLY: " + result.status().ToString() + ">";
  if (stats != nullptr) *stats = *result;
  return xml::Serialize(doc->DocumentElement());
}

std::string ApplyError(const std::string& xml, const std::string& script) {
  auto doc = ParseDoc(xml);
  if (doc == nullptr) return "<PARSE ERROR>";
  const std::string before = xml::Serialize(doc->DocumentElement());
  auto compiled = CompileUpdateText(script);
  if (!compiled.ok()) return compiled.status().ToString();
  auto result = ApplyUpdate(*compiled, doc.get());
  EXPECT_FALSE(result.ok()) << "script unexpectedly applied: " << script;
  // Error means untouched: validation runs before the first mutation.
  EXPECT_EQ(xml::Serialize(doc->DocumentElement()), before) << script;
  return result.ok() ? "" : result.status().ToString();
}

// --- Grammar ----------------------------------------------------------------

TEST(UpdateParser, AllFourStatementForms) {
  auto script = ParseUpdateScript(
      "insert <x a=\"1\"/> into /r; delete /r/a; "
      "replace /r/b with <y>t</y>; rename /r/c as d");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 4u);
  EXPECT_EQ(script->statements[0].op, UpdateOp::kInsert);
  EXPECT_EQ(script->statements[0].position, InsertPosition::kInto);
  EXPECT_EQ(script->statements[0].node_xml, "<x a=\"1\"/>");
  EXPECT_EQ(script->statements[0].target_path, "/r");
  EXPECT_EQ(script->statements[1].op, UpdateOp::kDelete);
  EXPECT_EQ(script->statements[1].target_path, "/r/a");
  EXPECT_EQ(script->statements[2].op, UpdateOp::kReplace);
  EXPECT_EQ(script->statements[2].node_xml, "<y>t</y>");
  EXPECT_EQ(script->statements[3].op, UpdateOp::kRename);
  EXPECT_EQ(script->statements[3].qname, "d");
}

TEST(UpdateParser, InsertPositions) {
  for (const char* pos : {"into", "before", "after"}) {
    auto script =
        ParseUpdateScript(std::string("insert <x/> ") + pos + " /r/a");
    ASSERT_TRUE(script.ok()) << pos;
    EXPECT_EQ(InsertPositionName(script->statements[0].position), pos);
  }
}

TEST(UpdateParser, QuotedTextPayload) {
  auto script = ParseUpdateScript("insert \"hello world\" into /r/a");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_TRUE(script->statements[0].node_is_text);
  EXPECT_EQ(script->statements[0].node_xml, "hello world");
}

TEST(UpdateParser, KeywordsInsidePredicatesAndTagsStayOpaque) {
  // "with", "as", ';' and '<' inside predicates, strings, or the payload
  // fragment must not be mistaken for top-level grammar.
  auto script = ParseUpdateScript(
      "replace /r/a[@k = \"x with y; z\"] with <m note=\"as is\"><n/></m>");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 1u);
  EXPECT_EQ(script->statements[0].target_path, "/r/a[@k = \"x with y; z\"]");
  EXPECT_EQ(script->statements[0].node_xml, "<m note=\"as is\"><n/></m>");

  // '<' as the comparison operator inside a predicate is not a tag start.
  auto cmp = ParseUpdateScript("delete /r/a[position() < 3]");
  ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
  EXPECT_EQ(cmp->statements[0].target_path, "/r/a[position() < 3]");
}

TEST(UpdateParser, MalformedScriptsAreParseErrors) {
  for (const char* bad : {
           "",                              // empty
           "   ;  ; ",                      // statements all empty
           "upsert <x/> into /r",           // unknown verb
           "insert <x/> /r",                // missing position keyword
           "insert into /r",                // missing payload
           "delete",                        // missing path
           "replace /r/a",                  // missing "with"
           "replace /r/a with",             // missing payload
           "rename /r/a",                   // missing "as"
           "rename /r/a as 1bad",           // malformed QName
           "rename /r/a as a b",            // QName with trailing junk
           "insert <x/> sideways /r",       // bad position keyword
           "insert \"unterminated into /r", // unterminated quote
       }) {
    auto script = ParseUpdateScript(bad);
    EXPECT_FALSE(script.ok()) << "parsed unexpectedly: '" << bad << "'";
  }
}

TEST(UpdateParser, IsUpdateScriptDispatch) {
  EXPECT_TRUE(IsUpdateScript("insert <x/> into /r"));
  EXPECT_TRUE(IsUpdateScript("  delete /r/a"));
  EXPECT_TRUE(IsUpdateScript("replace /r/a with <y/>"));
  EXPECT_TRUE(IsUpdateScript("rename /r/a as b"));
  // Queries that merely mention the verbs are not update scripts.
  EXPECT_FALSE(IsUpdateScript("//delete"));
  EXPECT_FALSE(IsUpdateScript("count(//item)"));
  EXPECT_FALSE(IsUpdateScript("/log/insert"));
  EXPECT_FALSE(IsUpdateScript("\"delete /r\""));
}

// --- Application ------------------------------------------------------------

TEST(UpdateApply, InsertIntoBeforeAfter) {
  EXPECT_EQ(Apply("<r><a/><b/></r>", "insert <x/> into /r"),
            "<r><a/><b/><x/></r>");
  EXPECT_EQ(Apply("<r><a/><b/></r>", "insert <x/> before /r/b"),
            "<r><a/><x/><b/></r>");
  EXPECT_EQ(Apply("<r><a/><b/></r>", "insert <x/> after /r/a"),
            "<r><a/><x/><b/></r>");
  EXPECT_EQ(Apply("<r><a/></r>", "insert \"hi\" into /r/a"),
            "<r><a>hi</a></r>");
}

TEST(UpdateApply, DeleteReplaceRename) {
  EXPECT_EQ(Apply("<r><a/><b/></r>", "delete /r/a"), "<r><b/></r>");
  EXPECT_EQ(Apply("<r><a><c/></a></r>", "replace /r/a with <z k=\"1\"/>"),
            "<r><z k=\"1\"/></r>");
  EXPECT_EQ(Apply("<r><a><c/></a></r>", "rename /r/a as q"),
            "<r><q><c/></q></r>");
}

TEST(UpdateApply, MultiNodeTargetsAndEmptyTargetsAreLegal) {
  UpdateStats stats;
  EXPECT_EQ(Apply("<r><a/><a/><a/></r>", "rename /r/a as b", &stats),
            "<r><b/><b/><b/></r>");
  EXPECT_EQ(stats.statements, 1u);
  EXPECT_EQ(stats.target_nodes, 3u);

  // An empty target set is a no-op, not an error.
  EXPECT_EQ(Apply("<r><a/></r>", "delete /r/nothing", &stats), "<r><a/></r>");
  EXPECT_EQ(stats.target_nodes, 0u);
}

TEST(UpdateApply, TargetsBindAgainstThePreUpdateSnapshot) {
  // FLUX snapshot semantics: the second statement's path is evaluated
  // before the first statement's insert exists, so it selects nothing.
  EXPECT_EQ(Apply("<r><a/></r>", "insert <x/> into /r/a; delete /r/a/x"),
            "<r><a><x/></a></r>");
  // Symmetrically: a statement targeting a node another statement deletes
  // still binds (the node existed in the snapshot); the insert lands in the
  // detached subtree and is invisible in the published tree.
  EXPECT_EQ(Apply("<r><a/><b/></r>", "delete /r/a; insert <x/> into /r/a"),
            "<r><b/></r>");
}

TEST(UpdateApply, ScriptOrderIsDeterministicWithinOneStatementSet) {
  // Two inserts anchored at the same position land in script order.
  EXPECT_EQ(
      Apply("<r><m/></r>", "insert <x/> before /r/m; insert <y/> before /r/m"),
      "<r><x/><y/><m/></r>");
}

TEST(UpdateApply, InvalidTargetsRejectBeforeAnyMutation) {
  // Deleting the document node, renaming a text node, replacing an
  // attribute: each is rejected with the document untouched -- including
  // when an earlier statement in the same script was applicable.
  EXPECT_NE(ApplyError("<r><a/></r>", "delete /"), "");
  EXPECT_NE(ApplyError("<r>txt</r>", "rename /r/text() as x"), "");
  EXPECT_NE(ApplyError("<r><a k=\"1\"/></r>",
                       "insert <x/> into /r/a; replace /r/a/@k with <y/>"),
            "");
}

// --- Conflicts --------------------------------------------------------------

TEST(UpdateConflicts, ExclusiveClaimsReject) {
  MetricsRegistry metrics;
  auto doc = ParseDoc("<r><a/><b/></r>");
  ASSERT_NE(doc, nullptr);
  auto compiled = CompileUpdateText("delete /r/a; rename /r/a as z");
  ASSERT_TRUE(compiled.ok());
  UpdateOptions uo;
  uo.metrics = &metrics;
  auto result = ApplyUpdate(*compiled, doc.get(), uo);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(metrics.counter("xq.update.conflicts_rejected").value(), 1u);
  // Neither statement applied.
  EXPECT_EQ(xml::Serialize(doc->DocumentElement()), "<r><a/><b/></r>");
}

TEST(UpdateConflicts, RulesMatchTheDesign) {
  // delete+delete of one node agree; the other exclusive pairs contradict.
  EXPECT_EQ(Apply("<r><a/><b/></r>", "delete /r/a; delete /r/a"),
            "<r><b/></r>");
  EXPECT_NE(ApplyError("<r><a/></r>", "delete /r/a; replace /r/a with <x/>"),
            "");
  EXPECT_NE(ApplyError("<r><a/></r>",
                       "rename /r/a as x; replace /r/a with <y/>"),
            "");
  // An insert before/after needs its anchor to survive: delete and replace
  // of the anchor conflict, a rename of the anchor does not.
  EXPECT_NE(ApplyError("<r><a/></r>", "delete /r/a; insert <x/> before /r/a"),
            "");
  EXPECT_NE(ApplyError("<r><a/></r>",
                       "replace /r/a with <y/>; insert <x/> after /r/a"),
            "");
  EXPECT_EQ(Apply("<r><a/></r>", "rename /r/a as z; insert <x/> before /r/a"),
            "<r><x/><z/></r>");
  // insert INTO a deleted node is not a conflict: it lands in the detached
  // subtree (snapshot semantics), invisible in the published tree.
  EXPECT_EQ(Apply("<r><a/><b/></r>", "delete /r/a; insert <x/> into /r/a"),
            "<r><b/></r>");
}

// --- EXPLAIN ----------------------------------------------------------------

TEST(UpdateExplain, ShowsStatementsAndGuardAnchors) {
  auto compiled = CompileUpdateText("delete /r/a/b; rename /r/c as z");
  ASSERT_TRUE(compiled.ok());

  std::string plain = ExplainUpdate(*compiled);
  EXPECT_NE(plain.find("update script: 2 statements"), std::string::npos);
  EXPECT_NE(plain.find("[1] delete /r/a/b"), std::string::npos);
  EXPECT_NE(plain.find("[2] rename /r/c as z"), std::string::npos);
  EXPECT_EQ(plain.find("targets:"), std::string::npos);  // no doc, no counts

  auto doc = ParseDoc("<r><a><b/><b/></a><c/></r>");
  ASSERT_NE(doc, nullptr);
  std::string with_doc = ExplainUpdate(*compiled, doc.get());
  EXPECT_NE(with_doc.find("targets: 2 nodes"), std::string::npos);
  // A delete dirties its former parent's child list.
  EXPECT_NE(with_doc.find("/r[1]/a[1]/b[1] -- dirties local+child-list @ "
                          "/r[1]/a[1]"),
            std::string::npos);
  // A rename dirties the renamed node itself.
  EXPECT_NE(with_doc.find("/r[1]/c[1] -- dirties local+child-list @ "
                          "/r[1]/c[1]"),
            std::string::npos);
  EXPECT_NE(with_doc.find("subtree versions up the ancestor chain"),
            std::string::npos);
}

// --- Server integration -----------------------------------------------------

constexpr char kLibrary[] =
    "<library><models>"
    "<model id=\"m1\"><parts><part/><part/></parts></model>"
    "<model id=\"m2\"><parts><part/></parts></model>"
    "<model id=\"m3\"><parts><part/></parts></model>"
    "</models></library>";

server::ServerOptions UpdateTestOptions(MetricsRegistry* metrics) {
  server::ServerOptions options;
  options.worker_threads = 2;
  options.metrics = metrics;
  return options;
}

TEST(UpdateServer, PublishUpdateAppliesThroughCopyOnWrite) {
  MetricsRegistry metrics;
  server::QueryServer server(UpdateTestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("lib", kLibrary).ok());

  server::Session pinned = server.OpenSession("acme");
  server::QueryResponse before = pinned.Query("lib", "count(//part)");
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.result, "4");

  UpdateStats stats;
  auto v2 = server.PublishUpdate(
      "lib", "insert <part/> into /library/models/model[@id = \"m2\"]/parts",
      &stats);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(stats.statements, 1u);
  EXPECT_EQ(stats.target_nodes, 1u);
  EXPECT_EQ(metrics.counter("server.updates").value(), 1u);
  EXPECT_EQ(metrics.counter("xq.update.statements").value(), 1u);

  // Snapshot isolation: the pinned session still reads version 1.
  server::QueryResponse still = pinned.Query("lib", "count(//part)");
  EXPECT_EQ(still.result, "4");
  EXPECT_EQ(still.snapshot_version, 1u);
  pinned.Refresh();
  EXPECT_EQ(pinned.Query("lib", "count(//part)").result, "5");

  // A rejected script publishes nothing and leaves the version alone.
  auto bad = server.PublishUpdate(
      "lib", "delete //model[@id = \"m3\"]; rename //model[@id = \"m3\"] as x");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(server.CurrentSnapshot("lib")->version(), 2u);
  auto parse_fail = server.PublishUpdate("lib", "frobnicate /library");
  EXPECT_FALSE(parse_fail.ok());
  EXPECT_EQ(server.CurrentSnapshot("lib")->version(), 2u);
}

TEST(UpdateServer, SubtreeScopedInvalidationAcrossPublishUpdate) {
  // THE acceptance criterion: server-verb update statements trigger only
  // subtree-scoped invalidations for anchored cached queries. Warm two
  // chains anchored under different models, publish an update editing only
  // m2's subtree, and require (a) the m2 chain's first post-publish lookup
  // to be a PARTIAL invalidation (its migrated entry failed a fine-grained
  // guard), (b) zero full invalidations anywhere, and (c) the m1 chain to
  // keep HITTING its migrated entry.
  MetricsRegistry metrics;
  server::QueryServer server(UpdateTestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("lib", kLibrary).ok());

  const std::string q_m1 = "/library/models/model[@id = \"m1\"]/parts/part";
  const std::string q_m2 = "/library/models/model[@id = \"m2\"]/parts/part";
  server::Session session = server.OpenSession("acme");
  ASSERT_TRUE(session.Query("lib", q_m1).status.ok());
  ASSERT_TRUE(session.Query("lib", q_m2).status.ok());
  // Warm: both chains hit within the v1 snapshot.
  server::QueryResponse warm = session.Query("lib", q_m1);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_GE(warm.stats.nodeset_cache_hits, 1u);

  auto v2 = server.PublishUpdate(
      "lib", "insert <part/> into /library/models/model[@id = \"m2\"]/parts");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_GT(server.cache_entries_migrated(), 0u)
      << "warm entries should migrate onto the identity clone";

  session.Refresh();
  // The m1 chain re-validates its migrated guards on the new snapshot: HIT,
  // no invalidation.
  server::QueryResponse m1 = session.Query("lib", q_m1);
  ASSERT_TRUE(m1.status.ok());
  EXPECT_EQ(m1.snapshot_version, 2u);
  EXPECT_GE(m1.stats.nodeset_cache_hits, 1u);
  EXPECT_EQ(m1.stats.nodeset_cache_invalidations, 0u);

  // The m2 chain's guards fail -- and because the entry was subtree-scoped,
  // the failure counts as PARTIAL, never full.
  server::QueryResponse m2 = session.Query("lib", q_m2);
  ASSERT_TRUE(m2.status.ok());
  EXPECT_GE(m2.stats.nodeset_cache_invalidations, 1u);
  EXPECT_EQ(m2.stats.nodeset_cache_invalidations,
            m2.stats.nodeset_cache_partial_invalidations)
      << "every invalidation from the scoped update must be subtree-scoped";
  EXPECT_EQ(m2.result.find("<part/><part/>"), 0u);

  // Control arm: with subtree invalidation forced off, the SAME traffic
  // produces full invalidations on both chains.
  MetricsRegistry coarse_metrics;
  server::ServerOptions coarse = UpdateTestOptions(&coarse_metrics);
  coarse.subtree_invalidation = false;
  server::QueryServer coarse_server(coarse);
  ASSERT_TRUE(coarse_server.AddDocumentXml("lib", kLibrary).ok());
  server::Session coarse_session = coarse_server.OpenSession("acme");
  ASSERT_TRUE(coarse_session.Query("lib", q_m1).status.ok());
  ASSERT_TRUE(coarse_session.Query("lib", q_m2).status.ok());
  ASSERT_TRUE(coarse_server
                  .PublishUpdate("lib",
                                 "insert <part/> into "
                                 "/library/models/model[@id = \"m2\"]/parts")
                  .ok());
  coarse_session.Refresh();
  server::QueryResponse coarse_m1 = coarse_session.Query("lib", q_m1);
  ASSERT_TRUE(coarse_m1.status.ok());
  EXPECT_GE(coarse_m1.stats.nodeset_cache_invalidations, 1u);
  EXPECT_EQ(coarse_m1.stats.nodeset_cache_partial_invalidations, 0u)
      << "the whole-document baseline must never count partial";
}

// The mutate-between-runs differential, driven ENTIRELY by update-language
// scripts (the raw-mutator half lives in nodeset_cache_test): after every
// script, cached evaluations agree byte-for-byte with fresh ones. 8 seeds.
TEST(UpdateDifferential, ScriptedMutateBetweenRuns) {
  for (uint32_t seed = 1; seed <= 8; ++seed) {
    std::mt19937 rng(20260807 + seed);
    std::string xml = lll::testing::RandomPathWorkloadDocument(&rng);
    auto doc = ParseDoc(xml);
    ASSERT_NE(doc, nullptr) << "seed " << seed;
    std::vector<std::string> query_texts =
        lll::testing::RandomPathWorkloadQueries(&rng, 30);
    std::vector<CompiledQuery> queries;
    for (const std::string& q : query_texts) {
      auto compiled = Compile(q);
      ASSERT_TRUE(compiled.ok()) << q;
      queries.push_back(std::move(*compiled));
    }

    NodeSetCache cache(64);
    for (int round = 0; round < 4; ++round) {
      std::string edit = "(none)";
      if (round > 0) {
        // Compose a script from the live tree: rename one element, insert
        // before another. Paths are canonical NodePathOf forms, so this is
        // the update pipeline end-to-end, parser included.
        std::vector<xml::Node*> elements =
            lll::testing::AllElements(doc.get());
        ASSERT_GT(elements.size(), 2u);
        xml::Node* rename_at = elements[rng() % elements.size()];
        xml::Node* insert_at = elements[1 + rng() % (elements.size() - 1)];
        std::string script = "rename " + NodePathOf(rename_at) + " as e";
        if (insert_at != doc->DocumentElement()) {
          script += "; insert <f/> before " + NodePathOf(insert_at);
        }
        auto compiled = CompileUpdateText(script);
        ASSERT_TRUE(compiled.ok())
            << "seed " << seed << " script: " << script;
        auto applied = ApplyUpdate(*compiled, doc.get());
        ASSERT_TRUE(applied.ok())
            << "seed " << seed << " script: " << script << "\n"
            << applied.status().ToString();
        edit = script;
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        ExecuteOptions cached_opts;
        cached_opts.context_node = doc->root();
        cached_opts.eval.nodeset_cache = &cache;
        auto cached = Execute(queries[i], cached_opts);
        ExecuteOptions fresh_opts;
        fresh_opts.context_node = doc->root();
        auto fresh = Execute(queries[i], fresh_opts);
        ASSERT_EQ(cached.ok(), fresh.ok())
            << "seed " << seed << " round " << round << " query "
            << query_texts[i] << " edit: " << edit;
        if (!cached.ok()) continue;
        EXPECT_EQ(cached->SerializedItems(), fresh->SerializedItems())
            << "seed " << seed << " round " << round << " query "
            << query_texts[i] << " edit: " << edit;
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

// Concurrent updates vs. readers, for the TSan preset (the "concurrency"
// ctest label): one writer publishing update scripts while reader threads
// query through pinned sessions. Readers must always see a consistent
// part-count (every publish adds exactly one part, so any count in
// [initial, initial + publishes] is a legal snapshot read).
TEST(UpdateConcurrency, ReadersStayConsistentUnderPublishedUpdates) {
  MetricsRegistry metrics;
  server::QueryServer server(UpdateTestOptions(&metrics));
  ASSERT_TRUE(server.AddDocumentXml("lib", kLibrary).ok());

  constexpr int kPublishes = 12;
  constexpr int kReaders = 4;
  std::atomic<int> bad_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&server, &bad_reads, t] {
      server::Session session =
          server.OpenSession("tenant" + std::to_string(t));
      for (int i = 0; i < 30; ++i) {
        server::QueryResponse r = session.Query("lib", "count(//part)");
        if (!r.status.ok()) {
          ++bad_reads;
          continue;
        }
        int count = std::stoi(r.result);
        if (count < 4 || count > 4 + kPublishes) ++bad_reads;
        if (i % 5 == 4) session.Refresh();
      }
    });
  }
  std::thread writer([&server] {
    for (int i = 0; i < kPublishes; ++i) {
      auto v = server.PublishUpdate(
          "lib",
          "insert <part/> into /library/models/model[@id = \"m1\"]/parts");
      ASSERT_TRUE(v.ok()) << v.status().ToString();
    }
  });
  for (auto& th : readers) th.join();
  writer.join();
  EXPECT_EQ(bad_reads.load(), 0);
  server::Session check = server.OpenSession("final");
  EXPECT_EQ(check.Query("lib", "count(//part)").result,
            std::to_string(4 + kPublishes));
}

}  // namespace
}  // namespace lll::xq
