// The persistence subsystem's proof obligations:
//
//   1. Roundtrip fidelity -- a plan loaded from a *.lllp artifact and a
//      document loaded from a *.llld snapshot are byte-identical to their
//      fresh-built counterparts, under EXPLAIN and under the seeded
//      440-query differential workload.
//   2. Hostile input -- truncations at every length, every single-byte flip,
//      stale format versions, and crafted out-of-range images all fail with
//      kInvalidArgument and never half-warm a cache or build a broken tree.
//   3. Observability -- EXPLAIN distinguishes compiled / memory-cache /
//      disk-cache provenance, and the persist.* counters record every store,
//      load, version mismatch, and failure.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "docgen/xq_engine.h"
#include "gtest/gtest.h"
#include "obs/explain.h"
#include "persist/doc_snapshot.h"
#include "persist/format.h"
#include "persist/plan_serde.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xquery/engine.h"
#include "xquery/query_cache.h"

namespace lll {
namespace {

namespace fs = std::filesystem;

// A scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    dir_ = fs::path(::testing::TempDir()) /
           ("lll_persist_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScratchDir() { fs::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string str() const { return dir_.string(); }

 private:
  fs::path dir_;
};

std::string EvalCompiled(const xq::CompiledQuery& query, xml::Node* context) {
  xq::ExecuteOptions opts;
  opts.context_node = context;
  auto result = xq::Execute(query, opts);
  if (!result.ok()) return "<ERROR: " + result.status().ToString() + ">";
  return result->SerializedItems();
}

std::string EvalOn(const std::string& query, xml::Node* context) {
  auto compiled = xq::Compile(query);
  if (!compiled.ok()) {
    return "<COMPILE ERROR: " + compiled.status().ToString() + ">";
  }
  return EvalCompiled(*compiled, context);
}

// --- The shared container format -------------------------------------------

persist::ArtifactWriter TwoSectionArtifact() {
  persist::ArtifactWriter w(persist::kPlanCacheArtifact);
  w.AddSection(7, "payload seven");
  w.AddSection(9, std::string("\x00\x01\x02zzz", 6));
  return w;
}

TEST(PersistFormat, RoundtripsSectionsThroughBytesAndFile) {
  auto artifact = persist::Artifact::FromBytes(TwoSectionArtifact().Finish(),
                                               persist::kPlanCacheArtifact);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  EXPECT_EQ(artifact->Section(7), "payload seven");
  EXPECT_EQ(artifact->Section(9), std::string("\x00\x01\x02zzz", 6));
  EXPECT_FALSE(artifact->Section(8).has_value());

  ScratchDir dir;
  const std::string path = dir.path("two.lllp");
  ASSERT_TRUE(TwoSectionArtifact().WriteFile(path).ok());
  auto mapped =
      persist::Artifact::FromFile(path, persist::kPlanCacheArtifact);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mapped());
  EXPECT_EQ(mapped->Section(7), "payload seven");
  // The .tmp staging file was renamed away, not left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(PersistFormat, RejectsWrongMagicKindAndTrailingGarbage) {
  const std::string image = TwoSectionArtifact().Finish();

  std::string bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_EQ(persist::Artifact::FromBytes(bad_magic,
                                         persist::kPlanCacheArtifact)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Right container, wrong artifact kind: a *.lllp handed to the snapshot
  // loader must be rejected, not misinterpreted.
  EXPECT_EQ(persist::Artifact::FromBytes(image,
                                         persist::kDocSnapshotArtifact)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(persist::Artifact::FromBytes(image + "garbage",
                                         persist::kPlanCacheArtifact)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(
      persist::Artifact::FromFile(
          "/nonexistent/absent.lllp", persist::kPlanCacheArtifact)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(PersistFormat, DistinguishesVersionMismatchFromCorruption) {
  std::string image = TwoSectionArtifact().Finish();
  // The format version lives at offset 4 and is NOT checksummed (the
  // checksum covers post-header bytes only), so bumping it simulates an
  // artifact from a future format generation exactly.
  image[4] = static_cast<char>(persist::kFormatVersion + 1);
  persist::ArtifactLoadInfo info;
  auto artifact = persist::Artifact::FromBytes(
      image, persist::kPlanCacheArtifact, &info);
  EXPECT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(info.version_mismatch);

  std::string corrupt = TwoSectionArtifact().Finish();
  corrupt[corrupt.size() - 1] ^= 0x40;
  persist::ArtifactLoadInfo corrupt_info;
  auto rejected = persist::Artifact::FromBytes(
      corrupt, persist::kPlanCacheArtifact, &corrupt_info);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(corrupt_info.version_mismatch);
}

TEST(PersistFormat, TruncationBatteryEveryPrefixRejected) {
  const std::string image = TwoSectionArtifact().Finish();
  for (size_t len = 0; len < image.size(); ++len) {
    auto artifact = persist::Artifact::FromBytes(
        image.substr(0, len), persist::kPlanCacheArtifact);
    ASSERT_FALSE(artifact.ok()) << "truncation to " << len << " bytes loaded";
    ASSERT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PersistFormat, ByteFlipBatteryEveryFlipRejected) {
  const std::string image = TwoSectionArtifact().Finish();
  for (size_t i = 0; i < image.size(); ++i) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string flipped = image;
      flipped[i] ^= static_cast<char>(bit);
      auto artifact = persist::Artifact::FromBytes(
          flipped, persist::kPlanCacheArtifact);
      ASSERT_FALSE(artifact.ok())
          << "flip of bit " << int{bit} << " at byte " << i << " loaded";
      ASSERT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

// --- Plan serde -------------------------------------------------------------

// Feature coverage beyond the random path workload: FLWOR with order by,
// user functions with type annotations, quantifiers, constructors,
// conditionals, and the optimizer pathologies (dead lets, swallowed traces)
// whose rewrite notes must survive the roundtrip for EXPLAIN.
const char* kFeatureQueries[] = {
    "1 + 2 * 3",
    "for $x in //a where $x/@k return count($x/b)",
    "for $x at $p in //b order by $x/@k descending return $p",
    "let $dead := trace(\"gone\", 1) let $v := 2 + 3 return $v",
    "declare function local:inc($n as xs:integer) { $n + 1 }; local:inc(41)",
    "some $x in //a satisfies $x/@k = \"1\"",
    "if (exists(//c)) then <hit n=\"{count(//c)}\">yes</hit> else ()",
    "subsequence(//a/b, 1, 2)",
    "(//a/ancestor::*)[1]",
    "string-join(for $s in (\"x\",\"y\") return $s, \"-\")",
};

TEST(PersistPlans, RoundtripPreservesExplainExactly) {
  xq::QueryCache fresh(64);
  for (const char* q : kFeatureQueries) {
    ASSERT_TRUE(fresh.GetOrCompile(q).ok()) << q;
  }
  xq::QueryCache loaded(64);
  auto count = persist::LoadPlanCacheFromBytes(
      persist::SerializePlanCache(fresh), &loaded);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, std::size(kFeatureQueries));
  EXPECT_TRUE(loaded.warmed());

  for (const char* q : kFeatureQueries) {
    auto a = fresh.GetOrCompile(q);
    auto b = loaded.GetOrCompile(q);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    EXPECT_EQ((*b)->origin(), xq::PlanOrigin::kDiskCache) << q;
    // Identical plan trees, rewrite notes, and summary stats: EXPLAIN is the
    // full rendered fingerprint of everything the optimizer decided.
    EXPECT_EQ(obs::Explain(**a), obs::Explain(**b)) << q;
  }
}

TEST(PersistPlans, ProvenanceIsTriState) {
  EXPECT_STREQ(xq::CacheProvenanceName(xq::CacheProvenance::kCompiled),
               "compiled");
  EXPECT_STREQ(xq::CacheProvenanceName(xq::CacheProvenance::kMemoryCache),
               "memory-cache");
  EXPECT_STREQ(xq::CacheProvenanceName(xq::CacheProvenance::kDiskCache),
               "disk-cache");

  xq::QueryCache cache(8);
  xq::CacheProvenance prov = xq::CacheProvenance::kDiskCache;
  ASSERT_TRUE(cache.GetOrCompile("1+1", {}, nullptr, &prov).ok());
  EXPECT_EQ(prov, xq::CacheProvenance::kCompiled);
  ASSERT_TRUE(cache.GetOrCompile("1+1", {}, nullptr, &prov).ok());
  EXPECT_EQ(prov, xq::CacheProvenance::kMemoryCache);

  xq::QueryCache warm(8);
  ASSERT_TRUE(persist::LoadPlanCacheFromBytes(
                  persist::SerializePlanCache(cache), &warm)
                  .ok());
  ASSERT_TRUE(warm.GetOrCompile("1+1", {}, nullptr, &prov).ok());
  EXPECT_EQ(prov, xq::CacheProvenance::kDiskCache);
  // A query the artifact did not cover compiles fresh even in a warm cache.
  ASSERT_TRUE(warm.GetOrCompile("2+2", {}, nullptr, &prov).ok());
  EXPECT_EQ(prov, xq::CacheProvenance::kCompiled);
}

TEST(PersistPlans, CorruptArtifactsNeverHalfWarmTheCache) {
  xq::QueryCache source(64);
  for (const char* q : kFeatureQueries) {
    ASSERT_TRUE(source.GetOrCompile(q).ok());
  }
  const std::string image = persist::SerializePlanCache(source);

  xq::QueryCache target(64);
  for (size_t len = 0; len < image.size();
       len += (len < 64 ? 1 : 37)) {  // every early cut, then sampled
    auto count =
        persist::LoadPlanCacheFromBytes(image.substr(0, len), &target);
    ASSERT_FALSE(count.ok()) << "truncation to " << len << " bytes loaded";
    ASSERT_EQ(count.status().code(), StatusCode::kInvalidArgument);
    ASSERT_EQ(target.size(), 0u) << "truncation to " << len << " half-warmed";
    ASSERT_FALSE(target.warmed());
  }

  // A checksum-valid artifact whose payload decodes partway: two entries,
  // the second one garbage. Decode-all-before-insert means entry one must
  // NOT appear in the cache afterwards.
  auto good = xq::Compile("1+1");
  ASSERT_TRUE(good.ok());
  persist::ByteWriter plans;
  plans.U32(2);
  plans.Str(xq::QueryCache::MakeKey("1+1", {}));
  persist::EncodeCompiledQuery(*good, &plans);
  plans.Str("key-of-garbage");
  plans.U8(0xee);  // an ExprKind far past the ceiling
  persist::ArtifactWriter writer(persist::kPlanCacheArtifact);
  writer.AddSection(1, plans.TakeBytes());
  auto count = persist::LoadPlanCacheFromBytes(writer.Finish(), &target);
  EXPECT_EQ(count.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(target.size(), 0u);
}

TEST(PersistPlans, MetricsCountStoresLoadsMismatchesAndFailures) {
  ScratchDir dir;
  MetricsRegistry metrics;
  xq::QueryCache cache(8);
  ASSERT_TRUE(cache.GetOrCompile("1+1").ok());
  ASSERT_TRUE(cache.GetOrCompile("2+2").ok());
  const std::string path = dir.path("plans.lllp");
  ASSERT_TRUE(persist::SavePlanCache(cache, path, &metrics).ok());
  EXPECT_EQ(metrics.counter("persist.plan.stores").value(), 2u);

  xq::QueryCache warm(8);
  auto count = persist::LoadPlanCache(path, &warm, &metrics);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(metrics.counter("persist.plan.loads").value(), 2u);

  std::string stale = persist::SerializePlanCache(cache);
  stale[4] = static_cast<char>(persist::kFormatVersion + 1);
  EXPECT_FALSE(persist::LoadPlanCacheFromBytes(stale, &warm, &metrics).ok());
  EXPECT_EQ(metrics.counter("persist.plan.version_mismatch").value(), 1u);

  std::string corrupt = persist::SerializePlanCache(cache);
  corrupt[corrupt.size() - 3] ^= 0x10;
  EXPECT_FALSE(
      persist::LoadPlanCacheFromBytes(corrupt, &warm, &metrics).ok());
  EXPECT_EQ(metrics.counter("persist.plan.load_failures").value(), 1u);
}

// --- Document snapshots -----------------------------------------------------

constexpr char kSnapshotXml[] =
    "<shop note=\"&lt;&amp;&gt;\"><item id=\"1\" cur=\"usd\">lens<!--c-->"
    "</item><item id=\"2\">prism<sub/>tail</item>"
    "<?target data?><empty/></shop>";

TEST(PersistSnapshots, RoundtripIsByteIdentical) {
  auto doc = xml::Parse(kSnapshotXml);
  ASSERT_TRUE(doc.ok());
  const std::string image =
      persist::SerializeDocumentSnapshot(**doc, "shop-doc");
  auto loaded = persist::LoadDocumentSnapshotFromBytes(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->doc_name, "shop-doc");
  EXPECT_EQ(xml::Serialize(loaded->document->root()),
            xml::Serialize((*doc)->root()));
  // The loaded arena re-serializes to the exact same artifact bytes: the
  // storage image is a fixed point, not merely equivalent.
  EXPECT_EQ(persist::SerializeDocumentSnapshot(*loaded->document, "shop-doc"),
            image);
  // Queries see identical structure, including attributes and node order.
  for (const char* q :
       {"string-join(//item/@id, \",\")", "count(//node())",
        "//item[@id=\"2\"]/sub/following-sibling::text()"}) {
    const std::string got = EvalOn(q, loaded->document->root());
    EXPECT_EQ(got.find("ERROR"), std::string::npos) << q << ": " << got;
    EXPECT_EQ(got, EvalOn(q, (*doc)->root())) << q;
  }
}

TEST(PersistSnapshots, WarmBootEditInvalidatesOnlyTheEditedSubtree) {
  // Warm boot: a *.llld-loaded document starts with a uniform epoch-0
  // edit-version overlay, so its step chains intern immediately; a
  // subsequent edit invalidates exactly the entries anchored in the edited
  // subtree, everything else keeps hitting.
  constexpr char kModels[] =
      "<library><models>"
      "<model id=\"m1\"><parts><part/><part/></parts></model>"
      "<model id=\"m2\"><parts><part/></parts></model>"
      "</models></library>";
  auto fresh = xml::Parse(kModels, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(fresh.ok());
  const std::string image =
      persist::SerializeDocumentSnapshot(**fresh, "models");
  auto loaded = persist::LoadDocumentSnapshotFromBytes(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  xml::Document* doc = loaded->document.get();

  xq::NodeSetCache cache;
  xq::ExecuteOptions opts;
  opts.context_node = doc->root();
  opts.eval.nodeset_cache = &cache;
  auto m1 = xq::Compile("/library/models/model[@id = \"m1\"]/parts/part");
  auto m2 = xq::Compile("/library/models/model[@id = \"m2\"]/parts/part");
  ASSERT_TRUE(m1.ok() && m2.ok());

  // Cold then warm on the freshly loaded arena: interning works from the
  // first post-boot query, no edit required to "prime" versions.
  auto cold1 = xq::Execute(*m1, opts);
  auto cold2 = xq::Execute(*m2, opts);
  ASSERT_TRUE(cold1.ok() && cold2.ok());
  auto warm1 = xq::Execute(*m1, opts);
  ASSERT_TRUE(warm1.ok());
  EXPECT_GT(warm1->stats.nodeset_cache_hits, 0u);

  // Edit m2's subtree, then re-run both chains: m1 still hits with zero
  // invalidations; m2 re-misses as a subtree-scoped (partial) invalidation
  // and returns the post-edit answer.
  xml::Node* models = doc->DocumentElement()->children()[0];
  xml::Node* m2_parts = models->children()[1]->children()[0];
  ASSERT_TRUE(m2_parts->AppendChild(doc->CreateElement("part")).ok());

  auto after1 = xq::Execute(*m1, opts);
  ASSERT_TRUE(after1.ok());
  EXPECT_GT(after1->stats.nodeset_cache_hits, 0u);
  EXPECT_EQ(after1->stats.nodeset_cache_invalidations, 0u);
  EXPECT_EQ(after1->SerializedItems(), cold1->SerializedItems());

  auto after2 = xq::Execute(*m2, opts);
  ASSERT_TRUE(after2.ok());
  EXPECT_GT(after2->stats.nodeset_cache_invalidations, 0u);
  EXPECT_GT(after2->stats.nodeset_cache_partial_invalidations, 0u);
  EXPECT_EQ(after2->sequence.size(), 2u);
}

TEST(PersistSnapshots, MutatedDocumentExportsThroughTheClonePath) {
  auto doc = xml::Parse(kSnapshotXml);
  ASSERT_TRUE(doc.ok());
  // Detached debris + out-of-order attachment: ExportDocumentStorage must
  // renumber through CloneDocument instead of dumping the arena raw.
  (void)(*doc)->CreateElement("debris");
  xml::Node* extra = (*doc)->CreateElement("extra");
  extra->SetAttribute("k", "v");
  ASSERT_TRUE((*doc)->DocumentElement()->AppendChild(extra).ok());

  auto loaded = persist::LoadDocumentSnapshotFromBytes(
      persist::SerializeDocumentSnapshot(**doc, "mutated"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(xml::Serialize(loaded->document->root()),
            xml::Serialize((*doc)->root()));
}

xml::DocumentStorageImage MinimalImage() {
  // <r>t</r>: document(0) -> element r(1) -> text(2).
  xml::DocumentStorageImage img;
  img.kind = {0, 1, 3};  // kDocument, kElement, kText
  img.names = {"", "r"};
  img.name = {0, 1, 0};
  img.value_len = {0, 0, 1};
  img.values = "t";
  img.child_count = {1, 1, 0};
  img.children = {1, 2};
  img.attr_count = {0, 0, 0};
  img.attrs = {};
  return img;
}

TEST(PersistSnapshots, CraftedImagesAreRejectedNotTrusted) {
  ASSERT_TRUE(xml::DocumentFromStorage(MinimalImage()).ok());

  auto expect_invalid = [](xml::DocumentStorageImage img, const char* what) {
    auto doc = xml::DocumentFromStorage(img);
    EXPECT_FALSE(doc.ok()) << "accepted image with " << what;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument) << what;
    }
  };

  {
    xml::DocumentStorageImage img = MinimalImage();
    img.name[1] = 9;
    expect_invalid(std::move(img), "out-of-range name id");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.children[1] = 7;
    expect_invalid(std::move(img), "out-of-range child index");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.children = {1, 1};  // node 1 adopted twice -> not a tree
    expect_invalid(std::move(img), "a shared child");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.children = {2, 1};  // visits out of index order -> cycle-ish layout
    expect_invalid(std::move(img), "non-preorder children");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.child_count = {1, 0, 0};
    img.children = {1};  // node 2 exists but is unreachable
    expect_invalid(std::move(img), "an unreachable node");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.kind[2] = 77;
    expect_invalid(std::move(img), "an invalid node kind");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.kind[1] = 0;  // a second document node
    expect_invalid(std::move(img), "a non-root document node");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.kind[0] = 1;
    expect_invalid(std::move(img), "a non-document root");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.child_count[2] = 1;  // text node claiming a child
    img.children = {1, 2, 2};
    expect_invalid(std::move(img), "a leaf with children");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.attr_count[2] = 1;  // text node claiming an attribute
    img.attrs = {1};
    expect_invalid(std::move(img), "attributes on a non-element");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.value_len[2] = 5;  // lengths no longer sum to values.size()
    expect_invalid(std::move(img), "a value-length mismatch");
  }
  {
    xml::DocumentStorageImage img = MinimalImage();
    img.names[0] = "oops";
    expect_invalid(std::move(img), "a nonempty name slot 0");
  }
  {
    expect_invalid(xml::DocumentStorageImage{}, "zero nodes");
  }
}

TEST(PersistSnapshots, HostileArtifactBatteryIsCleanlyRejected) {
  auto doc = xml::Parse(kSnapshotXml);
  ASSERT_TRUE(doc.ok());
  const std::string image = persist::SerializeDocumentSnapshot(**doc, "d");
  MetricsRegistry metrics;

  for (size_t len = 0; len < image.size();
       len += (len < 64 ? 1 : 13)) {
    auto loaded = persist::LoadDocumentSnapshotFromBytes(
        image.substr(0, len), &metrics);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << len << " bytes loaded";
    ASSERT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  for (size_t i = 0; i < image.size(); i += 3) {
    std::string flipped = image;
    flipped[i] ^= 0x20;
    auto loaded =
        persist::LoadDocumentSnapshotFromBytes(flipped, &metrics);
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << i << " loaded";
    ASSERT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_GT(metrics.counter("persist.snapshot.load_failures").value(), 0u);

  // The flip loop above already hit a version byte or two; assert the delta.
  const uint64_t mismatches_before =
      metrics.counter("persist.snapshot.version_mismatch").value();
  std::string stale = image;
  stale[4] = static_cast<char>(persist::kFormatVersion + 1);
  EXPECT_FALSE(persist::LoadDocumentSnapshotFromBytes(stale, &metrics).ok());
  EXPECT_EQ(metrics.counter("persist.snapshot.version_mismatch").value(),
            mismatches_before + 1);

  auto ok = persist::LoadDocumentSnapshotFromBytes(image, &metrics);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(metrics.counter("persist.snapshot.loads").value(), 1u);
}

// --- The differential oracle ------------------------------------------------

TEST(PersistDifferential, DiskLoadedStateMatches440QueryWorkloadExactly) {
  // Seeded contract: document first, then queries (test_util.h).
  std::mt19937 rng(0xB10C);
  const std::string xml = testing::RandomPathWorkloadDocument(&rng);
  const std::vector<std::string> queries =
      testing::RandomPathWorkloadQueries(&rng, 440);

  auto fresh_doc = xml::Parse(xml, {.strip_insignificant_whitespace = true});
  ASSERT_TRUE(fresh_doc.ok());
  xq::QueryCache fresh_cache(1024);
  for (const std::string& q : queries) {
    ASSERT_TRUE(fresh_cache.GetOrCompile(q).ok()) << q;
  }

  // Persist everything, then rebuild the world from bytes alone.
  auto loaded_doc = persist::LoadDocumentSnapshotFromBytes(
      persist::SerializeDocumentSnapshot(**fresh_doc, "workload"));
  ASSERT_TRUE(loaded_doc.ok()) << loaded_doc.status().ToString();
  xq::QueryCache loaded_cache(1024);
  auto count = persist::LoadPlanCacheFromBytes(
      persist::SerializePlanCache(fresh_cache), &loaded_cache);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, fresh_cache.size());

  size_t disk_hits = 0;
  for (const std::string& q : queries) {
    auto fresh = fresh_cache.GetOrCompile(q);
    xq::CacheProvenance prov = xq::CacheProvenance::kCompiled;
    auto loaded = loaded_cache.GetOrCompile(q, {}, nullptr, &prov);
    ASSERT_TRUE(fresh.ok() && loaded.ok()) << q;
    if (prov == xq::CacheProvenance::kDiskCache) ++disk_hits;
    ASSERT_EQ(EvalCompiled(**loaded, loaded_doc->document->root()),
              EvalCompiled(**fresh, (*fresh_doc)->root()))
        << q;
    ASSERT_EQ(obs::Explain(**loaded), obs::Explain(**fresh)) << q;
  }
  // EVERY lookup reports disk-cache: a hit on a disk-loaded plan keeps that
  // provenance even when the hit itself came from the in-memory LRU (the
  // plan never paid compile cost in this process -- that's what the tag
  // means), so duplicate queries in the suite don't dilute it.
  EXPECT_EQ(disk_hits, queries.size());
}

// --- Server warm boot -------------------------------------------------------

TEST(PersistServer, SaveStateThenLoadStateReproducesTheServer) {
  ScratchDir dir;
  MetricsRegistry metrics_a;
  server::ServerOptions options_a;
  options_a.worker_threads = 0;
  options_a.metrics = &metrics_a;
  server::QueryServer a(options_a);
  ASSERT_TRUE(a.AddDocumentXml("shop", kSnapshotXml).ok());
  ASSERT_TRUE(a.AddDocumentXml("tiny", "<t><u>1</u></t>").ok());
  const std::vector<std::string> queries = {
      "count(//item)", "//item[@id=\"1\"]/text()", "//u + 1"};
  for (const std::string& q : queries) {
    ASSERT_TRUE(a.Execute("tenant", "shop", q).status.ok()) << q;
  }
  ASSERT_TRUE(a.SaveState(dir.str()).ok());
  EXPECT_TRUE(fs::exists(dir.path("plans.lllp")));
  EXPECT_EQ(metrics_a.counter("persist.snapshot.stores").value(), 2u);

  MetricsRegistry metrics_b;
  server::ServerOptions options_b;
  options_b.worker_threads = 0;
  options_b.metrics = &metrics_b;
  server::QueryServer b(options_b);
  ASSERT_TRUE(b.LoadState(dir.str()).ok());
  auto names = b.DocumentNames();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_EQ(metrics_b.counter("persist.snapshot.loads").value(), 2u);
  EXPECT_EQ(metrics_b.counter("persist.plan.loads").value(),
            metrics_a.counter("persist.plan.stores").value());

  for (const std::string& q : queries) {
    auto fresh = a.Execute("tenant", "shop", q);
    auto warm = b.Execute("tenant", "shop", q);
    ASSERT_TRUE(warm.status.ok()) << q;
    EXPECT_EQ(warm.result, fresh.result) << q;
  }
  // The warm server answered every query from disk-loaded plans.
  EXPECT_EQ(metrics_b.counter("persist.plan.hits").value(), queries.size());
  EXPECT_EQ(metrics_b.counter("persist.plan.misses").value(), 0u);
  // A query the artifact never saw is a persist miss (warm cache, compiled).
  ASSERT_TRUE(b.Execute("tenant", "tiny", "count(//*)").status.ok());
  EXPECT_EQ(metrics_b.counter("persist.plan.misses").value(), 1u);
}

TEST(PersistServer, LoadStateIntoLiveServerPublishesNewVersions) {
  ScratchDir dir;
  server::ServerOptions options;
  options.worker_threads = 0;
  server::QueryServer saved(options);
  ASSERT_TRUE(saved.AddDocumentXml("shop", kSnapshotXml).ok());
  ASSERT_TRUE(saved.SaveState(dir.str()).ok());

  server::QueryServer live(options);
  ASSERT_TRUE(live.AddDocumentXml("shop", "<old/>").ok());
  ASSERT_TRUE(live.LoadState(dir.str()).ok());
  auto snap = live.CurrentSnapshot("shop");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 2u);  // published over the existing v1
  EXPECT_EQ(live.Execute("t", "shop", "count(//item)").result, "2");
}

TEST(PersistServer, ExplainDistinguishesAllThreeProvenances) {
  ScratchDir dir;
  server::ServerOptions options;
  options.worker_threads = 0;
  server::QueryServer a(options);
  ASSERT_TRUE(a.AddDocumentXml("d", "<d><x/></d>").ok());

  auto first = a.Explain("d", "count(//x)");
  ASSERT_TRUE(first.ok());
  EXPECT_NE(first->find("server plan: compiled"), std::string::npos) << *first;
  auto second = a.Explain("d", "count(//x)");
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->find("server plan: memory-cache"), std::string::npos)
      << *second;

  ASSERT_TRUE(a.SaveState(dir.str()).ok());
  server::QueryServer b(options);
  ASSERT_TRUE(b.LoadState(dir.str()).ok());
  auto warm = b.Explain("d", "count(//x)");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("server plan: disk-cache"), std::string::npos) << *warm;
}

// --- Docgen AOT phase plans -------------------------------------------------

TEST(PersistDocgen, AotCompiledPhasesLoadWithDiskProvenance) {
  ScratchDir dir;
  const std::string path = dir.path("phases.lllp");

  docgen::XQueryPhaseCache().Clear();
  auto cold = docgen::ExplainXQueryPhases();
  ASSERT_TRUE(cold.ok());
  EXPECT_NE(cold->find("plan: compiled"), std::string::npos);
  EXPECT_EQ(cold->find("plan: disk-cache"), std::string::npos);

  ASSERT_TRUE(docgen::AotCompileXQueryPhases(path).ok());
  docgen::XQueryPhaseCache().Clear();
  auto count = docgen::LoadXQueryPhaseCache(path);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 5u);  // all five phase programs

  auto warm = docgen::ExplainXQueryPhases();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->find("plan: compiled"), std::string::npos) << *warm;
  EXPECT_NE(warm->find("plan: disk-cache"), std::string::npos);
  // Identical plans modulo the provenance tag.
  std::string normalized = *warm;
  for (size_t at = normalized.find("plan: disk-cache");
       at != std::string::npos; at = normalized.find("plan: disk-cache")) {
    normalized.replace(at, 16, "plan: compiled");
  }
  EXPECT_EQ(normalized, *cold);

  // Leave the process-wide cache cold-but-clean for other tests.
  docgen::XQueryPhaseCache().Clear();
}

}  // namespace
}  // namespace lll
