// The differential backend harness: ~200 seeded-random AWB-QL queries over a
// seeded-random model, every one evaluated three ways -- the native
// evaluator, the XQuery backend with its compile cache on, and the XQuery
// backend with the cache off (capacity 0, the original always-recompile
// behavior) -- and all three answers required to be identical, node for node,
// in order. This is the harness that makes "the two implementation
// strategies agree" an enforced property instead of a hope.

#include <string>
#include <vector>

#include "awb/builtin_metamodels.h"
#include "awb/generator.h"
#include "awbql/native.h"
#include "awbql/query.h"
#include "awbql/xquery_backend.h"
#include "core/rng.h"
#include "gtest/gtest.h"

namespace lll::awbql {
namespace {

using awb::ModelNode;

// Vocabulary drawn from MakeItArchitectureMetamodel and GenerateItModel:
// real types, relations, and properties, plus a few that exist in the
// metamodel but are rare or absent in generated models (Superuser,
// PerformanceRequirement, documents>) so empty results get exercised too.
const char* const kTypes[] = {
    "Entity",   "Person",     "User",     "Superuser",
    "System",   "SystemBeingDesigned",    "Server",
    "Subsystem", "Program",   "Document", "Requirement",
    "PerformanceRequirement",
};
const char* const kRelations[] = {
    "relates", "has", "uses", "runs", "likes", "favors", "documents",
};
const char* const kProperties[] = {
    "name",     "description", "firstName", "lastName", "birthYear",
    "role",     "version",     "hostname",  "cores",    "language",
    "priority", "latencyMs",   "middleName",
};
const char* const kPropertyValues[] = {
    "1.0", "java", "cobol", "architect", "srv-1.example.com", "3", "",
};

template <typename T, size_t N>
const T& Pick(Rng* rng, const T (&arr)[N]) {
  return arr[rng->Below(N)];
}

// Builds a random query in the text syntax: a random source and 0-3 random
// steps. Going through the text form means the parser is part of the
// differential loop as well.
std::string RandomQueryText(Rng* rng, const awb::Model& model) {
  std::string text = "from ";
  switch (rng->Below(4)) {
    case 0:
      text += "all";
      break;
    case 1:
      text += std::string("type:") + Pick(rng, kTypes);
      break;
    case 2: {
      // A real node id (or a nonexistent one, 1 in 8 times).
      if (rng->Chance(0.125) || model.nodes().empty()) {
        text += "node:no-such-node";
      } else {
        text += "node:" + model.nodes()[rng->Below(model.nodes().size())]->id();
      }
      break;
    }
    default:
      text += "focus";
      break;
  }
  text += "\n";

  size_t steps = rng->Below(4);
  for (size_t i = 0; i < steps; ++i) {
    switch (rng->Below(8)) {
      case 0: {
        text += std::string("follow ") + Pick(rng, kRelations) + ">";
        if (rng->Chance(0.4)) text += std::string(" to:") + Pick(rng, kTypes);
        text += "\n";
        break;
      }
      case 1: {
        text += std::string("follow <") + Pick(rng, kRelations);
        if (rng->Chance(0.4)) text += std::string(" to:") + Pick(rng, kTypes);
        text += "\n";
        break;
      }
      case 2:
        text += std::string("filter type:") + Pick(rng, kTypes) + "\n";
        break;
      case 3:
        text += std::string("filter has:") + Pick(rng, kProperties) + "\n";
        break;
      case 4:
        text += std::string("filter missing:") + Pick(rng, kProperties) + "\n";
        break;
      case 5:
        text += std::string("filter prop:") + Pick(rng, kProperties) + "=" +
                Pick(rng, kPropertyValues) + "\n";
        break;
      case 6:
        if (rng->Chance(0.5)) {
          text += "sort label\n";
        } else {
          text += std::string("sort prop:") + Pick(rng, kProperties) + "\n";
        }
        break;
      default:
        text += "limit " + std::to_string(rng->Below(6)) + "\n";
        break;
    }
  }
  return text;
}

std::vector<std::string> Ids(const std::vector<const ModelNode*>& nodes) {
  std::vector<std::string> ids;
  ids.reserve(nodes.size());
  for (const ModelNode* n : nodes) ids.push_back(n->id());
  return ids;
}

TEST(AwbqlDifferentialTest, NativeAndXQueryBackendsAgreeOnRandomQueries) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = 0xD1FFu;
  config.users = 5;
  config.servers = 2;
  config.subsystems = 3;
  config.programs = 6;
  config.requirements = 4;
  config.documents = 3;
  config.violation_rate = 0.15;   // off-advice edges must round-trip too
  config.adhoc_property_rate = 0.2;
  awb::Model model = awb::GenerateItModel(&mm, config);
  ASSERT_FALSE(model.nodes().empty());

  XQueryBackend cached(&model, /*compile_cache_capacity=*/64);
  XQueryBackend uncached(&model, /*compile_cache_capacity=*/0);

  Rng rng(0xA5EED5EEDull);
  constexpr int kQueries = 200;
  int nonempty_results = 0;
  for (int i = 0; i < kQueries; ++i) {
    std::string text = RandomQueryText(&rng, model);
    SCOPED_TRACE("query #" + std::to_string(i) + ":\n" + text);
    auto query = ParseQuery(text);
    ASSERT_TRUE(query.ok()) << query.status().ToString();

    // Random focus node (queries that don't start 'from focus' ignore it).
    const ModelNode* focus =
        model.nodes()[rng.Below(model.nodes().size())];

    auto native = EvalNative(*query, model, focus);
    auto via_cached = cached.Eval(*query, focus);
    auto via_uncached = uncached.Eval(*query, focus);

    // The backends must agree on whether the query succeeds...
    ASSERT_EQ(native.ok(), via_cached.ok())
        << "native: " << native.status().ToString()
        << "\nxquery(cached): " << via_cached.status().ToString();
    ASSERT_EQ(native.ok(), via_uncached.ok())
        << "native: " << native.status().ToString()
        << "\nxquery(uncached): " << via_uncached.status().ToString();
    if (!native.ok()) continue;

    // ...and on the exact node set, in the exact canonical order.
    std::vector<std::string> want = Ids(*native);
    EXPECT_EQ(Ids(*via_cached), want);
    EXPECT_EQ(Ids(*via_uncached), want);
    if (!want.empty()) ++nonempty_results;
  }

  // The sweep must not have degenerated into all-empty answers.
  EXPECT_GT(nonempty_results, kQueries / 4);

  // Cache sanity: the uncached backend stored nothing; the cached one did
  // all its lookups through the cache and kept the counters coherent.
  EXPECT_EQ(uncached.cache_stats().hits, 0u);
  CacheStats s = cached.cache_stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  // Most queries reach the compile step (a few fail Eval's preconditions --
  // unknown start node, missing focus -- before touching the cache).
  EXPECT_GE(s.lookups, static_cast<uint64_t>(kQueries) * 9 / 10);
  EXPECT_LE(s.lookups, static_cast<uint64_t>(kQueries));
}

// Re-running the same queries must hit the cache and still agree with the
// native evaluator -- i.e. a cached compile is not a stale compile.
TEST(AwbqlDifferentialTest, CacheHitsReturnTheSameAnswers) {
  awb::Metamodel mm = awb::MakeItArchitectureMetamodel();
  awb::GeneratorConfig config;
  config.seed = 99;
  config.users = 4;
  config.programs = 5;
  config.documents = 2;
  awb::Model model = awb::GenerateItModel(&mm, config);

  XQueryBackend backend(&model, /*compile_cache_capacity=*/64);
  Rng rng(424242);
  std::vector<std::string> texts;
  for (int i = 0; i < 20; ++i) texts.push_back(RandomQueryText(&rng, model));

  for (int round = 0; round < 3; ++round) {
    for (const std::string& text : texts) {
      SCOPED_TRACE("round " + std::to_string(round) + ":\n" + text);
      auto query = ParseQuery(text);
      ASSERT_TRUE(query.ok());
      const ModelNode* focus = model.nodes().front();
      auto native = EvalNative(*query, model, focus);
      auto xquery = backend.Eval(*query, focus);
      ASSERT_EQ(native.ok(), xquery.ok());
      if (native.ok()) EXPECT_EQ(Ids(*xquery), Ids(*native));
    }
  }
  // Rounds 2 and 3 were pure hits.
  CacheStats s = backend.cache_stats();
  EXPECT_GE(s.hits, s.misses);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

}  // namespace
}  // namespace lll::awbql
