// The paper's "Syntactic Quirks" section, quirk by quirk, plus the Galax
// diagnostics it quotes. These tests pin the lexical behaviors that made
// $n-1 a three-letter variable and `=` an existential operator.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;
using testing::EvalWithContext;

// Quirk 1: "x means 'the children of the current node named x', not 'the
// variable named x'".
TEST(Quirks, BareNameIsAChildStepNotAVariable) {
  EXPECT_EQ(EvalWithContext("string(x)", "<r><x>hello</x></r>"), "");
  EXPECT_EQ(EvalWithContext("string(r/x)", "<r><x>hello</x></r>"), "hello");
  // From an element context the bare name selects the child.
  EXPECT_EQ(EvalWithContext("for $r in r return string($r/x)",
                            "<r><x>hello</x></r>"),
            "hello");
}

TEST(Quirks, MissingContextItemGalaxMessage) {
  // "Galax' error message is: 'Internal_Error: Variable '$glx:dot' not
  // found.'" -- reproduced verbatim under galax_style_messages.
  xq::ExecuteOptions opts;
  opts.eval.galax_style_messages = true;
  auto result = xq::Run("x", opts);  // no context item anywhere
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(),
            "Internal_Error: Variable '$glx:dot' not found.");
}

TEST(Quirks, MissingContextItemDefaultMessageHasALineNumber) {
  // "It would have been helpful to have a line number in this message."
  auto result = xq::Run("\n\n  x");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

// Quirk 2: "/ means 'go to a child', not division."
TEST(Quirks, SlashIsAPathNotDivision) {
  EXPECT_EQ(EvalWithContext("count(a/b)", "<a><b/><b/></a>"), "2");
  // Division is spelled `div`.
  EXPECT_EQ(Eval("10 div 4"), "2.5");
}

// Quirk 3: "- is part of a variable name, not automatically subtraction.
// $n-1 is a variable with a three-letter name."
TEST(Quirks, DashesBelongToNames) {
  // $n-1 really is one variable.
  EXPECT_EQ(Eval("let $n-1 := 99 return $n-1"), "99");
  // With $n bound and $n-1 unbound, $n-1 is an undefined-variable error,
  // NOT $n minus 1.
  std::string err = EvalError("let $n := 5 return $n-1");
  EXPECT_NE(err.find("n-1"), std::string::npos);
  // "In a solution as old as COBOL, subtraction requires syntactic breaks."
  EXPECT_EQ(Eval("let $n := 5 return $n - 1"), "4");
  EXPECT_EQ(Eval("let $n := 5 return ($n)-1"), "4");
  EXPECT_EQ(Eval("let $n := 5 return $n -1"), "4");
}

TEST(Quirks, DashedFunctionAndElementNamesWork) {
  EXPECT_EQ(Eval("normalize-space(\"  a  b \")"), "a b");
  EXPECT_EQ(Eval("<table-of-contents/>"), "<table-of-contents/>");
  EXPECT_EQ(Eval("declare function local:without-leading-or-trailing-spaces("
                 "$s) { normalize-space($s) }; "
                 "local:without-leading-or-trailing-spaces(\" x \")"),
            "x");
}

// Quirk 4: "= is true if $x and $y are sequences with at least one element
// in common: 1 = (1,2,3), and (1,2,3)=3, but ... not ... 1=3."
TEST(Quirks, GeneralEqualityIsExistential) {
  EXPECT_EQ(Eval("1 = (1,2,3)"), "true");
  EXPECT_EQ(Eval("(1,2,3) = 3"), "true");
  EXPECT_EQ(Eval("1 = 3"), "false");
  EXPECT_EQ(Eval("(1,2) = (2,9)"), "true");
  EXPECT_EQ(Eval("(1,2) = (8,9)"), "false");
  // The membership-test idiom the paper notes using deliberately.
  EXPECT_EQ(Eval("let $set := (\"a\",\"b\",\"c\") return $set = \"b\""),
            "true");
}

TEST(Quirks, ExistentialInequalityIsNotNegatedEquality) {
  // (1,2) != (1,2) is TRUE (some pair differs) -- the classic trap.
  EXPECT_EQ(Eval("(1,2) != (1,2)"), "true");
  EXPECT_EQ(Eval("1 != 1"), "false");
  // Empty sequences: every general comparison is false.
  EXPECT_EQ(Eval("() = ()"), "false");
  EXPECT_EQ(Eval("1 = ()"), "false");
  EXPECT_EQ(Eval("() != ()"), "false");
}

TEST(Quirks, SingletonOperatorsRejectSequences) {
  // "It is not true that 1 eq (1,2,3)" -- in fact it is a type error.
  EXPECT_EQ(Eval("1 eq 1"), "true");
  std::string err = EvalError("1 eq (1,2,3)");
  EXPECT_NE(err.find("exactly one"), std::string::npos);
  // Empty operand makes the value comparison empty (falsy), not an error.
  EXPECT_EQ(Eval("if (1 eq ()) then \"t\" else \"f\""), "f");
}

TEST(Quirks, ValueComparisonFamilies) {
  EXPECT_EQ(Eval("\"abc\" lt \"abd\""), "true");
  EXPECT_EQ(Eval("2 ge 2"), "true");
  EXPECT_EQ(Eval("1 ne 2"), "true");
  // Comparing a string with a number is a type error for value comparison...
  std::string err = EvalError("\"1\" eq 1");
  EXPECT_NE(err.find("cannot compare"), std::string::npos);
  // ...but untyped data (from attributes) coerces in general comparison.
  EXPECT_EQ(EvalWithContext("/e/@n = 5", "<e n=\"5\"/>"), "true");
  EXPECT_EQ(EvalWithContext("/e/@n = \"5\"", "<e n=\"5\"/>"), "true");
}

TEST(Quirks, AttributePredicateFromThePaper) {
  // "$x/kid[@year="1983"] -- the children which have an attribute called
  // 'year' with value '1983'".
  const char* doc =
      "<x><kid year=\"1983\">a</kid><kid year=\"1990\">b</kid></x>";
  EXPECT_EQ(EvalWithContext("string(/x/kid[@year=\"1983\"])", doc), "a");
}

TEST(Quirks, QuantifierFromThePaper) {
  // "some $y in $x/kids satisfies count($y//foo) gt count($y//bar)".
  const char* doc =
      "<x><kids><foo/><foo/><bar/></kids><kids><bar/></kids></x>";
  EXPECT_EQ(EvalWithContext(
                "some $y in /x/kids satisfies count($y//foo) gt count($y//bar)",
                doc),
            "true");
  EXPECT_EQ(EvalWithContext(
                "every $y in /x/kids satisfies count($y//foo) gt count($y//bar)",
                doc),
            "false");
}

}  // namespace
}  // namespace lll
