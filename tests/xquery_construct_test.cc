// Constructor semantics, including the two behaviors the paper documents in
// detail: the sequence-destructuring table (E1) and attribute folding (E2).

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace lll {
namespace {

using testing::Eval;
using testing::EvalError;

TEST(XQueryConstruct, DirectElement) {
  EXPECT_EQ(Eval("<a/>"), "<a/>");
  EXPECT_EQ(Eval("<a>text</a>"), "<a>text</a>");
  EXPECT_EQ(Eval("<a x=\"1\" y=\"2\"/>"), "<a x=\"1\" y=\"2\"/>");
  EXPECT_EQ(Eval("<a><b/><c/></a>"), "<a><b/><c/></a>");
}

TEST(XQueryConstruct, BoundaryWhitespaceIsStripped) {
  EXPECT_EQ(Eval("<a>\n  <b/>\n  <c/>\n</a>"), "<a><b/><c/></a>");
  EXPECT_EQ(Eval("<a> keep me </a>"), "<a> keep me </a>");
}

TEST(XQueryConstruct, BoundarySpaceDeclaration) {
  EXPECT_EQ(Eval("declare boundary-space preserve; <a> <b/> </a>"),
            "<a> <b/> </a>");
  EXPECT_EQ(Eval("declare boundary-space strip; <a> <b/> </a>"),
            "<a><b/></a>");
  EXPECT_FALSE(xq::Run("declare boundary-space maybe; 1").ok());
}

TEST(XQueryConstruct, EnclosedExpressions) {
  EXPECT_EQ(Eval("<a>{1 + 1}</a>"), "<a>2</a>");
  EXPECT_EQ(Eval("<a>{\"x\"}{\"y\"}</a>"), "<a>x y</a>");  // adjacent atomics
  EXPECT_EQ(Eval("<a>{(1,2,3)}</a>"), "<a>1 2 3</a>");
  EXPECT_EQ(Eval("<a>n={1+1}!</a>"), "<a>n=2!</a>");
  EXPECT_EQ(Eval("<a>{{literal braces}}</a>"), "<a>{literal braces}</a>");
}

TEST(XQueryConstruct, AttributeValueTemplates) {
  EXPECT_EQ(Eval("<a x=\"{1+1}\"/>"), "<a x=\"2\"/>");
  EXPECT_EQ(Eval("<a x=\"n{1+1}m\"/>"), "<a x=\"n2m\"/>");
  EXPECT_EQ(Eval("<a x=\"{(1,2,3)}\"/>"), "<a x=\"1 2 3\"/>");
  EXPECT_EQ(Eval("<a x=\"{()}\"/>"), "<a x=\"\"/>");
}

TEST(XQueryConstruct, NodesAreCopiedIntoNewParents) {
  // The inner element is COPIED (constructors copy); mutating semantics would
  // be observable via identity, so check `is` sees different nodes.
  EXPECT_EQ(Eval("let $b := <b id=\"7\"/> return <a>{$b}</a>"),
            "<a><b id=\"7\"/></a>");
  EXPECT_EQ(Eval("let $b := <b/> return (<a>{$b}</a>/b is $b)"), "false");
}

TEST(XQueryConstruct, ComputedConstructors) {
  EXPECT_EQ(Eval("element foo { \"hi\" }"), "<foo>hi</foo>");
  EXPECT_EQ(Eval("element {concat(\"f\",\"oo\")} { () }"), "<foo/>");
  EXPECT_EQ(Eval("<e>{attribute troubles {1}}</e>"), "<e troubles=\"1\"/>");
  EXPECT_EQ(Eval("text { (1,2) }"), "1 2");
  EXPECT_EQ(Eval("comment { \"note\" }"), "<!--note-->");
  EXPECT_EQ(Eval("document { <r/> }"), "<r/>");
}

TEST(XQueryConstruct, InvalidComputedNamesAreErrors) {
  EXPECT_NE(EvalError("element {\"1bad\"} { () }").find("XQDY0074"),
            std::string::npos);
  EXPECT_NE(EvalError("attribute {\"no space\"} { 1 }").find("XQDY0074"),
            std::string::npos);
}

// --- E1: the paper's sequence-destructuring table --------------------------
//
// "Consider making a sequence or XML element with children given by the
// contents of variables X, Y, and Z ... Now, try to get Y back out, with
// $sequence[2] or $elem/*[2]."  Each row of the table is one test.

struct E1Row {
  const char* label;
  const char* x;
  const char* y;
  const char* z;
  const char* expected;  // what ($X,$Y,$Z)[2] gives
};

class SequenceTableTest : public ::testing::TestWithParam<E1Row> {};

TEST_P(SequenceTableTest, SecondItemOfSequence) {
  const E1Row& row = GetParam();
  std::string query = std::string("let $X := ") + row.x +
                      " let $Y := " + row.y + " let $Z := " + row.z +
                      " return ($X, $Y, $Z)[2]";
  EXPECT_EQ(Eval(query), row.expected) << row.label;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable, SequenceTableTest,
    ::testing::Values(
        // Row 1: Y itself.
        E1Row{"y-itself", "1", "2", "3", "2"},
        // Row 2: some part of Y.
        E1Row{"part-of-y", "1", "(2, \"2a\")", "4", "2"},
        // Row 3: Z (Y was empty).
        E1Row{"z", "1", "()", "3", "3"},
        // Row 4: a part of X.
        E1Row{"part-of-x", "(\"1a\",\"1b\")", "2", "3", "1b"},
        // Row 5: a part of Z. NOTE: the paper's table prints "3b" here, but
        // flat-sequence semantics give (1,"3a","3b")[2] = "3a" -- the FIRST
        // part of Z. The row's point (you get a part of Z, not Y) holds; the
        // printed value in the paper is off by one. See EXPERIMENTS.md E1.
        E1Row{"part-of-z", "1", "()", "(\"3a\",\"3b\")", "3a"},
        // Row 6: nothing.
        E1Row{"nothing", "()", "(2)", "()", ""}),
    [](const ::testing::TestParamInfo<E1Row>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Row 7 of the table: the element representation errors when Y is an
// attribute node ($elem/*[2] after folding, with content before it).
TEST(SequenceTableE1, Row7AttributeInElementRepIsAnError) {
  std::string err = EvalError(
      "let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 "
      "return <el>{$X}{$Y}{$Z}</el>");
  EXPECT_NE(err.find("XQTY0024"), std::string::npos);
}

// The same three values in a plain sequence do NOT error; the attribute
// silently rides along and [2] returns it -- the other half of why generic
// containers are impossible (E1/E9).
TEST(SequenceTableE1, Row7SequenceRepSilentlyHoldsTheAttribute) {
  EXPECT_EQ(Eval("let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 "
                 "return count(($X, $Y, $Z))"),
            "3");
  EXPECT_EQ(Eval("let $X := 1 let $Y := attribute y {\"why?\"} let $Z := 2 "
                 "return string(($X, $Y, $Z)[2])"),
            "why?");
}

// --- E2: attribute folding behaviors ------------------------------------

TEST(AttributeFoldingE2, LeadingAttributeBecomesAttribute) {
  // The paper's example, verbatim modulo quoting.
  EXPECT_EQ(Eval("let $x := attribute troubles {1} return <el> {$x} </el>"),
            "<el troubles=\"1\"/>");
}

TEST(AttributeFoldingE2, SeveralLeadingAttributesAllFold) {
  EXPECT_EQ(Eval("let $a := attribute a {1} "
                 "let $c := attribute b {3} "
                 "return <el>{$a}{$c}</el>"),
            "<el a=\"1\" b=\"3\"/>");
}

TEST(AttributeFoldingE2, DuplicateNameKeepsExactlyOne) {
  // "If two attribute nodes have the same name, only one should make it into
  // the final element" -- we keep the first, deterministically.
  EXPECT_EQ(Eval("let $a := attribute a {1} "
                 "let $b := attribute a {2} "
                 "let $c := attribute b {3} "
                 "return <el> {$a}{$b}{$c} </el>"),
            "<el a=\"1\" b=\"3\"/>");
}

TEST(AttributeFoldingE2, GalaxModeKeepsBothDuplicates) {
  // "(though Galax did not honor this as of the time of writing)".
  xq::ExecuteOptions opts;
  opts.eval.galax_duplicate_attributes = true;
  auto result = xq::Run(
      "let $a := attribute a {1} let $b := attribute a {2} "
      "return <el>{$a}{$b}</el>",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->SerializedItems(), "<el a=\"1\" a=\"2\"/>");
}

TEST(AttributeFoldingE2, AttributeAfterContentIsAnError) {
  // The paper's example: <el> "doom" {$x} </el>.
  std::string err = EvalError(
      "let $x := attribute troubles {1} return <el> doom {$x} </el>");
  EXPECT_NE(err.find("XQTY0024"), std::string::npos);
}

TEST(AttributeFoldingE2, AttributeAfterChildElementIsAnError) {
  std::string err =
      EvalError("let $x := attribute a {1} return <el><b/>{$x}</el>");
  EXPECT_NE(err.find("XQTY0024"), std::string::npos);
}

TEST(AttributeFoldingE2, AttributeOrderIsLost) {
  // Attributes have no ordering; our serializer emits them in fold order,
  // but equality must treat them as a set: both spellings deep-equal.
  EXPECT_EQ(Eval("deep-equal(<e a=\"1\" b=\"2\"/>, "
                 "           <e b=\"2\" a=\"1\"/>)"),
            "true");
}

TEST(XQueryConstruct, DocumentContentRejectsAttributes) {
  std::string err =
      EvalError("document { attribute a {1} }");
  EXPECT_FALSE(err.empty());
}

TEST(XQueryConstruct, TextNodesMergeWhenAdjacent) {
  EXPECT_EQ(Eval("count(<a>x{\"y\"}</a>/text())"), "1");
  EXPECT_EQ(Eval("string(<a>x{\"y\"}</a>)"), "xy");
}

TEST(XQueryConstruct, NestedConstructorsAndQueries) {
  EXPECT_EQ(Eval("<ol>{for $i in 1 to 3 return <li>{$i}</li>}</ol>"),
            "<ol><li>1</li><li>2</li><li>3</li></ol>");
}

TEST(XQueryConstruct, CommentConstructorInContent) {
  EXPECT_EQ(Eval("<a><!--hi--></a>"), "<a><!--hi--></a>");
}

}  // namespace
}  // namespace lll
