#ifndef LLL_CORE_RESULT_H_
#define LLL_CORE_RESULT_H_

#include <optional>
#include <utility>

#include "core/status.h"

namespace lll {

// Result<T> is either a value or an error Status -- the return type that
// makes the "Java exceptions" arm of the paper's comparison expressible in
// exception-free C++: a failing utility deep in the call stack produces an
// error once, every intermediate caller forwards it with LLL_ASSIGN_OR_RETURN
// (one line per call site), and only the top level inspects it.
template <typename T>
class Result {
 public:
  // Intentionally implicit so call sites can `return value;` / `return status;`
  // exactly the way a throwing language returns or throws.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {}    // NOLINT
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  Status& status() { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  // Value if OK, `fallback` otherwise.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// LLL_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>); on error
// returns the Status from the current function, otherwise move-assigns the
// value into `lhs`. `lhs` may be a declaration ("auto x") or an existing
// variable.
#define LLL_CONCAT_INNER_(a, b) a##b
#define LLL_CONCAT_(a, b) LLL_CONCAT_INNER_(a, b)
#define LLL_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto LLL_CONCAT_(lll_result__, __LINE__) = (expr);         \
  if (!LLL_CONCAT_(lll_result__, __LINE__).ok())             \
    return std::move(LLL_CONCAT_(lll_result__, __LINE__))    \
        .status();                                           \
  lhs = std::move(LLL_CONCAT_(lll_result__, __LINE__)).value()

}  // namespace lll

#endif  // LLL_CORE_RESULT_H_
