#ifndef LLL_CORE_RNG_H_
#define LLL_CORE_RNG_H_

#include <cstdint>

namespace lll {

// Deterministic xorshift64* generator. All synthetic workloads (AWB model
// generation, benchmark inputs, property-test sweeps) draw from this so runs
// are reproducible bit-for-bit from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli with probability p.
  bool Chance(double p) { return Uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace lll

#endif  // LLL_CORE_RNG_H_
