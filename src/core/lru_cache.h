#ifndef LLL_CORE_LRU_CACHE_H_
#define LLL_CORE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lll {

// Counters for one cache. Invariant: hits + misses == lookups; evictions
// counts entries displaced by capacity pressure (Clear() is not an eviction).
struct CacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// A thread-safe string-keyed LRU cache of shared immutable values.
//
// Values are handed out as shared_ptr<const V>: a caller's handle stays valid
// after the entry is evicted, so readers never synchronize with eviction.
// This is the concurrency contract the whole caching layer is built on --
// the cache serializes only its own bookkeeping (one mutex around the map and
// the recency list); the cached values themselves are immutable and safe to
// use from any number of threads at once.
//
// capacity == 0 means "passthrough": nothing is ever stored, every Get is a
// miss. Useful for A/B-ing cache-off behavior without a second code path.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Returns the cached value and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    recency_.splice(recency_.begin(), recency_, it->second.pos);
    return it->second.value;
  }

  // Inserts (or overwrites) an entry, evicting least-recently-used entries
  // until the cache fits its capacity. With capacity 0, does nothing.
  void Put(const std::string& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      recency_.splice(recency_.begin(), recency_, it->second.pos);
      return;
    }
    recency_.push_front(key);
    map_.emplace(key, Entry{std::move(value), recency_.begin()});
    while (map_.size() > capacity_) {
      map_.erase(recency_.back());
      recency_.pop_back();
      ++stats_.evictions;
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    recency_.clear();
  }

  // Removes every entry for which `pred(key, value)` returns true; returns
  // the number removed. Like Clear(), not an eviction for stats purposes
  // (nothing was displaced by capacity pressure). Outstanding shared
  // handles to removed values stay valid, as always.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t removed = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first, *it->second.value)) {
        recency_.erase(it->second.pos);
        it = map_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  // Keys from most- to least-recently used (test hook for eviction order).
  std::list<std::string> KeysByRecency() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recency_;
  }

  // A consistent point-in-time copy of every entry, most- to least-recently
  // used. Handles are the usual shared immutable values, so the snapshot
  // stays valid however the cache moves on. This is the enumeration the
  // persistence layer serializes (reinserting in reverse preserves recency).
  std::vector<std::pair<std::string, std::shared_ptr<const V>>> Snapshot()
      const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, std::shared_ptr<const V>>> out;
    out.reserve(map_.size());
    for (const std::string& key : recency_) {
      out.emplace_back(key, map_.at(key).value);
    }
    return out;
  }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    std::list<std::string>::iterator pos;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> recency_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
  CacheStats stats_;
};

}  // namespace lll

#endif  // LLL_CORE_LRU_CACHE_H_
