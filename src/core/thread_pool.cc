#include "core/thread_pool.h"

#include <atomic>
#include <memory>

namespace lll {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work-stealing by index: helpers and the caller all pull from `next`;
  // `done` counts completions so the caller knows when to return even when a
  // helper grabbed the last index.
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable all_done;
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  shared->fn = &fn;

  auto drain = [](const std::shared_ptr<Shared>& s) {
    for (;;) {
      size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      (*s->fn)(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->all_done.notify_all();
      }
    }
  };

  size_t helpers = threads_.size() < n - 1 ? threads_.size() : n - 1;
  for (size_t i = 0; i < helpers; ++i) {
    Submit([shared, drain] { drain(shared); });
  }
  drain(shared);
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->all_done.wait(lock, [&] {
    return shared->done.load(std::memory_order_acquire) == shared->n;
  });
  // `shared` is a shared_ptr: stragglers that wake up after all indices are
  // claimed exit their drain loop harmlessly.
}

}  // namespace lll
