#include "core/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lll {

bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsXmlWhitespace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsXmlWhitespace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string NormalizeSpace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // leading whitespace is dropped
  for (char c : s) {
    if (IsXmlWhitespace(c)) {
      if (!in_space) {
        out.push_back(' ');
        in_space = true;
      }
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (true) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return std::nullopt;
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') ++begin;  // from_chars rejects leading '+'
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return std::nullopt;
  if (s == "NaN") return std::nan("");
  if (s == "INF" || s == "+INF") return HUGE_VAL;
  if (s == "-INF") return -HUGE_VAL;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') ++begin;
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::string FormatDouble(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "INF" : "-INF";
  if (d == static_cast<int64_t>(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(d)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

bool IsValidXmlName(std::string_view name) {
  if (name.empty()) return false;
  char c0 = name[0];
  if (!(std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_' || c0 == ':'))
    return false;
  for (char c : name.substr(1)) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.' ||
          c == '_' || c == ':'))
      return false;
  }
  return true;
}

}  // namespace lll
