#include "core/status.h"

namespace lll {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kCardinalityError:
      return "CardinalityError";
    case StatusCode::kConstructionError:
      return "ConstructionError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  for (const std::string& frame : context_) {
    out += "\n  ";
    out += frame;
  }
  return out;
}

}  // namespace lll
