#ifndef LLL_CORE_THREAD_POOL_H_
#define LLL_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lll {

// A small fixed-size worker pool. Tasks are plain std::function<void()>;
// error reporting is the caller's business (tasks record their own Status).
//
// ParallelFor is the primitive the docgen batch mode is built on: the calling
// thread participates in the work (pulling indices from a shared counter), so
// a ParallelFor always makes progress even when every worker is busy, and a
// pool of 0 threads degrades to a plain sequential loop.
class ThreadPool {
 public:
  // Creates `num_threads` workers. 0 is allowed: every ParallelFor then runs
  // inline on the caller (handy as the "sequential mode" of batch APIs).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  // Enqueues one task. Fire-and-forget; the destructor drains the queue.
  void Submit(std::function<void()> task);

  // Runs fn(0) .. fn(n-1), in unspecified order across the workers and the
  // calling thread, and returns when all n calls have finished. fn must be
  // safe to invoke concurrently with itself. Do not call ParallelFor from
  // inside a pool task of the same pool (the helper tasks it enqueues could
  // then starve behind the caller).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lll

#endif  // LLL_CORE_THREAD_POOL_H_
