#ifndef LLL_CORE_STATUS_H_
#define LLL_CORE_STATUS_H_

#include <string>
#include <utility>
#include <vector>

namespace lll {

// Error categories used across the library. These are deliberately coarse:
// the interesting error payload lives in the message and the GenTrouble-style
// context frames (see Status::AddContext), which reproduce the role of the
// paper's Java `GenTrouble` exception -- an error object that carries the
// inputs that went into causing the error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller handed us something malformed
  kNotFound,          // a name/node/child that should exist does not
  kOutOfRange,        // index past the end of a sequence
  kParseError,        // XML / XQuery / AWB-QL / template syntax error
  kTypeError,         // XDM dynamic type error (err:XPTY****)
  kCardinalityError,  // wrong number of items (e.g. two SystemBeingDesigned)
  kConstructionError, // XML construction error (e.g. err:XQTY0024)
  kUnsupported,       // feature outside the implemented subset
  kInternal,          // invariant violation inside the library
  kResourceExhausted, // budget/quota/deadline exceeded (server admission,
                      // evaluation step budgets, cancellation) -- a graceful
                      // "come back later", not a bug
};

// Human-readable name of a status code ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

// Status is the library-wide error-reporting type (Google style: no
// exceptions). It is cheap in the OK case (no allocation) and carries a
// message plus a stack of context frames in the error case.
//
// The context stack is the "GenTrouble" mechanism from the paper: each layer
// of the document generator that propagates an error may append one line of
// context ("while expanding <for> at template node t17, focus = N12321"), so
// the final report reads like a little backtrace through the *data*, not just
// the code.
class Status {
 public:
  // OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status CardinalityError(std::string msg) {
    return Status(StatusCode::kCardinalityError, std::move(msg));
  }
  static Status ConstructionError(std::string msg) {
    return Status(StatusCode::kConstructionError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::vector<std::string>& context() const { return context_; }

  // Appends one GenTrouble context frame (outermost frame last). Returns
  // *this so propagation sites can write:
  //   return st.AddContext("while expanding <for> over all.user");
  Status& AddContext(std::string frame) {
    context_.push_back(std::move(frame));
    return *this;
  }

  // Full report: "TypeError: <msg>\n  while ...\n  while ...".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  std::vector<std::string> context_;
};

// Propagates a non-OK status out of the current function.
#define LLL_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::lll::Status lll_status__ = (expr);         \
    if (!lll_status__.ok()) return lll_status__; \
  } while (false)

}  // namespace lll

#endif  // LLL_CORE_STATUS_H_
