#include "core/metrics.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace lll {

namespace {

// Bucket index for value v: 0 for 0, else 1 + floor(log2(v)), clamped.
size_t BucketFor(uint64_t v) {
  if (v == 0) return 0;
  size_t b = 1;
  while (v > 1 && b + 1 < Histogram::kBuckets) {
    v >>= 1;
    ++b;
  }
  return b;
}

// Upper bound (exclusive) of bucket b: 2^(b-1) for b>=1.
uint64_t BucketUpper(size_t b) {
  if (b == 0) return 1;
  return uint64_t{1} << b;
}

uint64_t BucketLower(size_t b) {
  if (b == 0) return 0;
  return uint64_t{1} << (b - 1);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Histogram::Observe(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // Racy max update is fine: worst case a concurrent smaller value wins a
  // store it shouldn't, and the CAS loop below prevents even that.
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::ApproxPercentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the target observation, 1-based.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate linearly inside the bucket.
      double frac = static_cast<double>(rank - seen) /
                    static_cast<double>(in_bucket);
      uint64_t lo = BucketLower(b);
      uint64_t hi = std::max(BucketUpper(b), lo + 1);
      uint64_t est =
          lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
      return std::min(est, max());
    }
    seen += in_bucket;
  }
  return max();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    out += ": " + std::to_string(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(&out, name);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %llu, \"sum\": %llu, \"mean\": %.2f, "
                  "\"max\": %llu, \"p50\": %llu, \"p95\": %llu, "
                  "\"p99\": %llu}",
                  static_cast<unsigned long long>(h->count()),
                  static_cast<unsigned long long>(h->sum()), h->mean(),
                  static_cast<unsigned long long>(h->max()),
                  static_cast<unsigned long long>(h->ApproxPercentile(50)),
                  static_cast<unsigned long long>(h->ApproxPercentile(95)),
                  static_cast<unsigned long long>(h->ApproxPercentile(99)));
    out += buf;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace lll
