#ifndef LLL_CORE_METRICS_H_
#define LLL_CORE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lll {

// The metrics layer: named counters, gauges, and histograms behind one
// registry, exportable as a JSON snapshot. This is the "one queryable
// surface" the paper's experience report was missing -- EvalStats, cache
// hit/miss counts, and docgen phase timings were previously per-call values
// that evaporated with their result structs; here the engines fold them into
// a registry a server (or a bench harness) can poll.
//
// Concurrency contract: instrument handles returned by the registry are
// stable for the registry's lifetime and all mutation paths are lock-free
// atomics, so hot paths pay one relaxed add per event. The registry itself
// serializes only name->instrument resolution (done once per call site in
// sensible code) and snapshotting.

class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Exponential-bucket histogram: bucket k holds observations in [2^(k-1), 2^k)
// (bucket 0 holds zero). 40 buckets cover up to ~0.5e12 in whatever unit the
// caller observes -- microseconds, items, bytes. Percentiles interpolate
// inside the winning bucket, which is plenty for a hot-spot readout.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  // Approximate p-th percentile (p in [0,100]).
  uint64_t ApproxPercentile(double p) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named instrument. The returned reference stays
  // valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  // Histograms export count/sum/mean/max/p50/p95/p99. Keys are sorted, so
  // snapshots diff cleanly.
  std::string ToJson() const;

  // Drops every instrument (tests; NOT safe while handles are in use).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry the engines report into. Immortal.
MetricsRegistry& GlobalMetrics();

}  // namespace lll

#endif  // LLL_CORE_METRICS_H_
