#ifndef LLL_CORE_STRING_UTIL_H_
#define LLL_CORE_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lll {

// Whitespace per XML: space, tab, CR, LF.
bool IsXmlWhitespace(char c);

// The paper's `without-leading-or-trailing-spaces($string)` -- one of the
// utility functions XQuery "chose not to provide".
std::string_view TrimWhitespace(std::string_view s);

// Collapses runs of whitespace to single spaces and trims (fn:normalize-space).
std::string NormalizeSpace(std::string_view s);

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

// Joins with a separator (fn:string-join).
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool Contains(std::string_view s, std::string_view needle);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// Strict integer / double parsing; nullopt on any trailing garbage.
std::optional<int64_t> ParseInt(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Canonical XDM-ish rendering: integers without exponent, doubles trimmed of
// trailing zeros ("3.14", "2", "0.5"); NaN -> "NaN", infinities -> "INF"/"-INF".
std::string FormatDouble(double d);

// True if `name` is a valid XML name (letter/underscore/colon start; letters,
// digits, '-', '.', '_', ':' afterwards). ASCII subset -- sufficient for the
// workloads in this repository.
bool IsValidXmlName(std::string_view name);

}  // namespace lll

#endif  // LLL_CORE_STRING_UTIL_H_
