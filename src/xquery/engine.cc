#include "xquery/engine.h"

#include <chrono>

#include "xquery/parser.h"

namespace lll::xq {

std::string QueryResult::SerializedItems(
    const xml::SerializeOptions& options) const {
  std::string out;
  bool last_atomic = false;
  for (const xdm::Item& item : sequence.items()) {
    if (item.is_node()) {
      out += xml::Serialize(item.node(), options);
      last_atomic = false;
    } else {
      if (last_atomic) out += " ";
      out += item.StringForm();
      last_atomic = true;
    }
  }
  return out;
}

Result<CompiledQuery> Compile(std::string_view source,
                              const CompileOptions& options) {
  LLL_ASSIGN_OR_RETURN(Module module, ParseModule(source));
  OptimizerStats stats;
  if (options.optimize) {
    stats = Optimize(&module, options.optimizer);
  }
  return CompiledQuery(std::move(module), stats);
}

Result<QueryResult> Execute(const CompiledQuery& query,
                            const ExecuteOptions& options) {
  DynamicContext context;
  for (const auto& [name, doc] : options.documents) {
    context.RegisterDocument(name, doc);
  }
  for (const auto& [name, value] : options.variables) {
    context.BindExternal(name, value);
  }
  if (options.context_node != nullptr) {
    context.SetContextItem(xdm::Item::NodeRef(options.context_node));
  }
  Evaluator evaluator(query.module(), &context, options.eval);
  // Profiling and metrics both need a clock; the plain path takes neither.
  const bool timed = options.eval.profile || options.metrics != nullptr;
  obs::Profiler profiler;
  if (options.eval.profile) evaluator.set_profiler(&profiler);
  std::chrono::steady_clock::time_point start;
  if (timed) start = std::chrono::steady_clock::now();
  Result<xdm::Sequence> value = evaluator.Run();
  if (options.metrics != nullptr) {
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    const EvalStats& stats = evaluator.stats();
    options.metrics->counter("xq.executions").Increment();
    options.metrics->histogram("xq.execute_us").Observe(us);
    options.metrics->counter("xq.eval.steps").Increment(stats.steps);
    options.metrics->counter("xq.eval.constructed_nodes")
        .Increment(stats.constructed_nodes);
    options.metrics->counter("xq.eval.trace_calls")
        .Increment(stats.trace_calls);
    options.metrics->counter("xq.eval.function_calls")
        .Increment(stats.function_calls);
    options.metrics->counter("xq.eval.sorts_performed")
        .Increment(stats.sorts_performed);
    options.metrics->counter("xq.eval.sorts_skipped")
        .Increment(stats.sorts_skipped);
    options.metrics->counter("xq.eval.order_compares")
        .Increment(stats.order_compares);
    options.metrics->counter("xq.eval.nodes_pulled")
        .Increment(stats.nodes_pulled);
    options.metrics->counter("xq.eval.nodes_skipped_early_exit")
        .Increment(stats.nodes_skipped_early_exit);
    options.metrics->counter("xq.eval.reverse_runs_merged")
        .Increment(stats.reverse_runs_merged);
    options.metrics->counter("xq.eval.limit_pushdowns")
        .Increment(stats.limit_pushdowns);
    options.metrics->counter("xq.eval.nodeset_cache_hits")
        .Increment(stats.nodeset_cache_hits);
    options.metrics->counter("xq.eval.nodeset_cache_misses")
        .Increment(stats.nodeset_cache_misses);
    options.metrics->counter("xq.eval.nodeset_cache_invalidations")
        .Increment(stats.nodeset_cache_invalidations);
    options.metrics->counter("xq.eval.nodeset_cache_partial_invalidations")
        .Increment(stats.nodeset_cache_partial_invalidations);
    // Workload-facing alias: the incremental-regeneration dashboards watch
    // the partial/full invalidation split under the xq.nodeset prefix.
    options.metrics->counter("xq.nodeset.partial_invalidations")
        .Increment(stats.nodeset_cache_partial_invalidations);
    if (!value.ok()) options.metrics->counter("xq.errors").Increment();
  }
  if (!value.ok()) {
    return value.status();
  }
  QueryResult result;
  result.sequence = std::move(*value);
  result.trace_output = std::move(context.trace_output());
  result.stats = evaluator.stats();
  result.arena = context.ReleaseArena();
  if (options.eval.profile) {
    result.profile =
        std::make_unique<obs::ProfileReport>(profiler.TakeReport());
  }
  return result;
}

Result<QueryResult> Run(std::string_view source,
                        const ExecuteOptions& exec_options,
                        const CompileOptions& compile_options) {
  LLL_ASSIGN_OR_RETURN(CompiledQuery query, Compile(source, compile_options));
  return Execute(query, exec_options);
}

}  // namespace lll::xq
