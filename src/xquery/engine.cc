#include "xquery/engine.h"

#include "xquery/parser.h"

namespace lll::xq {

std::string QueryResult::SerializedItems(
    const xml::SerializeOptions& options) const {
  std::string out;
  bool last_atomic = false;
  for (const xdm::Item& item : sequence.items()) {
    if (item.is_node()) {
      out += xml::Serialize(item.node(), options);
      last_atomic = false;
    } else {
      if (last_atomic) out += " ";
      out += item.StringForm();
      last_atomic = true;
    }
  }
  return out;
}

Result<CompiledQuery> Compile(std::string_view source,
                              const CompileOptions& options) {
  LLL_ASSIGN_OR_RETURN(Module module, ParseModule(source));
  OptimizerStats stats;
  if (options.optimize) {
    stats = Optimize(&module, options.optimizer);
  }
  return CompiledQuery(std::move(module), stats);
}

Result<QueryResult> Execute(const CompiledQuery& query,
                            const ExecuteOptions& options) {
  DynamicContext context;
  for (const auto& [name, doc] : options.documents) {
    context.RegisterDocument(name, doc);
  }
  for (const auto& [name, value] : options.variables) {
    context.BindExternal(name, value);
  }
  if (options.context_node != nullptr) {
    context.SetContextItem(xdm::Item::NodeRef(options.context_node));
  }
  Evaluator evaluator(query.module(), &context, options.eval);
  Result<xdm::Sequence> value = evaluator.Run();
  if (!value.ok()) {
    return value.status();
  }
  QueryResult result;
  result.sequence = std::move(*value);
  result.trace_output = std::move(context.trace_output());
  result.stats = evaluator.stats();
  result.arena = context.ReleaseArena();
  return result;
}

Result<QueryResult> Run(std::string_view source,
                        const ExecuteOptions& exec_options,
                        const CompileOptions& compile_options) {
  LLL_ASSIGN_OR_RETURN(CompiledQuery query, Compile(source, compile_options));
  return Execute(query, exec_options);
}

}  // namespace lll::xq
