#ifndef LLL_XQUERY_QUERY_CACHE_H_
#define LLL_XQUERY_QUERY_CACHE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/lru_cache.h"
#include "core/result.h"
#include "xquery/engine.h"

namespace lll::xq {

// Where a GetOrCompile answer came from, for EXPLAIN and persist.* metrics:
// freshly compiled, hit on a plan compiled earlier in this process, or hit
// on a plan deserialized from a persisted artifact (which never paid parse +
// optimize in this process at all).
enum class CacheProvenance { kCompiled, kMemoryCache, kDiskCache };

// Canonical EXPLAIN spelling: "compiled" / "memory-cache" / "disk-cache".
const char* CacheProvenanceName(CacheProvenance provenance);

// A thread-safe LRU cache of compiled queries, keyed on (query text,
// CompileOptions). This is the "compile once, execute many" piece of the
// paper's workload made explicit: AWB's docgen re-runs the same query
// programs over every node of the model, and without a cache every run pays
// the parse + optimize cost again.
//
// Entries are shared immutable handles: a CompiledQuery obtained here may be
// Execute()d concurrently from any number of threads (see the concurrency
// notes in engine.h), and a handle stays valid after its entry is evicted.
//
// Compile errors are NOT cached; each failing lookup recompiles and returns
// the fresh error (failing queries are rare and cheap to keep out of the
// bookkeeping).
//
// capacity 0 is a passthrough cache: every lookup compiles, nothing is
// stored -- the "cache off" arm of differential tests and benchmarks.
class QueryCache {
 public:
  explicit QueryCache(size_t capacity = 128) : cache_(capacity) {}

  // Returns the cached compilation of (source, options), compiling and
  // inserting on miss. On a racing miss of the same key, both threads
  // compile and the later Put wins; both handles are equivalent and valid.
  // `cache_hit` (optional) reports the provenance of the returned handle,
  // for EXPLAIN output; `provenance` (optional) refines it to the tri-state
  // compiled / memory-cache / disk-cache distinction.
  Result<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      std::string_view source, const CompileOptions& options = {},
      bool* cache_hit = nullptr, CacheProvenance* provenance = nullptr);

  // Every entry, most- to least-recently used, as shared immutable handles
  // -- the enumeration the persistence layer serializes to a plan-cache
  // artifact (persist::SavePlanCache).
  std::vector<std::pair<std::string, std::shared_ptr<const CompiledQuery>>>
  Entries() const {
    return cache_.Snapshot();
  }

  // Inserts a plan deserialized from a persisted artifact under its stored
  // key (which MakeKey produced when it was saved) and marks the cache
  // warmed. The plan should carry PlanOrigin::kDiskCache so later hits
  // report disk-cache provenance.
  void PutDeserialized(const std::string& key, CompiledQuery compiled) {
    cache_.Put(key,
               std::make_shared<const CompiledQuery>(std::move(compiled)));
    warmed_.store(true, std::memory_order_relaxed);
  }

  // True once any persisted plan has been loaded into this cache. Callers
  // use it to give persist.plan.misses its meaning: a compile in a warmed
  // cache is a query the artifact did not cover.
  bool warmed() const { return warmed_.load(std::memory_order_relaxed); }

  CacheStats stats() const { return cache_.stats(); }

  // Publishes this cache's hit/miss/eviction counters as gauges named
  // "<prefix>.lookups" etc. (gauges, not counters: the LruCache already
  // accumulates totals, so each export overwrites the last snapshot instead
  // of double-counting).
  void ExportTo(MetricsRegistry* metrics, const std::string& prefix) const;
  size_t capacity() const { return cache_.capacity(); }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.Clear(); }

  // The exact key used internally (exposed for tests).
  static std::string MakeKey(std::string_view source,
                             const CompileOptions& options);

 private:
  LruCache<CompiledQuery> cache_;
  std::atomic<bool> warmed_{false};
};

}  // namespace lll::xq

#endif  // LLL_XQUERY_QUERY_CACHE_H_
