#include "xquery/optimizer.h"

#include <functional>

#include "core/string_util.h"
#include "xquery/eval.h"

namespace lll::xq {

namespace {

// Visits every subexpression of `e` (including predicates, clauses,
// constructor parts) except function bodies.
void ForEachChild(const Expr& e, const std::function<void(const Expr&)>& fn) {
  for (const ExprPtr& c : e.children) fn(*c);
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) fn(*p);
  }
  for (const FlworClause& c : e.clauses) fn(*c.expr);
  for (const OrderSpec& o : e.order_by) fn(*o.key);
  for (const DirectAttribute& a : e.attributes) {
    for (const ExprPtr& p : a.value_parts) fn(*p);
  }
}

bool IsTraceCall(const Expr& e) {
  return e.kind == ExprKind::kFunctionCall &&
         (e.name == "trace" || e.name == "fn:trace");
}

bool IsErrorCall(const Expr& e) {
  return e.kind == ExprKind::kFunctionCall &&
         (e.name == "error" || e.name == "fn:error");
}

// Collects pointers to every trace() call in the tree, for the swallowed-
// trace rewrite notes (the count alone can't say WHERE the calls were).
void CollectTraceCalls(const Expr& e, std::vector<const Expr*>* out) {
  if (IsTraceCall(e)) out->push_back(&e);
  ForEachChild(e, [out](const Expr& c) { CollectTraceCalls(c, out); });
}

// A numeric literal usable as a static subsequence bound. Negative literals
// parse as kUnary and are (conservatively) not recognized.
bool NumericLiteral(const Expr& e, double* value) {
  if (e.kind != ExprKind::kLiteral) return false;
  switch (e.literal_type) {
    case Expr::LiteralType::kInteger:
      *value = static_cast<double>(e.integer);
      return true;
    case Expr::LiteralType::kDouble:
      *value = e.number;
      return true;
    default:
      return false;
  }
}

std::string DescribeStep(const PathStep& step) {
  std::string out = AxisName(step.axis);
  out += "::";
  switch (step.test.kind) {
    case NodeTestKind::kName:
      out += step.test.name;
      break;
    case NodeTestKind::kAnyName:
      out += "*";
      break;
    case NodeTestKind::kText:
      out += "text()";
      break;
    case NodeTestKind::kComment:
      out += "comment()";
      break;
    case NodeTestKind::kPi:
      out += "processing-instruction()";
      break;
    case NodeTestKind::kAnyNode:
      out += "node()";
      break;
  }
  return out;
}

}  // namespace

const char* RewriteNoteKindName(RewriteNote::Kind kind) {
  switch (kind) {
    case RewriteNote::Kind::kConstantFolded:
      return "constant-folded";
    case RewriteNote::Kind::kDeadLetEliminated:
      return "dead-let-eliminated";
    case RewriteNote::Kind::kTraceSwallowed:
      return "trace-swallowed";
    case RewriteNote::Kind::kOrderedStep:
      return "ordered-step";
    case RewriteNote::Kind::kLimitPushed:
      return "limit-pushed";
  }
  return "unknown";
}

size_t CountTraceCalls(const Expr& e) {
  size_t n = IsTraceCall(e) ? 1 : 0;
  ForEachChild(e, [&n](const Expr& c) { n += CountTraceCalls(c); });
  return n;
}

size_t CountVariableUses(const Expr& e, const std::string& name) {
  if (e.kind == ExprKind::kVarRef) return e.name == name ? 1 : 0;
  if (e.kind == ExprKind::kQuantified) {
    size_t n = CountVariableUses(*e.children[0], name);
    if (e.name != name) n += CountVariableUses(*e.children[1], name);
    return n;
  }
  if (e.kind == ExprKind::kFlwor) {
    size_t n = 0;
    bool shadowed = false;
    for (const FlworClause& c : e.clauses) {
      if (shadowed) break;
      n += CountVariableUses(*c.expr, name);
      if (c.kind != FlworClause::Kind::kWhere &&
          (c.var == name || c.pos_var == name)) {
        shadowed = true;
      }
    }
    if (!shadowed) {
      for (const OrderSpec& o : e.order_by) {
        n += CountVariableUses(*o.key, name);
      }
      n += CountVariableUses(*e.children[0], name);
    }
    return n;
  }
  size_t n = 0;
  ForEachChild(e, [&](const Expr& c) { n += CountVariableUses(c, name); });
  return n;
}

namespace {

// Purity with a memo over user-defined functions; recursive functions are
// treated optimistically (pure unless their body shows otherwise), which is
// what an aggressive query optimizer does.
struct PurityAnalyzer {
  const Module& module;
  bool recognize_trace;
  std::map<std::string, int> function_state;  // 0=analyzing, 1=pure, 2=impure

  bool Pure(const Expr& e) {
    if (IsErrorCall(e)) return false;  // eliminating error() changes outcomes
    if (IsTraceCall(e)) {
      if (recognize_trace) return false;  // the "fixed" optimizer
      // Galax-era behavior: trace looks pure, so a dead let swallows it.
    }
    if (e.kind == ExprKind::kFunctionCall && !IsTraceCall(e)) {
      std::string name = e.name;
      if (StartsWith(name, "fn:")) name = name.substr(3);
      bool builtin = IsBuiltinName(e.name) || IsBuiltinName(name);
      if (!builtin) {
        const FunctionDecl* decl = nullptr;
        for (const FunctionDecl& fn : module.functions) {
          if (fn.name == e.name && fn.params.size() == e.children.size()) {
            decl = &fn;
            break;
          }
        }
        if (decl == nullptr) return false;  // unknown callee: assume impure
        auto [it, inserted] = function_state.try_emplace(decl->name, 0);
        if (inserted) {
          bool body_pure = Pure(*decl->body);
          it = function_state.find(decl->name);
          it->second = body_pure ? 1 : 2;
        }
        if (it->second == 2) return false;
        // state 0 (self-recursive) or 1: treat as pure.
      }
    }
    bool pure = true;
    ForEachChild(e, [&](const Expr& c) {
      if (pure && !Pure(c)) pure = false;
    });
    return pure;
  }
};

struct Rewriter {
  const Module& module;
  const OptimizerOptions& options;
  OptimizerStats stats;
  PurityAnalyzer purity;

  explicit Rewriter(const Module& m, const OptimizerOptions& opts)
      : module(m), options(opts), purity{m, opts.recognize_trace, {}} {}

  void Rewrite(Expr* e) {
    // Bottom-up: rewrite children first.
    for (ExprPtr& c : e->children) Rewrite(c.get());
    for (PathStep& s : e->steps) {
      for (ExprPtr& p : s.predicates) Rewrite(p.get());
    }
    for (FlworClause& c : e->clauses) Rewrite(c.expr.get());
    for (OrderSpec& o : e->order_by) Rewrite(o.key.get());
    for (DirectAttribute& a : e->attributes) {
      for (ExprPtr& p : a.value_parts) Rewrite(p.get());
    }

    if (options.dead_let_elimination && e->kind == ExprKind::kFlwor) {
      EliminateDeadLets(e);
    }
    if (options.constant_folding) FoldConstants(e);
    if (options.limit_pushdown) PushLimits(e);
  }

  // --- Limit push-down ------------------------------------------------------
  //
  // Annotates path expressions with the prefix demand of a statically
  // limited consumer (Expr::limit_hint). Sound because the streaming
  // evaluator produces exactly the first `hint` items of the full result
  // (and falls back to the FULL result when the chain cannot stream), and
  // because each recognized consumer provably never observes anything past
  // that prefix. Conservative by design: only literal bounds, only direct
  // consumer positions, no propagation through arbitrary expressions.

  // Resolves `e` as a call to the builtin `want` (bare or fn:-prefixed) that
  // is not shadowed by a user-declared function of the same name and arity.
  bool IsUnshadowedBuiltin(const Expr& e, const char* want) const {
    if (e.kind != ExprKind::kFunctionCall) return false;
    std::string name = e.name;
    if (StartsWith(name, "fn:")) name = name.substr(3);
    if (name != want) return false;
    for (const FunctionDecl& fn : module.functions) {
      if ((fn.name == e.name || fn.name == name) &&
          fn.params.size() == e.children.size()) {
        return false;  // a user function shadows the builtin
      }
    }
    return true;
  }

  // The prefix demand a call places on its first (sequence) argument: 1 for
  // fn:head, the window end for fn:subsequence with literal start/length
  // (via the same SubsequenceWindow normalization the builtin uses, so
  // pushed and unpushed plans select identical items), 0 for anything else.
  size_t ConsumerDemand(const Expr& call) const {
    if (call.children.size() == 1 && IsUnshadowedBuiltin(call, "head")) {
      return 1;
    }
    if (call.children.size() == 3 &&
        IsUnshadowedBuiltin(call, "subsequence")) {
      double start, len;
      if (!NumericLiteral(*call.children[1], &start) ||
          !NumericLiteral(*call.children[2], &len)) {
        return 0;
      }
      double lo, hi;
      if (!SubsequenceWindow(start, len, /*has_length=*/true, &lo, &hi)) {
        return 0;  // statically empty; nothing worth annotating
      }
      // Selected positions satisfy p < hi, so the first hi-1 items suffice
      // regardless of lo. Unbounded or out-of-range windows are not pushed.
      double need = hi - 1;
      if (!(need >= 1) || need > 1e15) return 0;
      return static_cast<size_t>(need);
    }
    return 0;
  }

  // A where-condition that caps position variable $pos_var at N for every
  // passing tuple: `$p le N` / `$p lt N` / `$p eq N` (value or general
  // form) with an integer literal bound. Returns 0 when nothing is proven.
  size_t PositionBound(const Expr& w, const std::string& pos_var) const {
    if (w.kind != ExprKind::kBinary || w.children.size() != 2) return 0;
    const Expr& l = *w.children[0];
    const Expr& r = *w.children[1];
    if (l.kind != ExprKind::kVarRef || l.name != pos_var) return 0;
    if (r.kind != ExprKind::kLiteral ||
        r.literal_type != Expr::LiteralType::kInteger) {
      return 0;
    }
    int64_t n = r.integer;
    switch (w.op) {
      case BinOp::kValLe:
      case BinOp::kGenLe:
      case BinOp::kValEq:
      case BinOp::kGenEq:
        return n >= 1 ? static_cast<size_t>(n) : 0;
      case BinOp::kValLt:
      case BinOp::kGenLt:
        return n >= 2 ? static_cast<size_t>(n - 1) : 0;
      default:
        return 0;
    }
  }

  // Finds the demand of the one unshadowed use of $var in `e`, but only if
  // that use sits directly in a limited consumer's sequence slot. Traversal
  // mirrors CountVariableUses' shadowing rules, so a same-named binding
  // deeper in never matches. Callers must have established uses == 1.
  size_t SoleUseDemand(const Expr& e, const std::string& var) const {
    if (e.kind == ExprKind::kFunctionCall) {
      size_t demand = ConsumerDemand(e);
      if (demand > 0 && !e.children.empty() &&
          e.children[0]->kind == ExprKind::kVarRef &&
          e.children[0]->name == var) {
        return demand;
      }
    }
    if (e.kind == ExprKind::kQuantified) {
      size_t d = SoleUseDemand(*e.children[0], var);
      if (d == 0 && e.name != var) d = SoleUseDemand(*e.children[1], var);
      return d;
    }
    if (e.kind == ExprKind::kFlwor) {
      for (const FlworClause& c : e.clauses) {
        size_t d = SoleUseDemand(*c.expr, var);
        if (d > 0) return d;
        if (c.kind != FlworClause::Kind::kWhere &&
            (c.var == var || c.pos_var == var)) {
          return 0;  // rebound: later references are a different variable
        }
      }
      for (const OrderSpec& o : e.order_by) {
        size_t d = SoleUseDemand(*o.key, var);
        if (d > 0) return d;
      }
      return SoleUseDemand(*e.children[0], var);
    }
    size_t found = 0;
    ForEachChild(e, [&](const Expr& c) {
      if (found == 0) found = SoleUseDemand(c, var);
    });
    return found;
  }

  void ApplyHint(Expr* path, size_t demand, std::string why, size_t line,
                 size_t col) {
    if (path->limit_hint == 0 || demand < path->limit_hint) {
      path->limit_hint = demand;
    }
    path->statically_limit_pushable = true;
    ++stats.limits_pushed;
    stats.notes.push_back(
        {RewriteNote::Kind::kLimitPushed, std::move(why), line, col});
  }

  void PushLimits(Expr* e) {
    if (e->kind == ExprKind::kFunctionCall) {
      size_t demand = ConsumerDemand(*e);
      if (demand > 0 && !e->children.empty() &&
          e->children[0]->kind == ExprKind::kPath) {
        ApplyHint(e->children[0].get(), demand,
                  e->name + "() observes at most the first " +
                      std::to_string(demand) +
                      " item(s) of its path argument; limit pushed",
                  e->line, e->col);
      }
      return;
    }
    if (e->kind != ExprKind::kFlwor) return;
    // Positional for guarded by an IMMEDIATELY following where on the
    // position variable: tuples past the bound are filtered before any
    // other clause can observe them (an intervening clause might error or
    // trace on a tuple the push-down would never produce).
    for (size_t i = 0; i + 1 < e->clauses.size(); ++i) {
      FlworClause& c = e->clauses[i];
      if (c.kind != FlworClause::Kind::kFor || c.pos_var.empty()) continue;
      if (c.expr->kind != ExprKind::kPath) continue;
      const FlworClause& next = e->clauses[i + 1];
      if (next.kind != FlworClause::Kind::kWhere) continue;
      size_t bound = PositionBound(*next.expr, c.pos_var);
      if (bound > 0) {
        ApplyHint(c.expr.get(), bound,
                  "where $" + c.pos_var + " caps the positional for at " +
                      std::to_string(bound) + " tuple(s); limit pushed",
                  c.expr->line, c.expr->col);
      }
    }
    // A let-bound path consumed exactly once, directly by a limited
    // consumer: binding only the demanded prefix is unobservable.
    for (size_t i = 0; i < e->clauses.size(); ++i) {
      FlworClause& c = e->clauses[i];
      if (c.kind != FlworClause::Kind::kLet) continue;
      if (c.expr->kind != ExprKind::kPath) continue;
      size_t uses = 0;
      bool shadowed = false;
      for (size_t j = i + 1; j < e->clauses.size() && !shadowed; ++j) {
        uses += CountVariableUses(*e->clauses[j].expr, c.var);
        if (e->clauses[j].kind != FlworClause::Kind::kWhere &&
            (e->clauses[j].var == c.var ||
             e->clauses[j].pos_var == c.var)) {
          shadowed = true;
        }
      }
      if (!shadowed) {
        for (const OrderSpec& o : e->order_by) {
          uses += CountVariableUses(*o.key, c.var);
        }
        uses += CountVariableUses(*e->children[0], c.var);
      }
      if (uses != 1) continue;
      size_t demand = 0;
      for (size_t j = i + 1; j < e->clauses.size() && demand == 0; ++j) {
        demand = SoleUseDemand(*e->clauses[j].expr, c.var);
        if (e->clauses[j].kind != FlworClause::Kind::kWhere &&
            (e->clauses[j].var == c.var ||
             e->clauses[j].pos_var == c.var)) {
          break;  // rebound; stop searching like the use count did
        }
      }
      if (demand == 0 && !shadowed) {
        for (size_t k = 0; k < e->order_by.size() && demand == 0; ++k) {
          demand = SoleUseDemand(*e->order_by[k].key, c.var);
        }
        if (demand == 0) demand = SoleUseDemand(*e->children[0], c.var);
      }
      if (demand > 0) {
        ApplyHint(c.expr.get(), demand,
                  "let $" + c.var + " is consumed once, by a consumer that " +
                      "observes at most " + std::to_string(demand) +
                      " item(s); limit pushed",
                  c.expr->line, c.expr->col);
      }
    }
  }

  // Scans a FLWOR for `let $v := E` clauses where $v is unused downstream
  // and E is pure, and deletes them. Runs to a local fixpoint.
  void EliminateDeadLets(Expr* flwor) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < flwor->clauses.size(); ++i) {
        const FlworClause& clause = flwor->clauses[i];
        if (clause.kind != FlworClause::Kind::kLet) continue;
        size_t uses = 0;
        bool shadowed = false;
        for (size_t j = i + 1; j < flwor->clauses.size() && !shadowed; ++j) {
          uses += CountVariableUses(*flwor->clauses[j].expr, clause.var);
          if (flwor->clauses[j].kind != FlworClause::Kind::kWhere &&
              (flwor->clauses[j].var == clause.var ||
               flwor->clauses[j].pos_var == clause.var)) {
            shadowed = true;
          }
        }
        if (!shadowed) {
          for (const OrderSpec& o : flwor->order_by) {
            uses += CountVariableUses(*o.key, clause.var);
          }
          uses += CountVariableUses(*flwor->children[0], clause.var);
        }
        if (uses != 0) continue;
        if (!purity.Pure(*clause.expr)) continue;
        std::vector<const Expr*> traces;
        CollectTraceCalls(*clause.expr, &traces);
        stats.eliminated_trace_calls += traces.size();
        ++stats.eliminated_lets;
        stats.notes.push_back(
            {RewriteNote::Kind::kDeadLetEliminated,
             "let $" + clause.var + " := ... is unused and pure; removed",
             clause.expr->line, clause.expr->col});
        for (const Expr* t : traces) {
          stats.notes.push_back(
              {RewriteNote::Kind::kTraceSwallowed,
               "trace() inside dead let $" + clause.var +
                   " was deleted with it; its output will never appear",
               t->line, t->col});
        }
        flwor->clauses.erase(flwor->clauses.begin() +
                             static_cast<ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
    // A FLWOR whose every clause was eliminated degenerates to its return
    // expression.
    if (flwor->clauses.empty() && flwor->order_by.empty()) {
      ExprPtr body = std::move(flwor->children[0]);
      *flwor = std::move(*body);
    }
  }

  void FoldConstants(Expr* e) {
    if (e->kind != ExprKind::kBinary) return;
    if (e->children.size() != 2) return;
    const Expr& a = *e->children[0];
    const Expr& b = *e->children[1];
    if (a.kind != ExprKind::kLiteral || b.kind != ExprKind::kLiteral) return;
    if (a.literal_type != Expr::LiteralType::kInteger ||
        b.literal_type != Expr::LiteralType::kInteger) {
      return;
    }
    int64_t x = a.integer;
    int64_t y = b.integer;
    int64_t value = 0;
    switch (e->op) {
      case BinOp::kAdd:
        value = x + y;
        break;
      case BinOp::kSub:
        value = x - y;
        break;
      case BinOp::kMul:
        value = x * y;
        break;
      case BinOp::kIdiv:
        if (y == 0) return;  // leave the runtime error in place
        value = x / y;
        break;
      case BinOp::kMod:
        if (y == 0) return;
        value = x % y;
        break;
      default:
        return;
    }
    Expr folded(ExprKind::kLiteral);
    folded.literal_type = Expr::LiteralType::kInteger;
    folded.integer = value;
    folded.line = e->line;
    folded.col = e->col;
    stats.notes.push_back({RewriteNote::Kind::kConstantFolded,
                           std::to_string(x) + " " + BinOpName(e->op) + " " +
                               std::to_string(y) + " folded to " +
                               std::to_string(value),
                           e->line, e->col});
    *e = std::move(folded);
    ++stats.folded_constants;
  }
};

// --- Order analysis ---------------------------------------------------------

// True if a call to `name` with `arity` args resolves to a builtin whose
// result is at most one item. A user-defined function of the same name/arity
// shadows the builtin in EvalFunctionCall, so it must not exist.
bool IsSingletonBuiltin(const Expr& e, const Module& module) {
  std::string name = e.name;
  if (StartsWith(name, "fn:")) name = name.substr(3);
  if (name != "doc" && name != "root" && name != "exactly-one" &&
      name != "zero-or-one") {
    return false;
  }
  for (const FunctionDecl& fn : module.functions) {
    if ((fn.name == e.name || fn.name == name) &&
        fn.params.size() == e.children.size()) {
      return false;  // shadowed by a user function of unknown cardinality
    }
  }
  return true;
}

struct OrderAnalyzer {
  const Module& module;
  size_t annotated = 0;
  std::vector<RewriteNote>* notes = nullptr;  // optional EXPLAIN feed

  OrderProp Analyze(Expr* e) {
    switch (e->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kTextLiteral:
      case ExprKind::kEmptySequence:
      case ExprKind::kContextItem:
        // The focus is a single item by definition; literals are singletons.
        return OrderProp::kSingleton;
      case ExprKind::kPath:
        return AnalyzePath(e);
      case ExprKind::kSequence: {
        if (e->children.size() == 1) return Analyze(e->children[0].get());
        for (ExprPtr& c : e->children) Analyze(c.get());
        return OrderProp::kNone;
      }
      case ExprKind::kIf: {
        Analyze(e->children[0].get());
        OrderProp then_prop = Analyze(e->children[1].get());
        OrderProp else_prop = Analyze(e->children[2].get());
        return MeetOrder(then_prop, else_prop);
      }
      case ExprKind::kTryCatch: {
        OrderProp body = Analyze(e->children[0].get());
        OrderProp handler = Analyze(e->children[1].get());
        return MeetOrder(body, handler);
      }
      case ExprKind::kFlwor: {
        bool iterates = false;
        for (FlworClause& c : e->clauses) {
          Analyze(c.expr.get());
          if (c.kind == FlworClause::Kind::kFor) iterates = true;
        }
        for (OrderSpec& o : e->order_by) Analyze(o.key.get());
        OrderProp body = Analyze(e->children[0].get());
        // A let/where-only FLWOR evaluates its return at most once, so the
        // body's property survives; a for-loop concatenates tuples.
        if (!iterates && e->order_by.empty()) return body;
        return OrderProp::kNone;
      }
      case ExprKind::kFunctionCall: {
        for (ExprPtr& c : e->children) Analyze(c.get());
        return IsSingletonBuiltin(*e, module) ? OrderProp::kSingleton
                                              : OrderProp::kNone;
      }
      case ExprKind::kBinary: {
        Analyze(e->children[0].get());
        Analyze(e->children[1].get());
        switch (e->op) {
          case BinOp::kUnion:
          case BinOp::kIntersect:
          case BinOp::kExcept:
            // The evaluator normalizes set-operator results.
            return OrderProp::kOrdered;
          case BinOp::kTo:
            return OrderProp::kNone;  // many atomics; node order is moot
          default:
            return OrderProp::kSingleton;  // comparisons/arithmetic: <= 1 item
        }
      }
      case ExprKind::kUnary:
      case ExprKind::kQuantified:
      case ExprKind::kCastAs:
      case ExprKind::kCastableAs:
      case ExprKind::kInstanceOf:
      case ExprKind::kDirectElement:
      case ExprKind::kCompElement:
      case ExprKind::kCompAttribute:
      case ExprKind::kCompText:
      case ExprKind::kCompComment:
      case ExprKind::kCompDocument: {
        for (ExprPtr& c : e->children) Analyze(c.get());
        for (DirectAttribute& a : e->attributes) {
          for (ExprPtr& p : a.value_parts) Analyze(p.get());
        }
        return OrderProp::kSingleton;
      }
      case ExprKind::kVarRef:
        // No environment tracking; the evaluator's dynamic ordered_deduped
        // bit covers variables bound to already-normalized sequences.
        return OrderProp::kNone;
    }
    return OrderProp::kNone;
  }

  // Static twin of Evaluator::PredicateBlocksStreaming, resolved against the
  // module's function declarations instead of the runtime registry.
  bool BlocksStreaming(const Expr& e) const {
    if (e.kind == ExprKind::kFunctionCall) {
      std::string stripped = e.name;
      if (StartsWith(stripped, "fn:")) stripped = stripped.substr(3);
      if (stripped == "last" || stripped == "trace" || stripped == "error") {
        return true;
      }
      for (const FunctionDecl& fn : module.functions) {
        if ((fn.name == e.name || fn.name == stripped) &&
            fn.params.size() == e.children.size()) {
          return true;  // user-defined: may trace/error internally
        }
      }
      if (!IsBuiltinName(stripped)) return true;
    }
    bool blocked = false;
    ForEachChild(e, [&](const Expr& c) { blocked = blocked || BlocksStreaming(c); });
    return blocked;
  }

  OrderProp AnalyzePath(Expr* e) {
    OrderProp prop;
    if (e->has_base) {
      prop = Analyze(e->children[0].get());
    } else {
      // Rooted paths start at the context root; relative paths start at the
      // focus item. Either way: one node.
      prop = OrderProp::kSingleton;
    }
    // Interning applies to the leading predicate-free chain of a path whose
    // base is a lone document node: the rooted form, or fn:doc(...).
    bool internable =
        (!e->has_base && e->rooted) ||
        (e->has_base && e->children[0]->kind == ExprKind::kFunctionCall &&
         (e->children[0]->name == "doc" || e->children[0]->name == "fn:doc"));
    for (PathStep& step : e->steps) {
      for (ExprPtr& p : step.predicates) Analyze(p.get());
      if (step.is_filter) {
        internable = false;
        continue;  // a subset preserves every property
      }
      // Advisory streaming/interning annotations (rendered by EXPLAIN); the
      // evaluator re-derives both per call from dynamic conditions. Mirrors
      // Evaluator::PredicateBlocksStreaming: fn:last needs materialized
      // cardinality, and trace/error/user-defined calls must see the exact
      // materializing evaluation order (trace-parity rule, DESIGN.md section
      // 10), so any of them in a predicate disqualifies the step.
      step.statically_streamable = IsStreamableAxis(step.axis);
      if (step.statically_streamable) {
        for (const ExprPtr& p : step.predicates) {
          if (BlocksStreaming(*p)) {
            step.statically_streamable = false;
            break;
          }
        }
      }
      // Predicate-free steps intern outright; steps whose predicates are
      // all intern-foldable (pure functions of the tree, folded into the
      // fingerprint) keep the chain going too.
      if (!step.predicates.empty()) {
        auto is_user = [this](const std::string& name, size_t arity) {
          for (const FunctionDecl& fn : module.functions) {
            if (fn.name == name && fn.params.size() == arity) return true;
          }
          return false;
        };
        for (const ExprPtr& p : step.predicates) {
          if (!InternFoldablePredicate(*p, is_user)) {
            internable = false;
            break;
          }
        }
      }
      step.statically_internable = internable;
      prop = TransferOrder(prop, step.axis);
      step.statically_ordered = prop != OrderProp::kNone;
      if (step.statically_ordered) {
        ++annotated;
        if (notes != nullptr) {
          notes->push_back({RewriteNote::Kind::kOrderedStep,
                            "step " + DescribeStep(step) +
                                " proven document-ordered; normalizing sort "
                                "skipped",
                            e->line, e->col});
        }
      }
    }
    return prop;
  }
};

}  // namespace

OrderProp AnalyzeOrder(Expr* e, const Module& module, size_t* annotated) {
  OrderAnalyzer analyzer{module};
  OrderProp prop = analyzer.Analyze(e);
  if (annotated != nullptr) *annotated += analyzer.annotated;
  return prop;
}

namespace {

void AnalyzeOrderNoted(Expr* e, const Module& module, OptimizerStats* stats) {
  OrderAnalyzer analyzer{module, 0, &stats->notes};
  analyzer.Analyze(e);
  stats->ordered_steps_annotated += analyzer.annotated;
}

}  // namespace

bool IsPure(const Expr& e, const Module& module, bool recognize_trace) {
  PurityAnalyzer analyzer{module, recognize_trace, {}};
  return analyzer.Pure(e);
}

OptimizerStats Optimize(Module* module, const OptimizerOptions& options) {
  Rewriter rewriter(*module, options);
  for (FunctionDecl& fn : module->functions) {
    rewriter.Rewrite(fn.body.get());
  }
  for (VariableDecl& var : module->variables) {
    rewriter.Rewrite(var.expr.get());
  }
  rewriter.Rewrite(module->body.get());
  if (options.order_analysis) {
    // After rewriting: dead-let elimination can degenerate FLWORs into their
    // bodies, which makes more paths statically analyzable.
    for (FunctionDecl& fn : module->functions) {
      AnalyzeOrderNoted(fn.body.get(), *module, &rewriter.stats);
    }
    for (VariableDecl& var : module->variables) {
      AnalyzeOrderNoted(var.expr.get(), *module, &rewriter.stats);
    }
    AnalyzeOrderNoted(module->body.get(), *module, &rewriter.stats);
  }
  return rewriter.stats;
}

// --- Node-set intern predicate folding --------------------------------------

namespace {

// Pure value builtins a foldable predicate may call: functions of their
// arguments and the context ITEM only -- nothing that observes position(),
// last(), variables, the dynamic context, or has effects. Note the absence
// of position/last (focus-dependent), trace/error (trace-parity rule),
// doc/collection (reach outside the candidate subtree), and generate-id
// (identity-dependent across documents).
bool IsInternFoldableBuiltin(const std::string& stripped) {
  static const char* const kAllowed[] = {
      "abs",        "avg",           "boolean",          "ceiling",
      "concat",     "contains",      "count",            "data",
      "empty",      "ends-with",     "exists",           "false",
      "floor",      "local-name",    "lower-case",       "max",
      "min",        "name",          "normalize-space",  "not",
      "number",     "round",         "starts-with",      "string",
      "string-join", "string-length", "substring",
      "substring-after", "substring-before", "sum", "translate",
      "true",       "upper-case",
  };
  for (const char* name : kAllowed) {
    if (stripped == name) return true;
  }
  return false;
}

// The boolean-valued builtins among the above, acceptable as a predicate's
// TOP-LEVEL expression. The distinction matters because XPath predicate
// semantics treat a numeric predicate value as a position test: folding
// `[count(c)]` would freeze a position-dependent selection, while
// `[exists(c)]` is a pure tree function.
bool IsInternBooleanBuiltin(const std::string& stripped) {
  return stripped == "not" || stripped == "exists" || stripped == "empty" ||
         stripped == "boolean" || stripped == "contains" ||
         stripped == "starts-with" || stripped == "ends-with" ||
         stripped == "true" || stripped == "false";
}

struct FoldScanner {
  const UserFunctionLookup& is_user_function;
  // Attribute-only mode: every path must be a single attribute-axis step.
  bool attr_only = false;

  bool UserOrUnknown(const Expr& e) const {
    std::string stripped = e.name;
    if (StartsWith(stripped, "fn:")) stripped = stripped.substr(3);
    size_t arity = e.children.size();
    if (is_user_function != nullptr &&
        (is_user_function(e.name, arity) ||
         is_user_function(stripped, arity))) {
      return true;
    }
    return !IsBuiltinName(stripped);
  }

  static std::string Stripped(const Expr& e) {
    std::string stripped = e.name;
    if (StartsWith(stripped, "fn:")) stripped = stripped.substr(3);
    return stripped;
  }

  bool FoldablePath(const Expr& e) const {
    if (e.rooted || e.has_base) return false;  // must start at the candidate
    if (e.steps.empty()) return false;
    if (attr_only) {
      if (e.steps.size() != 1) return false;
      const PathStep& s = e.steps[0];
      return !s.is_filter && s.axis == Axis::kAttribute &&
             s.predicates.empty() &&
             (s.test.kind == NodeTestKind::kName ||
              s.test.kind == NodeTestKind::kAnyName);
    }
    for (const PathStep& s : e.steps) {
      if (s.is_filter) return false;
      switch (s.axis) {
        case Axis::kChild:
        case Axis::kAttribute:
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
        case Axis::kSelf:
          break;  // downward: stays inside the candidate's subtree
        default:
          return false;  // parent/ancestor/sibling escape the subtree
      }
      for (const ExprPtr& p : s.predicates) {
        // Nested predicates get their own focus; integer-literal position
        // picks and foldable boolean shapes are both pure tree functions.
        if (p->kind == ExprKind::kLiteral &&
            p->literal_type == Expr::LiteralType::kInteger) {
          continue;
        }
        if (!FoldableBool(*p)) return false;
      }
    }
    return true;
  }

  bool FoldableBool(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kBinary:
        switch (e.op) {
          case BinOp::kAnd:
          case BinOp::kOr:
            return FoldableBool(*e.children[0]) && FoldableBool(*e.children[1]);
          case BinOp::kGenEq:
          case BinOp::kGenNe:
          case BinOp::kGenLt:
          case BinOp::kGenLe:
          case BinOp::kGenGt:
          case BinOp::kGenGe:
          case BinOp::kValEq:
          case BinOp::kValNe:
          case BinOp::kValLt:
          case BinOp::kValLe:
          case BinOp::kValGt:
          case BinOp::kValGe:
          case BinOp::kIs:
            return FoldableValue(*e.children[0]) &&
                   FoldableValue(*e.children[1]);
          default:
            return false;  // arithmetic/union/range: value, maybe numeric
        }
      case ExprKind::kFunctionCall: {
        if (UserOrUnknown(e)) return false;
        if (!IsInternBooleanBuiltin(Stripped(e))) return false;
        for (const ExprPtr& c : e.children) {
          if (!FoldableValue(*c)) return false;
        }
        return true;
      }
      case ExprKind::kPath:
        // A node path's effective boolean value is "any nodes?" -- node
        // sequences are never mistaken for position tests.
        return FoldablePath(e);
      default:
        return false;
    }
  }

  bool FoldableValue(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
      case ExprKind::kTextLiteral:
      case ExprKind::kEmptySequence:
      case ExprKind::kContextItem:
        return true;
      case ExprKind::kSequence: {
        for (const ExprPtr& c : e.children) {
          if (!FoldableValue(*c)) return false;
        }
        return true;
      }
      case ExprKind::kPath:
        return FoldablePath(e);
      case ExprKind::kBinary:
        switch (e.op) {
          case BinOp::kAnd:
          case BinOp::kOr:
            return FoldableBool(e);
          case BinOp::kAdd:
          case BinOp::kSub:
          case BinOp::kMul:
          case BinOp::kDiv:
          case BinOp::kIdiv:
          case BinOp::kMod:
          case BinOp::kUnion:
          case BinOp::kIntersect:
          case BinOp::kExcept:
          case BinOp::kTo:
            return FoldableValue(*e.children[0]) &&
                   FoldableValue(*e.children[1]);
          default:
            // Comparisons are boolean-valued, fine as subexpressions too.
            return FoldableBool(e);
        }
      case ExprKind::kUnary:
        return FoldableValue(*e.children[0]);
      case ExprKind::kIf:
        return FoldableValue(*e.children[0]) &&
               FoldableValue(*e.children[1]) && FoldableValue(*e.children[2]);
      case ExprKind::kFunctionCall: {
        if (UserOrUnknown(e)) return false;
        if (!IsInternFoldableBuiltin(Stripped(e))) return false;
        for (const ExprPtr& c : e.children) {
          if (!FoldableValue(*c)) return false;
        }
        return true;
      }
      default:
        // Variables (dynamic environment), FLWOR/quantified (bindings),
        // constructors (fresh node identities per evaluation), casts kept
        // out until needed: all unfoldable.
        return false;
    }
  }
};

}  // namespace

bool InternFoldablePredicate(const Expr& pred,
                             const UserFunctionLookup& is_user_function) {
  FoldScanner scanner{is_user_function, /*attr_only=*/false};
  return scanner.FoldableBool(pred);
}

bool InternAttributeOnlyPredicate(const Expr& pred,
                                  const UserFunctionLookup& is_user_function) {
  FoldScanner scanner{is_user_function, /*attr_only=*/true};
  return scanner.FoldableBool(pred);
}

}  // namespace lll::xq
