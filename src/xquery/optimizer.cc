#include "xquery/optimizer.h"

#include <functional>

#include "core/string_util.h"
#include "xquery/eval.h"

namespace lll::xq {

namespace {

// Visits every subexpression of `e` (including predicates, clauses,
// constructor parts) except function bodies.
void ForEachChild(const Expr& e, const std::function<void(const Expr&)>& fn) {
  for (const ExprPtr& c : e.children) fn(*c);
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) fn(*p);
  }
  for (const FlworClause& c : e.clauses) fn(*c.expr);
  for (const OrderSpec& o : e.order_by) fn(*o.key);
  for (const DirectAttribute& a : e.attributes) {
    for (const ExprPtr& p : a.value_parts) fn(*p);
  }
}

bool IsTraceCall(const Expr& e) {
  return e.kind == ExprKind::kFunctionCall &&
         (e.name == "trace" || e.name == "fn:trace");
}

bool IsErrorCall(const Expr& e) {
  return e.kind == ExprKind::kFunctionCall &&
         (e.name == "error" || e.name == "fn:error");
}

// Collects pointers to every trace() call in the tree, for the swallowed-
// trace rewrite notes (the count alone can't say WHERE the calls were).
void CollectTraceCalls(const Expr& e, std::vector<const Expr*>* out) {
  if (IsTraceCall(e)) out->push_back(&e);
  ForEachChild(e, [out](const Expr& c) { CollectTraceCalls(c, out); });
}

std::string DescribeStep(const PathStep& step) {
  std::string out = AxisName(step.axis);
  out += "::";
  switch (step.test.kind) {
    case NodeTestKind::kName:
      out += step.test.name;
      break;
    case NodeTestKind::kAnyName:
      out += "*";
      break;
    case NodeTestKind::kText:
      out += "text()";
      break;
    case NodeTestKind::kComment:
      out += "comment()";
      break;
    case NodeTestKind::kPi:
      out += "processing-instruction()";
      break;
    case NodeTestKind::kAnyNode:
      out += "node()";
      break;
  }
  return out;
}

}  // namespace

const char* RewriteNoteKindName(RewriteNote::Kind kind) {
  switch (kind) {
    case RewriteNote::Kind::kConstantFolded:
      return "constant-folded";
    case RewriteNote::Kind::kDeadLetEliminated:
      return "dead-let-eliminated";
    case RewriteNote::Kind::kTraceSwallowed:
      return "trace-swallowed";
    case RewriteNote::Kind::kOrderedStep:
      return "ordered-step";
  }
  return "unknown";
}

size_t CountTraceCalls(const Expr& e) {
  size_t n = IsTraceCall(e) ? 1 : 0;
  ForEachChild(e, [&n](const Expr& c) { n += CountTraceCalls(c); });
  return n;
}

size_t CountVariableUses(const Expr& e, const std::string& name) {
  if (e.kind == ExprKind::kVarRef) return e.name == name ? 1 : 0;
  if (e.kind == ExprKind::kQuantified) {
    size_t n = CountVariableUses(*e.children[0], name);
    if (e.name != name) n += CountVariableUses(*e.children[1], name);
    return n;
  }
  if (e.kind == ExprKind::kFlwor) {
    size_t n = 0;
    bool shadowed = false;
    for (const FlworClause& c : e.clauses) {
      if (shadowed) break;
      n += CountVariableUses(*c.expr, name);
      if (c.kind != FlworClause::Kind::kWhere &&
          (c.var == name || c.pos_var == name)) {
        shadowed = true;
      }
    }
    if (!shadowed) {
      for (const OrderSpec& o : e.order_by) {
        n += CountVariableUses(*o.key, name);
      }
      n += CountVariableUses(*e.children[0], name);
    }
    return n;
  }
  size_t n = 0;
  ForEachChild(e, [&](const Expr& c) { n += CountVariableUses(c, name); });
  return n;
}

namespace {

// Purity with a memo over user-defined functions; recursive functions are
// treated optimistically (pure unless their body shows otherwise), which is
// what an aggressive query optimizer does.
struct PurityAnalyzer {
  const Module& module;
  bool recognize_trace;
  std::map<std::string, int> function_state;  // 0=analyzing, 1=pure, 2=impure

  bool Pure(const Expr& e) {
    if (IsErrorCall(e)) return false;  // eliminating error() changes outcomes
    if (IsTraceCall(e)) {
      if (recognize_trace) return false;  // the "fixed" optimizer
      // Galax-era behavior: trace looks pure, so a dead let swallows it.
    }
    if (e.kind == ExprKind::kFunctionCall && !IsTraceCall(e)) {
      std::string name = e.name;
      if (StartsWith(name, "fn:")) name = name.substr(3);
      bool builtin = IsBuiltinName(e.name) || IsBuiltinName(name);
      if (!builtin) {
        const FunctionDecl* decl = nullptr;
        for (const FunctionDecl& fn : module.functions) {
          if (fn.name == e.name && fn.params.size() == e.children.size()) {
            decl = &fn;
            break;
          }
        }
        if (decl == nullptr) return false;  // unknown callee: assume impure
        auto [it, inserted] = function_state.try_emplace(decl->name, 0);
        if (inserted) {
          bool body_pure = Pure(*decl->body);
          it = function_state.find(decl->name);
          it->second = body_pure ? 1 : 2;
        }
        if (it->second == 2) return false;
        // state 0 (self-recursive) or 1: treat as pure.
      }
    }
    bool pure = true;
    ForEachChild(e, [&](const Expr& c) {
      if (pure && !Pure(c)) pure = false;
    });
    return pure;
  }
};

struct Rewriter {
  const Module& module;
  const OptimizerOptions& options;
  OptimizerStats stats;
  PurityAnalyzer purity;

  explicit Rewriter(const Module& m, const OptimizerOptions& opts)
      : module(m), options(opts), purity{m, opts.recognize_trace, {}} {}

  void Rewrite(Expr* e) {
    // Bottom-up: rewrite children first.
    for (ExprPtr& c : e->children) Rewrite(c.get());
    for (PathStep& s : e->steps) {
      for (ExprPtr& p : s.predicates) Rewrite(p.get());
    }
    for (FlworClause& c : e->clauses) Rewrite(c.expr.get());
    for (OrderSpec& o : e->order_by) Rewrite(o.key.get());
    for (DirectAttribute& a : e->attributes) {
      for (ExprPtr& p : a.value_parts) Rewrite(p.get());
    }

    if (options.dead_let_elimination && e->kind == ExprKind::kFlwor) {
      EliminateDeadLets(e);
    }
    if (options.constant_folding) FoldConstants(e);
  }

  // Scans a FLWOR for `let $v := E` clauses where $v is unused downstream
  // and E is pure, and deletes them. Runs to a local fixpoint.
  void EliminateDeadLets(Expr* flwor) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < flwor->clauses.size(); ++i) {
        const FlworClause& clause = flwor->clauses[i];
        if (clause.kind != FlworClause::Kind::kLet) continue;
        size_t uses = 0;
        bool shadowed = false;
        for (size_t j = i + 1; j < flwor->clauses.size() && !shadowed; ++j) {
          uses += CountVariableUses(*flwor->clauses[j].expr, clause.var);
          if (flwor->clauses[j].kind != FlworClause::Kind::kWhere &&
              (flwor->clauses[j].var == clause.var ||
               flwor->clauses[j].pos_var == clause.var)) {
            shadowed = true;
          }
        }
        if (!shadowed) {
          for (const OrderSpec& o : flwor->order_by) {
            uses += CountVariableUses(*o.key, clause.var);
          }
          uses += CountVariableUses(*flwor->children[0], clause.var);
        }
        if (uses != 0) continue;
        if (!purity.Pure(*clause.expr)) continue;
        std::vector<const Expr*> traces;
        CollectTraceCalls(*clause.expr, &traces);
        stats.eliminated_trace_calls += traces.size();
        ++stats.eliminated_lets;
        stats.notes.push_back(
            {RewriteNote::Kind::kDeadLetEliminated,
             "let $" + clause.var + " := ... is unused and pure; removed",
             clause.expr->line, clause.expr->col});
        for (const Expr* t : traces) {
          stats.notes.push_back(
              {RewriteNote::Kind::kTraceSwallowed,
               "trace() inside dead let $" + clause.var +
                   " was deleted with it; its output will never appear",
               t->line, t->col});
        }
        flwor->clauses.erase(flwor->clauses.begin() +
                             static_cast<ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
    // A FLWOR whose every clause was eliminated degenerates to its return
    // expression.
    if (flwor->clauses.empty() && flwor->order_by.empty()) {
      ExprPtr body = std::move(flwor->children[0]);
      *flwor = std::move(*body);
    }
  }

  void FoldConstants(Expr* e) {
    if (e->kind != ExprKind::kBinary) return;
    if (e->children.size() != 2) return;
    const Expr& a = *e->children[0];
    const Expr& b = *e->children[1];
    if (a.kind != ExprKind::kLiteral || b.kind != ExprKind::kLiteral) return;
    if (a.literal_type != Expr::LiteralType::kInteger ||
        b.literal_type != Expr::LiteralType::kInteger) {
      return;
    }
    int64_t x = a.integer;
    int64_t y = b.integer;
    int64_t value = 0;
    switch (e->op) {
      case BinOp::kAdd:
        value = x + y;
        break;
      case BinOp::kSub:
        value = x - y;
        break;
      case BinOp::kMul:
        value = x * y;
        break;
      case BinOp::kIdiv:
        if (y == 0) return;  // leave the runtime error in place
        value = x / y;
        break;
      case BinOp::kMod:
        if (y == 0) return;
        value = x % y;
        break;
      default:
        return;
    }
    Expr folded(ExprKind::kLiteral);
    folded.literal_type = Expr::LiteralType::kInteger;
    folded.integer = value;
    folded.line = e->line;
    folded.col = e->col;
    stats.notes.push_back({RewriteNote::Kind::kConstantFolded,
                           std::to_string(x) + " " + BinOpName(e->op) + " " +
                               std::to_string(y) + " folded to " +
                               std::to_string(value),
                           e->line, e->col});
    *e = std::move(folded);
    ++stats.folded_constants;
  }
};

// --- Order analysis ---------------------------------------------------------

// True if a call to `name` with `arity` args resolves to a builtin whose
// result is at most one item. A user-defined function of the same name/arity
// shadows the builtin in EvalFunctionCall, so it must not exist.
bool IsSingletonBuiltin(const Expr& e, const Module& module) {
  std::string name = e.name;
  if (StartsWith(name, "fn:")) name = name.substr(3);
  if (name != "doc" && name != "root" && name != "exactly-one" &&
      name != "zero-or-one") {
    return false;
  }
  for (const FunctionDecl& fn : module.functions) {
    if ((fn.name == e.name || fn.name == name) &&
        fn.params.size() == e.children.size()) {
      return false;  // shadowed by a user function of unknown cardinality
    }
  }
  return true;
}

struct OrderAnalyzer {
  const Module& module;
  size_t annotated = 0;
  std::vector<RewriteNote>* notes = nullptr;  // optional EXPLAIN feed

  OrderProp Analyze(Expr* e) {
    switch (e->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kTextLiteral:
      case ExprKind::kEmptySequence:
      case ExprKind::kContextItem:
        // The focus is a single item by definition; literals are singletons.
        return OrderProp::kSingleton;
      case ExprKind::kPath:
        return AnalyzePath(e);
      case ExprKind::kSequence: {
        if (e->children.size() == 1) return Analyze(e->children[0].get());
        for (ExprPtr& c : e->children) Analyze(c.get());
        return OrderProp::kNone;
      }
      case ExprKind::kIf: {
        Analyze(e->children[0].get());
        OrderProp then_prop = Analyze(e->children[1].get());
        OrderProp else_prop = Analyze(e->children[2].get());
        return MeetOrder(then_prop, else_prop);
      }
      case ExprKind::kTryCatch: {
        OrderProp body = Analyze(e->children[0].get());
        OrderProp handler = Analyze(e->children[1].get());
        return MeetOrder(body, handler);
      }
      case ExprKind::kFlwor: {
        bool iterates = false;
        for (FlworClause& c : e->clauses) {
          Analyze(c.expr.get());
          if (c.kind == FlworClause::Kind::kFor) iterates = true;
        }
        for (OrderSpec& o : e->order_by) Analyze(o.key.get());
        OrderProp body = Analyze(e->children[0].get());
        // A let/where-only FLWOR evaluates its return at most once, so the
        // body's property survives; a for-loop concatenates tuples.
        if (!iterates && e->order_by.empty()) return body;
        return OrderProp::kNone;
      }
      case ExprKind::kFunctionCall: {
        for (ExprPtr& c : e->children) Analyze(c.get());
        return IsSingletonBuiltin(*e, module) ? OrderProp::kSingleton
                                              : OrderProp::kNone;
      }
      case ExprKind::kBinary: {
        Analyze(e->children[0].get());
        Analyze(e->children[1].get());
        switch (e->op) {
          case BinOp::kUnion:
          case BinOp::kIntersect:
          case BinOp::kExcept:
            // The evaluator normalizes set-operator results.
            return OrderProp::kOrdered;
          case BinOp::kTo:
            return OrderProp::kNone;  // many atomics; node order is moot
          default:
            return OrderProp::kSingleton;  // comparisons/arithmetic: <= 1 item
        }
      }
      case ExprKind::kUnary:
      case ExprKind::kQuantified:
      case ExprKind::kCastAs:
      case ExprKind::kCastableAs:
      case ExprKind::kInstanceOf:
      case ExprKind::kDirectElement:
      case ExprKind::kCompElement:
      case ExprKind::kCompAttribute:
      case ExprKind::kCompText:
      case ExprKind::kCompComment:
      case ExprKind::kCompDocument: {
        for (ExprPtr& c : e->children) Analyze(c.get());
        for (DirectAttribute& a : e->attributes) {
          for (ExprPtr& p : a.value_parts) Analyze(p.get());
        }
        return OrderProp::kSingleton;
      }
      case ExprKind::kVarRef:
        // No environment tracking; the evaluator's dynamic ordered_deduped
        // bit covers variables bound to already-normalized sequences.
        return OrderProp::kNone;
    }
    return OrderProp::kNone;
  }

  OrderProp AnalyzePath(Expr* e) {
    OrderProp prop;
    if (e->has_base) {
      prop = Analyze(e->children[0].get());
    } else {
      // Rooted paths start at the context root; relative paths start at the
      // focus item. Either way: one node.
      prop = OrderProp::kSingleton;
    }
    // Interning applies to the leading predicate-free chain of a path whose
    // base is a lone document node: the rooted form, or fn:doc(...).
    bool internable =
        (!e->has_base && e->rooted) ||
        (e->has_base && e->children[0]->kind == ExprKind::kFunctionCall &&
         (e->children[0]->name == "doc" || e->children[0]->name == "fn:doc"));
    for (PathStep& step : e->steps) {
      for (ExprPtr& p : step.predicates) Analyze(p.get());
      if (step.is_filter) {
        internable = false;
        continue;  // a subset preserves every property
      }
      // Advisory streaming/interning annotations (rendered by EXPLAIN); the
      // evaluator re-derives both per call from dynamic conditions.
      step.statically_streamable = IsStreamableAxis(step.axis);
      if (step.statically_streamable) {
        for (const ExprPtr& p : step.predicates) {
          if (ContainsLastCall(*p)) {
            step.statically_streamable = false;
            break;
          }
        }
      }
      internable = internable && step.predicates.empty();
      step.statically_internable = internable;
      prop = TransferOrder(prop, step.axis);
      step.statically_ordered = prop != OrderProp::kNone;
      if (step.statically_ordered) {
        ++annotated;
        if (notes != nullptr) {
          notes->push_back({RewriteNote::Kind::kOrderedStep,
                            "step " + DescribeStep(step) +
                                " proven document-ordered; normalizing sort "
                                "skipped",
                            e->line, e->col});
        }
      }
    }
    return prop;
  }
};

}  // namespace

OrderProp AnalyzeOrder(Expr* e, const Module& module, size_t* annotated) {
  OrderAnalyzer analyzer{module};
  OrderProp prop = analyzer.Analyze(e);
  if (annotated != nullptr) *annotated += analyzer.annotated;
  return prop;
}

namespace {

void AnalyzeOrderNoted(Expr* e, const Module& module, OptimizerStats* stats) {
  OrderAnalyzer analyzer{module, 0, &stats->notes};
  analyzer.Analyze(e);
  stats->ordered_steps_annotated += analyzer.annotated;
}

}  // namespace

bool IsPure(const Expr& e, const Module& module, bool recognize_trace) {
  PurityAnalyzer analyzer{module, recognize_trace, {}};
  return analyzer.Pure(e);
}

OptimizerStats Optimize(Module* module, const OptimizerOptions& options) {
  Rewriter rewriter(*module, options);
  for (FunctionDecl& fn : module->functions) {
    rewriter.Rewrite(fn.body.get());
  }
  for (VariableDecl& var : module->variables) {
    rewriter.Rewrite(var.expr.get());
  }
  rewriter.Rewrite(module->body.get());
  if (options.order_analysis) {
    // After rewriting: dead-let elimination can degenerate FLWORs into their
    // bodies, which makes more paths statically analyzable.
    for (FunctionDecl& fn : module->functions) {
      AnalyzeOrderNoted(fn.body.get(), *module, &rewriter.stats);
    }
    for (VariableDecl& var : module->variables) {
      AnalyzeOrderNoted(var.expr.get(), *module, &rewriter.stats);
    }
    AnalyzeOrderNoted(module->body.get(), *module, &rewriter.stats);
  }
  return rewriter.stats;
}

}  // namespace lll::xq
