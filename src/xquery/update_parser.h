#ifndef LLL_XQUERY_UPDATE_PARSER_H_
#define LLL_XQUERY_UPDATE_PARSER_H_

#include <string_view>

#include "core/result.h"
#include "xquery/update_ast.h"

namespace lll::xq {

// Parser for the FLUX-style update sublanguage. Grammar (keep these
// productions in lockstep with DESIGN.md section 15 -- scripts/check.sh
// greps each statement alternative against the doc):
//
//   script    ::= statement (";" statement)*
//   statement ::= "insert" node ("into" | "before" | "after") path
//               | "delete" path
//               | "replace" path "with" node
//               | "rename" path "as" qname
//   node      ::= an XML fragment (one element) | a quoted string (text node)
//   path      ::= an XQuery path expression selecting target nodes
//
// Keywords bind only at TOP LEVEL: outside quotes, outside XML fragments,
// and outside predicate brackets/parens -- so `insert "into the log" into
// /log` and `replace //a[b = "x with y"] with <b/>` parse as intended.

// True iff `source` looks like an update script (first word is one of the
// four verbs). The server and REPL use this to dispatch between query and
// update handling; a true return does NOT promise the script parses.
bool IsUpdateScript(std::string_view source);

Result<UpdateScript> ParseUpdateScript(std::string_view source);

}  // namespace lll::xq

#endif  // LLL_XQUERY_UPDATE_PARSER_H_
