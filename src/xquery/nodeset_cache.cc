#include "xquery/nodeset_cache.h"

#include <cinttypes>
#include <cstdio>

namespace lll::xq {

namespace {

uint64_t CurrentVersion(const xml::Document* doc,
                        const CachedNodeSet::Guard& g) {
  switch (g.kind) {
    case CachedNodeSet::GuardKind::kLocal:
      return doc->local_version_of(g.node);
    case CachedNodeSet::GuardKind::kLocalChildren:
      return doc->child_local_version_of(g.node);
    case CachedNodeSet::GuardKind::kSubtree:
      return doc->subtree_version_of(g.node);
  }
  return 0;
}

}  // namespace

std::string NodeSetCache::MakeKey(const xml::Node* base,
                                  const std::string& fingerprint) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "@%" PRIu32 "|",
                base->document()->doc_id(), base->index());
  return std::string(buf) + fingerprint;
}

CachedNodeSet::Guard NodeSetCache::GuardFor(const xml::Node* n,
                                            CachedNodeSet::GuardKind kind) {
  CachedNodeSet::Guard g;
  g.node = n->index();
  g.kind = kind;
  g.version = CurrentVersion(n->document(), {n->index(), kind, 0});
  return g;
}

std::shared_ptr<const CachedNodeSet> NodeSetCache::Get(
    const xml::Document* doc, const std::string& key, Outcome* outcome) {
  std::shared_ptr<const CachedNodeSet> entry = cache_.Get(key);
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = Outcome::kMiss;
    return nullptr;
  }
  bool stale = entry->doc_id != doc->doc_id();
  if (!stale) {
    for (const CachedNodeSet::Guard& g : entry->guards) {
      if (CurrentVersion(doc, g) != g.version) {
        stale = true;
        break;
      }
    }
  }
  if (stale) {
    // A failed guard is an invalidation, not a plain miss: the caller DID
    // intern this chain before, and the edit history is what evicted it.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    const bool partial = entry->subtree_scoped;
    if (partial) partial_invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) {
      *outcome = partial ? Outcome::kStalePartial : Outcome::kStale;
    }
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (outcome != nullptr) *outcome = Outcome::kHit;
  return entry;
}

void NodeSetCache::Put(const std::string& key, uint64_t doc_id,
                       std::vector<CachedNodeSet::Guard> guards,
                       bool subtree_scoped, xdm::Sequence nodes) {
  auto entry = std::make_shared<CachedNodeSet>();
  entry->doc_id = doc_id;
  entry->guards = std::move(guards);
  entry->subtree_scoped = subtree_scoped;
  entry->nodes = std::move(nodes);
  cache_.Put(key, std::move(entry));
}

size_t NodeSetCache::RetainDocuments(const std::vector<uint64_t>& doc_ids) {
  return cache_.EraseIf([&doc_ids](const std::string&,
                                   const CachedNodeSet& entry) {
    for (uint64_t id : doc_ids) {
      if (entry.doc_id == id) return false;
    }
    return true;
  });
}

void NodeSetCache::ExportTo(MetricsRegistry* metrics,
                            const std::string& prefix) const {
  metrics->gauge(prefix + ".hits").Set(static_cast<int64_t>(hits()));
  metrics->gauge(prefix + ".misses").Set(static_cast<int64_t>(misses()));
  metrics->gauge(prefix + ".invalidations")
      .Set(static_cast<int64_t>(invalidations()));
  metrics->gauge(prefix + ".partial_invalidations")
      .Set(static_cast<int64_t>(partial_invalidations()));
  metrics->gauge(prefix + ".size").Set(static_cast<int64_t>(size()));
}

}  // namespace lll::xq
