#include "xquery/nodeset_cache.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

namespace lll::xq {

namespace {

uint64_t CurrentVersion(const xml::Document* doc,
                        const CachedNodeSet::Guard& g) {
  switch (g.kind) {
    case CachedNodeSet::GuardKind::kLocal:
      return doc->local_version_of(g.node);
    case CachedNodeSet::GuardKind::kLocalChildren:
      return doc->child_local_version_of(g.node);
    case CachedNodeSet::GuardKind::kSubtree:
      return doc->subtree_version_of(g.node);
  }
  return 0;
}

}  // namespace

std::string NodeSetCache::MakeKey(const xml::Node* base,
                                  const std::string& fingerprint) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 "@%" PRIu32 "|",
                base->document()->doc_id(), base->index());
  return std::string(buf) + fingerprint;
}

CachedNodeSet::Guard NodeSetCache::GuardFor(const xml::Node* n,
                                            CachedNodeSet::GuardKind kind) {
  CachedNodeSet::Guard g;
  g.node = n->index();
  g.kind = kind;
  g.version = CurrentVersion(n->document(), {n->index(), kind, 0});
  return g;
}

std::shared_ptr<const CachedNodeSet> NodeSetCache::Get(
    const xml::Document* doc, const std::string& key, Outcome* outcome) {
  std::shared_ptr<const CachedNodeSet> entry = cache_.Get(key);
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = Outcome::kMiss;
    return nullptr;
  }
  bool stale = entry->doc_id != doc->doc_id();
  if (!stale) {
    for (const CachedNodeSet::Guard& g : entry->guards) {
      if (CurrentVersion(doc, g) != g.version) {
        stale = true;
        break;
      }
    }
  }
  if (stale) {
    // A failed guard is an invalidation, not a plain miss: the caller DID
    // intern this chain before, and the edit history is what evicted it.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    const bool partial = entry->subtree_scoped;
    if (partial) partial_invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) {
      *outcome = partial ? Outcome::kStalePartial : Outcome::kStale;
    }
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (outcome != nullptr) *outcome = Outcome::kHit;
  return entry;
}

void NodeSetCache::Put(const std::string& key, uint64_t doc_id,
                       std::vector<CachedNodeSet::Guard> guards,
                       bool subtree_scoped, xdm::Sequence nodes) {
  auto entry = std::make_shared<CachedNodeSet>();
  entry->doc_id = doc_id;
  entry->guards = std::move(guards);
  entry->subtree_scoped = subtree_scoped;
  entry->nodes = std::move(nodes);
  cache_.Put(key, std::move(entry));
}

size_t NodeSetCache::MigrateClone(const NodeSetCache& source,
                                  const xml::Document& from,
                                  const xml::Document& to,
                                  const std::vector<uint32_t>& node_map) {
  const uint32_t clone_nodes = static_cast<uint32_t>(to.node_count());
  // Maps a source node index into the clone; kNilNode if out of range or
  // dropped as debris.
  auto remap = [&node_map, clone_nodes](uint32_t idx) -> uint32_t {
    if (idx >= node_map.size()) return xml::kNilNode;
    const uint32_t mapped = node_map[idx];
    return mapped < clone_nodes ? mapped : xml::kNilNode;
  };
  auto entries = source.cache_.Snapshot();
  size_t migrated = 0;
  // Snapshot() is most- to least-recent; reinsert in reverse so the most
  // recently used entry of the source is also the freshest here.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const std::string& key = it->first;
    const std::shared_ptr<const CachedNodeSet>& entry = it->second;
    if (entry->doc_id != from.doc_id()) continue;
    // Remap the node set through the clone's renumbering. Entries are node
    // sets by construction; anything else -- or an entry touching a node
    // the clone dropped (detached debris) -- is skipped: a skip is just a
    // cold miss on the new snapshot.
    bool mappable = true;
    xdm::Sequence nodes;
    for (const xdm::Item& item : entry->nodes.items()) {
      const uint32_t mapped =
          item.is_node() && item.node()->document() == &from
              ? remap(item.node()->index())
              : xml::kNilNode;
      if (mapped == xml::kNilNode) {
        mappable = false;
        break;
      }
      nodes.Append(xdm::Item::NodeRef(to.NodeAt(mapped)));
    }
    if (!mappable) continue;
    std::vector<CachedNodeSet::Guard> guards = entry->guards;
    for (CachedNodeSet::Guard& g : guards) {
      g.node = remap(g.node);
      if (g.node == xml::kNilNode) {
        mappable = false;
        break;
      }
    }
    if (!mappable) continue;
    if (entry->nodes.ordered_deduped()) nodes.MarkOrderedDeduped();
    // Key layout is "<doc_id>@<base_index>|<fingerprint>" (MakeKey): swap
    // the doc_id prefix and re-base the node index through the map, keep
    // the fingerprint.
    const size_t at = key.find('@');
    const size_t bar = key.find('|', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || bar == std::string::npos) continue;
    uint32_t base = 0;
    {
      const char* first = key.data() + at + 1;
      const char* last = key.data() + bar;
      auto [ptr, ec] = std::from_chars(first, last, base);
      if (ec != std::errc() || ptr != last) continue;
    }
    const uint32_t mapped_base = remap(base);
    if (mapped_base == xml::kNilNode) continue;
    Put(std::to_string(to.doc_id()) + "@" + std::to_string(mapped_base) +
            key.substr(bar),
        to.doc_id(), std::move(guards), entry->subtree_scoped,
        std::move(nodes));
    ++migrated;
  }
  return migrated;
}

size_t NodeSetCache::RetainDocuments(const std::vector<uint64_t>& doc_ids) {
  return cache_.EraseIf([&doc_ids](const std::string&,
                                   const CachedNodeSet& entry) {
    for (uint64_t id : doc_ids) {
      if (entry.doc_id == id) return false;
    }
    return true;
  });
}

void NodeSetCache::ExportTo(MetricsRegistry* metrics,
                            const std::string& prefix) const {
  metrics->gauge(prefix + ".hits").Set(static_cast<int64_t>(hits()));
  metrics->gauge(prefix + ".misses").Set(static_cast<int64_t>(misses()));
  metrics->gauge(prefix + ".invalidations")
      .Set(static_cast<int64_t>(invalidations()));
  metrics->gauge(prefix + ".partial_invalidations")
      .Set(static_cast<int64_t>(partial_invalidations()));
  metrics->gauge(prefix + ".size").Set(static_cast<int64_t>(size()));
}

}  // namespace lll::xq
