#include "xquery/nodeset_cache.h"

#include <cinttypes>
#include <cstdio>

namespace lll::xq {

std::string NodeSetCache::MakeKey(const xml::Node* base,
                                  const std::string& fingerprint) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p|", static_cast<const void*>(base));
  return std::string(buf) + fingerprint;
}

std::shared_ptr<const CachedNodeSet> NodeSetCache::Get(
    const xml::Document* doc, const std::string& key, Outcome* outcome) {
  std::shared_ptr<const CachedNodeSet> entry = cache_.Get(key);
  if (entry == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = Outcome::kMiss;
    return nullptr;
  }
  if (entry->doc_id != doc->doc_id() ||
      entry->structure_version != doc->structure_version()) {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (outcome != nullptr) *outcome = Outcome::kStale;
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (outcome != nullptr) *outcome = Outcome::kHit;
  return entry;
}

void NodeSetCache::Put(const std::string& key, uint64_t doc_id,
                       uint64_t version, xdm::Sequence nodes) {
  auto entry = std::make_shared<CachedNodeSet>();
  entry->doc_id = doc_id;
  entry->structure_version = version;
  entry->nodes = std::move(nodes);
  cache_.Put(key, std::move(entry));
}

void NodeSetCache::ExportTo(MetricsRegistry* metrics,
                            const std::string& prefix) const {
  metrics->gauge(prefix + ".hits").Set(static_cast<int64_t>(hits()));
  metrics->gauge(prefix + ".misses").Set(static_cast<int64_t>(misses()));
  metrics->gauge(prefix + ".invalidations")
      .Set(static_cast<int64_t>(invalidations()));
  metrics->gauge(prefix + ".size").Set(static_cast<int64_t>(size()));
}

}  // namespace lll::xq
