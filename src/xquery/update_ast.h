#ifndef LLL_XQUERY_UPDATE_AST_H_
#define LLL_XQUERY_UPDATE_AST_H_

#include <string>
#include <vector>

namespace lll::xq {

// The FLUX-style functional update sublanguage (PAPERS.md, *Flux:
// Functional Updates for XML*): four statement forms over XQuery target
// paths, with snapshot semantics -- every target path of a script is
// evaluated against the PRE-update document, and no statement observes
// another's effect within one script (see update_eval.h, DESIGN.md
// section 15). This is the language surface the paper's thesis predicts a
// "read-only" little language grows: the AWB workload edits models and
// regenerates, so the query engine sprouts an update arm.

enum class UpdateOp : uint8_t { kInsert, kDelete, kReplace, kRename };

// Where an inserted node lands relative to the target: kInto appends as the
// target's last child; kBefore/kAfter are siblings of the target.
enum class InsertPosition : uint8_t { kInto, kBefore, kAfter };

const char* UpdateOpName(UpdateOp op);
const char* InsertPositionName(InsertPosition position);

// One parsed statement. `target_path` is XQuery path text (compiled by
// update_eval); the payload of insert/replace is either an XML fragment
// (one element, node_is_text == false) or the content of a quoted string
// literal (a text node, node_is_text == true).
struct UpdateStatement {
  UpdateOp op = UpdateOp::kDelete;
  InsertPosition position = InsertPosition::kInto;  // kInsert only
  std::string target_path;
  std::string node_xml;        // kInsert / kReplace payload
  bool node_is_text = false;   // payload was a quoted text node
  std::string qname;           // kRename only
};

// A script: one or more statements separated by top-level ';'. All target
// paths bind to the same pre-update snapshot when applied.
struct UpdateScript {
  std::vector<UpdateStatement> statements;
  std::string source;  // original text, for EXPLAIN and diagnostics
};

// Canonical renderings (re-parseable; EXPLAIN and error messages use them).
std::string ToString(const UpdateStatement& statement);
std::string ToString(const UpdateScript& script);

}  // namespace lll::xq

#endif  // LLL_XQUERY_UPDATE_AST_H_
