#include "xquery/update_eval.h"

#include <map>
#include <utility>

#include "xml/parser.h"
#include "xquery/update_parser.h"

namespace lll::xq {

namespace {

std::string StatementLabel(size_t index, const UpdateStatement& s) {
  return "statement " + std::to_string(index + 1) + " (" + ToString(s) + ")";
}

// The node whose local/child-list versions applying the statement to
// `target` will bump -- the guard anchor EXPLAIN reports and the charge
// point the mutation primitives route through BumpEditVersion.
const xml::Node* ChargePointOf(const UpdateStatement& s,
                               const xml::Node* target) {
  switch (s.op) {
    case UpdateOp::kInsert:
      return s.position == InsertPosition::kInto ? target : target->parent();
    case UpdateOp::kDelete:
    case UpdateOp::kReplace:
      return target->parent();
    case UpdateOp::kRename:
      return target->is_attribute() ? target->parent() : target;
  }
  return target;
}

// Per-op target validation, run against the pre-update snapshot before any
// mutation: a failure rejects the whole script with the document untouched.
Status ValidateTarget(const UpdateStatement& s, const xml::Node* node) {
  switch (s.op) {
    case UpdateOp::kDelete:
      if (node->is_document()) {
        return Status::Invalid("update: cannot delete the document node");
      }
      return Status::Ok();
    case UpdateOp::kRename:
      if (!node->is_element() && !node->is_attribute() &&
          node->kind() != xml::NodeKind::kProcessingInstruction) {
        return Status::Invalid(
            "update: rename targets must be elements, attributes, or "
            "processing instructions, got " +
            NodePathOf(node));
      }
      return Status::Ok();
    case UpdateOp::kReplace:
      if (node->is_document() || node->is_attribute() ||
          node->parent() == nullptr) {
        return Status::Invalid(
            "update: replace targets must be attached non-attribute "
            "children, got " +
            NodePathOf(node));
      }
      return Status::Ok();
    case UpdateOp::kInsert:
      if (s.position == InsertPosition::kInto) {
        if (!node->is_element() && !node->is_document()) {
          return Status::Invalid(
              "update: insert-into targets must be elements or the "
              "document node, got " +
              NodePathOf(node));
        }
        return Status::Ok();
      }
      if (node->is_document() || node->is_attribute() ||
          node->parent() == nullptr) {
        return Status::Invalid(
            "update: insert before/after targets must be attached "
            "non-attribute children, got " +
            NodePathOf(node));
      }
      return Status::Ok();
  }
  return Status::Internal("update: unknown op");
}

// A fresh copy of the statement's payload, owned by `doc` and detached:
// each target of an insert/replace receives its own copy.
xml::Node* MaterializePayload(const CompiledUpdateStatement& cs,
                              xml::Document* doc) {
  if (cs.statement.node_is_text) {
    return doc->CreateText(cs.statement.node_xml);
  }
  return doc->ImportNode(cs.payload->DocumentElement());
}

// Evaluates one statement's target path against the document, enforcing
// that every selected item is a node of THAT document (constructed nodes
// and atomics make no sense as update targets).
Result<std::vector<xml::Node*>> SelectTargets(const CompiledUpdateStatement& cs,
                                              size_t index, xml::Document* doc,
                                              const EvalOptions& eval) {
  ExecuteOptions eopts;
  eopts.context_node = doc->root();
  eopts.eval = eval;
  Result<QueryResult> r = Execute(cs.target, eopts);
  if (!r.ok()) {
    return r.status().AddContext("while selecting targets of " +
                                 StatementLabel(index, cs.statement));
  }
  std::vector<xml::Node*> nodes;
  nodes.reserve(r->sequence.size());
  for (const xdm::Item& item : r->sequence.items()) {
    if (!item.is_node() || item.node()->document() != doc) {
      return Status::Invalid("update: target path of " +
                             StatementLabel(index, cs.statement) +
                             " selected an item that is not a node of the "
                             "target document");
    }
    nodes.push_back(item.node());
  }
  return nodes;
}

}  // namespace

Result<CompiledUpdate> CompileUpdate(const UpdateScript& script,
                                     const CompileOptions& options) {
  CompiledUpdate compiled;
  compiled.source = script.source.empty() ? ToString(script) : script.source;
  compiled.statements.reserve(script.statements.size());
  for (size_t i = 0; i < script.statements.size(); ++i) {
    const UpdateStatement& s = script.statements[i];
    Result<CompiledQuery> target = Compile(s.target_path, options);
    if (!target.ok()) {
      return target.status().AddContext("while compiling the target path of " +
                                        StatementLabel(i, s));
    }
    CompiledUpdateStatement cs{s, std::move(*target), nullptr};
    if ((s.op == UpdateOp::kInsert || s.op == UpdateOp::kReplace) &&
        !s.node_is_text) {
      Result<std::unique_ptr<xml::Document>> payload = xml::Parse(s.node_xml);
      if (!payload.ok()) {
        return payload.status().AddContext(
            "while parsing the node payload of " + StatementLabel(i, s));
      }
      if ((*payload)->DocumentElement() == nullptr) {
        return Status::Invalid("update: node payload of " +
                               StatementLabel(i, s) + " has no element");
      }
      cs.payload = std::move(*payload);
    }
    compiled.statements.push_back(std::move(cs));
  }
  if (compiled.statements.empty()) {
    return Status::Invalid("update: empty script");
  }
  return compiled;
}

Result<CompiledUpdate> CompileUpdateText(std::string_view source,
                                         const CompileOptions& options) {
  LLL_ASSIGN_OR_RETURN(UpdateScript script, ParseUpdateScript(source));
  return CompileUpdate(script, options);
}

Result<UpdateStats> ApplyUpdate(const CompiledUpdate& update,
                                xml::Document* doc,
                                const UpdateOptions& options) {
  UpdateStats stats;

  // Phase 1 -- snapshot reads: every target path binds against the
  // pre-update document, before the first mutation.
  std::vector<std::vector<xml::Node*>> targets(update.statements.size());
  for (size_t i = 0; i < update.statements.size(); ++i) {
    LLL_ASSIGN_OR_RETURN(
        targets[i],
        SelectTargets(update.statements[i], i, doc, options.eval));
    for (const xml::Node* node : targets[i]) {
      LLL_RETURN_IF_ERROR(ValidateTarget(update.statements[i].statement, node));
    }
  }

  // Phase 2 -- conflict detection. delete/replace/rename claim their target
  // exclusively (two such claims on one node contradict, except
  // delete+delete, which agree); insert before/after additionally requires
  // its anchor to survive, so an anchor claimed by delete or replace
  // conflicts too. Any conflict rejects the whole script atomically.
  struct Claim {
    size_t statement;
    UpdateOp op;
  };
  std::map<const xml::Node*, Claim> exclusive;
  std::string first_conflict;
  for (size_t i = 0; i < update.statements.size(); ++i) {
    const UpdateOp op = update.statements[i].statement.op;
    if (op == UpdateOp::kInsert) continue;
    for (const xml::Node* node : targets[i]) {
      auto [it, inserted] = exclusive.emplace(node, Claim{i, op});
      if (inserted) continue;
      if (op == UpdateOp::kDelete && it->second.op == UpdateOp::kDelete) {
        continue;
      }
      ++stats.conflicts;
      if (first_conflict.empty()) {
        first_conflict = "statements " + std::to_string(it->second.statement + 1) +
                         " and " + std::to_string(i + 1) + " both claim " +
                         NodePathOf(node);
      }
    }
  }
  for (size_t i = 0; i < update.statements.size(); ++i) {
    const UpdateStatement& s = update.statements[i].statement;
    if (s.op != UpdateOp::kInsert || s.position == InsertPosition::kInto) {
      continue;
    }
    for (const xml::Node* node : targets[i]) {
      auto it = exclusive.find(node);
      if (it == exclusive.end() || it->second.op == UpdateOp::kRename) {
        continue;
      }
      ++stats.conflicts;
      if (first_conflict.empty()) {
        first_conflict = "statement " + std::to_string(i + 1) +
                         " anchors an insert at " + NodePathOf(node) +
                         ", which statement " +
                         std::to_string(it->second.statement + 1) + " " +
                         UpdateOpName(it->second.op) + "s";
      }
    }
  }
  if (stats.conflicts > 0) {
    if (options.metrics != nullptr) {
      options.metrics->counter("xq.update.conflicts_rejected")
          .Increment(stats.conflicts);
    }
    return Status::Invalid(
        "update: conflicting claims, script rejected (" +
        std::to_string(stats.conflicts) + " conflict(s); first: " +
        first_conflict + ")");
  }

  // Phase 3 -- apply, in script order. Validation above makes these
  // primitive calls infallible in principle; failures are still propagated
  // (with the statement named) rather than swallowed.
  for (size_t i = 0; i < update.statements.size(); ++i) {
    const CompiledUpdateStatement& cs = update.statements[i];
    const UpdateStatement& s = cs.statement;
    ++stats.statements;
    stats.target_nodes += targets[i].size();
    for (xml::Node* node : targets[i]) {
      Status st = Status::Ok();
      switch (s.op) {
        case UpdateOp::kDelete:
          node->Detach();
          break;
        case UpdateOp::kRename:
          st = node->Rename(s.qname);
          break;
        case UpdateOp::kReplace:
          st = node->parent()->ReplaceChild(node,
                                            {MaterializePayload(cs, doc)});
          break;
        case UpdateOp::kInsert: {
          xml::Node* payload = MaterializePayload(cs, doc);
          if (s.position == InsertPosition::kInto) {
            st = node->AppendChild(payload);
          } else {
            const size_t at = node->IndexInParent();
            st = node->parent()->InsertChildAt(
                s.position == InsertPosition::kBefore ? at : at + 1, payload);
          }
          break;
        }
      }
      if (!st.ok()) {
        return st.AddContext("while applying " + StatementLabel(i, s));
      }
    }
  }

  if (options.metrics != nullptr) {
    options.metrics->counter("xq.update.statements").Increment(stats.statements);
    options.metrics->counter("xq.update.target_nodes")
        .Increment(stats.target_nodes);
  }
  return stats;
}

std::string NodePathOf(const xml::Node* node) {
  if (node == nullptr) return "";
  if (node->is_document()) return "/";
  std::vector<std::string> parts;
  const xml::Node* cur = node;
  while (cur != nullptr && !cur->is_document()) {
    const xml::Node* parent = cur->parent();
    if (cur->is_attribute()) {
      parts.push_back("@" + cur->name());
      cur = parent;
      continue;
    }
    std::string test;
    switch (cur->kind()) {
      case xml::NodeKind::kElement:
        test = cur->name();
        break;
      case xml::NodeKind::kText:
        test = "text()";
        break;
      case xml::NodeKind::kComment:
        test = "comment()";
        break;
      case xml::NodeKind::kProcessingInstruction:
        test = "processing-instruction()";
        break;
      default:
        test = "node()";
        break;
    }
    // 1-based position among same-test siblings, XPath positional style.
    size_t pos = 1;
    if (parent != nullptr) {
      for (xml::Node* sib : parent->children()) {
        if (sib == cur) break;
        if (cur->is_element() ? (sib->is_element() &&
                                 sib->name_id() == cur->name_id())
                              : sib->kind() == cur->kind()) {
          ++pos;
        }
      }
    }
    parts.push_back(test + "[" + std::to_string(pos) + "]");
    cur = parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += "/" + *it;
  }
  return out;
}

std::string ExplainUpdate(const CompiledUpdate& update,
                          const xml::Document* doc) {
  std::string out = "update script: " +
                    std::to_string(update.statements.size()) +
                    (update.statements.size() == 1 ? " statement" :
                                                     " statements");
  out += "\n";
  for (size_t i = 0; i < update.statements.size(); ++i) {
    const CompiledUpdateStatement& cs = update.statements[i];
    out += "[" + std::to_string(i + 1) + "] " + ToString(cs.statement) + "\n";
    if (doc == nullptr) continue;
    // Read-only target resolution (concurrent read-only evaluation over one
    // tree is the engine's audited contract; root() needs a non-const
    // handle by the engine's signature only).
    ExecuteOptions eopts;
    eopts.context_node = const_cast<xml::Document*>(doc)->root();
    Result<QueryResult> r = Execute(cs.target, eopts);
    if (!r.ok()) {
      out += "    targets: <" + r.status().ToString() + ">\n";
      continue;
    }
    out += "    targets: " + std::to_string(r->sequence.size()) +
           (r->sequence.size() == 1 ? " node" : " nodes") + "\n";
    constexpr size_t kMaxShown = 4;
    size_t shown = 0;
    for (const xdm::Item& item : r->sequence.items()) {
      if (!item.is_node() || item.node()->document() != doc) continue;
      if (shown == kMaxShown) {
        out += "      ... and " +
               std::to_string(r->sequence.size() - kMaxShown) + " more\n";
        break;
      }
      const xml::Node* target = item.node();
      const xml::Node* charge = ChargePointOf(cs.statement, target);
      out += "      " + NodePathOf(target) + " -- dirties local+child-list @ " +
             (charge != nullptr ? NodePathOf(charge) : "<detached>") +
             ", subtree versions up the ancestor chain\n";
      ++shown;
    }
  }
  return out;
}

}  // namespace lll::xq
