#ifndef LLL_XQUERY_AST_H_
#define LLL_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "xdm/item.h"

namespace lll::xq {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

// XPath axes. The subset covers everything the paper's document generator
// used: child::, descendant(-or-self)::, parent:: ("parent::book"), self::,
// ancestor::, attribute:: (@), and the sibling axes used by table code.
enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kAttribute,
  kFollowingSibling,
  kPrecedingSibling,
};

const char* AxisName(Axis axis);

enum class NodeTestKind {
  kName,     // kid, parent::book
  kAnyName,  // *
  kText,     // text()
  kComment,  // comment()
  kPi,       // processing-instruction()
  kAnyNode,  // node()
};

struct NodeTest {
  NodeTestKind kind = NodeTestKind::kAnyName;
  std::string name;  // for kName
};

// Static document-order property of a (node) sequence, used by the
// optimizer's order analysis and mirrored dynamically by the evaluator. A
// chain: each level implies everything below it.
//
//   kSingleton        at most one node (trivially ordered, deduped, and
//                     ancestor-free)
//   kOrderedDisjoint  document order, duplicate-free, and no member is an
//                     ancestor of another (subtrees are disjoint intervals)
//   kOrdered          document order and duplicate-free
//   kNone             nothing proven
//
// The disjointness bit is what makes step-wise proofs compose: child::x from
// an ordered-but-nested context set interleaves sibling groups out of order,
// while from a disjoint set every context's results occupy disjoint,
// ascending intervals.
enum class OrderProp {
  kNone,
  kOrdered,
  kOrderedDisjoint,
  kSingleton,
};

// Property of one axis step's (concatenated, per-context-deduped) result
// given the property of its input sequence. Reverse axes always return
// kNone: the evaluator collects them in reverse document order and relies on
// the normalizing sort.
OrderProp TransferOrder(OrderProp input, Axis axis);

// min() on the OrderProp chain.
OrderProp MeetOrder(OrderProp a, OrderProp b);

// True for the forward axes the streaming pipeline can enumerate lazily in
// document order, one candidate at a time.
bool IsForwardStreamableAxis(Axis axis);

// True for the reverse axes the pipeline handles with a barrier stage:
// per-context runs enumerate natively in reverse document order (ancestor
// chains and preceding siblings need no per-run sort), buffer their passing
// candidates, and are k-way-merged back into document order.
bool IsReverseStreamableAxis(Axis axis);

// Either of the above: the step's axis can participate in the pull pipeline.
bool IsStreamableAxis(Axis axis);

// Conservative scan for calls that observe the focus size: true if any
// subexpression is a function call named last / fn:last. Streaming counts
// positions exactly but never knows the final count, so such a predicate
// disqualifies its step. Nested predicates get their own focus but are
// included anyway; the over-approximation only costs a fallback.
bool ContainsLastCall(const Expr& e);

// Conservative scan for calls with externally observable effects: true if
// any subexpression calls trace / fn:trace / error / fn:error. The streamed
// merge interleaves per-run predicate evaluation and early exit skips
// evaluations outright, so a trace-bearing predicate must fall back to the
// materializing evaluator to keep the trace-event stream byte-identical
// between modes (the trace-parity rule, DESIGN.md section 10).
bool ContainsTraceCall(const Expr& e);

struct PathStep {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;
  // A filter step -- `E[pred]` over a primary expression -- applies its
  // predicates to the WHOLE input sequence (atomics allowed, position counts
  // across the sequence), unlike an axis step whose predicates count
  // positions per context item. This is how (1,2,3)[2] yields 2.
  bool is_filter = false;
  // Set by the optimizer's order analysis: this step's result is provably in
  // document order (and duplicate-free) when the path is evaluated step-wise
  // with inter-step dedup, so the evaluator may skip the normalizing sort.
  bool statically_ordered = false;
  // Set by the optimizer: this step is syntactically eligible for the
  // pull-based streaming pipeline (a streamable axis whose predicates never
  // call fn:last(), fn:trace()/fn:error(), or a user-defined/unknown
  // function). EXPLAIN renders it as [streamed] for forward axes and
  // [streamed-rev] for reverse ones. Advisory only -- the
  // evaluator recomputes eligibility per call, because the CompiledQuery may
  // be shared across threads and dynamic conditions (single-document input,
  // EvalOptions::streaming) cannot be known at compile time.
  bool statically_streamable = false;
  // Set by the optimizer: this step belongs to the leading predicate-free
  // chain of a document-rooted path, the shape the node-set interning cache
  // memoizes. EXPLAIN renders it as [interned]. Advisory, like the above.
  bool statically_internable = false;
};

enum class BinOp {
  kOr,
  kAnd,
  // General comparisons (existential =, !=, <, <=, >, >=).
  kGenEq,
  kGenNe,
  kGenLt,
  kGenLe,
  kGenGt,
  kGenGe,
  // Value ("singleton") comparisons eq / ne / lt / le / gt / ge.
  kValEq,
  kValNe,
  kValLt,
  kValLe,
  kValGt,
  kValGe,
  kIs,  // node identity
  kAdd,
  kSub,
  kMul,
  kDiv,
  kIdiv,
  kMod,
  kUnion,
  kIntersect,
  kExcept,
  kTo,  // range 1 to n
};

const char* BinOpName(BinOp op);

enum class ExprKind {
  kLiteral,       // atomic literal (string/integer/double)
  kEmptySequence, // ()
  kSequence,      // (a, b, c) -- children are the members; flattens on eval
  kVarRef,        // $name
  kContextItem,   // .
  kPath,          // steps, possibly rooted; children[0] (optional) = base expr
  kBinary,        // children[0] op children[1]
  kUnary,         // -e / +e; children[0]
  kIf,            // children = {cond, then, else}
  kFlwor,         // for/let/where/order/return
  kQuantified,    // some/every $v in e satisfies e
  kFunctionCall,  // name, children = args
  kDirectElement, // <name attr="...">...</name>
  kTextLiteral,   // raw character data inside a direct constructor
  kCompElement,   // element name {content} / element {nameExpr} {content}
  kCompAttribute, // attribute name {content} / attribute {nameExpr} {content}
  kCompText,      // text {content}
  kCompComment,   // comment {content}
  kCompDocument,  // document {content}
  kCastAs,        // e cast as type
  kCastableAs,    // e castable as type
  kInstanceOf,    // e instance of type
  kTryCatch,      // try { e } catch { e } -- the Moral #4 extension
};

const char* ExprKindName(ExprKind kind);

// SequenceType -- the slice of the "extensive, almost baroque" type system we
// support for function annotations: an item type plus an occurrence
// indicator. Enough to reproduce the paper's type-annotation experiment.
struct SequenceType {
  enum class ItemType {
    kItem,
    kNode,
    kElement,
    kAttribute,
    kTextNode,
    kDocumentNode,
    kString,
    kInteger,
    kDecimal,  // accepted in source; behaves as double
    kDouble,
    kBoolean,
    kUntyped,
    kAnyAtomic,
    kEmpty,  // empty-sequence()
  };
  enum class Occurrence {
    kOne,       // T
    kOptional,  // T?
    kStar,      // T*
    kPlus,      // T+
  };

  ItemType item_type = ItemType::kItem;
  Occurrence occurrence = Occurrence::kStar;
  std::string element_name;  // element(foo) restricts the name; empty = any

  std::string ToString() const;
};

// One for/let binding in a FLWOR.
struct FlworClause {
  enum class Kind { kFor, kLet, kWhere };
  Kind kind = Kind::kFor;
  std::string var;       // without '$'
  std::string pos_var;   // "for $x at $i in ..." ; empty if none
  ExprPtr expr;          // binding expr, or the where condition
};

struct OrderSpec {
  ExprPtr key;
  bool descending = false;
};

// Attribute of a direct element constructor: value is a concatenation of raw
// text pieces and enclosed expressions.
struct DirectAttribute {
  std::string name;
  std::vector<ExprPtr> value_parts;  // kTextLiteral or arbitrary exprs
};

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}

  ExprKind kind;

  // kLiteral payload. Held via the variant-free scheme below to keep Expr
  // default-constructible: strings in `text`, numbers in `number`/`integer`.
  enum class LiteralType { kString, kInteger, kDouble } literal_type =
      LiteralType::kString;
  std::string text;     // literal string / kTextLiteral raw text
  int64_t integer = 0;  // integer literal
  double number = 0;    // double literal

  std::string name;     // variable / function / element / attribute name
  BinOp op = BinOp::kOr;

  // Generic subexpressions; meaning depends on kind (documented per kind
  // above). For kPath with a base expression the base is children[0].
  std::vector<ExprPtr> children;

  // kPath
  bool has_base = false;  // children[0] is the E in E/step/step
  bool rooted = false;    // absolute: starts at the context node's root
  std::vector<PathStep> steps;

  // kPath: conservative upper bound, set by the optimizer's limit push-down
  // pass, on how many leading items of this path's result any consumer can
  // observe (fn:head, fn:subsequence starting at 1, a positional `for`
  // guarded by `$p le N`). 0 means no bound. Applied only when
  // EvalOptions::streaming is on; the materializing evaluator ignores it so
  // streaming=false stays byte-identical as the differential baseline.
  size_t limit_hint = 0;
  // Advisory mirror of limit_hint for EXPLAIN ([limit N]).
  bool statically_limit_pushable = false;

  // kFlwor
  std::vector<FlworClause> clauses;
  std::vector<OrderSpec> order_by;
  // return expr is children[0]

  // kQuantified
  bool quantifier_every = false;  // false = some
  // children = {binding expr, satisfies expr}; `name` is the variable

  // kDirectElement
  std::vector<DirectAttribute> attributes;
  // children = content (kTextLiteral / nested constructors / enclosed exprs)

  // kCompElement / kCompAttribute: if `name` empty, children[0] is the name
  // expression and children[1] the content; otherwise children[0] is content.
  bool computed_name = false;

  // kCastAs / kInstanceOf / function signature use.
  SequenceType type;

  // Source position, 1-based; kept through optimization for diagnostics.
  size_t line = 0;
  size_t col = 0;
};

// A user-defined function: declare function local:name($a as T, $b) as T {..}.
struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<SequenceType> param_types;  // parallel; defaults to item()*
  SequenceType return_type;               // item()* if unannotated
  bool has_return_type = false;
  std::vector<bool> has_param_type;
  ExprPtr body;
};

// declare variable $name := expr;
struct VariableDecl {
  std::string name;
  ExprPtr expr;
};

// A parsed main module: prolog declarations plus the body expression.
struct Module {
  std::vector<FunctionDecl> functions;
  std::vector<VariableDecl> variables;
  ExprPtr body;
};

// Deep copy (used by the optimizer to build rewritten trees).
ExprPtr CloneExpr(const Expr& e);

// Number of Expr nodes in the tree -- a code-size metric for E3/E10.
size_t CountExprNodes(const Expr& e);

// Compact single-line rendering for debugging and golden tests.
std::string ExprToString(const Expr& e);

}  // namespace lll::xq

#endif  // LLL_XQUERY_AST_H_
