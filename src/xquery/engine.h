#ifndef LLL_XQUERY_ENGINE_H_
#define LLL_XQUERY_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/metrics.h"
#include "core/result.h"
#include "obs/profiler.h"
#include "xml/serializer.h"
#include "xquery/ast.h"
#include "xquery/eval.h"
#include "xquery/optimizer.h"

namespace lll::xq {

// The public face of the XQuery engine: Compile once, Execute many times.
//
//   auto query = xq::Compile("for $u in //user return $u/@name");
//   xq::ExecuteOptions opts;
//   opts.context_node = doc->root();
//   auto result = xq::Execute(*query, opts);
//   result->SerializedItems();   // -> the answer as XML text
//
// Concurrency contract (audited; exercised by tests/concurrency_test.cc
// under ThreadSanitizer):
//
//   * A CompiledQuery is immutable after Compile. Execute() only READS the
//     module -- the evaluator never mutates the AST, and all construction
//     happens in a per-execution arena owned by the DynamicContext it
//     creates. Many threads may Execute() the SAME CompiledQuery at once.
//   * ExecuteOptions documents and the context node are read-only during
//     execution; node items in results reference either the per-execution
//     arena (moved into the QueryResult) or the caller's input documents.
//     Sharing input documents across concurrent executions is safe as long
//     as no thread mutates them.
//   * Each Execute() gets its own DynamicContext, EvalStats, and trace
//     buffer; nothing is shared between executions. The builtin-function
//     registry is a function-local static, initialized once (thread-safe
//     under C++11 magic statics) and immutable afterwards.
//   * Compile() itself is stateless and may run from any thread. Use
//     xq::QueryCache (query_cache.h) to share compilations across threads.

struct CompileOptions {
  bool optimize = true;
  OptimizerOptions optimizer;
};

// How a CompiledQuery came to exist in this process. kDiskCache marks a plan
// deserialized from a persisted plan-cache artifact (src/persist): it never
// went through Parse/Optimize here, and EXPLAIN reports it as `disk-cache`
// so a fleet operator can tell warm boots from recompiles.
enum class PlanOrigin { kCompiled, kDiskCache };

class CompiledQuery {
 public:
  CompiledQuery(Module module, OptimizerStats stats,
                PlanOrigin origin = PlanOrigin::kCompiled)
      : module_(std::move(module)), optimizer_stats_(stats), origin_(origin) {}

  CompiledQuery(CompiledQuery&&) = default;
  CompiledQuery& operator=(CompiledQuery&&) = default;

  const Module& module() const { return module_; }
  const OptimizerStats& optimizer_stats() const { return optimizer_stats_; }
  PlanOrigin origin() const { return origin_; }

 private:
  Module module_;
  OptimizerStats optimizer_stats_;
  PlanOrigin origin_ = PlanOrigin::kCompiled;
};

struct ExecuteOptions {
  // The initial context item (usually a document node or element).
  xml::Node* context_node = nullptr;
  // External variable bindings, visible as $name.
  std::map<std::string, xdm::Sequence> variables;
  // Documents reachable via fn:doc("name").
  std::map<std::string, xml::Node*> documents;
  EvalOptions eval;
  // When set, Execute() records execution counters and wall-time histograms
  // here (metric names under "xq."). Borrowed; typically &GlobalMetrics().
  MetricsRegistry* metrics = nullptr;
};

struct QueryResult {
  xdm::Sequence sequence;
  // Owns every node constructed during evaluation; node items in `sequence`
  // may point into it (or into the caller's input documents).
  std::unique_ptr<xml::Document> arena;
  std::vector<std::string> trace_output;
  EvalStats stats;
  // Hot-spot report, present iff ExecuteOptions::eval.profile was set.
  std::unique_ptr<obs::ProfileReport> profile;

  // XQuery-style serialization of the result sequence: nodes as XML,
  // atomics as their string forms, adjacent atomics separated by a space.
  std::string SerializedItems(const xml::SerializeOptions& options = {}) const;
};

Result<CompiledQuery> Compile(std::string_view source,
                              const CompileOptions& options = {});

Result<QueryResult> Execute(const CompiledQuery& query,
                            const ExecuteOptions& options = {});

// One-shot convenience: compile + execute.
Result<QueryResult> Run(std::string_view source,
                        const ExecuteOptions& exec_options = {},
                        const CompileOptions& compile_options = {});

}  // namespace lll::xq

#endif  // LLL_XQUERY_ENGINE_H_
