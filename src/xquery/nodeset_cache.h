#ifndef LLL_XQUERY_NODESET_CACHE_H_
#define LLL_XQUERY_NODESET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lru_cache.h"
#include "core/metrics.h"
#include "xdm/sequence.h"
#include "xml/node.h"

namespace lll::xq {

// One interned node set: the materialized, normalized (document order, no
// duplicates) result of a step chain from one document node, stamped with
// the identity (doc_id) of the owning document and a set of subtree version
// GUARDS read from the document's edit-version overlay at computation time
// (xml::Document::subtree_version_of and friends; DESIGN.md section 14).
//
// A guard pins one node of the dependency chain the entry was computed
// through: the entry is valid iff EVERY guard's recorded version still
// matches the document. The three guard kinds mirror the overlay --
//
//   kLocal          the node's own child/attribute list and value (and its
//                   attributes' values) are unchanged: guards "the children
//                   of N named x are still these"
//   kLocalChildren  no DIRECT child of the node had a local change: guards
//                   attribute-only predicates over the node's children
//                   ("no sibling's @id flipped")
//   kSubtree        nothing changed anywhere under the node: the coarse
//                   guard for everything deeper analysis cannot scope
//
// so an entry anchored under /library/models/model[@id="m7"] survives edits
// to every other model subtree -- that is the whole point: one edit no
// longer evicts the cache wholesale.
//
// The doc_id stamp guards against identity reuse: the key embeds the base
// node's doc_id + index, and an entry from a dead document must never
// validate against a new one -- doc_ids are process-unique and never reused,
// unlike addresses.
struct CachedNodeSet {
  enum class GuardKind : uint8_t { kLocal, kLocalChildren, kSubtree };
  struct Guard {
    uint32_t node = 0;  // node index within the owning document's arena
    GuardKind kind = GuardKind::kSubtree;
    uint64_t version = 0;  // overlay version recorded at computation time
  };

  uint64_t doc_id = 0;
  std::vector<Guard> guards;
  // True if some guard is anchored strictly below the base node, i.e. the
  // entry's validity is scoped to a subtree rather than the whole tree.
  // Distinguishes partial from full invalidations in the stats.
  bool subtree_scoped = false;
  xdm::Sequence nodes;
};

// A thread-safe interning cache for document-rooted node sets, keyed on
// (document identity, base node, step-chain fingerprint) and invalidated by
// the document's per-node subtree edit-version overlay: a lookup revalidates
// every guard of the entry against the document's current versions, so an
// edit invalidates exactly the entries whose dependency chain it dirtied.
//
// Ownership contract: cached Sequences hold raw xml::Node pointers into the
// documents they were computed from. A NodeSetCache must therefore be scoped
// to the owner of those documents and destroyed (or Clear()ed) no later than
// them -- e.g. a member of awbql::XQueryBackend next to its model/metamodel
// snapshots, or a docgen session spanning generations of one model. It must
// never be a process-wide singleton. (Entries for dead documents are inert
// -- the doc_id in key and stamp can never match a live document -- but
// their Sequences still point into freed arenas, so the cache itself must
// not outlive its documents. RetainDocuments purges such entries.)
//
// Concurrency: Get/Put are safe from any number of threads (the underlying
// LruCache serializes bookkeeping; values are shared immutable handles), and
// guard validation reads the overlay through accessors that never allocate.
// Mutating a document concurrently with evaluations over it is NOT safe --
// the same contract as the tree itself.
//
// Stats: the LruCache's own CacheStats would count a stale hit as a hit, so
// this class keeps its own hit/miss/invalidation counters (relaxed atomics).
// An invalidation is a lookup that found an entry with a failed guard;
// `partial` counts the subset whose entry was subtree-scoped (a finer-than-
// whole-document guard did its job), `invalidations` counts all of them.
class NodeSetCache {
 public:
  enum class Outcome { kHit, kMiss, kStale, kStalePartial };

  // capacity 0 = passthrough (every lookup misses, nothing stored).
  explicit NodeSetCache(size_t capacity = 128) : cache_(capacity) {}

  NodeSetCache(const NodeSetCache&) = delete;
  NodeSetCache& operator=(const NodeSetCache&) = delete;

  // Returns the entry for `key` iff it was computed from this very `doc`
  // (doc_id match) and every guard still matches the document's current
  // overlay versions; nullptr on miss or staleness. `outcome` (optional)
  // distinguishes miss / full stale / subtree-scoped stale.
  std::shared_ptr<const CachedNodeSet> Get(const xml::Document* doc,
                                           const std::string& key,
                                           Outcome* outcome = nullptr);

  // Stores the node set computed from the document identified by `doc_id`,
  // with its guard versions read from the overlay BEFORE computing (so an
  // entry can only ever be stamped too old -- a harmless re-miss -- never
  // too new). Overwrites stale entries.
  void Put(const std::string& key, uint64_t doc_id,
           std::vector<CachedNodeSet::Guard> guards, bool subtree_scoped,
           xdm::Sequence nodes);

  // The key for a step chain hanging off `base`: the owning document's
  // process-unique id plus the base node's index (distinct document nodes in
  // one arena intern separately, and entries from dead documents can never
  // collide with live ones) plus the caller-built chain fingerprint.
  static std::string MakeKey(const xml::Node* base,
                             const std::string& fingerprint);

  // A guard of the given kind over `n`, stamped with the CURRENT overlay
  // version -- the building block callers assemble dependency chains from.
  static CachedNodeSet::Guard GuardFor(const xml::Node* n,
                                       CachedNodeSet::GuardKind kind);

  // Drops every entry whose document is not in `doc_ids`. Cross-generation
  // sessions call this to shed entries for per-generation scratch documents
  // whose arenas are about to die.
  size_t RetainDocuments(const std::vector<uint64_t>& doc_ids);

  // Copies `source`'s entries for `from` into this cache, re-targeted at
  // `to`, a clone of `from`, with `node_map` the source-index -> clone-index
  // table CloneDocument produced (identity on the fast path, a renumbering
  // on the slow path, kNilNode for dropped debris). Keys are re-stamped
  // with the clone's doc_id and re-based through the map, node handles and
  // guard anchors remap through it, and guard versions transfer verbatim:
  // the clone carries the edit-version overlay (remapped through the same
  // table), so entries whose chains a post-clone edit dirtied fail their
  // guards on first lookup (counted partial/full as usual) while untouched
  // chains keep hitting. Entries touching dropped nodes are skipped. This
  // is what lets a warm cache survive the server's copy-on-write publish.
  // Recency order is preserved. Returns the number of entries migrated.
  size_t MigrateClone(const NodeSetCache& source, const xml::Document& from,
                      const xml::Document& to,
                      const std::vector<uint32_t>& node_map);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  uint64_t partial_invalidations() const {
    return partial_invalidations_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return cache_.capacity(); }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.Clear(); }

  // Publishes the counters as gauges named "<prefix>.hits" etc. (gauges, not
  // counters: this cache accumulates totals, so each export overwrites the
  // last snapshot instead of double-counting -- same scheme as QueryCache).
  void ExportTo(MetricsRegistry* metrics, const std::string& prefix) const;

 private:
  LruCache<CachedNodeSet> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> partial_invalidations_{0};
};

}  // namespace lll::xq

#endif  // LLL_XQUERY_NODESET_CACHE_H_
