#ifndef LLL_XQUERY_NODESET_CACHE_H_
#define LLL_XQUERY_NODESET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/lru_cache.h"
#include "core/metrics.h"
#include "xdm/sequence.h"
#include "xml/node.h"

namespace lll::xq {

// One interned node set: the materialized, normalized (document order, no
// duplicates) result of a predicate-free step chain from one document node,
// stamped with the identity (doc_id) and structure version of the owning
// document at computation time. The stamps -- not the key -- carry both, so
// a lookup that finds an entry from a since-mutated document is observable
// as an invalidation instead of a plain miss, and stale entries cannot pile
// up under distinct keys. The doc_id stamp guards against address reuse:
// the key embeds the base node's address, and a later Document allocated at
// a recycled address (same pointer, possibly same structure_version) must
// not validate an entry whose Sequence points into the freed arena.
struct CachedNodeSet {
  uint64_t doc_id = 0;
  uint64_t structure_version = 0;
  xdm::Sequence nodes;
};

// A thread-safe interning cache for document-rooted node sets, keyed on
// (base document node, step-chain fingerprint) and invalidated by the
// document's atomic structure-version counter (the same counter that
// invalidates the order-key index -- any structural mutation bumps it).
//
// Ownership contract: cached Sequences hold raw xml::Node pointers into the
// documents they were computed from. A NodeSetCache must therefore be scoped
// to the owner of those documents and destroyed (or Clear()ed) no later than
// them -- e.g. a member of awbql::XQueryBackend next to its model/metamodel
// snapshots, or a local spanning one docgen generation. It must never be a
// process-wide singleton.
//
// Concurrency: Get/Put are safe from any number of threads (the underlying
// LruCache serializes bookkeeping; values are shared immutable handles), and
// the version check reads an atomic. Mutating a document concurrently with
// evaluations over it is NOT safe -- the same contract as the tree itself.
//
// Stats: the LruCache's own CacheStats would count a stale hit as a hit, so
// this class keeps its own hit/miss/invalidation counters (relaxed atomics).
class NodeSetCache {
 public:
  enum class Outcome { kHit, kMiss, kStale };

  // capacity 0 = passthrough (every lookup misses, nothing stored).
  explicit NodeSetCache(size_t capacity = 128) : cache_(capacity) {}

  NodeSetCache(const NodeSetCache&) = delete;
  NodeSetCache& operator=(const NodeSetCache&) = delete;

  // Returns the entry for `key` iff it was computed from this very `doc`
  // (doc_id match -- an entry from a dead document whose address was
  // recycled reports as stale) at `doc`'s current structure version;
  // nullptr on miss or staleness. `outcome` (optional) distinguishes the
  // two.
  std::shared_ptr<const CachedNodeSet> Get(const xml::Document* doc,
                                           const std::string& key,
                                           Outcome* outcome = nullptr);

  // Stores the node set computed from the document identified by `doc_id`
  // at `version` (read the document's structure_version() BEFORE
  // computing). Overwrites stale entries.
  void Put(const std::string& key, uint64_t doc_id, uint64_t version,
           xdm::Sequence nodes);

  // The key for a step chain hanging off `base`: the base node's identity
  // (distinct document nodes in one arena intern separately) plus the
  // caller-built chain fingerprint.
  static std::string MakeKey(const xml::Node* base,
                             const std::string& fingerprint);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return cache_.capacity(); }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.Clear(); }

  // Publishes the counters as gauges named "<prefix>.hits" etc. (gauges, not
  // counters: this cache accumulates totals, so each export overwrites the
  // last snapshot instead of double-counting -- same scheme as QueryCache).
  void ExportTo(MetricsRegistry* metrics, const std::string& prefix) const;

 private:
  LruCache<CachedNodeSet> cache_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace lll::xq

#endif  // LLL_XQUERY_NODESET_CACHE_H_
