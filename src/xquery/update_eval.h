#ifndef LLL_XQUERY_UPDATE_EVAL_H_
#define LLL_XQUERY_UPDATE_EVAL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/result.h"
#include "xml/node.h"
#include "xquery/engine.h"
#include "xquery/update_ast.h"

namespace lll::xq {

// Compilation and application of update scripts (update_parser.h), with
// FLUX snapshot semantics:
//
//   1. every statement's target path is evaluated against the PRE-update
//      document, before ANY mutation applies -- no statement observes
//      another's effect, and a script is a function of the snapshot;
//   2. conflicting claims are rejected atomically: two statements that
//      delete/replace/rename the SAME node (except delete+delete, which
//      agree), or that anchor an insert before/after a node another
//      statement deletes or replaces, fail the whole script with
//      kInvalidArgument and leave the document untouched;
//   3. statements then apply in script order, each routed through the
//      ordinary mutation primitives (AppendChild / InsertChildAt /
//      RemoveChild via Detach / ReplaceChild / Rename), so every edit
//      charges the subtree edit-version overlay exactly like a hand-written
//      EditFn -- which is what lets the node-set cache invalidate only the
//      chains a statement actually dirtied (DESIGN.md sections 14 and 15).

// One statement, compiled: the target path as a CompiledQuery, the payload
// (insert/replace, unless text) pre-parsed into its own little document.
struct CompiledUpdateStatement {
  UpdateStatement statement;
  CompiledQuery target;
  std::unique_ptr<xml::Document> payload;  // null for text payloads
};

struct CompiledUpdate {
  std::string source;
  std::vector<CompiledUpdateStatement> statements;
};

Result<CompiledUpdate> CompileUpdate(const UpdateScript& script,
                                     const CompileOptions& options = {});

// Parse + compile in one go.
Result<CompiledUpdate> CompileUpdateText(std::string_view source,
                                         const CompileOptions& options = {});

struct UpdateStats {
  size_t statements = 0;    // statements applied
  size_t target_nodes = 0;  // target nodes selected across all statements
  size_t conflicts = 0;     // conflicting claims found (script was rejected)
};

struct UpdateOptions {
  // When set, successful applications bump xq.update.statements and
  // xq.update.target_nodes; rejected scripts bump
  // xq.update.conflicts_rejected. Borrowed; typically &GlobalMetrics().
  MetricsRegistry* metrics = nullptr;
  // Target-path evaluation knobs (step budgets, deadlines, ...). The
  // defaults are right for the server's publish path: no interning cache
  // (the clone's cache is installed after the edit).
  EvalOptions eval;
};

// Applies `update` to `doc` under the semantics above. An empty target set
// is a legal no-op for any statement. On error -- unevaluable target paths,
// invalid targets, conflicts -- the document is left untouched: all
// validation runs before the first mutation.
Result<UpdateStats> ApplyUpdate(const CompiledUpdate& update,
                                xml::Document* doc,
                                const UpdateOptions& options = {});

// EXPLAIN for update plans: one block per statement showing the operation
// and payload; with a context document, also the resolved target count and
// the overlay guard anchors applying the statement will dirty (the node
// whose local/child-list versions move, plus the subtree chain above it) --
// i.e. which cached chains the statement will invalidate. Read-only.
std::string ExplainUpdate(const CompiledUpdate& update,
                          const xml::Document* doc = nullptr);

// The canonical absolute path of a node, positional-qualified
// ("/library[1]/models[1]/model[3]/@id" style): diagnostics, EXPLAIN, and
// the test utilities' statement generator share it.
std::string NodePathOf(const xml::Node* node);

}  // namespace lll::xq

#endif  // LLL_XQUERY_UPDATE_EVAL_H_
