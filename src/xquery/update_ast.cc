#include "xquery/update_ast.h"

namespace lll::xq {

const char* UpdateOpName(UpdateOp op) {
  switch (op) {
    case UpdateOp::kInsert:
      return "insert";
    case UpdateOp::kDelete:
      return "delete";
    case UpdateOp::kReplace:
      return "replace";
    case UpdateOp::kRename:
      return "rename";
  }
  return "?";
}

const char* InsertPositionName(InsertPosition position) {
  switch (position) {
    case InsertPosition::kInto:
      return "into";
    case InsertPosition::kBefore:
      return "before";
    case InsertPosition::kAfter:
      return "after";
  }
  return "?";
}

namespace {

std::string PayloadText(const UpdateStatement& s) {
  if (s.node_is_text) return "\"" + s.node_xml + "\"";
  return s.node_xml;
}

}  // namespace

std::string ToString(const UpdateStatement& s) {
  switch (s.op) {
    case UpdateOp::kInsert:
      return std::string("insert ") + PayloadText(s) + " " +
             InsertPositionName(s.position) + " " + s.target_path;
    case UpdateOp::kDelete:
      return "delete " + s.target_path;
    case UpdateOp::kReplace:
      return "replace " + s.target_path + " with " + PayloadText(s);
    case UpdateOp::kRename:
      return "rename " + s.target_path + " as " + s.qname;
  }
  return "?";
}

std::string ToString(const UpdateScript& script) {
  std::string out;
  for (const UpdateStatement& s : script.statements) {
    if (!out.empty()) out += "; ";
    out += ToString(s);
  }
  return out;
}

}  // namespace lll::xq
