// The fn: / math: builtin library -- the slice of the XQuery function catalog
// the paper's document generator leaned on, plus the trigonometry it mentions
// ("a bit of trigonometry, and other routine things").
//
// Deviations from the W3C catalog, all documented here:
//   * tokenize/replace take LITERAL separators, not regular expressions;
//   * fn:trace is variadic, prints all arguments and returns the value of
//     the LAST one -- this is the trace the paper describes ("a trace
//     function which prints its arguments and returns the value of the last
//     one"), not the two-argument W3C fn:trace;
//   * fn:error takes 0..2 arguments, records its message to the trace
//     stream (the paper used it for binary-search debugging) and aborts
//     evaluation with that message.

#include <cmath>
#include <limits>

#include "core/string_util.h"
#include "xdm/compare.h"
#include "xdm/map_value.h"
#include "xml/parser.h"
#include "xquery/eval.h"

namespace lll::xq {

namespace {

using xdm::Item;
using xdm::Sequence;

constexpr size_t kVariadic = static_cast<size_t>(-1);

// fn:string semantics for a whole sequence argument that must be 0-or-1.
Result<std::string> OneStringOrEmpty(const Sequence& seq, const char* what) {
  if (seq.empty()) return std::string();
  LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(seq, what));
  return item.StringForm();
}

Result<double> OneNumber(const Sequence& seq, const char* what) {
  LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(seq.Atomized(), what));
  return item.NumericValue();
}

Sequence BoolSeq(bool b) { return Sequence(Item::Boolean(b)); }
Sequence StrSeq(std::string s) { return Sequence(Item::String(std::move(s))); }
Sequence IntSeq(int64_t i) { return Sequence(Item::Integer(i)); }
Sequence DblSeq(double d) { return Sequence(Item::Double(d)); }

// Numeric aggregate core for sum/avg/max/min.
enum class Agg { kSum, kAvg, kMax, kMin };

Result<Sequence> Aggregate(Agg agg, const Sequence& raw) {
  Sequence seq = raw.Atomized();
  if (seq.empty()) {
    if (agg == Agg::kSum) return IntSeq(0);
    return Sequence();
  }
  // Decide numeric vs string mode from the items: all castable-to-number
  // sequences aggregate numerically; max/min also accept all-string.
  bool all_numeric = true;
  for (const Item& it : seq.items()) {
    if (!it.is_numeric() && !(it.kind() == xdm::ItemKind::kUntyped &&
                              ParseDouble(it.string_value()).has_value())) {
      all_numeric = false;
      break;
    }
  }
  if (!all_numeric) {
    if (agg == Agg::kSum || agg == Agg::kAvg) {
      return Status::TypeError("sum/avg over non-numeric values");
    }
    std::string best;
    bool first = true;
    for (const Item& it : seq.items()) {
      if (!it.is_stringlike()) {
        return Status::TypeError("max/min over mixed value kinds");
      }
      const std::string& s = it.string_value();
      if (first || (agg == Agg::kMax ? s > best : s < best)) best = s;
      first = false;
    }
    return StrSeq(best);
  }
  bool all_integer = true;
  for (const Item& it : seq.items()) {
    if (it.kind() != xdm::ItemKind::kInteger) all_integer = false;
  }
  double acc = 0;
  bool first = true;
  for (const Item& it : seq.items()) {
    LLL_ASSIGN_OR_RETURN(double v, it.NumericValue());
    switch (agg) {
      case Agg::kSum:
      case Agg::kAvg:
        acc += v;
        break;
      case Agg::kMax:
        acc = first ? v : std::max(acc, v);
        break;
      case Agg::kMin:
        acc = first ? v : std::min(acc, v);
        break;
    }
    first = false;
  }
  if (agg == Agg::kAvg) {
    return DblSeq(acc / static_cast<double>(seq.size()));
  }
  if (all_integer && agg != Agg::kAvg) {
    return IntSeq(static_cast<int64_t>(acc));
  }
  return DblSeq(acc);
}

// Focus-or-argument item for name()/local-name()/string()/etc.
Result<Sequence> FocusArg(Evaluator& ev) {
  if (!ev.has_focus()) {
    return Status::Invalid("function requires a context item");
  }
  return Sequence(ev.focus_item());
}

std::map<std::pair<std::string, size_t>, BuiltinFn> BuildRegistry() {
  std::map<std::pair<std::string, size_t>, BuiltinFn> reg;
  auto def = [&reg](const std::string& name, size_t arity, BuiltinFn fn) {
    reg[{name, arity}] = std::move(fn);
  };

  // --- Cardinality and sequences ------------------------------------------

  def("count", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return IntSeq(static_cast<int64_t>(args[0].size()));
  });
  def("empty", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return BoolSeq(args[0].empty());
  });
  def("exists", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return BoolSeq(!args[0].empty());
  });
  def("not", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
    return BoolSeq(!b);
  });
  def("boolean", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(bool b, xdm::EffectiveBooleanValue(args[0]));
    return BoolSeq(b);
  });
  def("true", 0, [](Evaluator&, std::vector<Sequence>&) -> Result<Sequence> {
    return BoolSeq(true);
  });
  def("false", 0, [](Evaluator&, std::vector<Sequence>&) -> Result<Sequence> {
    return BoolSeq(false);
  });
  def("reverse", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    Sequence out;
    for (size_t i = args[0].size(); i-- > 0;) out.Append(args[0].at(i));
    return out;
  });
  def("subsequence", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(double start, OneNumber(args[1], "subsequence"));
    double lo, hi;
    Sequence out;
    if (!SubsequenceWindow(start, 0, /*has_length=*/false, &lo, &hi)) {
      return out;  // NaN start selects nothing
    }
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (static_cast<double>(i + 1) >= lo) out.Append(args[0].at(i));
    }
    return out;
  });
  def("subsequence", 3, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(double start, OneNumber(args[1], "subsequence"));
    LLL_ASSIGN_OR_RETURN(double len, OneNumber(args[2], "subsequence"));
    double lo, hi;
    Sequence out;
    if (!SubsequenceWindow(start, len, /*has_length=*/true, &lo, &hi)) {
      return out;  // NaN start/length selects nothing
    }
    for (size_t i = 0; i < args[0].size(); ++i) {
      double p = static_cast<double>(i + 1);
      if (p >= lo && p < hi) out.Append(args[0].at(i));
    }
    return out;
  });
  def("head", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return args[0].empty() ? Sequence() : Sequence(args[0].at(0));
  });
  def("tail", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    Sequence out;
    for (size_t i = 1; i < args[0].size(); ++i) out.Append(args[0].at(i));
    return out;
  });
  def("insert-before", 3, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(double pos_d, OneNumber(args[1], "insert-before"));
    int64_t pos = static_cast<int64_t>(pos_d);
    if (pos < 1) pos = 1;
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (static_cast<int64_t>(i + 1) == pos) out.AppendSequence(args[2]);
      out.Append(args[0].at(i));
    }
    if (pos > static_cast<int64_t>(args[0].size())) out.AppendSequence(args[2]);
    return out;
  });
  def("remove", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(double pos, OneNumber(args[1], "remove"));
    Sequence out;
    for (size_t i = 0; i < args[0].size(); ++i) {
      if (static_cast<double>(i + 1) != pos) out.Append(args[0].at(i));
    }
    return out;
  });
  def("index-of", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    Sequence seq = args[0].Atomized();
    Sequence needle_seq = args[1].Atomized();
    LLL_ASSIGN_OR_RETURN(Item needle,
                         xdm::RequireSingleton(needle_seq, "index-of"));
    Sequence out;
    for (size_t i = 0; i < seq.size(); ++i) {
      Result<bool> eq = xdm::ValueCompare(xdm::CompareOp::kEq, seq.at(i), needle);
      if (eq.ok() && *eq) out.Append(Item::Integer(static_cast<int64_t>(i + 1)));
    }
    return out;
  });
  def("distinct-values", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return xdm::DistinctValues(args[0]);
  });
  def("deep-equal", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(bool eq, xdm::DeepEqualSequences(args[0], args[1]));
    return BoolSeq(eq);
  });
  def("exactly-one", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].size() != 1) {
      return Status::CardinalityError("exactly-one: got " +
                                      std::to_string(args[0].size()) + " items");
    }
    return args[0];
  });
  def("zero-or-one", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].size() > 1) {
      return Status::CardinalityError("zero-or-one: got " +
                                      std::to_string(args[0].size()) + " items");
    }
    return args[0];
  });
  def("one-or-more", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) {
      return Status::CardinalityError("one-or-more: got empty sequence");
    }
    return args[0];
  });

  // --- Focus ------------------------------------------------------------

  def("position", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    if (!ev.has_focus()) return Status::Invalid("position() without a focus");
    return IntSeq(static_cast<int64_t>(ev.focus_position()));
  });
  def("last", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    if (!ev.has_focus()) return Status::Invalid("last() without a focus");
    return IntSeq(static_cast<int64_t>(ev.focus_size()));
  });

  // --- Strings ------------------------------------------------------------

  def("string", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(Sequence focus, FocusArg(ev));
    return StrSeq(focus.at(0).StringForm());
  });
  def("string", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "string"));
    return StrSeq(s);
  });
  def("concat", kVariadic, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    std::string out;
    for (Sequence& arg : args) {
      LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(arg, "concat"));
      out += s;
    }
    return StrSeq(out);
  });
  def("string-join", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string sep, OneStringOrEmpty(args[1], "string-join"));
    std::string out;
    Sequence atomized = args[0].Atomized();
    for (size_t i = 0; i < atomized.size(); ++i) {
      if (i > 0) out += sep;
      out += atomized.at(i).StringForm();
    }
    return StrSeq(out);
  });
  def("substring", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "substring"));
    LLL_ASSIGN_OR_RETURN(double start, OneNumber(args[1], "substring"));
    int64_t begin = static_cast<int64_t>(std::round(start));
    std::string out;
    for (int64_t i = 0; i < static_cast<int64_t>(s.size()); ++i) {
      if (i + 1 >= begin) out.push_back(s[static_cast<size_t>(i)]);
    }
    return StrSeq(out);
  });
  def("substring", 3, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "substring"));
    LLL_ASSIGN_OR_RETURN(double start, OneNumber(args[1], "substring"));
    LLL_ASSIGN_OR_RETURN(double len, OneNumber(args[2], "substring"));
    double lo = std::round(start);
    double hi = lo + std::round(len);
    std::string out;
    for (int64_t i = 0; i < static_cast<int64_t>(s.size()); ++i) {
      double p = static_cast<double>(i + 1);
      if (p >= lo && p < hi) out.push_back(s[static_cast<size_t>(i)]);
    }
    return StrSeq(out);
  });
  def("string-length", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(Sequence focus, FocusArg(ev));
    return IntSeq(static_cast<int64_t>(focus.at(0).StringForm().size()));
  });
  def("string-length", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "string-length"));
    return IntSeq(static_cast<int64_t>(s.size()));
  });
  def("contains", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string haystack, OneStringOrEmpty(args[0], "contains"));
    LLL_ASSIGN_OR_RETURN(std::string needle, OneStringOrEmpty(args[1], "contains"));
    return BoolSeq(Contains(haystack, needle));
  });
  def("starts-with", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "starts-with"));
    LLL_ASSIGN_OR_RETURN(std::string prefix, OneStringOrEmpty(args[1], "starts-with"));
    return BoolSeq(StartsWith(s, prefix));
  });
  def("ends-with", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "ends-with"));
    LLL_ASSIGN_OR_RETURN(std::string suffix, OneStringOrEmpty(args[1], "ends-with"));
    return BoolSeq(EndsWith(s, suffix));
  });
  def("normalize-space", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(Sequence focus, FocusArg(ev));
    return StrSeq(NormalizeSpace(focus.at(0).StringForm()));
  });
  def("normalize-space", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "normalize-space"));
    return StrSeq(NormalizeSpace(s));
  });
  def("upper-case", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "upper-case"));
    return StrSeq(ToUpper(s));
  });
  def("lower-case", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "lower-case"));
    return StrSeq(ToLower(s));
  });
  def("translate", 3, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "translate"));
    LLL_ASSIGN_OR_RETURN(std::string from, OneStringOrEmpty(args[1], "translate"));
    LLL_ASSIGN_OR_RETURN(std::string to, OneStringOrEmpty(args[2], "translate"));
    std::string out;
    for (char c : s) {
      size_t idx = from.find(c);
      if (idx == std::string::npos) {
        out.push_back(c);
      } else if (idx < to.size()) {
        out.push_back(to[idx]);
      }  // else: dropped
    }
    return StrSeq(out);
  });
  def("substring-before", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "substring-before"));
    LLL_ASSIGN_OR_RETURN(std::string sep, OneStringOrEmpty(args[1], "substring-before"));
    size_t idx = sep.empty() ? std::string::npos : s.find(sep);
    return StrSeq(idx == std::string::npos ? "" : s.substr(0, idx));
  });
  def("substring-after", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "substring-after"));
    LLL_ASSIGN_OR_RETURN(std::string sep, OneStringOrEmpty(args[1], "substring-after"));
    size_t idx = sep.empty() ? std::string::npos : s.find(sep);
    return StrSeq(idx == std::string::npos ? "" : s.substr(idx + sep.size()));
  });
  def("tokenize", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "tokenize"));
    LLL_ASSIGN_OR_RETURN(std::string sep, OneStringOrEmpty(args[1], "tokenize"));
    if (sep.empty()) return Status::Invalid("tokenize: empty separator");
    Sequence out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(sep, pos);
      if (hit == std::string::npos) {
        out.Append(Item::String(s.substr(pos)));
        return out;
      }
      out.Append(Item::String(s.substr(pos, hit - pos)));
      pos = hit + sep.size();
    }
  });
  def("replace", 3, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "replace"));
    LLL_ASSIGN_OR_RETURN(std::string from, OneStringOrEmpty(args[1], "replace"));
    LLL_ASSIGN_OR_RETURN(std::string to, OneStringOrEmpty(args[2], "replace"));
    if (from.empty()) return Status::Invalid("replace: empty search string");
    return StrSeq(ReplaceAll(s, from, to));
  });
  def("compare", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty() || args[1].empty()) return Sequence();
    LLL_ASSIGN_OR_RETURN(std::string a, OneStringOrEmpty(args[0], "compare"));
    LLL_ASSIGN_OR_RETURN(std::string b, OneStringOrEmpty(args[1], "compare"));
    int c = a.compare(b);
    return IntSeq(c < 0 ? -1 : (c > 0 ? 1 : 0));
  });
  // matches($s, $pattern): LITERAL substring containment, not a regex --
  // consistent with tokenize/replace (see the file header).
  def("matches", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s, OneStringOrEmpty(args[0], "matches"));
    LLL_ASSIGN_OR_RETURN(std::string pattern,
                         OneStringOrEmpty(args[1], "matches"));
    return BoolSeq(Contains(s, pattern));
  });
  def("string-to-codepoints", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string s,
                         OneStringOrEmpty(args[0], "string-to-codepoints"));
    Sequence out;
    // Byte-level codepoints; multi-byte UTF-8 yields the raw bytes
    // (documented subset behavior).
    for (unsigned char c : s) out.Append(Item::Integer(c));
    return out;
  });
  def("codepoints-to-string", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    std::string out;
    Sequence atomized = args[0].Atomized();
    for (const Item& item : atomized.items()) {
      LLL_ASSIGN_OR_RETURN(double d, item.NumericValue());
      int64_t cp = static_cast<int64_t>(d);
      if (cp < 1 || cp > 255) {
        return Status::Invalid("codepoints-to-string: codepoint " +
                               std::to_string(cp) + " out of supported range");
      }
      out.push_back(static_cast<char>(cp));
    }
    return StrSeq(out);
  });

  // --- Numbers ------------------------------------------------------------

  def("number", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(Sequence focus, FocusArg(ev));
    auto parsed = ParseDouble(focus.at(0).StringForm());
    return DblSeq(parsed ? *parsed : std::nan(""));
  });
  def("number", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return DblSeq(std::nan(""));
    Sequence atomized = args[0].Atomized();
    LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(atomized, "number"));
    if (item.is_numeric()) {
      LLL_ASSIGN_OR_RETURN(double d, item.NumericValue());
      return DblSeq(d);
    }
    if (item.kind() == xdm::ItemKind::kBoolean) {
      return DblSeq(item.boolean_value() ? 1 : 0);
    }
    auto parsed = ParseDouble(item.StringForm());
    return DblSeq(parsed ? *parsed : std::nan(""));
  });
  def("sum", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return Aggregate(Agg::kSum, args[0]);
  });
  def("avg", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return Aggregate(Agg::kAvg, args[0]);
  });
  def("max", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return Aggregate(Agg::kMax, args[0]);
  });
  def("min", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return Aggregate(Agg::kMin, args[0]);
  });
  def("abs", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return Sequence();
    Sequence atomized = args[0].Atomized();
    LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(atomized, "abs"));
    if (item.kind() == xdm::ItemKind::kInteger) {
      return IntSeq(std::abs(item.integer_value()));
    }
    LLL_ASSIGN_OR_RETURN(double d, item.NumericValue());
    return DblSeq(std::fabs(d));
  });
  def("floor", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return Sequence();
    LLL_ASSIGN_OR_RETURN(double d, OneNumber(args[0], "floor"));
    return IntSeq(static_cast<int64_t>(std::floor(d)));
  });
  def("ceiling", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return Sequence();
    LLL_ASSIGN_OR_RETURN(double d, OneNumber(args[0], "ceiling"));
    return IntSeq(static_cast<int64_t>(std::ceil(d)));
  });
  def("round", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return Sequence();
    LLL_ASSIGN_OR_RETURN(double d, OneNumber(args[0], "round"));
    return IntSeq(static_cast<int64_t>(std::floor(d + 0.5)));
  });

  // --- Nodes ------------------------------------------------------------

  auto node_arg = [](Sequence& arg, const char* what) -> Result<xml::Node*> {
    LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(arg, what));
    if (!item.is_node()) {
      return Status::TypeError(std::string(what) + ": expected a node");
    }
    return item.node();
  };

  def("name", 0, [](Evaluator& ev, std::vector<Sequence>&) -> Result<Sequence> {
    if (!ev.has_focus() || !ev.focus_item().is_node()) {
      return Status::Invalid("name() requires a node context item");
    }
    return StrSeq(ev.focus_item().node()->name());
  });
  def("name", 1, [node_arg](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return StrSeq("");
    LLL_ASSIGN_OR_RETURN(xml::Node * n, node_arg(args[0], "name"));
    return StrSeq(n->name());
  });
  def("local-name", 1, [node_arg](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return StrSeq("");
    LLL_ASSIGN_OR_RETURN(xml::Node * n, node_arg(args[0], "local-name"));
    const std::string& name = n->name();
    size_t colon = name.find(':');
    return StrSeq(colon == std::string::npos ? name : name.substr(colon + 1));
  });
  def("root", 1, [node_arg](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args[0].empty()) return Sequence();
    LLL_ASSIGN_OR_RETURN(xml::Node * n, node_arg(args[0], "root"));
    return Sequence(Item::NodeRef(n->Root()));
  });
  def("data", 1, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    return args[0].Atomized();
  });
  def("doc", 1, [](Evaluator& ev, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string name, OneStringOrEmpty(args[0], "doc"));
    xml::Node* doc = ev.context()->LookupDocument(name);
    if (doc == nullptr) {
      return Status::NotFound("doc(): no document registered as \"" + name +
                              "\" (err:FODC0002)");
    }
    return Sequence(Item::NodeRef(doc));
  });

  // parse-xml-fragment($text): parses a string as an XML fragment and
  // returns the resulting nodes (copied into the construction arena), or the
  // empty sequence if the text is not well-formed. An extension (the 2004
  // drafts had nothing like fn:parse-xml) that the document generator uses
  // for HTML-valued properties -- "a big messy blob of formatted text that
  // probably got pasted in from some other application".
  def("parse-xml-fragment", 1, [](Evaluator& ev, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string text,
                         OneStringOrEmpty(args[0], "parse-xml-fragment"));
    auto parsed = xml::Parse("<fragment-wrapper>" + text + "</fragment-wrapper>");
    if (!parsed.ok()) return Sequence();
    Sequence out;
    for (const xml::Node* child :
         (*parsed)->DocumentElement()->children()) {
      out.Append(Item::NodeRef(ev.CopyNodeIntoArena(child)));
    }
    return out;
  });

  // --- Diagnostics ----------------------------------------------------------

  def("error", 0, [](Evaluator&, std::vector<Sequence>&) -> Result<Sequence> {
    return Status::Invalid("fn:error (err:FOER0000)");
  });
  def("error", 1, [](Evaluator& ev, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string msg, OneStringOrEmpty(args[0], "error"));
    ev.Trace("error: " + msg);
    return Status::Invalid("fn:error: " + msg);
  });
  def("error", 2, [](Evaluator& ev, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(std::string code, OneStringOrEmpty(args[0], "error"));
    LLL_ASSIGN_OR_RETURN(std::string msg, OneStringOrEmpty(args[1], "error"));
    ev.Trace("error: " + code + ": " + msg);
    return Status::Invalid("fn:error: " + code + ": " + msg);
  });
  def("trace", kVariadic, [](Evaluator& ev, std::vector<Sequence>& args) -> Result<Sequence> {
    if (args.empty()) return Status::Invalid("trace() needs an argument");
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line += " ";
      line += args[i].DebugString();
    }
    ev.Trace(line);
    return args.back();
  });

  // --- map: (lessons-applied extension, Moral #1) ---------------------------
  //
  // "A little language should provide basic data structures ... Lists and
  // maps may well be enough." These are immutable maps from strings to
  // arbitrary sequences; map:put returns a new map. Unlike the sequence
  // workarounds of E9, a map HOLDS a sequence value without flattening it
  // and holds attribute nodes without folding them.

  auto one_map = [](Sequence& arg,
                    const char* what) -> Result<std::shared_ptr<const xdm::MapValue>> {
    LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(arg, what));
    if (!item.is_map()) {
      return Status::TypeError(std::string(what) + ": expected a map, got " +
                               ItemKindName(item.kind()));
    }
    return item.map_value();
  };
  auto one_key = [](Sequence& arg, const char* what) -> Result<std::string> {
    LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(arg.Atomized(), what));
    if (item.is_map()) {
      return Status::TypeError(std::string(what) + ": a map is not a key");
    }
    return item.StringForm();
  };

  def("map:new", 0, [](Evaluator&, std::vector<Sequence>&) -> Result<Sequence> {
    return Sequence(Item::Map(std::make_shared<const xdm::MapValue>()));
  });
  def("map:put", 3, [one_map, one_key](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(auto map, one_map(args[0], "map:put"));
    LLL_ASSIGN_OR_RETURN(std::string key, one_key(args[1], "map:put"));
    auto updated = std::make_shared<xdm::MapValue>(*map);
    updated->entries[key] = args[2];
    return Sequence(Item::Map(std::move(updated)));
  });
  def("map:get", 2, [one_map, one_key](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(auto map, one_map(args[0], "map:get"));
    LLL_ASSIGN_OR_RETURN(std::string key, one_key(args[1], "map:get"));
    auto it = map->entries.find(key);
    return it == map->entries.end() ? Sequence() : it->second;
  });
  def("map:contains", 2, [one_map, one_key](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(auto map, one_map(args[0], "map:contains"));
    LLL_ASSIGN_OR_RETURN(std::string key, one_key(args[1], "map:contains"));
    return BoolSeq(map->entries.count(key) != 0);
  });
  def("map:remove", 2, [one_map, one_key](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(auto map, one_map(args[0], "map:remove"));
    LLL_ASSIGN_OR_RETURN(std::string key, one_key(args[1], "map:remove"));
    auto updated = std::make_shared<xdm::MapValue>(*map);
    updated->entries.erase(key);
    return Sequence(Item::Map(std::move(updated)));
  });
  def("map:size", 1, [one_map](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(auto map, one_map(args[0], "map:size"));
    return IntSeq(static_cast<int64_t>(map->entries.size()));
  });
  def("map:keys", 1, [one_map](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(auto map, one_map(args[0], "map:keys"));
    Sequence out;
    for (const auto& [key, value] : map->entries) {
      out.Append(Item::String(key));
    }
    return out;
  });

  // --- math: (the "bit of trigonometry") -----------------------------------

  auto math1 = [&def](const std::string& name, double (*fn)(double)) {
    def(name, 1, [fn, name](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
      if (args[0].empty()) return Sequence();
      LLL_ASSIGN_OR_RETURN(double d, OneNumber(args[0], name.c_str()));
      return DblSeq(fn(d));
    });
  };
  math1("math:sqrt", std::sqrt);
  math1("math:sin", std::sin);
  math1("math:cos", std::cos);
  math1("math:tan", std::tan);
  math1("math:asin", std::asin);
  math1("math:acos", std::acos);
  math1("math:atan", std::atan);
  math1("math:exp", std::exp);
  math1("math:log", std::log);
  def("math:pi", 0, [](Evaluator&, std::vector<Sequence>&) -> Result<Sequence> {
    return DblSeq(3.141592653589793);
  });
  def("math:atan2", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(double y, OneNumber(args[0], "atan2"));
    LLL_ASSIGN_OR_RETURN(double x, OneNumber(args[1], "atan2"));
    return DblSeq(std::atan2(y, x));
  });
  def("math:pow", 2, [](Evaluator&, std::vector<Sequence>& args) -> Result<Sequence> {
    LLL_ASSIGN_OR_RETURN(double base, OneNumber(args[0], "pow"));
    LLL_ASSIGN_OR_RETURN(double exp, OneNumber(args[1], "pow"));
    return DblSeq(std::pow(base, exp));
  });

  return reg;
}

}  // namespace

const std::map<std::pair<std::string, size_t>, BuiltinFn>& BuiltinFunctions() {
  static const auto& registry = *new std::map<std::pair<std::string, size_t>,
                                              BuiltinFn>(BuildRegistry());
  return registry;
}

bool SubsequenceWindow(double start, double length, bool has_length,
                       double* lo, double* hi) {
  // fn:subsequence rounds with fn:round semantics: floor(x + 0.5), i.e.
  // round half UP. std::round (round half away from zero) disagrees at
  // negative halves -- fn:round(-2.5) is -2, std::round gives -3 -- which
  // shifted the window for negative fractional starts/lengths. NaN
  // propagates through floor and the comparisons below, selecting nothing;
  // infinite starts/lengths behave per IEEE (start -inf + length inf is
  // NaN = empty, matching the spec's round(-inf)+round(inf) window).
  *lo = std::floor(start + 0.5);
  if (std::isnan(*lo)) return false;
  if (!has_length) {
    *hi = std::numeric_limits<double>::infinity();
    return true;
  }
  *hi = *lo + std::floor(length + 0.5);
  return !std::isnan(*hi);
}

bool IsBuiltinName(const std::string& raw) {
  std::string name = raw;
  if (StartsWith(name, "fn:")) name = name.substr(3);
  const auto& reg = BuiltinFunctions();
  for (const auto& [key, fn] : reg) {
    (void)fn;
    if (key.first == name) return true;
  }
  return false;
}

}  // namespace lll::xq
