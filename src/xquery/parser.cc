#include "xquery/parser.h"

#include <cctype>
#include <cstdio>

#include "core/string_util.h"

namespace lll::xq {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
// Names continue through '-' and '.' -- the paper's quirk #3: "$n-1 is a
// variable with a three-letter name, not a sensible index".
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.' ||
         c == '_';
}

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  Result<Module> ParseMainModule() {
    Module module;
    LLL_RETURN_IF_ERROR(ParseProlog(&module));
    LLL_ASSIGN_OR_RETURN(module.body, ParseExpr());
    SkipWs();
    if (!AtEnd()) return Err("unexpected trailing input");
    return module;
  }

  Result<Module> ParseBodyOnly() {
    Module module;
    LLL_ASSIGN_OR_RETURN(module.body, ParseExpr());
    SkipWs();
    if (!AtEnd()) return Err("unexpected trailing input");
    return module;
  }

  Result<SequenceType> ParseTypeOnly() {
    LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
    SkipWs();
    if (!AtEnd()) return Err("unexpected trailing input");
    return t;
  }

 private:
  // --- Cursor ---------------------------------------------------------------

  struct Mark {
    size_t pos, line, col;
  };

  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char PeekAt(size_t k) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  Mark Save() const { return {pos_, line_, col_}; }
  void Restore(const Mark& m) {
    pos_ = m.pos;
    line_ = m.line;
    col_ = m.col;
  }

  Status Err(std::string message) const {
    char loc[48];
    std::snprintf(loc, sizeof(loc), " at line %zu, column %zu", line_, col_);
    return Status::ParseError(message + loc);
  }

  // Skips whitespace and nested (: ... :) comments.
  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (IsXmlWhitespace(c)) {
        Advance();
        continue;
      }
      if (c == '(' && PeekAt(1) == ':') {
        Advance();
        Advance();
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          if (Peek() == '(' && PeekAt(1) == ':') {
            Advance();
            Advance();
            ++depth;
          } else if (Peek() == ':' && PeekAt(1) == ')') {
            Advance();
            Advance();
            --depth;
          } else {
            Advance();
          }
        }
        continue;
      }
      return;
    }
  }

  // True if the literal token is next (after whitespace) and consumes it.
  bool ConsumeTok(std::string_view tok) {
    SkipWs();
    if (src_.substr(pos_).substr(0, tok.size()) != tok) return false;
    for (size_t i = 0; i < tok.size(); ++i) Advance();
    return true;
  }

  // Consumes `word` only if it is a whole name (not a prefix of a longer
  // name). Keywords in XQuery are contextual.
  bool ConsumeKeyword(std::string_view word) {
    SkipWs();
    Mark m = Save();
    if (src_.substr(pos_).substr(0, word.size()) != word) return false;
    if (pos_ + word.size() < src_.size() && IsNameChar(src_[pos_ + word.size()])) {
      return false;
    }
    // Also require that what precedes can't glue (caller sits at a boundary).
    for (size_t i = 0; i < word.size(); ++i) Advance();
    (void)m;
    return true;
  }

  // Lexes a QName (prefix:local allowed). Empty result means "not a name".
  std::string LexName() {
    SkipWs();
    if (AtEnd() || !IsNameStart(Peek())) return {};
    std::string name;
    name.push_back(Advance());
    while (!AtEnd() && IsNameChar(Peek())) name.push_back(Advance());
    // One optional ':' for prefix:local (but not '::' which is an axis).
    if (Peek() == ':' && PeekAt(1) != ':' && IsNameStart(PeekAt(1))) {
      name.push_back(Advance());
      name.push_back(Advance());
      while (!AtEnd() && IsNameChar(Peek())) name.push_back(Advance());
    }
    return name;
  }

  Result<std::string> ExpectName(const char* what) {
    std::string name = LexName();
    if (name.empty()) return Err(std::string("expected ") + what);
    return name;
  }

  ExprPtr MakeExpr(ExprKind kind) {
    auto e = std::make_unique<Expr>(kind);
    e->line = line_;
    e->col = col_;
    return e;
  }

  // Stamps the node with a SAVED position -- the start of the construct --
  // instead of wherever the cursor drifted to by the time the node is built.
  // Diagnostics and profiler labels point at what the user wrote, not at the
  // token after it.
  ExprPtr MakeExprAt(ExprKind kind, const Mark& at) {
    auto e = std::make_unique<Expr>(kind);
    e->line = at.line;
    e->col = at.col;
    return e;
  }

  // --- Prolog ---------------------------------------------------------------

  Status ParseProlog(Module* module) {
    while (true) {
      SkipWs();
      Mark m = Save();
      if (!ConsumeKeyword("declare")) return Status::Ok();
      SkipWs();
      if (ConsumeKeyword("function")) {
        LLL_RETURN_IF_ERROR(ParseFunctionDecl(module));
      } else if (ConsumeKeyword("variable")) {
        LLL_RETURN_IF_ERROR(ParseVariableDecl(module));
      } else if (ConsumeKeyword("boundary-space")) {
        std::string mode = LexName();
        if (mode == "preserve") {
          boundary_preserve_ = true;
        } else if (mode == "strip") {
          boundary_preserve_ = false;
        } else {
          return Err("boundary-space wants 'preserve' or 'strip'");
        }
        if (!ConsumeTok(";")) return Err("expected ';' after declaration");
      } else if (ConsumeKeyword("namespace")) {
        // declare namespace p = "uri"; -- prefixes are kept verbatim in
        // names, so the binding itself is a no-op for us.
        LexName();
        if (!ConsumeTok("=")) return Err("expected '=' in namespace declaration");
        LLL_ASSIGN_OR_RETURN(std::string uri, LexStringLiteral());
        (void)uri;
        if (!ConsumeTok(";")) return Err("expected ';' after declaration");
      } else {
        Restore(m);
        return Status::Ok();
      }
    }
  }

  Status ParseFunctionDecl(Module* module) {
    FunctionDecl fn;
    LLL_ASSIGN_OR_RETURN(fn.name, ExpectName("function name"));
    if (!ConsumeTok("(")) return Err("expected '(' after function name");
    SkipWs();
    if (Peek() != ')') {
      while (true) {
        if (!ConsumeTok("$")) return Err("expected '$' starting a parameter");
        LLL_ASSIGN_OR_RETURN(std::string pname, ExpectName("parameter name"));
        fn.params.push_back(pname);
        SkipWs();
        if (ConsumeKeyword("as")) {
          LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
          fn.param_types.push_back(t);
          fn.has_param_type.push_back(true);
        } else {
          fn.param_types.push_back(SequenceType{});
          fn.has_param_type.push_back(false);
        }
        if (ConsumeTok(",")) continue;
        break;
      }
    }
    if (!ConsumeTok(")")) return Err("expected ')' after parameters");
    if (ConsumeKeyword("as")) {
      LLL_ASSIGN_OR_RETURN(fn.return_type, ParseSequenceType());
      fn.has_return_type = true;
    }
    if (!ConsumeTok("{")) return Err("expected '{' before function body");
    LLL_ASSIGN_OR_RETURN(fn.body, ParseExpr());
    if (!ConsumeTok("}")) return Err("expected '}' after function body");
    if (!ConsumeTok(";")) return Err("expected ';' after function declaration");
    module->functions.push_back(std::move(fn));
    return Status::Ok();
  }

  Status ParseVariableDecl(Module* module) {
    VariableDecl var;
    if (!ConsumeTok("$")) return Err("expected '$' after 'declare variable'");
    LLL_ASSIGN_OR_RETURN(var.name, ExpectName("variable name"));
    if (ConsumeKeyword("as")) {
      LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
      (void)t;  // accepted, not enforced on global variables
    }
    if (!ConsumeTok(":=")) return Err("expected ':=' in variable declaration");
    LLL_ASSIGN_OR_RETURN(var.expr, ParseExprSingle());
    if (!ConsumeTok(";")) return Err("expected ';' after variable declaration");
    module->variables.push_back(std::move(var));
    return Status::Ok();
  }

  // --- Types ------------------------------------------------------------

  Result<SequenceType> ParseSequenceType() {
    SkipWs();
    SequenceType t;
    if (ConsumeKeyword("empty-sequence")) {
      if (!ConsumeTok("(") || !ConsumeTok(")")) {
        return Err("expected '()' after empty-sequence");
      }
      t.item_type = SequenceType::ItemType::kEmpty;
      t.occurrence = SequenceType::Occurrence::kOne;
      return t;
    }
    std::string name = LexName();
    if (name.empty()) return Err("expected a type name");
    using IT = SequenceType::ItemType;
    if (name == "item") {
      if (!ConsumeTok("(") || !ConsumeTok(")")) return Err("expected item()");
      t.item_type = IT::kItem;
    } else if (name == "node") {
      if (!ConsumeTok("(") || !ConsumeTok(")")) return Err("expected node()");
      t.item_type = IT::kNode;
    } else if (name == "text") {
      if (!ConsumeTok("(") || !ConsumeTok(")")) return Err("expected text()");
      t.item_type = IT::kTextNode;
    } else if (name == "document-node") {
      if (!ConsumeTok("(") || !ConsumeTok(")")) {
        return Err("expected document-node()");
      }
      t.item_type = IT::kDocumentNode;
    } else if (name == "element") {
      if (!ConsumeTok("(")) return Err("expected '(' after element");
      SkipWs();
      if (Peek() != ')') {
        LLL_ASSIGN_OR_RETURN(t.element_name, ExpectName("element name"));
      }
      if (!ConsumeTok(")")) return Err("expected ')' after element(...)");
      t.item_type = IT::kElement;
    } else if (name == "attribute") {
      if (!ConsumeTok("(")) return Err("expected '(' after attribute");
      SkipWs();
      if (Peek() != ')') LexName();  // name restriction accepted, ignored
      if (!ConsumeTok(")")) return Err("expected ')' after attribute(...)");
      t.item_type = IT::kAttribute;
    } else if (name == "xs:string") {
      t.item_type = IT::kString;
    } else if (name == "xs:integer" || name == "xs:int" ||
               name == "xs:long" || name == "xs:nonNegativeInteger" ||
               name == "xs:positiveInteger") {
      t.item_type = IT::kInteger;
    } else if (name == "xs:decimal") {
      t.item_type = IT::kDecimal;
    } else if (name == "xs:double" || name == "xs:float") {
      t.item_type = IT::kDouble;
    } else if (name == "xs:boolean") {
      t.item_type = IT::kBoolean;
    } else if (name == "xs:untypedAtomic") {
      t.item_type = IT::kUntyped;
    } else if (name == "xs:anyAtomicType" || name == "xs:anySimpleType") {
      t.item_type = IT::kAnyAtomic;
    } else {
      return Err("unknown type name '" + name + "'");
    }
    // Occurrence indicator, glued or spaced.
    SkipWs();
    if (Peek() == '?') {
      Advance();
      t.occurrence = SequenceType::Occurrence::kOptional;
    } else if (Peek() == '*') {
      Advance();
      t.occurrence = SequenceType::Occurrence::kStar;
    } else if (Peek() == '+') {
      Advance();
      t.occurrence = SequenceType::Occurrence::kPlus;
    } else {
      t.occurrence = SequenceType::Occurrence::kOne;
    }
    return t;
  }

  // --- Literals ---------------------------------------------------------

  Result<std::string> LexStringLiteral() {
    SkipWs();
    if (Peek() != '"' && Peek() != '\'') return Err("expected string literal");
    char quote = Advance();
    std::string out;
    while (!AtEnd()) {
      char c = Advance();
      if (c == quote) {
        if (Peek() == quote) {  // doubled quote escapes itself
          out.push_back(Advance());
          continue;
        }
        return out;
      }
      if (c == '&') {
        LLL_ASSIGN_OR_RETURN(std::string ent, LexEntity());
        out += ent;
        continue;
      }
      out.push_back(c);
    }
    return Err("unterminated string literal");
  }

  // After '&': decode the five predefined entities and char refs.
  Result<std::string> LexEntity() {
    std::string ent;
    while (!AtEnd() && Peek() != ';') {
      ent.push_back(Advance());
      if (ent.size() > 8) return Err("unterminated entity reference");
    }
    if (AtEnd()) return Err("unterminated entity reference");
    Advance();
    if (ent == "lt") return std::string("<");
    if (ent == "gt") return std::string(">");
    if (ent == "amp") return std::string("&");
    if (ent == "quot") return std::string("\"");
    if (ent == "apos") return std::string("'");
    if (!ent.empty() && ent[0] == '#') {
      long code =
          ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')
              ? std::strtol(ent.c_str() + 2, nullptr, 16)
              : std::strtol(ent.c_str() + 1, nullptr, 10);
      if (code > 0 && code < 128) return std::string(1, static_cast<char>(code));
      return Err("unsupported character reference &" + ent + ";");
    }
    return Err("unknown entity &" + ent + ";");
  }

  // --- Expressions --------------------------------------------------------

  Result<ExprPtr> ParseExpr() {
    LLL_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    SkipWs();
    if (Peek() != ',') return first;
    auto seq = MakeExpr(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (ConsumeTok(",")) {
      LLL_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  Result<ExprPtr> ParseExprSingle() {
    SkipWs();
    Mark m = Save();
    // FLWOR: "for $" / "let $".
    if (ConsumeKeyword("for") || ConsumeKeyword("let")) {
      SkipWs();
      if (Peek() == '$') {
        Restore(m);
        return ParseFlwor();
      }
      Restore(m);
    }
    if (ConsumeKeyword("some") || ConsumeKeyword("every")) {
      SkipWs();
      if (Peek() == '$') {
        Restore(m);
        return ParseQuantified();
      }
      Restore(m);
    }
    if (ConsumeKeyword("if")) {
      SkipWs();
      if (Peek() == '(') {
        Restore(m);
        return ParseIf();
      }
      Restore(m);
    }
    // Extension (Moral #4): try { Expr } catch { Expr }. The catch body sees
    // $err:description bound to the error message.
    if (ConsumeKeyword("try")) {
      SkipWs();
      if (Peek() == '{') {
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr body, ParseExpr());
        if (!ConsumeTok("}")) return Err("expected '}' after try body");
        if (!ConsumeKeyword("catch")) return Err("expected 'catch'");
        ConsumeTok("*");  // optional XQuery 3.0-style catch-all marker
        if (!ConsumeTok("{")) return Err("expected '{' after catch");
        LLL_ASSIGN_OR_RETURN(ExprPtr handler, ParseExpr());
        if (!ConsumeTok("}")) return Err("expected '}' after catch body");
        auto e = MakeExpr(ExprKind::kTryCatch);
        e->children.push_back(std::move(body));
        e->children.push_back(std::move(handler));
        return e;
      }
      Restore(m);
    }
    return ParseOr();
  }

  Result<ExprPtr> ParseFlwor() {
    auto flwor = MakeExpr(ExprKind::kFlwor);
    while (true) {
      SkipWs();
      Mark m = Save();
      bool is_for = ConsumeKeyword("for");
      bool is_let = !is_for && ConsumeKeyword("let");
      if (!is_for && !is_let) break;
      SkipWs();
      if (Peek() != '$') {
        Restore(m);
        break;
      }
      // One keyword introduces a comma-separated list of bindings.
      while (true) {
        FlworClause clause;
        clause.kind =
            is_for ? FlworClause::Kind::kFor : FlworClause::Kind::kLet;
        if (!ConsumeTok("$")) return Err("expected '$'");
        LLL_ASSIGN_OR_RETURN(clause.var, ExpectName("variable name"));
        if (is_for) {
          if (ConsumeKeyword("at")) {
            if (!ConsumeTok("$")) return Err("expected '$' after 'at'");
            LLL_ASSIGN_OR_RETURN(clause.pos_var,
                                 ExpectName("positional variable name"));
          }
          if (ConsumeKeyword("as")) {
            LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
            (void)t;
          }
          if (!ConsumeKeyword("in")) return Err("expected 'in' in for clause");
        } else {
          if (ConsumeKeyword("as")) {
            LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
            (void)t;
          }
          if (!ConsumeTok(":=")) return Err("expected ':=' in let clause");
        }
        LLL_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
        flwor->clauses.push_back(std::move(clause));
        SkipWs();
        if (ConsumeTok(",")) continue;
        break;
      }
    }
    if (flwor->clauses.empty()) return Err("expected for/let clause");
    if (ConsumeKeyword("where")) {
      FlworClause clause;
      clause.kind = FlworClause::Kind::kWhere;
      LLL_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
      flwor->clauses.push_back(std::move(clause));
    }
    SkipWs();
    {
      Mark m = Save();
      bool stable = ConsumeKeyword("stable");
      if (ConsumeKeyword("order")) {
        if (!ConsumeKeyword("by")) return Err("expected 'by' after 'order'");
        while (true) {
          OrderSpec spec;
          LLL_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
          if (ConsumeKeyword("descending")) {
            spec.descending = true;
          } else {
            ConsumeKeyword("ascending");
          }
          flwor->order_by.push_back(std::move(spec));
          if (ConsumeTok(",")) continue;
          break;
        }
      } else if (stable) {
        Restore(m);
      }
    }
    if (!ConsumeKeyword("return")) return Err("expected 'return' in FLWOR");
    LLL_ASSIGN_OR_RETURN(ExprPtr body, ParseExprSingle());
    flwor->children.push_back(std::move(body));
    return flwor;
  }

  Result<ExprPtr> ParseQuantified() {
    auto quant = MakeExpr(ExprKind::kQuantified);
    if (ConsumeKeyword("every")) {
      quant->quantifier_every = true;
    } else if (!ConsumeKeyword("some")) {
      return Err("expected 'some' or 'every'");
    }
    if (!ConsumeTok("$")) return Err("expected '$'");
    LLL_ASSIGN_OR_RETURN(quant->name, ExpectName("variable name"));
    if (!ConsumeKeyword("in")) return Err("expected 'in'");
    LLL_ASSIGN_OR_RETURN(ExprPtr domain, ParseExprSingle());
    if (!ConsumeKeyword("satisfies")) return Err("expected 'satisfies'");
    LLL_ASSIGN_OR_RETURN(ExprPtr condition, ParseExprSingle());
    quant->children.push_back(std::move(domain));
    quant->children.push_back(std::move(condition));
    return quant;
  }

  Result<ExprPtr> ParseIf() {
    SkipWs();
    Mark start = Save();
    if (!ConsumeKeyword("if")) return Err("expected 'if'");
    if (!ConsumeTok("(")) return Err("expected '(' after 'if'");
    LLL_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    if (!ConsumeTok(")")) return Err("expected ')' after condition");
    if (!ConsumeKeyword("then")) return Err("expected 'then'");
    LLL_ASSIGN_OR_RETURN(ExprPtr then_branch, ParseExprSingle());
    if (!ConsumeKeyword("else")) return Err("expected 'else'");
    LLL_ASSIGN_OR_RETURN(ExprPtr else_branch, ParseExprSingle());
    auto e = MakeExprAt(ExprKind::kIf, start);
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then_branch));
    e->children.push_back(std::move(else_branch));
    return e;
  }

  ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = MakeExpr(ExprKind::kBinary);
    e->op = op;
    // The whole expression starts where its left operand does.
    if (lhs->line != 0) {
      e->line = lhs->line;
      e->col = lhs->col;
    }
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  Result<ExprPtr> ParseOr() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("or")) {
      LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (ConsumeKeyword("and")) {
      LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    SkipWs();
    BinOp op;
    bool found = true;
    if (ConsumeTok("!=")) {
      op = BinOp::kGenNe;
    } else if (ConsumeTok("<=")) {
      op = BinOp::kGenLe;
    } else if (ConsumeTok(">=")) {
      op = BinOp::kGenGe;
    } else if (ConsumeTok("=")) {
      op = BinOp::kGenEq;
    } else if (Peek() == '<' && PeekAt(1) != '<') {
      Advance();
      op = BinOp::kGenLt;
    } else if (Peek() == '>' && PeekAt(1) != '>') {
      Advance();
      op = BinOp::kGenGt;
    } else if (ConsumeKeyword("eq")) {
      op = BinOp::kValEq;
    } else if (ConsumeKeyword("ne")) {
      op = BinOp::kValNe;
    } else if (ConsumeKeyword("lt")) {
      op = BinOp::kValLt;
    } else if (ConsumeKeyword("le")) {
      op = BinOp::kValLe;
    } else if (ConsumeKeyword("gt")) {
      op = BinOp::kValGt;
    } else if (ConsumeKeyword("ge")) {
      op = BinOp::kValGe;
    } else if (ConsumeKeyword("is")) {
      op = BinOp::kIs;
    } else {
      found = false;
      op = BinOp::kOr;
    }
    if (!found) return lhs;
    LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseRange() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (ConsumeKeyword("to")) {
      LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(BinOp::kTo, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      SkipWs();
      if (Peek() == '+') {
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Peek() == '-') {
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary(BinOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnion());
    while (true) {
      SkipWs();
      if (Peek() == '*' && PeekAt(1) != '*') {
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
        lhs = MakeBinary(BinOp::kMul, std::move(lhs), std::move(rhs));
      } else if (ConsumeKeyword("div")) {
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
        lhs = MakeBinary(BinOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (ConsumeKeyword("idiv")) {
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
        lhs = MakeBinary(BinOp::kIdiv, std::move(lhs), std::move(rhs));
      } else if (ConsumeKeyword("mod")) {
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
        lhs = MakeBinary(BinOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnion() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseIntersectExcept());
    while (true) {
      SkipWs();
      if (Peek() == '|') {
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseIntersectExcept());
        lhs = MakeBinary(BinOp::kUnion, std::move(lhs), std::move(rhs));
      } else if (ConsumeKeyword("union")) {
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseIntersectExcept());
        lhs = MakeBinary(BinOp::kUnion, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseIntersectExcept() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseInstanceOf());
    while (true) {
      if (ConsumeKeyword("intersect")) {
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseInstanceOf());
        lhs = MakeBinary(BinOp::kIntersect, std::move(lhs), std::move(rhs));
      } else if (ConsumeKeyword("except")) {
        LLL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseInstanceOf());
        lhs = MakeBinary(BinOp::kExcept, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  // Stamps a wrapper node (cast/instance-of) at its operand's position.
  ExprPtr MakeWrapper(ExprKind kind, ExprPtr operand) {
    auto e = MakeExpr(kind);
    if (operand->line != 0) {
      e->line = operand->line;
      e->col = operand->col;
    }
    e->children.push_back(std::move(operand));
    return e;
  }

  Result<ExprPtr> ParseInstanceOf() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCast());
    if (ConsumeKeyword("instance")) {
      if (!ConsumeKeyword("of")) return Err("expected 'of' after 'instance'");
      LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
      auto e = MakeWrapper(ExprKind::kInstanceOf, std::move(lhs));
      e->type = t;
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseCast() {
    LLL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    if (ConsumeKeyword("castable")) {
      if (!ConsumeKeyword("as")) return Err("expected 'as' after 'castable'");
      LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
      auto e = MakeWrapper(ExprKind::kCastableAs, std::move(lhs));
      e->type = t;
      return e;
    }
    if (ConsumeKeyword("cast")) {
      if (!ConsumeKeyword("as")) return Err("expected 'as' after 'cast'");
      LLL_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
      auto e = MakeWrapper(ExprKind::kCastAs, std::move(lhs));
      e->type = t;
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    SkipWs();
    if (Peek() == '-') {
      Advance();
      LLL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto e = MakeExpr(ExprKind::kUnary);
      e->children.push_back(std::move(operand));
      return e;
    }
    if (Peek() == '+') {
      Advance();
      return ParseUnary();  // unary plus is the identity
    }
    return ParsePath();
  }

  // --- Paths ------------------------------------------------------------

  Result<ExprPtr> ParsePath() {
    SkipWs();
    auto path = MakeExpr(ExprKind::kPath);
    bool need_step = false;
    if (Peek() == '/' && PeekAt(1) == '/') {
      Advance();
      Advance();
      path->rooted = true;
      PathStep implicit;
      implicit.axis = Axis::kDescendantOrSelf;
      implicit.test.kind = NodeTestKind::kAnyNode;
      path->steps.push_back(std::move(implicit));
      need_step = true;
    } else if (Peek() == '/') {
      Advance();
      path->rooted = true;
      SkipWs();
      // A lone "/" selects the root itself.
      if (!CanStartStep()) return path;
      need_step = true;
    }

    if (!path->rooted) {
      // Either a primary expression (possibly followed by /steps) or a step.
      LLL_ASSIGN_OR_RETURN(ExprPtr first, ParseStepOrPrimary(path.get()));
      if (first != nullptr) {
        // Primary expression base.
        SkipWs();
        if (Peek() != '/') {
          return first;  // no path at all: unwrap
        }
        path->has_base = true;
        path->children.push_back(std::move(first));
      }
    } else if (need_step) {
      LLL_ASSIGN_OR_RETURN(ExprPtr ignored, ParseStepOrPrimary(path.get()));
      if (ignored != nullptr) {
        return Err("expected a path step after '/'");
      }
    }

    while (true) {
      SkipWs();
      if (Peek() != '/') break;
      Advance();
      if (Peek() == '/') {
        Advance();
        PathStep implicit;
        implicit.axis = Axis::kDescendantOrSelf;
        implicit.test.kind = NodeTestKind::kAnyNode;
        path->steps.push_back(std::move(implicit));
      }
      LLL_ASSIGN_OR_RETURN(ExprPtr primary, ParseStepOrPrimary(path.get()));
      if (primary != nullptr) {
        return Err("primary expression not allowed as a non-initial path step");
      }
    }
    // Unwrap a degenerate path (single primary already handled above).
    return path;
  }

  bool CanStartStep() {
    SkipWs();
    char c = Peek();
    return IsNameStart(c) || c == '@' || c == '*' || c == '.';
  }

  // Parses either an axis step (appended to `path`, returns nullptr) or a
  // primary expression (returned). Distinguishing the two needs lookahead:
  // `text()` is a node test, `concat(...)` is a function call, `for` is a
  // keyword that cannot reach here.
  Result<ExprPtr> ParseStepOrPrimary(Expr* path) {
    SkipWs();
    char c = Peek();

    // Primary expressions.
    if (c == '(' || c == '"' || c == '\'' || c == '$' ||
        std::isdigit(static_cast<unsigned char>(c))) {
      return ParsePrimary();
    }
    if (c == '<') return ParsePrimary();

    if (c == '.') {
      Advance();
      if (Peek() == '.') {
        Advance();
        PathStep step;
        step.axis = Axis::kParent;
        step.test.kind = NodeTestKind::kAnyNode;
        LLL_RETURN_IF_ERROR(ParsePredicates(&step));
        path->steps.push_back(std::move(step));
        return ExprPtr();
      }
      // "." alone: context item; as a path base it is a primary.
      auto ctx = MakeExpr(ExprKind::kContextItem);
      // Predicates on '.' are rare; treat as filter via self step.
      SkipWs();
      if (Peek() == '[') {
        return ApplyFilterPredicates(std::move(ctx));
      }
      return ctx;
    }

    PathStep step;
    if (c == '@') {
      Advance();
      step.axis = Axis::kAttribute;
      LLL_RETURN_IF_ERROR(ParseNodeTest(&step));
      LLL_RETURN_IF_ERROR(ParsePredicates(&step));
      path->steps.push_back(std::move(step));
      return ExprPtr();
    }
    if (c == '*') {
      Advance();
      step.axis = Axis::kChild;
      step.test.kind = NodeTestKind::kAnyName;
      LLL_RETURN_IF_ERROR(ParsePredicates(&step));
      path->steps.push_back(std::move(step));
      return ExprPtr();
    }
    if (!IsNameStart(c)) {
      return Err("expected an expression");
    }

    // A name: axis::test, node-test(), function call, keyword constructor,
    // or a plain child-step name. All need the name first.
    Mark m = Save();
    std::string name = LexName();

    // axis::  ?
    SkipWs();
    if (Peek() == ':' && PeekAt(1) == ':') {
      Axis axis;
      if (name == "child") {
        axis = Axis::kChild;
      } else if (name == "descendant") {
        axis = Axis::kDescendant;
      } else if (name == "descendant-or-self") {
        axis = Axis::kDescendantOrSelf;
      } else if (name == "self") {
        axis = Axis::kSelf;
      } else if (name == "parent") {
        axis = Axis::kParent;
      } else if (name == "ancestor") {
        axis = Axis::kAncestor;
      } else if (name == "ancestor-or-self") {
        axis = Axis::kAncestorOrSelf;
      } else if (name == "attribute") {
        axis = Axis::kAttribute;
      } else if (name == "following-sibling") {
        axis = Axis::kFollowingSibling;
      } else if (name == "preceding-sibling") {
        axis = Axis::kPrecedingSibling;
      } else {
        return Err("unknown axis '" + name + "'");
      }
      Advance();
      Advance();  // '::'
      step.axis = axis;
      LLL_RETURN_IF_ERROR(ParseNodeTest(&step));
      LLL_RETURN_IF_ERROR(ParsePredicates(&step));
      path->steps.push_back(std::move(step));
      return ExprPtr();
    }

    // Node-test kinds (also valid as steps): text(), node(), comment(), pi().
    if (Peek() == '(') {
      if (name == "text" || name == "node" || name == "comment" ||
          name == "processing-instruction") {
        Advance();
        SkipWs();
        if (name == "processing-instruction" && Peek() != ')') {
          LexStringLiteral().ok();  // optional target, accepted and ignored
        }
        if (!ConsumeTok(")")) return Err("expected ')' in node test");
        step.axis = Axis::kChild;
        step.test.kind = name == "text"      ? NodeTestKind::kText
                         : name == "node"    ? NodeTestKind::kAnyNode
                         : name == "comment" ? NodeTestKind::kComment
                                             : NodeTestKind::kPi;
        LLL_RETURN_IF_ERROR(ParsePredicates(&step));
        path->steps.push_back(std::move(step));
        return ExprPtr();
      }
      // Computed constructors use a following '{', not '('; anything else
      // with '(' here is a function call.
      Restore(m);
      return ParsePrimary();
    }

    // Computed constructor keywords: element/attribute/text/comment/document
    // followed by a name or '{'.
    if (name == "element" || name == "attribute" || name == "text" ||
        name == "comment" || name == "document") {
      SkipWs();
      if (Peek() == '{' || IsNameStart(Peek())) {
        Mark after_kw = Save();
        ExprPtr computed;
        Status st = ParseComputedConstructor(name, &computed);
        if (st.ok()) return computed;
        Restore(after_kw);
        // fall through: treat as a plain child step named e.g. "text"
      }
    }

    // Plain child step.
    step.axis = Axis::kChild;
    step.test.kind = NodeTestKind::kName;
    step.test.name = name;
    LLL_RETURN_IF_ERROR(ParsePredicates(&step));
    path->steps.push_back(std::move(step));
    return ExprPtr();
  }

  Status ParseNodeTest(PathStep* step) {
    SkipWs();
    if (Peek() == '*') {
      Advance();
      step->test.kind = NodeTestKind::kAnyName;
      return Status::Ok();
    }
    std::string name = LexName();
    if (name.empty()) return Err("expected a node test");
    SkipWs();
    if (Peek() == '(') {
      if (name == "text" || name == "node" || name == "comment" ||
          name == "processing-instruction") {
        Advance();
        SkipWs();
        if (!ConsumeTok(")")) return Err("expected ')' in node test");
        step->test.kind = name == "text"      ? NodeTestKind::kText
                          : name == "node"    ? NodeTestKind::kAnyNode
                          : name == "comment" ? NodeTestKind::kComment
                                              : NodeTestKind::kPi;
        return Status::Ok();
      }
      return Err("unexpected '(' after node test name");
    }
    step->test.kind = NodeTestKind::kName;
    step->test.name = name;
    return Status::Ok();
  }

  Status ParsePredicates(PathStep* step) {
    while (true) {
      SkipWs();
      if (Peek() != '[') return Status::Ok();
      Advance();
      LLL_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      if (!ConsumeTok("]")) return Err("expected ']' after predicate");
      step->predicates.push_back(std::move(pred));
    }
  }

  // --- Primary expressions ----------------------------------------------

  Result<ExprPtr> ParsePrimary() {
    SkipWs();
    Mark start = Save();
    char c = Peek();
    if (c == '(') {
      Advance();
      SkipWs();
      if (Peek() == ')') {
        Advance();
        auto empty = MakeExpr(ExprKind::kEmptySequence);
        return ApplyFilterPredicates(std::move(empty));
      }
      LLL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      if (!ConsumeTok(")")) return Err("expected ')'");
      return ApplyFilterPredicates(std::move(inner));
    }
    if (c == '"' || c == '\'') {
      LLL_ASSIGN_OR_RETURN(std::string s, LexStringLiteral());
      auto lit = MakeExprAt(ExprKind::kLiteral, start);
      lit->literal_type = Expr::LiteralType::kString;
      lit->text = std::move(s);
      return ApplyFilterPredicates(std::move(lit));
    }
    if (c == '$') {
      Advance();
      LLL_ASSIGN_OR_RETURN(std::string name, ExpectName("variable name"));
      auto var = MakeExprAt(ExprKind::kVarRef, start);
      var->name = std::move(name);
      return ApplyFilterPredicates(std::move(var));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    if (c == '<') {
      return ParseDirectConstructor();
    }
    // Function call (the only name-form primary that reaches here).
    std::string name = LexName();
    if (name.empty()) return Err("expected an expression");
    SkipWs();
    if (Peek() != '(') return Err("unexpected name '" + name + "'");
    Advance();
    auto call = MakeExprAt(ExprKind::kFunctionCall, start);
    call->name = std::move(name);
    SkipWs();
    if (Peek() != ')') {
      while (true) {
        LLL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExprSingle());
        call->children.push_back(std::move(arg));
        if (ConsumeTok(",")) continue;
        break;
      }
    }
    if (!ConsumeTok(")")) return Err("expected ')' after arguments");
    return ApplyFilterPredicates(std::move(call));
  }

  // Filter expressions: primary followed by [pred]... ; desugared into a
  // self::node() step so the evaluator has one predicate code path.
  Result<ExprPtr> ApplyFilterPredicates(ExprPtr primary) {
    SkipWs();
    if (Peek() != '[') return primary;
    auto path = MakeExpr(ExprKind::kPath);
    path->has_base = true;
    path->children.push_back(std::move(primary));
    PathStep step;
    step.axis = Axis::kSelf;
    step.test.kind = NodeTestKind::kAnyNode;
    step.is_filter = true;
    LLL_RETURN_IF_ERROR(ParsePredicates(&step));
    path->steps.push_back(std::move(step));
    return path;
  }

  Result<ExprPtr> ParseNumber() {
    SkipWs();
    Mark start = Save();
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits.push_back(Advance());
    }
    bool is_double = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
      is_double = true;
      digits.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      char next = PeekAt(1);
      if (std::isdigit(static_cast<unsigned char>(next)) || next == '+' ||
          next == '-') {
        is_double = true;
        digits.push_back(Advance());
        if (Peek() == '+' || Peek() == '-') digits.push_back(Advance());
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          digits.push_back(Advance());
        }
      }
    }
    auto lit = MakeExprAt(ExprKind::kLiteral, start);
    if (is_double) {
      auto d = ParseDouble(digits);
      if (!d) return Err("bad numeric literal '" + digits + "'");
      lit->literal_type = Expr::LiteralType::kDouble;
      lit->number = *d;
    } else {
      auto i = ParseInt(digits);
      if (!i) return Err("bad integer literal '" + digits + "'");
      lit->literal_type = Expr::LiteralType::kInteger;
      lit->integer = *i;
    }
    return ApplyFilterPredicates(std::move(lit));
  }

  // --- Constructors -------------------------------------------------------

  Status ParseComputedConstructor(const std::string& keyword, ExprPtr* out) {
    ExprKind kind;
    bool named = keyword == "element" || keyword == "attribute";
    if (keyword == "element") {
      kind = ExprKind::kCompElement;
    } else if (keyword == "attribute") {
      kind = ExprKind::kCompAttribute;
    } else if (keyword == "text") {
      kind = ExprKind::kCompText;
    } else if (keyword == "comment") {
      kind = ExprKind::kCompComment;
    } else {
      kind = ExprKind::kCompDocument;
    }
    auto e = MakeExpr(kind);
    SkipWs();
    if (named) {
      if (Peek() == '{') {
        // Computed name: element {expr} {content}
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr name_expr, ParseExpr());
        if (!ConsumeTok("}")) return Err("expected '}' after computed name");
        e->computed_name = true;
        e->children.push_back(std::move(name_expr));
      } else {
        std::string name = LexName();
        if (name.empty()) return Err("expected a name");
        e->name = std::move(name);
      }
      SkipWs();
    }
    if (Peek() != '{') return Err("expected '{' in computed constructor");
    Advance();
    SkipWs();
    if (Peek() == '}') {
      Advance();
      auto empty = MakeExpr(ExprKind::kEmptySequence);
      e->children.push_back(std::move(empty));
    } else {
      LLL_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
      if (!ConsumeTok("}")) return Err("expected '}' after content");
      e->children.push_back(std::move(content));
    }
    *out = std::move(e);
    return Status::Ok();
  }

  // Direct constructor: the cursor sits on '<'. Character-level scan.
  Result<ExprPtr> ParseDirectConstructor() {
    Advance();  // '<'
    if (Peek() == '!') {
      if (!ConsumeTok("!--")) return Err("expected '<!--'");
      std::string body;
      while (!AtEnd()) {
        if (Peek() == '-' && PeekAt(1) == '-' && PeekAt(2) == '>') {
          Advance();
          Advance();
          Advance();
          auto e = MakeExpr(ExprKind::kCompComment);
          auto lit = MakeExpr(ExprKind::kLiteral);
          lit->literal_type = Expr::LiteralType::kString;
          lit->text = std::move(body);
          e->children.push_back(std::move(lit));
          return e;
        }
        body.push_back(Advance());
      }
      return Err("unterminated comment constructor");
    }
    if (!IsNameStart(Peek())) return Err("expected element name after '<'");
    std::string name;
    name.push_back(Advance());
    while (!AtEnd() && (IsNameChar(Peek()) || (Peek() == ':' && IsNameStart(PeekAt(1))))) {
      name.push_back(Advance());
    }

    auto e = MakeExpr(ExprKind::kDirectElement);
    e->name = name;

    // Attributes.
    while (true) {
      SkipRawWs();
      if (AtEnd()) return Err("unterminated start tag <" + name);
      if (Peek() == '/' && PeekAt(1) == '>') {
        Advance();
        Advance();
        return e;
      }
      if (Peek() == '>') {
        Advance();
        break;
      }
      DirectAttribute attr;
      if (!IsNameStart(Peek())) return Err("expected attribute name");
      attr.name.push_back(Advance());
      while (!AtEnd() && (IsNameChar(Peek()) ||
                          (Peek() == ':' && IsNameStart(PeekAt(1))))) {
        attr.name.push_back(Advance());
      }
      SkipRawWs();
      if (Peek() != '=') return Err("expected '=' after attribute name");
      Advance();
      SkipRawWs();
      if (Peek() != '"' && Peek() != '\'') {
        return Err("expected quoted attribute value");
      }
      char quote = Advance();
      std::string text;
      auto flush = [&]() {
        if (text.empty()) return;
        auto lit = MakeExpr(ExprKind::kTextLiteral);
        lit->text = std::move(text);
        text.clear();
        attr.value_parts.push_back(std::move(lit));
      };
      while (true) {
        if (AtEnd()) return Err("unterminated attribute value");
        char c = Peek();
        if (c == quote) {
          Advance();
          if (Peek() == quote) {  // doubled quote
            text.push_back(Advance());
            continue;
          }
          break;
        }
        if (c == '{') {
          if (PeekAt(1) == '{') {
            Advance();
            Advance();
            text.push_back('{');
            continue;
          }
          Advance();
          flush();
          LLL_ASSIGN_OR_RETURN(ExprPtr enclosed, ParseExpr());
          if (!ConsumeTok("}")) return Err("expected '}' in attribute value");
          attr.value_parts.push_back(std::move(enclosed));
          continue;
        }
        if (c == '}') {
          if (PeekAt(1) == '}') {
            Advance();
            Advance();
            text.push_back('}');
            continue;
          }
          return Err("bare '}' in attribute value");
        }
        if (c == '&') {
          Advance();
          LLL_ASSIGN_OR_RETURN(std::string ent, LexEntity());
          text += ent;
          continue;
        }
        text.push_back(Advance());
      }
      flush();
      e->attributes.push_back(std::move(attr));
    }

    // Content until matching close tag.
    std::string text;
    bool text_has_nonspace = false;
    auto flush_text = [&]() {
      if (text.empty()) return;
      // Boundary whitespace is stripped unless the prolog declared
      // `boundary-space preserve` (strip is the XQuery default).
      if (text_has_nonspace || boundary_preserve_) {
        auto lit = MakeExpr(ExprKind::kTextLiteral);
        lit->text = std::move(text);
        e->children.push_back(std::move(lit));
      }
      text.clear();
      text_has_nonspace = false;
    };

    while (true) {
      if (AtEnd()) return Err("missing close tag </" + name + ">");
      char c = Peek();
      if (c == '<') {
        if (PeekAt(1) == '/') {
          flush_text();
          Advance();
          Advance();
          std::string close;
          while (!AtEnd() && (IsNameChar(Peek()) || Peek() == ':')) {
            close.push_back(Advance());
          }
          SkipRawWs();
          if (Peek() != '>') return Err("malformed close tag");
          Advance();
          if (close != name) {
            return Err("mismatched close tag: <" + name + "> vs </" + close + ">");
          }
          return e;
        }
        if (PeekAt(1) == '!' && PeekAt(2) == '-') {
          flush_text();
          Advance();
          LLL_ASSIGN_OR_RETURN(ExprPtr comment, [&]() -> Result<ExprPtr> {
            if (!ConsumeTok("!--")) return Err("expected comment");
            std::string body;
            while (!AtEnd()) {
              if (Peek() == '-' && PeekAt(1) == '-' && PeekAt(2) == '>') {
                Advance();
                Advance();
                Advance();
                auto ce = MakeExpr(ExprKind::kCompComment);
                auto lit = MakeExpr(ExprKind::kLiteral);
                lit->literal_type = Expr::LiteralType::kString;
                lit->text = std::move(body);
                ce->children.push_back(std::move(lit));
                return ce;
              }
              body.push_back(Advance());
            }
            return Err("unterminated comment");
          }());
          e->children.push_back(std::move(comment));
          continue;
        }
        // CDATA?
        if (src_.substr(pos_).substr(0, 9) == "<![CDATA[") {
          for (int i = 0; i < 9; ++i) Advance();
          while (!AtEnd() && src_.substr(pos_).substr(0, 3) != "]]>") {
            text.push_back(Advance());
            text_has_nonspace = true;
          }
          if (AtEnd()) return Err("unterminated CDATA");
          Advance();
          Advance();
          Advance();
          continue;
        }
        flush_text();
        LLL_ASSIGN_OR_RETURN(ExprPtr child, ParseDirectConstructor());
        e->children.push_back(std::move(child));
        continue;
      }
      if (c == '{') {
        if (PeekAt(1) == '{') {
          Advance();
          Advance();
          text.push_back('{');
          text_has_nonspace = true;
          continue;
        }
        flush_text();
        Advance();
        LLL_ASSIGN_OR_RETURN(ExprPtr enclosed, ParseExpr());
        if (!ConsumeTok("}")) return Err("expected '}' in element content");
        e->children.push_back(std::move(enclosed));
        continue;
      }
      if (c == '}') {
        if (PeekAt(1) == '}') {
          Advance();
          Advance();
          text.push_back('}');
          text_has_nonspace = true;
          continue;
        }
        return Err("bare '}' in element content");
      }
      if (c == '&') {
        Advance();
        LLL_ASSIGN_OR_RETURN(std::string ent, LexEntity());
        text += ent;
        text_has_nonspace = true;
        continue;
      }
      if (!IsXmlWhitespace(c)) text_has_nonspace = true;
      text.push_back(Advance());
    }
  }

  // Raw whitespace skip (no XQuery comments inside tags).
  void SkipRawWs() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) Advance();
  }

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  bool boundary_preserve_ = false;
};

}  // namespace

Result<Module> ParseModule(std::string_view source) {
  return Parser(source).ParseMainModule();
}

Result<Module> ParseExpression(std::string_view source) {
  return Parser(source).ParseBodyOnly();
}

Result<SequenceType> ParseSequenceTypeString(std::string_view source) {
  return Parser(source).ParseTypeOnly();
}

}  // namespace lll::xq
