#include "xquery/eval.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>
#include <vector>

#include "core/string_util.h"
#include "xquery/nodeset_cache.h"
#include "xquery/optimizer.h"
#include "obs/profiler.h"
#include "obs/trace_sink.h"
#include "xdm/compare.h"

namespace lll::xq {

using xdm::Item;
using xdm::Sequence;

namespace {

// Where an error/trace/profile record points: " at line L, column C", or
// nothing when the parser had no position (synthesized expressions).
std::string LocationSuffix(const Expr& e) {
  if (e.line == 0) return std::string();
  return " at line " + std::to_string(e.line) + ", column " +
         std::to_string(e.col);
}

// Profiler site label: kind, salient detail, source position.
std::string DescribeSite(const Expr& e) {
  std::string out = ExprKindName(e.kind);
  switch (e.kind) {
    case ExprKind::kFunctionCall:
      out += " " + e.name;
      break;
    case ExprKind::kVarRef:
      out += " $" + e.name;
      break;
    case ExprKind::kBinary:
      out += std::string(" ") + BinOpName(e.op);
      break;
    case ExprKind::kPath:
      if (!e.steps.empty()) {
        out += " ";
        for (size_t i = 0; i < e.steps.size() && i < 3; ++i) {
          out += "/";
          out += e.steps[i].test.kind == NodeTestKind::kName
                     ? e.steps[i].test.name
                     : "*";
        }
        if (e.steps.size() > 3) out += "/...";
      }
      break;
    case ExprKind::kDirectElement:
    case ExprKind::kCompElement:
      if (!e.name.empty()) out += " <" + e.name + ">";
      break;
    default:
      break;
  }
  if (e.line != 0) {
    out += " (" + std::to_string(e.line) + ":" + std::to_string(e.col) + ")";
  }
  return out;
}

bool MatchesTest(const xml::Node* n, const NodeTest& test, Axis axis) {
  xml::NodeKind principal = axis == Axis::kAttribute
                                ? xml::NodeKind::kAttribute
                                : xml::NodeKind::kElement;
  switch (test.kind) {
    case NodeTestKind::kName:
      return n->kind() == principal && n->name() == test.name;
    case NodeTestKind::kAnyName:
      return n->kind() == principal;
    case NodeTestKind::kText:
      return n->is_text();
    case NodeTestKind::kComment:
      return n->kind() == xml::NodeKind::kComment;
    case NodeTestKind::kPi:
      return n->kind() == xml::NodeKind::kProcessingInstruction;
    case NodeTestKind::kAnyNode:
      return true;
  }
  return false;
}

// Preorder walk with an explicit stack: descendant axes over degenerate
// (deep-chain) documents must not be bounded by the C++ call stack. Each
// frame is (node, index of the next child to visit).
void CollectDescendants(xml::Node* n, std::vector<xml::Node*>* out) {
  std::vector<std::pair<xml::Node*, size_t>> stack;
  stack.emplace_back(n, 0);
  while (!stack.empty()) {
    auto& frame = stack.back();
    if (frame.second >= frame.first->children().size()) {
      stack.pop_back();
      continue;
    }
    xml::Node* child = frame.first->children()[frame.second++];
    out->push_back(child);
    stack.emplace_back(child, 0);
  }
}

// A path whose last step is an axis step: every item of its result is a
// node, so emptiness / effective boolean value / predicate truth are all
// decided by the first node pulled (a node sequence is never a numeric
// singleton position test).
bool IsNodePathShape(const Expr& e) {
  return e.kind == ExprKind::kPath && !e.steps.empty() &&
         !e.steps.back().is_filter;
}

// The one document every node of `seq` belongs to, or nullptr (empty
// sequence, atomics present, detached nodes, or nodes of several documents).
xml::Document* SingleDocumentOf(const Sequence& seq) {
  xml::Document* doc = nullptr;
  for (const Item& item : seq.items()) {
    if (!item.is_node()) return nullptr;
    xml::Document* d = item.node()->document();
    if (d == nullptr) return nullptr;
    if (doc == nullptr) {
      doc = d;
    } else if (doc != d) {
      return nullptr;
    }
  }
  return doc;
}

}  // namespace

// --- DynamicContext -----------------------------------------------------

DynamicContext::DynamicContext() : arena_(std::make_unique<xml::Document>()) {}

void DynamicContext::BindExternal(const std::string& name, Sequence value) {
  env_.emplace_back(name, std::move(value));
}

// --- Evaluator ------------------------------------------------------------

Evaluator::Evaluator(const Module& module, DynamicContext* context,
                     const EvalOptions& options)
    : module_(module), ctx_(context), options_(options) {
  for (const FunctionDecl& fn : module.functions) {
    functions_[{fn.name, fn.params.size()}] = &fn;
  }
  if (ctx_->has_context_item_) {
    focus_.item = ctx_->context_item_;
    focus_.position = 1;
    focus_.size = 1;
    focus_.valid = true;
  }
}

const Sequence* Evaluator::EnvLookup(const std::string& name) const {
  for (auto it = ctx_->env_.rbegin(); it != ctx_->env_.rend(); ++it) {
    if (it->first == name) return &it->second;
  }
  return nullptr;
}

Result<Evaluator::Focus> Evaluator::RequireFocus(const Expr& e) const {
  if (focus_.valid) return focus_;
  if (options_.galax_style_messages) {
    // The message the paper quotes, verbatim: the compiler-internal name of
    // the context item surfacing in user-facing diagnostics.
    return Status::Internal("Internal_Error: Variable '$glx:dot' not found.");
  }
  return Status::Invalid("no context item at line " + std::to_string(e.line) +
                         ", column " + std::to_string(e.col));
}

Status Evaluator::StepBudget() {
  ++stats_.steps;
  if (options_.max_steps != 0 && stats_.steps > options_.max_steps) {
    return Status::ResourceExhausted(
        "evaluation step budget exceeded (" +
        std::to_string(options_.max_steps) + " steps)");
  }
  // Cancellation and deadline are polled, not checked per step: one relaxed
  // atomic load every 128 steps, one clock read only when a deadline is set.
  if ((stats_.steps & 0x7F) == 0) {
    if (options_.cancel != nullptr &&
        options_.cancel->load(std::memory_order_relaxed)) {
      return Status::ResourceExhausted("evaluation cancelled");
    }
    if (options_.deadline != std::chrono::steady_clock::time_point{} &&
        std::chrono::steady_clock::now() > options_.deadline) {
      return Status::ResourceExhausted("evaluation deadline exceeded");
    }
  }
  return Status::Ok();
}

Result<Sequence> Evaluator::Run() {
  for (const VariableDecl& var : module_.variables) {
    LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*var.expr));
    EnvBind(var.name, std::move(value));
  }
  return Eval(*module_.body);
}

void Evaluator::Trace(std::string line) {
  ++stats_.trace_calls;
  if (options_.trace_sink != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEvent::Kind::kTrace;
    event.source = "fn:trace";
    event.message = line;
    if (builtin_call_site_ != nullptr) {
      event.line = builtin_call_site_->line;
      event.col = builtin_call_site_->col;
    }
    options_.trace_sink->Emit(std::move(event));
  }
  ctx_->trace_output_.push_back(std::move(line));
}

Result<Sequence> Evaluator::Eval(const Expr& e) {
  // The profile=false hot path must stay one pointer test away from the raw
  // dispatch -- bench_e5/e12 guard this.
  if (profiler_ == nullptr) return EvalInner(e);
  obs::Profiler::Scope scope(profiler_, &e, [&e] { return DescribeSite(e); });
  Result<Sequence> result = EvalInner(e);
  if (result.ok()) scope.set_items(result->size());
  return result;
}

Result<Sequence> Evaluator::EvalInner(const Expr& e) {
  LLL_RETURN_IF_ERROR(StepBudget());
  switch (e.kind) {
    case ExprKind::kLiteral:
      switch (e.literal_type) {
        case Expr::LiteralType::kString:
          return Sequence(Item::String(e.text));
        case Expr::LiteralType::kInteger:
          return Sequence(Item::Integer(e.integer));
        case Expr::LiteralType::kDouble:
          return Sequence(Item::Double(e.number));
      }
      return Status::Internal("bad literal");
    case ExprKind::kTextLiteral:
      return Sequence(Item::String(e.text));
    case ExprKind::kEmptySequence:
      return Sequence();
    case ExprKind::kSequence: {
      Sequence out;
      for (const ExprPtr& c : e.children) {
        LLL_ASSIGN_OR_RETURN(Sequence part, Eval(*c));
        // Flattening happens here, by construction.
        out.AppendSequence(std::move(part));
      }
      return out;
    }
    case ExprKind::kVarRef: {
      const Sequence* bound = EnvLookup(e.name);
      if (bound == nullptr) {
        return Status::Invalid("variable '$" + e.name + "' not found at line " +
                               std::to_string(e.line));
      }
      return *bound;
    }
    case ExprKind::kContextItem: {
      LLL_ASSIGN_OR_RETURN(Focus f, RequireFocus(e));
      return Sequence(f.item);
    }
    case ExprKind::kPath:
      // An optimizer-pushed limit hint (fn:head / fn:subsequence /
      // positional-for shapes) caps the streamed result; the materializing
      // fallback inside EvalPathImpl still returns the full result, which
      // consumers of a limited path tolerate by contract. streaming=false
      // ignores the hint entirely: the baseline stays byte-identical.
      if (options_.streaming && e.limit_hint > 0) {
        ++stats_.limit_pushdowns;
        return EvalPathImpl(e, e.limit_hint);
      }
      return EvalPath(e);
    case ExprKind::kBinary:
      return EvalBinary(e);
    case ExprKind::kUnary: {
      LLL_ASSIGN_OR_RETURN(Sequence operand, Eval(*e.children[0]));
      Sequence atomized = operand.Atomized();
      if (atomized.empty()) return Sequence();
      LLL_ASSIGN_OR_RETURN(Item single,
                           xdm::RequireSingleton(atomized, "unary '-'"));
      if (single.kind() == xdm::ItemKind::kInteger) {
        return Sequence(Item::Integer(-single.integer_value()));
      }
      LLL_ASSIGN_OR_RETURN(double value, single.NumericValue());
      return Sequence(Item::Double(-value));
    }
    case ExprKind::kIf: {
      LLL_ASSIGN_OR_RETURN(bool truth, EvalEffectiveBoolean(*e.children[0]));
      return Eval(truth ? *e.children[1] : *e.children[2]);
    }
    case ExprKind::kFlwor:
      return EvalFlwor(e);
    case ExprKind::kQuantified:
      return EvalQuantified(e);
    case ExprKind::kFunctionCall:
      return EvalFunctionCall(e);
    case ExprKind::kDirectElement:
      return EvalDirectElement(e);
    case ExprKind::kCompElement:
    case ExprKind::kCompAttribute:
    case ExprKind::kCompText:
    case ExprKind::kCompComment:
    case ExprKind::kCompDocument:
      return EvalComputedConstructor(e);
    case ExprKind::kCastAs:
      return EvalCast(e);
    case ExprKind::kCastableAs: {
      // `e castable as T`: true iff `e cast as T` would succeed. EvalCast
      // re-evaluates the child, which is fine: the operand is evaluated at
      // most twice and side effects are limited to trace lines.
      LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*e.children[0]));
      Sequence atomized = value.Atomized();
      if (atomized.size() > 1) return Sequence(Item::Boolean(false));
      if (atomized.empty()) {
        return Sequence(Item::Boolean(
            e.type.occurrence == SequenceType::Occurrence::kOptional));
      }
      Expr probe(ExprKind::kCastAs);
      probe.type = e.type;
      probe.children.push_back(CloneExpr(*e.children[0]));
      Result<Sequence> attempt = EvalCast(probe);
      return Sequence(Item::Boolean(attempt.ok()));
    }
    case ExprKind::kInstanceOf:
      return EvalInstanceOf(e);
    case ExprKind::kTryCatch: {
      // The Moral #4 extension: "A little language should provide exception
      // handling. A very rudimentary form ... will do." Dynamic errors from
      // the try body are caught; the handler sees $err:description. Internal
      // and resource-limit errors (step budget, deadline, cancellation,
      // recursion depth) are NOT catchable -- a handler must not mask a
      // runaway query or swallow a server's kill switch.
      Result<Sequence> attempt = Eval(*e.children[0]);
      if (attempt.ok()) return attempt;
      if (attempt.status().code() == StatusCode::kInternal ||
          attempt.status().code() == StatusCode::kResourceExhausted) {
        return attempt.status();
      }
      size_t mark = EnvMark();
      EnvBind("err:description",
              Sequence(Item::String(attempt.status().message())));
      EnvBind("err:code",
              Sequence(Item::String(StatusCodeName(attempt.status().code()))));
      Result<Sequence> handled = Eval(*e.children[1]);
      EnvRestore(mark);
      return handled;
    }
  }
  return Status::Internal("unhandled expression kind");
}

// --- Paths ----------------------------------------------------------------

void Evaluator::SortDedup(Sequence* seq, bool provably_ordered) {
  if (provably_ordered || seq->ordered_deduped() || seq->size() <= 1) {
    seq->MarkOrderedDeduped();
    ++stats_.sorts_skipped;
    return;
  }
  seq->SortDocumentOrderAndDedup(&stats_.order_compares);
  ++stats_.sorts_performed;
}

// Streamability of one step at evaluation time; the axis classification
// (ast.cc) is shared with the optimizer's advisory statically_streamable
// annotation, which applies the same predicate scan against the module.
bool Evaluator::StepStreamable(const PathStep& step) const {
  if (step.is_filter || !IsStreamableAxis(step.axis)) return false;
  for (const ExprPtr& p : step.predicates) {
    if (PredicateBlocksStreaming(*p)) return false;
  }
  return true;
}

bool Evaluator::PredicateBlocksStreaming(const Expr& e) const {
  if (e.kind == ExprKind::kFunctionCall) {
    std::string stripped = e.name;
    if (StartsWith(stripped, "fn:")) stripped = stripped.substr(3);
    // fn:last() observes the focus size, which streaming never knows.
    // fn:trace()/fn:error() have externally observable effects whose order
    // and count must match the materializing evaluator: the merge
    // interleaves per-run predicate evaluation and early exit skips it
    // outright, so such predicates take the materializing path (the
    // trace-parity rule). User-defined and unknown functions may do either
    // internally, so they block too.
    if (stripped == "last" || stripped == "trace" || stripped == "error") {
      return true;
    }
    size_t arity = e.children.size();
    if (functions_.count({e.name, arity}) != 0 ||
        functions_.count({stripped, arity}) != 0) {
      return true;
    }
    if (!IsBuiltinName(stripped)) return true;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && PredicateBlocksStreaming(*c)) return true;
  }
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) {
      if (p != nullptr && PredicateBlocksStreaming(*p)) return true;
    }
  }
  for (const FlworClause& c : e.clauses) {
    if (c.expr != nullptr && PredicateBlocksStreaming(*c.expr)) return true;
  }
  for (const OrderSpec& o : e.order_by) {
    if (o.key != nullptr && PredicateBlocksStreaming(*o.key)) return true;
  }
  for (const DirectAttribute& a : e.attributes) {
    for (const ExprPtr& p : a.value_parts) {
      if (p != nullptr && PredicateBlocksStreaming(*p)) return true;
    }
  }
  return false;
}

// --- Streaming pipeline ---------------------------------------------------
//
// A streamable step chain is evaluated as a pull pipeline: one StreamStage
// per axis step, each exposing its (document-ordered, deduplicated) result a
// node at a time. An axis stage lazily merges per-context "runs" -- one lazy
// axis enumeration per context node -- on a min-heap keyed by the order-key
// index (PR 2). Forward axes guarantee every result's key >= its context's
// key, so upstream contexts are activated only while they could still beat
// the heap minimum; the pipeline therefore buffers O(active runs), not
// O(intermediate result), and a consumer that stops pulling (positional
// predicate satisfied, fn:exists answered, boolean context decided) leaves
// the remaining work undone.

// One lazily-enumerated forward-axis run from a single context node: yields,
// in document order, the axis candidates that pass the node test and the
// step's predicate chain. Positional predicates count per run -- exactly the
// per-context counting the materializing EvalStep does eagerly -- and a
// literal-integer predicate [N] exhausts the run the moment its counter
// reaches N, because no later candidate can ever pass that stage again.
class Evaluator::StreamRun {
 public:
  StreamRun(Evaluator* ev, const PathStep* step, xml::Node* context)
      : ev_(ev), step_(step) {
    switch (step->axis) {
      case Axis::kChild:
        list_ = context->children();
        break;
      case Axis::kAttribute:
        list_ = context->attributes();
        break;
      case Axis::kSelf:
        self_ = context;
        break;
      case Axis::kDescendant:
        stack_.emplace_back(context, 0);
        break;
      case Axis::kDescendantOrSelf:
        self_ = context;
        stack_.emplace_back(context, 0);
        break;
      case Axis::kFollowingSibling:
        if (context->parent() != nullptr && !context->is_attribute()) {
          list_ = context->parent()->children();
          cursor_ = context->IndexInParent() + 1;
        }
        break;
      default:
        break;  // reverse axes run as ReverseRuns (StreamReverseAxisStage)
    }
    positions_.assign(step->predicates.size(), 0);
  }

  // The current passing candidate; nullptr once exhausted.
  xml::Node* front() const { return front_; }

  // Moves front() to the next passing candidate (or exhausts the run).
  Status Advance() {
    if (exhaust_after_front_) {
      AccountAbandoned();  // the candidates the spent [N] will never examine
      done_ = true;
    }
    front_ = nullptr;
    if (done_) return Status::Ok();
    for (;;) {
      xml::Node* candidate = NextCandidate();
      if (candidate == nullptr) {
        done_ = true;
        return Status::Ok();
      }
      ++ev_->stats_.nodes_pulled;
      if (!MatchesTest(candidate, step_->test, step_->axis)) continue;
      bool keep = true;
      bool spent = false;  // some literal [N] stage just consumed its N-th
      for (size_t j = 0; j < step_->predicates.size() && keep; ++j) {
        const Expr& pred = *step_->predicates[j];
        size_t pos = ++positions_[j];
        // Probe pipelines spawned inside the predicate (an exists() or a
        // node-path EBV) abandon runs of their own; the skip floor for this
        // candidate's subtree is already this pipeline's to charge, so
        // nested charges are suppressed (see ChargeSkipped).
        bool outer_probe = ev_->suppress_skip_charges_;
        ev_->suppress_skip_charges_ = true;
        Result<bool> kept =
            ev_->PredicateKeep(pred, Item::NodeRef(candidate), pos,
                               /*size=*/pos);
        ev_->suppress_skip_charges_ = outer_probe;
        if (!kept.ok()) return kept.status();
        keep = *kept;
        if (pred.kind == ExprKind::kLiteral &&
            pred.literal_type == Expr::LiteralType::kInteger &&
            static_cast<int64_t>(pos) >= pred.integer) {
          spent = true;
        }
      }
      if (keep) {
        front_ = candidate;
        exhaust_after_front_ = spent;
        return Status::Ok();
      }
      if (spent) {
        AccountAbandoned();
        done_ = true;
        return Status::Ok();
      }
    }
  }

  // Lower bound on axis candidates this run will now never examine, charged
  // to nodes_skipped_early_exit. For descendant stacks only the immediate
  // unvisited children of each frame are counted -- a cheap floor, not the
  // full subtree size.
  void AccountAbandoned() {
    size_t n = 0;
    if (self_ != nullptr) ++n;
    n += list_.size() - cursor_;
    for (const auto& frame : stack_) {
      n += frame.first->children().size() - frame.second;
    }
    ev_->ChargeSkipped(n);
    self_ = nullptr;
    list_ = xml::NodeList();
    stack_.clear();
  }

 private:
  // The next axis candidate in document order, unfiltered.
  xml::Node* NextCandidate() {
    if (self_ != nullptr) {
      xml::Node* s = self_;
      self_ = nullptr;
      return s;
    }
    if (cursor_ < list_.size()) return list_[cursor_++];
    while (!stack_.empty()) {
      auto& frame = stack_.back();
      if (frame.second >= frame.first->children().size()) {
        stack_.pop_back();
        continue;
      }
      xml::Node* child = frame.first->children()[frame.second++];
      stack_.emplace_back(child, 0);
      return child;
    }
    return nullptr;
  }

  Evaluator* ev_;
  const PathStep* step_;
  xml::Node* front_ = nullptr;
  bool done_ = false;
  bool exhaust_after_front_ = false;
  // Enumeration state; at most one of self_/list_/stack_ is live at a time
  // (descendant-or-self drains self_ first, then the stack).
  xml::Node* self_ = nullptr;
  xml::NodeList list_;  // empty when this enumeration source is not in use
  size_t cursor_ = 0;
  std::vector<std::pair<xml::Node*, size_t>> stack_;
  std::vector<size_t> positions_;  // 1-based per-predicate counters
};

// Pull interface of one pipeline stage: a document-ordered, duplicate-free
// node stream.
class Evaluator::StreamStage {
 public:
  virtual ~StreamStage() = default;
  // The current front node; nullptr = exhausted. Idempotent until Pop().
  virtual Result<xml::Node*> Front() = 0;
  virtual Status Pop() = 0;
  // The consumer stopped early: fold a lower bound of the never-visited
  // work into nodes_skipped_early_exit, recursively upstream.
  virtual void Abandon() = 0;
};

// The materialized context sequence feeding the first axis stage.
class Evaluator::StreamBaseStage : public StreamStage {
 public:
  StreamBaseStage(Evaluator* ev, const Sequence* base) : ev_(ev), base_(base) {}
  Result<xml::Node*> Front() override {
    return index_ < base_->size() ? base_->at(index_).node() : nullptr;
  }
  Status Pop() override {
    ++index_;
    return Status::Ok();
  }
  void Abandon() override {
    ev_->ChargeSkipped(base_->size() - index_);
    index_ = base_->size();
  }

 private:
  Evaluator* ev_;
  const Sequence* base_;
  size_t index_ = 0;
};

// One axis step: a lazy k-way merge of per-context StreamRuns.
class Evaluator::StreamAxisStage : public StreamStage {
 public:
  StreamAxisStage(Evaluator* ev, const PathStep* step, StreamStage* upstream)
      : ev_(ev), step_(step), upstream_(upstream) {}

  Result<xml::Node*> Front() override {
    LLL_RETURN_IF_ERROR(Settle());
    return heap_.empty() ? nullptr : heap_.front()->front();
  }

  Status Pop() override {
    LLL_RETURN_IF_ERROR(Settle());
    if (heap_.empty()) return Status::Ok();
    last_emitted_ = heap_.front()->front();
    return AdvanceMin();
  }

  void Abandon() override {
    for (StreamRun* run : heap_) run->AccountAbandoned();
    heap_.clear();
    upstream_->Abandon();
  }

 private:
  // Min-heap order, reading order keys FRESH at every comparison: a nested
  // evaluation (a predicate that sorts, a constructor) may rebuild the
  // order index mid-stream, but rebuilds preserve the relative order of
  // pre-existing nodes (trees are stamped in root-pointer order), so
  // comparisons between fresh reads stay correct where cached key values
  // would not.
  static bool HeapAfter(const StreamRun* a, const StreamRun* b) {
    return a->front()->order_key() > b->front()->order_key();
  }

  // Restores the two invariants behind Front(): (1) every upstream context
  // that could still produce the globally-next node has been activated --
  // forward-axis results have keys >= their context's key, so activation
  // stops once the next context's key exceeds the heap minimum; (2) the
  // heap minimum is not a duplicate of the last emitted node (overlapping
  // descendant runs yield the same node only at adjacent heap minima,
  // because emission is non-decreasing in key and keys identify nodes).
  Status Settle() {
    for (;;) {
      while (!upstream_done_) {
        LLL_ASSIGN_OR_RETURN(xml::Node* context, upstream_->Front());
        if (context == nullptr) {
          upstream_done_ = true;
          break;
        }
        if (!heap_.empty() &&
            context->order_key() > heap_.front()->front()->order_key()) {
          break;
        }
        LLL_RETURN_IF_ERROR(upstream_->Pop());
        runs_.emplace_back(ev_, step_, context);
        StreamRun& run = runs_.back();
        LLL_RETURN_IF_ERROR(run.Advance());
        if (run.front() != nullptr) {
          heap_.push_back(&run);
          std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
        }
      }
      if (heap_.empty() || heap_.front()->front() != last_emitted_) {
        return Status::Ok();
      }
      LLL_RETURN_IF_ERROR(AdvanceMin());
    }
  }

  Status AdvanceMin() {
    std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
    StreamRun* run = heap_.back();
    heap_.pop_back();
    LLL_RETURN_IF_ERROR(run->Advance());
    if (run->front() != nullptr) {
      heap_.push_back(run);
      std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
    }
    return Status::Ok();
  }

  Evaluator* ev_;
  const PathStep* step_;
  StreamStage* upstream_;
  std::deque<StreamRun> runs_;    // deque: stable addresses for heap_
  std::vector<StreamRun*> heap_;  // min-heap by front()->order_key()
  xml::Node* last_emitted_ = nullptr;
  bool upstream_done_ = false;
};

// One reverse-axis run from a single context node. The axis is enumerated
// natively in AXIS order -- which for parent/ancestor(-or-self)/
// preceding-sibling IS reverse document order, by construction: ancestor
// chains walk parent pointers upward and preceding siblings walk the child
// vector backwards, so no per-run sort is ever needed. Node test and
// predicates apply during that walk with per-run positional counting in axis
// order (so [1] selects the NEAREST ancestor/sibling, matching the
// materializing evaluator, and a literal [N] exhausts the walk at its N-th
// passer). Passing candidates are buffered and then served BACK to front,
// i.e. in document order, which is what lets the merge stage above compose
// with downstream forward stages and the shared early-exit contract.
class Evaluator::ReverseRun {
 public:
  ReverseRun(Evaluator* ev, const PathStep* step, xml::Node* context)
      : ev_(ev), step_(step) {
    switch (step->axis) {
      case Axis::kParent:
        chain_ = context->parent();
        chain_stop_after_first_ = true;
        break;
      case Axis::kAncestor:
        chain_ = context->parent();
        break;
      case Axis::kAncestorOrSelf:
        self_ = context;
        chain_ = context->parent();
        break;
      case Axis::kPrecedingSibling:
        // Attributes have an owner but no preceding siblings on this axis
        // (mirrors the materializing EvalStep guard). Their ANCESTOR chain,
        // by contrast, starts at the owner via parent().
        if (context->parent() != nullptr && !context->is_attribute()) {
          list_ = context->parent()->children();
          cursor_ = context->IndexInParent();  // candidates: [cursor_-1 .. 0]
        }
        break;
      default:
        break;  // forward axes run as StreamRuns
    }
    positions_.assign(step->predicates.size(), 0);
  }

  // Runs the whole axis walk, filling buffer_ with passing candidates in
  // reverse document order. Called once, at stage open; the stage is a
  // barrier anyway (see StreamReverseAxisStage), so there is nothing to
  // gain from enumerating lazily across Fill calls.
  Status Fill() {
    for (;;) {
      xml::Node* candidate = NextCandidate();
      if (candidate == nullptr) return Status::Ok();
      ++ev_->stats_.nodes_pulled;
      if (!MatchesTest(candidate, step_->test, step_->axis)) continue;
      bool keep = true;
      bool spent = false;
      for (size_t j = 0; j < step_->predicates.size() && keep; ++j) {
        const Expr& pred = *step_->predicates[j];
        size_t pos = ++positions_[j];
        bool outer_probe = ev_->suppress_skip_charges_;
        ev_->suppress_skip_charges_ = true;
        Result<bool> kept =
            ev_->PredicateKeep(pred, Item::NodeRef(candidate), pos,
                               /*size=*/pos);
        ev_->suppress_skip_charges_ = outer_probe;
        if (!kept.ok()) return kept.status();
        keep = *kept;
        if (pred.kind == ExprKind::kLiteral &&
            pred.literal_type == Expr::LiteralType::kInteger &&
            static_cast<int64_t>(pos) >= pred.integer) {
          spent = true;
        }
      }
      if (keep) buffer_.push_back(candidate);
      if (spent) {
        AccountAbandoned();  // the rest of the walk can never pass again
        return Status::Ok();
      }
    }
  }

  // Document-order serving over the reverse-ordered buffer.
  xml::Node* front() const {
    return serve_ == 0 ? nullptr : buffer_[serve_ - 1];
  }
  void Pop() {
    if (serve_ > 0) --serve_;
  }

  // Lower bound on candidates this run will now never examine. Unserved
  // BUFFERED nodes are not counted -- they were already visited (and
  // charged to nodes_pulled); the skip floor only covers the abandoned
  // remainder of the enumeration: the exact sibling-vector remainder, plus
  // one for a pending ancestor link (walking the chain just to count it
  // would defeat the point -- a floor, as documented on the stat).
  void AccountAbandoned() {
    size_t n = 0;
    if (self_ != nullptr) ++n;
    n += cursor_;
    if (chain_ != nullptr) ++n;
    ev_->ChargeSkipped(n);
    self_ = nullptr;
    list_ = xml::NodeList();
    cursor_ = 0;
    chain_ = nullptr;
  }

  void FinishFill() { serve_ = buffer_.size(); }

 private:
  // The next axis candidate in reverse document order, unfiltered.
  xml::Node* NextCandidate() {
    if (self_ != nullptr) {  // ancestor-or-self: self comes first (nearest)
      xml::Node* s = self_;
      self_ = nullptr;
      return s;
    }
    if (cursor_ > 0) return list_[--cursor_];
    if (chain_ != nullptr) {
      xml::Node* c = chain_;
      chain_ = chain_stop_after_first_ ? nullptr : c->parent();
      return c;
    }
    return nullptr;
  }

  Evaluator* ev_;
  const PathStep* step_;
  // Enumeration state; at most one of self_/list_/chain_ feeds at a time
  // (ancestor-or-self drains self_ first, then the parent chain).
  xml::Node* self_ = nullptr;
  xml::NodeList list_;  // empty when this enumeration source is not in use
  size_t cursor_ = 0;  // counts DOWN; candidates remaining in list_
  xml::Node* chain_ = nullptr;
  bool chain_stop_after_first_ = false;  // parent:: is a one-link chain
  std::vector<size_t> positions_;        // 1-based, in axis order
  std::vector<xml::Node*> buffer_;       // passers, reverse document order
  size_t serve_ = 0;                     // buffer_[serve_-1] is the front
};

// One reverse-axis step: a k-way document-order merge of per-context
// ReverseRuns. Unlike the forward stage this is a BARRIER: reverse-axis
// results have keys <= their context's key, so a context arriving later (in
// document order) can still produce the globally smallest result -- the
// root is an ancestor of everything. The stage therefore drains its
// upstream completely before the first emission; its win over the
// materializing path is not laziness upstream but (a) skipping the
// O(k log k) normalizing sort -- runs are pre-ordered and merging costs
// O(k log runs) -- and (b) per-run early exhaustion for literal [N]
// predicates, where [1] = the nearest ancestor/sibling ends each walk at
// its first passer. Duplicates (sibling contexts share ancestor chains)
// surface at adjacent heap minima exactly as in the forward stage, so the
// same last_emitted_ dedup applies.
class Evaluator::StreamReverseAxisStage : public StreamStage {
 public:
  StreamReverseAxisStage(Evaluator* ev, const PathStep* step,
                         StreamStage* upstream)
      : ev_(ev), step_(step), upstream_(upstream) {}

  Result<xml::Node*> Front() override {
    LLL_RETURN_IF_ERROR(Settle());
    return heap_.empty() ? nullptr : heap_.front()->front();
  }

  Status Pop() override {
    LLL_RETURN_IF_ERROR(Settle());
    if (heap_.empty()) return Status::Ok();
    last_emitted_ = heap_.front()->front();
    AdvanceMin();
    return Status::Ok();
  }

  void Abandon() override {
    // Runs were fully enumerated at open (or charged their own remainder
    // when a literal [N] exhausted them); unserved buffered nodes were
    // visited, not skipped, so there is nothing further to charge here.
    for (ReverseRun* run : heap_) run->AccountAbandoned();
    heap_.clear();
    upstream_->Abandon();
  }

 private:
  // Same fresh-read discipline as StreamAxisStage::HeapAfter; by merge time
  // every predicate has already run (fills are complete), but rebuilds
  // triggered further downstream still preserve relative keys.
  static bool HeapAfter(const ReverseRun* a, const ReverseRun* b) {
    return a->front()->order_key() > b->front()->order_key();
  }

  Status Settle() {
    if (!opened_) {
      opened_ = true;
      for (;;) {
        LLL_ASSIGN_OR_RETURN(xml::Node* context, upstream_->Front());
        if (context == nullptr) break;
        LLL_RETURN_IF_ERROR(upstream_->Pop());
        runs_.emplace_back(ev_, step_, context);
        ReverseRun& run = runs_.back();
        LLL_RETURN_IF_ERROR(run.Fill());
        run.FinishFill();
        if (run.front() != nullptr) {
          ++ev_->stats_.reverse_runs_merged;
          heap_.push_back(&run);
        }
      }
      std::make_heap(heap_.begin(), heap_.end(), HeapAfter);
    }
    while (!heap_.empty() && heap_.front()->front() == last_emitted_) {
      AdvanceMin();
    }
    return Status::Ok();
  }

  void AdvanceMin() {
    std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
    ReverseRun* run = heap_.back();
    heap_.pop_back();
    run->Pop();
    if (run->front() != nullptr) {
      heap_.push_back(run);
      std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
    }
  }

  Evaluator* ev_;
  const PathStep* step_;
  StreamStage* upstream_;
  std::deque<ReverseRun> runs_;    // deque: stable addresses for heap_
  std::vector<ReverseRun*> heap_;  // min-heap by front()->order_key()
  xml::Node* last_emitted_ = nullptr;
  bool opened_ = false;
};

// --- Path dispatch --------------------------------------------------------

Result<Sequence> Evaluator::EvalPath(const Expr& e) {
  return EvalPathImpl(e, kNoLimit);
}

Result<Sequence> Evaluator::EvalPathLimited(const Expr& e, size_t limit) {
  LLL_RETURN_IF_ERROR(StepBudget());
  if (profiler_ == nullptr) return EvalPathImpl(e, limit);
  obs::Profiler::Scope scope(profiler_, &e, [&e] { return DescribeSite(e); });
  Result<Sequence> result = EvalPathImpl(e, limit);
  if (result.ok()) scope.set_items(result->size());
  return result;
}

Result<Sequence> Evaluator::EvalPathImpl(const Expr& e, size_t limit) {
  Sequence current;
  if (e.has_base) {
    const Expr& base = *e.children[0];
    // (BASE)[N] push-down: when the first step is a filter whose single
    // predicate is a positive integer literal, only the first N items of
    // BASE can matter -- stream BASE with that cap. Sound only because the
    // filter step has no other predicate (a second predicate would see a
    // truncated focus size) and both evaluation modes return node results
    // normalized, so "first N" is the same set either way.
    size_t base_limit = kNoLimit;
    if (options_.streaming && base.kind == ExprKind::kPath &&
        !e.steps.empty() && e.steps[0].is_filter &&
        e.steps[0].predicates.size() == 1) {
      const Expr& p = *e.steps[0].predicates[0];
      if (p.kind == ExprKind::kLiteral &&
          p.literal_type == Expr::LiteralType::kInteger && p.integer >= 1) {
        base_limit = static_cast<size_t>(p.integer);
      }
    }
    if (base_limit != kNoLimit) {
      LLL_ASSIGN_OR_RETURN(current, EvalPathLimited(base, base_limit));
    } else {
      LLL_ASSIGN_OR_RETURN(current, Eval(base));
    }
  } else if (e.rooted) {
    LLL_ASSIGN_OR_RETURN(Focus f, RequireFocus(e));
    if (!f.item.is_node()) {
      return Status::TypeError("'/' requires the context item to be a node");
    }
    current = Sequence(Item::NodeRef(f.item.node()->Root()));
  } else {
    LLL_ASSIGN_OR_RETURN(Focus f, RequireFocus(e));
    current = Sequence(f.item);
  }
  size_t first = 0;
  if (limit == kNoLimit) {
    LLL_ASSIGN_OR_RETURN(first, InternPrefix(e, &current));
  }
  return EvalStepsRange(e, first, e.steps.size(), std::move(current), limit);
}

Result<size_t> Evaluator::InternPrefix(const Expr& e, Sequence* current) {
  NodeSetCache* cache = options_.nodeset_cache;
  if (cache == nullptr || e.steps.empty()) return 0;
  if (current->size() != 1 || !current->at(0).is_node()) return 0;
  xml::Node* base = current->at(0).node();
  if (!base->is_document() || base->document() == nullptr) return 0;
  // Never intern sets rooted in this execution's construction arena (e.g.
  // `document { ... }` results): the arena dies with the query, while the
  // cache (session- or backend-scoped) lives on, and the next execution's
  // arena is likely reallocated at the same address -- the stamp alone
  // cannot make raw pointers into a freed arena safe to hand out.
  if (base->document() == ctx_->construction_arena()) return 0;

  // The internable prefix: leading axis steps that are pure functions of
  // the tree. Predicate-free steps qualify outright; steps whose predicates
  // are all intern-foldable (no position()/last()/variables/effects, only
  // downward reads -- see optimizer.h) qualify too, with the predicates'
  // canonical text folded into the fingerprint so `model[@id="a"]` and
  // `model[@id="b"]` intern separately.
  size_t prefix = 0;
  std::string fingerprint;
  for (const PathStep& step : e.steps) {
    if (step.is_filter) break;
    if (!step.predicates.empty() && !StepPredicatesFoldable(step)) break;
    fingerprint += AxisName(step.axis);
    fingerprint += "::";
    switch (step.test.kind) {
      case NodeTestKind::kName:
        fingerprint += step.test.name;
        break;
      case NodeTestKind::kAnyName:
        fingerprint += "*";
        break;
      case NodeTestKind::kText:
        fingerprint += "text()";
        break;
      case NodeTestKind::kComment:
        fingerprint += "comment()";
        break;
      case NodeTestKind::kPi:
        fingerprint += "processing-instruction()";
        break;
      case NodeTestKind::kAnyNode:
        fingerprint += "node()";
        break;
    }
    for (const ExprPtr& p : step.predicates) {
      fingerprint += '[';
      fingerprint += ExprToString(*p);
      fingerprint += ']';
    }
    fingerprint += "/";
    ++prefix;
  }
  if (prefix == 0) return 0;

  xml::Document* doc = base->document();
  std::string key = NodeSetCache::MakeKey(base, fingerprint);
  NodeSetCache::Outcome outcome = NodeSetCache::Outcome::kMiss;
  if (std::shared_ptr<const CachedNodeSet> hit =
          cache->Get(doc, key, &outcome)) {
    ++stats_.nodeset_cache_hits;
    *current = hit->nodes;  // copy of a normalized sequence; bit carries over
    return prefix;
  }
  if (outcome == NodeSetCache::Outcome::kStale ||
      outcome == NodeSetCache::Outcome::kStalePartial) {
    // A failed version guard, not a cold key: count it as an invalidation
    // (and, when the entry was scoped below the document, as a partial one
    // -- the subtree guards confined the damage to this chain).
    ++stats_.nodeset_cache_invalidations;
    if (outcome == NodeSetCache::Outcome::kStalePartial) {
      ++stats_.nodeset_cache_partial_invalidations;
    }
  } else {
    ++stats_.nodeset_cache_misses;
  }

  // Read the guard versions BEFORE computing, so an entry can only ever be
  // stamped too old (a harmless re-miss), never too new.
  std::vector<CachedNodeSet::Guard> guards;
  bool subtree_scoped = false;
  if (options_.subtree_guards) {
    ComputeInternGuards(e, prefix, base, &guards, &subtree_scoped);
  } else {
    // Subtree scoping forced off: one kSubtree guard at the document node,
    // so any edit anywhere evicts the entry, and subtree_scoped stays false
    // so the eviction counts as a FULL invalidation in the stats.
    guards.push_back(
        NodeSetCache::GuardFor(base, CachedNodeSet::GuardKind::kSubtree));
  }
  LLL_ASSIGN_OR_RETURN(
      Sequence computed,
      EvalStepsRange(e, 0, prefix, std::move(*current), kNoLimit));
  if (computed.empty() || SingleDocumentOf(computed) == doc) {
    cache->Put(key, doc->doc_id(), std::move(guards), subtree_scoped,
               computed);
  }
  *current = std::move(computed);
  return prefix;
}

bool Evaluator::StepPredicatesFoldable(const PathStep& step) const {
  auto is_user = [this](const std::string& name, size_t arity) {
    return functions_.count({name, arity}) != 0;
  };
  for (const ExprPtr& p : step.predicates) {
    if (p == nullptr || !InternFoldablePredicate(*p, is_user)) return false;
  }
  return true;
}

bool Evaluator::StepPredicatesAttributeOnly(const PathStep& step) const {
  auto is_user = [this](const std::string& name, size_t arity) {
    return functions_.count({name, arity}) != 0;
  };
  for (const ExprPtr& p : step.predicates) {
    if (p == nullptr || !InternAttributeOnlyPredicate(*p, is_user)) {
      return false;
    }
  }
  return true;
}

void Evaluator::ComputeInternGuards(const Expr& e, size_t prefix,
                                    xml::Node* base,
                                    std::vector<CachedNodeSet::Guard>* guards,
                                    bool* subtree_scoped) {
  using Guard = CachedNodeSet::Guard;
  using GuardKind = CachedNodeSet::GuardKind;
  constexpr size_t kMaxGuards = 16;
  auto push = [guards](const xml::Node* n, GuardKind kind) {
    guards->push_back(NodeSetCache::GuardFor(n, kind));
  };

  // A non-downward axis anywhere in the prefix (parent/ancestor/siblings)
  // can read outside any subtree scope the descent below would establish;
  // one whole-tree guard on the base covers everything such a chain sees.
  // (This is also today's whole-document behavior, now expressed as the
  // coarsest point of the guard lattice.)
  for (size_t i = 0; i < prefix; ++i) {
    switch (e.steps[i].axis) {
      case Axis::kChild:
      case Axis::kAttribute:
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
      case Axis::kSelf:
        continue;
      default:
        push(base, GuardKind::kSubtree);
        *subtree_scoped = false;
        return;
    }
  }

  // Descend from the base through steps that provably resolve to a single
  // element, pinning each level with the narrowest guard that dominates it:
  //
  //   child::name (no predicates)  the selection depends only on ctx's own
  //                                child list              -> {ctx, kLocal}
  //   child::name[attr-only preds] ...plus the candidates' attribute state
  //                       -> {ctx, kLocal} + {ctx, kLocalChildren}
  //
  // and stop with a whole-subtree guard at the first step that fans out,
  // matches nothing, or reads deeper than attributes. Every intermediate
  // singleton also stays pinned, so moving or renaming any node on the
  // resolved path invalidates the chain through its parent's kLocal guard.
  xml::Node* ctx = base;
  for (size_t i = 0; i < prefix; ++i) {
    const PathStep& step = e.steps[i];
    const bool last = i + 1 == prefix;
    if (guards->size() + 2 > kMaxGuards) {
      push(ctx, GuardKind::kSubtree);
      break;
    }
    if (step.axis == Axis::kChild && step.test.kind == NodeTestKind::kName &&
        step.predicates.empty()) {
      push(ctx, GuardKind::kLocal);
      if (last) break;
      xml::Node* match = nullptr;
      bool unique = true;
      for (xml::Node* c : ctx->children()) {
        if (c->is_element() && c->name() == step.test.name) {
          if (match != nullptr) {
            unique = false;
            break;
          }
          match = c;
        }
      }
      if (unique && match != nullptr) {
        ctx = match;
        continue;
      }
      push(ctx, GuardKind::kSubtree);
      break;
    }
    if (step.axis == Axis::kChild && step.test.kind == NodeTestKind::kName &&
        !step.predicates.empty() && StepPredicatesAttributeOnly(step)) {
      push(ctx, GuardKind::kLocal);
      push(ctx, GuardKind::kLocalChildren);
      if (last) break;
      // Resolve through the predicate with the real evaluator so the
      // singleton decision matches evaluation semantics exactly; shield the
      // main evaluation's stats, focus, and profile from the probe (it must
      // be invisible -- a guard-quality refinement, not an evaluation).
      EvalStats saved_stats = stats_;
      Focus saved_focus = focus_;
      obs::Profiler* saved_profiler = profiler_;
      profiler_ = nullptr;
      Result<Sequence> selected =
          EvalStep(step, Sequence(Item::NodeRef(ctx)));
      profiler_ = saved_profiler;
      stats_ = saved_stats;
      focus_ = saved_focus;
      if (selected.ok() && selected->size() == 1 &&
          selected->at(0).is_node() && selected->at(0).node()->is_element()) {
        ctx = selected->at(0).node();
        continue;
      }
      push(ctx, GuardKind::kSubtree);
      break;
    }
    if (step.axis == Axis::kAttribute && step.predicates.empty() && last) {
      // An attribute set depends only on the owner's own attribute state.
      push(ctx, GuardKind::kLocal);
      break;
    }
    // descendant/self steps, wildcards, folded general predicates: the
    // result can depend on anything beneath ctx.
    push(ctx, GuardKind::kSubtree);
    break;
  }

  *subtree_scoped = false;
  for (const Guard& g : *guards) {
    if (g.node != base->index()) {
      *subtree_scoped = true;
      break;
    }
  }
}

Result<Sequence> Evaluator::EvalStepsRange(const Expr& e, size_t first,
                                           size_t last, Sequence current,
                                           size_t limit) {
  if (first >= last) return current;
  bool streamable = options_.streaming && !current.empty();
  if (streamable) {
    for (size_t i = first; i < last; ++i) {
      if (!StepStreamable(e.steps[i])) {
        streamable = false;
        break;
      }
    }
  }
  if (streamable && SingleDocumentOf(current) != nullptr) {
    // The pipeline needs its context runs activated in document order.
    SortDedup(&current, false);
    Result<Sequence> streamed =
        EvalStepsStreamed(e, first, last, std::move(current), limit);
    if (!streamed.ok()) {
      Status st = streamed.status();
      return st.AddContext("in path expression" + LocationSuffix(e));
    }
    return streamed;
  }
  return EvalStepsMaterialized(e, first, last, std::move(current));
}

// Step-wise evaluation with inter-step normalization: after each axis step
// the intermediate sequence is brought back to document order without
// duplicates, which is exactly the precondition under which the optimizer's
// static proof (PathStep::statically_ordered) and the dynamic OrderProp
// tracking below are sound. The static annotation covers whole-path proofs
// from a known source; the dynamic side upgrades on runtime evidence the
// optimizer cannot see (singleton intermediates, sequences that already
// carry the ordered_deduped bit). This loop is also the streaming=false
// baseline, byte-identical to the pre-streaming evaluator.
Result<Sequence> Evaluator::EvalStepsMaterialized(const Expr& e, size_t first,
                                                  size_t last,
                                                  Sequence current) {
  const bool tracking = options_.order_tracking;
  OrderProp prop = OrderProp::kNone;
  for (size_t step_index = first; step_index < last; ++step_index) {
    const PathStep& step = e.steps[step_index];
    // Dynamic upgrades, checked against the CURRENT sequence before the step.
    if (tracking) {
      if (current.size() <= 1) {
        prop = OrderProp::kSingleton;
      } else if (prop == OrderProp::kNone && current.ordered_deduped()) {
        prop = OrderProp::kOrdered;
      }
    }
    if (step.is_filter) {
      // Predicates select a subsequence, preserving order/dedup/disjointness.
      LLL_ASSIGN_OR_RETURN(current,
                           ApplyPredicates(step.predicates, current));
      if (prop != OrderProp::kNone && current.AllNodes()) {
        current.MarkOrderedDeduped();
      }
      if (current.empty()) return current;
      continue;
    }
    Result<Sequence> stepped = EvalStep(step, current);
    if (!stepped.ok()) {
      Status st = stepped.status();
      return st.AddContext("in path expression" + LocationSuffix(e));
    }
    current = std::move(*stepped);
    prop = TransferOrder(prop, step.axis);
    if (tracking && prop == OrderProp::kNone && step.statically_ordered) {
      prop = OrderProp::kOrdered;
    }
    if (current.AllNodes()) {
      SortDedup(&current, tracking && prop != OrderProp::kNone);
    } else {
      prop = OrderProp::kNone;  // atomics (e.g. data-producing last step)
    }
    if (current.empty()) return current;
  }
  return current;
}

Result<Sequence> Evaluator::EvalStepsStreamed(const Expr& e, size_t first,
                                              size_t last, Sequence current,
                                              size_t limit) {
  // Preconditions (enforced by EvalStepsRange): nonempty, all nodes of one
  // document, steps [first, last) all pass StepStreamable. One index build
  // up front covers the whole pull -- rebuild-on-mutation keeps relative
  // keys stable (see HeapAfter).
  current.at(0).node()->document()->EnsureOrderIndex();
  StreamBaseStage base(this, &current);
  std::vector<std::unique_ptr<StreamStage>> stages;
  StreamStage* top = &base;
  for (size_t i = first; i < last; ++i) {
    const PathStep* step = &e.steps[i];
    if (IsReverseStreamableAxis(step->axis)) {
      stages.push_back(
          std::make_unique<StreamReverseAxisStage>(this, step, top));
    } else {
      stages.push_back(std::make_unique<StreamAxisStage>(this, step, top));
    }
    top = stages.back().get();
  }
  // Predicate evaluation inside runs sets the focus; restore around the
  // whole pull (PredicateKeep leaves it dirty by contract).
  Focus saved = focus_;
  Sequence out;
  Status failure;
  while (out.size() < limit) {
    Result<xml::Node*> front = top->Front();
    if (!front.ok()) {
      failure = front.status();
      break;
    }
    if (*front == nullptr) break;
    out.Append(Item::NodeRef(*front));
    Status popped = top->Pop();
    if (!popped.ok()) {
      failure = popped;
      break;
    }
  }
  focus_ = saved;
  LLL_RETURN_IF_ERROR(failure);
  if (out.size() >= limit) top->Abandon();
  out.MarkOrderedDeduped();  // Append clears the bit; emission order proves it
  return out;
}

Result<bool> Evaluator::EvalEffectiveBoolean(const Expr& e) {
  if (options_.streaming && IsNodePathShape(e)) {
    LLL_ASSIGN_OR_RETURN(Sequence probe, EvalPathLimited(e, 1));
    return !probe.empty();
  }
  LLL_ASSIGN_OR_RETURN(Sequence value, Eval(e));
  return xdm::EffectiveBooleanValue(value);
}

Result<Sequence> Evaluator::EvalStep(const PathStep& step,
                                     const Sequence& input) {
  if (step.is_filter) {
    return ApplyPredicates(step.predicates, input);
  }
  Sequence result;
  for (const Item& context : input.items()) {
    if (!context.is_node()) {
      return Status::TypeError(
          "path step applied to an atomic value (err:XPTY0019)");
    }
    xml::Node* node = context.node();
    std::vector<xml::Node*> axis_nodes;
    switch (step.axis) {
      case Axis::kChild:
        axis_nodes.assign(node->children().begin(), node->children().end());
        break;
      case Axis::kAttribute:
        axis_nodes.assign(node->attributes().begin(),
                          node->attributes().end());
        break;
      case Axis::kSelf:
        axis_nodes.push_back(node);
        break;
      case Axis::kDescendant:
        CollectDescendants(node, &axis_nodes);
        break;
      case Axis::kDescendantOrSelf:
        axis_nodes.push_back(node);
        CollectDescendants(node, &axis_nodes);
        break;
      case Axis::kParent:
        if (node->parent() != nullptr) axis_nodes.push_back(node->parent());
        break;
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        if (step.axis == Axis::kAncestorOrSelf) axis_nodes.push_back(node);
        for (xml::Node* p = node->parent(); p != nullptr; p = p->parent()) {
          axis_nodes.push_back(p);  // reverse document order, per the axis
        }
        break;
      }
      case Axis::kFollowingSibling:
      case Axis::kPrecedingSibling: {
        xml::Node* parent = node->parent();
        if (parent == nullptr || node->is_attribute()) break;
        const auto& sibs = parent->children();
        size_t index = node->IndexInParent();
        if (step.axis == Axis::kFollowingSibling) {
          for (size_t i = index + 1; i < sibs.size(); ++i) {
            axis_nodes.push_back(sibs[i]);
          }
        } else {
          for (size_t i = index; i-- > 0;) {
            axis_nodes.push_back(sibs[i]);  // reverse document order
          }
        }
        break;
      }
    }
    Sequence candidates;
    for (xml::Node* candidate : axis_nodes) {
      if (MatchesTest(candidate, step.test, step.axis)) {
        candidates.Append(Item::NodeRef(candidate));
      }
    }
    LLL_ASSIGN_OR_RETURN(Sequence filtered,
                         ApplyPredicates(step.predicates, candidates));
    result.AppendSequence(std::move(filtered));
  }
  // Normalization (sort + dedup) happens in EvalPath, where the order
  // analysis can prove it unnecessary; EvalStep returns the raw
  // per-context concatenation.
  return result;
}

Result<Sequence> Evaluator::ApplyPredicates(const std::vector<ExprPtr>& preds,
                                            Sequence candidates) {
  for (const ExprPtr& pred : preds) {
    Sequence kept;
    Focus saved = focus_;
    size_t size = candidates.size();
    for (size_t i = 0; i < size; ++i) {
      Result<bool> keep = PredicateKeep(*pred, candidates.at(i), i + 1, size);
      if (!keep.ok()) {
        focus_ = saved;
        return keep.status();
      }
      if (*keep) kept.Append(candidates.at(i));
    }
    focus_ = saved;
    candidates = std::move(kept);
  }
  return candidates;
}

Result<bool> Evaluator::PredicateKeep(const Expr& pred, const Item& item,
                                      size_t position, size_t size) {
  // A literal integer predicate is a pure position test: skip the Eval.
  // Gated on the streaming knob so streaming=false reproduces the baseline
  // evaluator's work (and step counts) exactly.
  if (options_.streaming && pred.kind == ExprKind::kLiteral &&
      pred.literal_type == Expr::LiteralType::kInteger) {
    return static_cast<double>(position) == static_cast<double>(pred.integer);
  }
  focus_.item = item;
  focus_.position = position;
  focus_.size = size;
  focus_.valid = true;
  // A predicate that is itself a node-producing path can only be judged by
  // (non-)emptiness -- a node sequence is never a numeric singleton -- so
  // one pulled node decides it.
  if (options_.streaming && IsNodePathShape(pred)) {
    LLL_ASSIGN_OR_RETURN(Sequence probe, EvalPathLimited(pred, 1));
    return !probe.empty();
  }
  LLL_ASSIGN_OR_RETURN(Sequence value, Eval(pred));
  // A singleton strictly-numeric predicate is a position test.
  if (value.size() == 1 && value.at(0).is_numeric()) {
    LLL_ASSIGN_OR_RETURN(double want, value.at(0).NumericValue());
    return static_cast<double>(position) == want;
  }
  return xdm::EffectiveBooleanValue(value);
}

// --- Binary operators ---------------------------------------------------

Result<Sequence> Evaluator::EvalBinary(const Expr& e) {
  switch (e.op) {
    case BinOp::kOr:
    case BinOp::kAnd: {
      LLL_ASSIGN_OR_RETURN(bool lv, EvalEffectiveBoolean(*e.children[0]));
      if (e.op == BinOp::kOr && lv) return Sequence(Item::Boolean(true));
      if (e.op == BinOp::kAnd && !lv) return Sequence(Item::Boolean(false));
      LLL_ASSIGN_OR_RETURN(bool rv, EvalEffectiveBoolean(*e.children[1]));
      return Sequence(Item::Boolean(rv));
    }
    case BinOp::kGenEq:
    case BinOp::kGenNe:
    case BinOp::kGenLt:
    case BinOp::kGenLe:
    case BinOp::kGenGt:
    case BinOp::kGenGe: {
      LLL_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.children[0]));
      LLL_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.children[1]));
      xdm::CompareOp op;
      switch (e.op) {
        case BinOp::kGenEq: op = xdm::CompareOp::kEq; break;
        case BinOp::kGenNe: op = xdm::CompareOp::kNe; break;
        case BinOp::kGenLt: op = xdm::CompareOp::kLt; break;
        case BinOp::kGenLe: op = xdm::CompareOp::kLe; break;
        case BinOp::kGenGt: op = xdm::CompareOp::kGt; break;
        default: op = xdm::CompareOp::kGe; break;
      }
      LLL_ASSIGN_OR_RETURN(bool truth, xdm::GeneralCompare(op, lhs, rhs));
      return Sequence(Item::Boolean(truth));
    }
    case BinOp::kValEq:
    case BinOp::kValNe:
    case BinOp::kValLt:
    case BinOp::kValLe:
    case BinOp::kValGt:
    case BinOp::kValGe: {
      LLL_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.children[0]));
      LLL_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.children[1]));
      Sequence la = lhs.Atomized();
      Sequence ra = rhs.Atomized();
      if (la.empty() || ra.empty()) return Sequence();
      LLL_ASSIGN_OR_RETURN(Item li, xdm::RequireSingleton(la, BinOpName(e.op)));
      LLL_ASSIGN_OR_RETURN(Item ri, xdm::RequireSingleton(ra, BinOpName(e.op)));
      xdm::CompareOp op;
      switch (e.op) {
        case BinOp::kValEq: op = xdm::CompareOp::kEq; break;
        case BinOp::kValNe: op = xdm::CompareOp::kNe; break;
        case BinOp::kValLt: op = xdm::CompareOp::kLt; break;
        case BinOp::kValLe: op = xdm::CompareOp::kLe; break;
        case BinOp::kValGt: op = xdm::CompareOp::kGt; break;
        default: op = xdm::CompareOp::kGe; break;
      }
      LLL_ASSIGN_OR_RETURN(bool truth, xdm::ValueCompare(op, li, ri));
      return Sequence(Item::Boolean(truth));
    }
    case BinOp::kIs: {
      LLL_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.children[0]));
      LLL_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.children[1]));
      if (lhs.empty() || rhs.empty()) return Sequence();
      LLL_ASSIGN_OR_RETURN(Item li, xdm::RequireSingleton(lhs, "is"));
      LLL_ASSIGN_OR_RETURN(Item ri, xdm::RequireSingleton(rhs, "is"));
      if (!li.is_node() || !ri.is_node()) {
        return Status::TypeError("'is' requires node operands");
      }
      return Sequence(Item::Boolean(li.node() == ri.node()));
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kIdiv:
    case BinOp::kMod:
      return EvalArithmetic(e);
    case BinOp::kUnion:
    case BinOp::kIntersect:
    case BinOp::kExcept: {
      LLL_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.children[0]));
      LLL_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.children[1]));
      if (!lhs.AllNodes() || !rhs.AllNodes()) {
        return Status::TypeError(std::string(BinOpName(e.op)) +
                                 " requires node sequences");
      }
      Sequence out;
      if (e.op == BinOp::kUnion) {
        out = std::move(lhs);
        out.AppendSequence(std::move(rhs));
      } else {
        bool lhs_ordered = lhs.ordered_deduped();
        auto contains = [](const Sequence& seq, const xml::Node* n) {
          for (const Item& it : seq.items()) {
            if (it.node() == n) return true;
          }
          return false;
        };
        for (const Item& it : lhs.items()) {
          bool in_rhs = contains(rhs, it.node());
          if ((e.op == BinOp::kIntersect) == in_rhs) out.Append(it);
        }
        // Filtering an ordered-deduped lhs preserves order and dedup.
        if (lhs_ordered) out.MarkOrderedDeduped();
      }
      SortDedup(&out, false);
      return out;
    }
    case BinOp::kTo: {
      LLL_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.children[0]));
      LLL_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.children[1]));
      Sequence la = lhs.Atomized();
      Sequence ra = rhs.Atomized();
      if (la.empty() || ra.empty()) return Sequence();
      LLL_ASSIGN_OR_RETURN(Item li, xdm::RequireSingleton(la, "to"));
      LLL_ASSIGN_OR_RETURN(Item ri, xdm::RequireSingleton(ra, "to"));
      LLL_ASSIGN_OR_RETURN(double lo_d, li.NumericValue());
      LLL_ASSIGN_OR_RETURN(double hi_d, ri.NumericValue());
      int64_t lo = static_cast<int64_t>(lo_d);
      int64_t hi = static_cast<int64_t>(hi_d);
      if (lo > hi) return Sequence();
      if (hi - lo >= (1 << 24)) {
        return Status::OutOfRange("range 'to' larger than 16M items");
      }
      Sequence out;
      for (int64_t v = lo; v <= hi; ++v) out.Append(Item::Integer(v));
      return out;
    }
  }
  return Status::Internal("unhandled binary operator");
}

Result<Sequence> Evaluator::EvalArithmetic(const Expr& e) {
  LLL_ASSIGN_OR_RETURN(Sequence lhs, Eval(*e.children[0]));
  LLL_ASSIGN_OR_RETURN(Sequence rhs, Eval(*e.children[1]));
  Sequence la = lhs.Atomized();
  Sequence ra = rhs.Atomized();
  if (la.empty() || ra.empty()) return Sequence();
  LLL_ASSIGN_OR_RETURN(Item li, xdm::RequireSingleton(la, BinOpName(e.op)));
  LLL_ASSIGN_OR_RETURN(Item ri, xdm::RequireSingleton(ra, BinOpName(e.op)));
  bool both_integer = li.kind() == xdm::ItemKind::kInteger &&
                      ri.kind() == xdm::ItemKind::kInteger;
  LLL_ASSIGN_OR_RETURN(double a, li.NumericValue());
  LLL_ASSIGN_OR_RETURN(double b, ri.NumericValue());
  switch (e.op) {
    case BinOp::kAdd:
      if (both_integer) {
        return Sequence(Item::Integer(li.integer_value() + ri.integer_value()));
      }
      return Sequence(Item::Double(a + b));
    case BinOp::kSub:
      if (both_integer) {
        return Sequence(Item::Integer(li.integer_value() - ri.integer_value()));
      }
      return Sequence(Item::Double(a - b));
    case BinOp::kMul:
      if (both_integer) {
        return Sequence(Item::Integer(li.integer_value() * ri.integer_value()));
      }
      return Sequence(Item::Double(a * b));
    case BinOp::kDiv:
      if (both_integer && ri.integer_value() == 0) {
        return Status::Invalid("division by zero (err:FOAR0001)" +
                               LocationSuffix(e));
      }
      return Sequence(Item::Double(a / b));
    case BinOp::kIdiv: {
      if (b == 0) {
        return Status::Invalid("division by zero (err:FOAR0001)" +
                               LocationSuffix(e));
      }
      double q = a / b;
      return Sequence(Item::Integer(static_cast<int64_t>(q)));
    }
    case BinOp::kMod: {
      if (both_integer) {
        if (ri.integer_value() == 0) {
          return Status::Invalid("division by zero (err:FOAR0001)" +
                                 LocationSuffix(e));
        }
        return Sequence(Item::Integer(li.integer_value() % ri.integer_value()));
      }
      return Sequence(Item::Double(std::fmod(a, b)));
    }
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

// --- FLWOR ------------------------------------------------------------------

namespace {

// A precomputed, sortable order-by key.
struct SortKey {
  enum class Tag { kEmpty, kNumber, kString } tag = Tag::kEmpty;
  double number = 0;
  std::string text;
};

// kEmpty sorts least (the "empty least" default).
int CompareSortKeys(const SortKey& a, const SortKey& b) {
  if (a.tag == SortKey::Tag::kEmpty || b.tag == SortKey::Tag::kEmpty) {
    if (a.tag == b.tag) return 0;
    return a.tag == SortKey::Tag::kEmpty ? -1 : 1;
  }
  if (a.tag == SortKey::Tag::kNumber) {
    return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
  }
  int c = a.text.compare(b.text);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

}  // namespace

Result<Sequence> Evaluator::EvalFlwor(const Expr& e) {
  Sequence out;
  std::vector<std::pair<std::vector<Sequence>, Sequence>> tuples;
  size_t mark = EnvMark();
  Status st = EvalFlworClauses(e, 0, e.order_by.empty() ? nullptr : &tuples,
                               e.order_by.empty() ? &out : nullptr);
  EnvRestore(mark);
  LLL_RETURN_IF_ERROR(st);
  if (e.order_by.empty()) return out;

  // Precompute sort keys and validate column homogeneity.
  size_t columns = e.order_by.size();
  std::vector<std::vector<SortKey>> keys(tuples.size());
  for (size_t t = 0; t < tuples.size(); ++t) {
    keys[t].resize(columns);
    for (size_t k = 0; k < columns; ++k) {
      const Sequence& raw = tuples[t].first[k];
      if (raw.empty()) continue;
      const Item& item = raw.at(0);
      if (item.is_numeric()) {
        LLL_ASSIGN_OR_RETURN(keys[t][k].number, item.NumericValue());
        keys[t][k].tag = SortKey::Tag::kNumber;
      } else if (item.is_stringlike()) {
        keys[t][k].text = item.string_value();
        keys[t][k].tag = SortKey::Tag::kString;
      } else {
        return Status::TypeError(
            std::string("unsupported 'order by' key type ") +
            ItemKindName(item.kind()));
      }
    }
  }
  for (size_t k = 0; k < columns; ++k) {
    SortKey::Tag seen = SortKey::Tag::kEmpty;
    for (size_t t = 0; t < tuples.size(); ++t) {
      if (keys[t][k].tag == SortKey::Tag::kEmpty) continue;
      if (seen == SortKey::Tag::kEmpty) {
        seen = keys[t][k].tag;
      } else if (seen != keys[t][k].tag) {
        return Status::TypeError(
            "'order by' key mixes numbers and strings (err:XPTY0004)");
      }
    }
  }
  std::vector<size_t> order(tuples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    for (size_t k = 0; k < columns; ++k) {
      int c = CompareSortKeys(keys[x][k], keys[y][k]);
      if (e.order_by[k].descending) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  });
  for (size_t index : order) {
    out.AppendSequence(std::move(tuples[index].second));
  }
  return out;
}

Status Evaluator::EvalFlworClauses(
    const Expr& e, size_t clause_index,
    std::vector<std::pair<std::vector<Sequence>, Sequence>>* tuples,
    Sequence* out) {
  if (clause_index == e.clauses.size()) {
    if (tuples == nullptr) {
      LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*e.children[0]));
      out->AppendSequence(std::move(value));
      return Status::Ok();
    }
    std::vector<Sequence> key_values;
    key_values.reserve(e.order_by.size());
    for (const OrderSpec& spec : e.order_by) {
      LLL_ASSIGN_OR_RETURN(Sequence raw, Eval(*spec.key));
      Sequence atomized = raw.Atomized();
      LLL_ASSIGN_OR_RETURN(Sequence single,
                           xdm::RequireAtMostOne(atomized, "order by key"));
      key_values.push_back(std::move(single));
    }
    LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*e.children[0]));
    tuples->emplace_back(std::move(key_values), std::move(value));
    return Status::Ok();
  }

  const FlworClause& clause = e.clauses[clause_index];
  switch (clause.kind) {
    case FlworClause::Kind::kLet: {
      LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*clause.expr));
      size_t mark = EnvMark();
      EnvBind(clause.var, std::move(value));
      Status st = EvalFlworClauses(e, clause_index + 1, tuples, out);
      EnvRestore(mark);
      return st;
    }
    case FlworClause::Kind::kWhere: {
      LLL_ASSIGN_OR_RETURN(bool truth, EvalEffectiveBoolean(*clause.expr));
      if (!truth) return Status::Ok();
      return EvalFlworClauses(e, clause_index + 1, tuples, out);
    }
    case FlworClause::Kind::kFor: {
      LLL_ASSIGN_OR_RETURN(Sequence domain, Eval(*clause.expr));
      for (size_t i = 0; i < domain.size(); ++i) {
        size_t mark = EnvMark();
        EnvBind(clause.var, Sequence(domain.at(i)));
        if (!clause.pos_var.empty()) {
          EnvBind(clause.pos_var,
                  Sequence(Item::Integer(static_cast<int64_t>(i + 1))));
        }
        Status st = EvalFlworClauses(e, clause_index + 1, tuples, out);
        EnvRestore(mark);
        LLL_RETURN_IF_ERROR(st);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled FLWOR clause");
}

Result<Sequence> Evaluator::EvalQuantified(const Expr& e) {
  LLL_ASSIGN_OR_RETURN(Sequence domain, Eval(*e.children[0]));
  for (const Item& item : domain.items()) {
    size_t mark = EnvMark();
    EnvBind(e.name, Sequence(item));
    Result<bool> truth = EvalEffectiveBoolean(*e.children[1]);
    EnvRestore(mark);
    if (!truth.ok()) return truth.status();
    if (e.quantifier_every && !*truth) return Sequence(Item::Boolean(false));
    if (!e.quantifier_every && *truth) return Sequence(Item::Boolean(true));
  }
  return Sequence(Item::Boolean(e.quantifier_every));
}

// --- Function calls -----------------------------------------------------

Result<Sequence> Evaluator::EvalFunctionCall(const Expr& e) {
  std::string name = e.name;
  if (StartsWith(name, "fn:")) name = name.substr(3);

  // User-defined functions shadow nothing (different namespaces in spirit).
  auto udf = functions_.find({e.name, e.children.size()});
  if (udf == functions_.end()) {
    udf = functions_.find({name, e.children.size()});
  }
  if (udf != functions_.end()) {
    const FunctionDecl& fn = *udf->second;
    if (++call_depth_ > 512) {
      --call_depth_;
      return Status::Internal("recursion too deep in '" + fn.name + "'");
    }
    ++stats_.function_calls;
    std::vector<Sequence> args;
    args.reserve(e.children.size());
    for (const ExprPtr& arg : e.children) {
      Result<Sequence> value = Eval(*arg);
      if (!value.ok()) {
        --call_depth_;
        return value.status();
      }
      args.push_back(std::move(*value));
    }
    size_t mark = EnvMark();
    for (size_t i = 0; i < fn.params.size(); ++i) {
      if (fn.has_param_type[i]) {
        Sequence converted;
        Status st = CheckSequenceType(args[i], fn.param_types[i],
                                      fn.params.size() > i ? fn.params[i].c_str()
                                                           : "parameter",
                                      &converted);
        if (!st.ok()) {
          EnvRestore(mark);
          --call_depth_;
          return st.AddContext("in call to " + fn.name + "()");
        }
        EnvBind(fn.params[i], std::move(converted));
      } else {
        EnvBind(fn.params[i], std::move(args[i]));
      }
    }
    // Function bodies do not inherit the caller's focus.
    Focus saved = focus_;
    focus_ = Focus{};
    Result<Sequence> body = Eval(*fn.body);
    focus_ = saved;
    EnvRestore(mark);
    --call_depth_;
    if (!body.ok()) {
      Status st = body.status();
      return st.AddContext("in call to " + fn.name + "()");
    }
    if (fn.has_return_type) {
      Sequence converted;
      Status st =
          CheckSequenceType(*body, fn.return_type, "return value", &converted);
      if (!st.ok()) return st.AddContext("returning from " + fn.name + "()");
      return converted;
    }
    return body;
  }

  // fn:exists / fn:empty over a path argument: emptiness is decided by the
  // first node, so pull at most one instead of materializing the set. Placed
  // after the UDF lookup so a user-declared exists/empty still wins.
  if (options_.streaming && e.children.size() == 1 &&
      (name == "exists" || name == "empty") &&
      IsNodePathShape(*e.children[0])) {
    LLL_ASSIGN_OR_RETURN(Sequence probe, EvalPathLimited(*e.children[0], 1));
    bool is_empty = probe.empty();
    return Sequence(Item::Boolean(name == "empty" ? is_empty : !is_empty));
  }

  const auto& builtins = BuiltinFunctions();
  auto bi = builtins.find({name, e.children.size()});
  if (bi == builtins.end()) {
    bi = builtins.find({name, static_cast<size_t>(-1)});  // variadic
  }
  if (bi == builtins.end()) {
    return Status::NotFound("unknown function " + e.name + "#" +
                            std::to_string(e.children.size()) + " at line " +
                            std::to_string(e.line));
  }
  std::vector<Sequence> args;
  args.reserve(e.children.size());
  for (const ExprPtr& arg : e.children) {
    LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*arg));
    args.push_back(std::move(value));
  }
  // Let the builtin (fn:trace, fn:error) see its own call site so trace
  // events and diagnostics carry a source position. Saved/restored because
  // builtins like trace re-enter Eval.
  const Expr* saved_site = builtin_call_site_;
  builtin_call_site_ = &e;
  Result<Sequence> out = bi->second(*this, args);
  builtin_call_site_ = saved_site;
  if (!out.ok()) {
    Status st = out.status();
    return st.AddContext("in call to " + name + "()" + LocationSuffix(e));
  }
  return out;
}

// --- Constructors -------------------------------------------------------

xml::Node* Evaluator::CopyIntoArena(const xml::Node* n) {
  ++stats_.constructed_nodes;
  return ctx_->arena_->ImportNode(n);
}

Status Evaluator::FillElementContent(xml::Node* element,
                                     const std::vector<const Expr*>& parts) {
  bool content_started = false;
  std::string pending;
  bool has_pending = false;
  bool last_atomic = false;

  auto append_text = [&](const std::string& text) {
    if (!element->children().empty() && element->children().back()->is_text()) {
      xml::Node* prev = element->children().back();
      prev->set_value(std::string(prev->value()) + text);
      return;
    }
    xml::Node* tn = ctx_->arena_->CreateText(text);
    ++stats_.constructed_nodes;
    (void)element->AppendChild(tn);
  };
  auto flush_pending = [&]() {
    if (!has_pending) return;
    append_text(pending);
    pending.clear();
    has_pending = false;
    content_started = true;
  };

  for (const Expr* part : parts) {
    if (part->kind == ExprKind::kTextLiteral) {
      flush_pending();
      append_text(part->text);
      content_started = true;
      last_atomic = false;
      continue;
    }
    LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*part));
    for (const Item& item : value.items()) {
      if (item.is_node() && item.node()->is_attribute()) {
        // The paper's E2 behavior: leading attribute items become attributes
        // of the parent; an attribute after content is an error.
        if (content_started || has_pending) {
          return Status::ConstructionError(
              "attribute node '" + item.node()->name() +
              "' follows non-attribute content (err:XQTY0024)");
        }
        if (!element->is_element()) {
          return Status::ConstructionError(
              "attribute node in document constructor content");
        }
        xml::Node* attr = ctx_->arena_->CreateAttribute(item.node()->name(),
                                                        item.node()->value());
        ++stats_.constructed_nodes;
        if (options_.galax_duplicate_attributes) {
          // Reproduce the Galax bug: duplicates are simply kept.
          attr->Detach();
          LLL_RETURN_IF_ERROR([&] {
            // Bypass the duplicate check by uniquifying transparently is NOT
            // what Galax did; it emitted both. Our arena allows it via a
            // direct append path: use SetAttributeNode only when unique.
            if (!element->AttributeValue(attr->name()).has_value()) {
              return element->SetAttributeNode(attr);
            }
            // Force-append a duplicate attribute (invalid XML, as in Galax).
            return element->ForceAppendDuplicateAttribute(attr);
          }());
        } else {
          LLL_RETURN_IF_ERROR(element->SetAttributeNode(attr,
                                                        /*keep_first=*/true));
        }
        last_atomic = false;
        continue;
      }
      if (item.is_node()) {
        flush_pending();
        const xml::Node* source = item.node();
        if (source->is_document()) {
          for (const xml::Node* child : source->children()) {
            xml::Node* copy = CopyIntoArena(child);
            LLL_RETURN_IF_ERROR(element->AppendChild(copy));
          }
        } else {
          xml::Node* copy = CopyIntoArena(source);
          LLL_RETURN_IF_ERROR(element->AppendChild(copy));
        }
        content_started = true;
        last_atomic = false;
        continue;
      }
      if (item.is_map()) {
        return Status::TypeError(
            "a map cannot appear in element content (err:XQTY0105)");
      }
      // Atomic: adjacent atomics are joined with a single space.
      if (last_atomic) pending += " ";
      pending += item.StringForm();
      has_pending = true;
      last_atomic = true;
    }
  }
  flush_pending();
  return Status::Ok();
}

Result<Sequence> Evaluator::EvalDirectElement(const Expr& e) {
  xml::Node* element = ctx_->arena_->CreateElement(e.name);
  ++stats_.constructed_nodes;
  for (const DirectAttribute& attr : e.attributes) {
    if (element->AttributeValue(attr.name).has_value()) {
      return Status::ConstructionError("duplicate attribute '" + attr.name +
                                       "' (err:XQST0040)");
    }
    std::string value;
    bool last_atomic = false;
    for (const ExprPtr& part : attr.value_parts) {
      if (part->kind == ExprKind::kTextLiteral) {
        value += part->text;
        last_atomic = false;
        continue;
      }
      LLL_ASSIGN_OR_RETURN(Sequence seq, Eval(*part));
      Sequence atomized = seq.Atomized();
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0 || last_atomic) value += " ";
        value += atomized.at(i).StringForm();
      }
      last_atomic = !atomized.empty();
    }
    element->SetAttribute(attr.name, value);
  }
  std::vector<const Expr*> parts;
  parts.reserve(e.children.size());
  for (const ExprPtr& c : e.children) parts.push_back(c.get());
  LLL_RETURN_IF_ERROR(FillElementContent(element, parts));
  return Sequence(Item::NodeRef(element));
}

Result<Sequence> Evaluator::EvalComputedConstructor(const Expr& e) {
  size_t content_index = 0;
  std::string name = e.name;
  if (e.computed_name) {
    LLL_ASSIGN_OR_RETURN(Sequence name_seq, Eval(*e.children[0]));
    Sequence atomized = name_seq.Atomized();
    LLL_ASSIGN_OR_RETURN(Item item,
                         xdm::RequireSingleton(atomized, "computed name"));
    name = item.StringForm();
    content_index = 1;
  }
  const Expr& content = *e.children[content_index];

  switch (e.kind) {
    case ExprKind::kCompElement: {
      if (!IsValidXmlName(name)) {
        return Status::ConstructionError("invalid element name '" + name +
                                         "' (err:XQDY0074)");
      }
      xml::Node* element = ctx_->arena_->CreateElement(name);
      ++stats_.constructed_nodes;
      std::vector<const Expr*> parts{&content};
      LLL_RETURN_IF_ERROR(FillElementContent(element, parts));
      return Sequence(Item::NodeRef(element));
    }
    case ExprKind::kCompAttribute: {
      if (!IsValidXmlName(name)) {
        return Status::ConstructionError("invalid attribute name '" + name +
                                         "' (err:XQDY0074)");
      }
      LLL_ASSIGN_OR_RETURN(Sequence value, Eval(content));
      Sequence atomized = value.Atomized();
      std::string text;
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0) text += " ";
        text += atomized.at(i).StringForm();
      }
      xml::Node* attr = ctx_->arena_->CreateAttribute(name, text);
      ++stats_.constructed_nodes;
      return Sequence(Item::NodeRef(attr));
    }
    case ExprKind::kCompText: {
      LLL_ASSIGN_OR_RETURN(Sequence value, Eval(content));
      Sequence atomized = value.Atomized();
      std::string text;
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0) text += " ";
        text += atomized.at(i).StringForm();
      }
      xml::Node* tn = ctx_->arena_->CreateText(text);
      ++stats_.constructed_nodes;
      return Sequence(Item::NodeRef(tn));
    }
    case ExprKind::kCompComment: {
      LLL_ASSIGN_OR_RETURN(Sequence value, Eval(content));
      Sequence atomized = value.Atomized();
      std::string text;
      for (size_t i = 0; i < atomized.size(); ++i) {
        if (i > 0) text += " ";
        text += atomized.at(i).StringForm();
      }
      xml::Node* cn = ctx_->arena_->CreateComment(text);
      ++stats_.constructed_nodes;
      return Sequence(Item::NodeRef(cn));
    }
    case ExprKind::kCompDocument: {
      xml::Node* doc = ctx_->arena_->CreateDocumentNode();
      ++stats_.constructed_nodes;
      std::vector<const Expr*> parts{&content};
      LLL_RETURN_IF_ERROR(FillElementContent(doc, parts));
      return Sequence(Item::NodeRef(doc));
    }
    default:
      return Status::Internal("not a computed constructor");
  }
}

// --- Types ------------------------------------------------------------

Result<Sequence> Evaluator::EvalCast(const Expr& e) {
  LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*e.children[0]));
  Sequence atomized = value.Atomized();
  if (atomized.empty()) {
    if (e.type.occurrence == SequenceType::Occurrence::kOptional) {
      return Sequence();
    }
    return Status::TypeError("cast of an empty sequence to a non-optional type");
  }
  LLL_ASSIGN_OR_RETURN(Item item, xdm::RequireSingleton(atomized, "cast"));
  using IT = SequenceType::ItemType;
  switch (e.type.item_type) {
    case IT::kString:
      return Sequence(Item::String(item.StringForm()));
    case IT::kUntyped:
      return Sequence(Item::Untyped(item.StringForm()));
    case IT::kInteger: {
      if (item.kind() == xdm::ItemKind::kInteger) return Sequence(item);
      if (item.kind() == xdm::ItemKind::kBoolean) {
        return Sequence(Item::Integer(item.boolean_value() ? 1 : 0));
      }
      if (item.kind() == xdm::ItemKind::kDouble) {
        return Sequence(Item::Integer(static_cast<int64_t>(item.double_value())));
      }
      auto parsed = ParseInt(item.string_value());
      if (!parsed) {
        return Status::TypeError("cannot cast \"" + item.string_value() +
                                 "\" to xs:integer");
      }
      return Sequence(Item::Integer(*parsed));
    }
    case IT::kDouble:
    case IT::kDecimal: {
      if (item.kind() == xdm::ItemKind::kBoolean) {
        return Sequence(Item::Double(item.boolean_value() ? 1 : 0));
      }
      LLL_ASSIGN_OR_RETURN(double d, [&]() -> Result<double> {
        if (item.is_numeric()) return item.NumericValue();
        auto parsed = ParseDouble(item.StringForm());
        if (!parsed) {
          return Status::TypeError("cannot cast \"" + item.StringForm() +
                                   "\" to xs:double");
        }
        return *parsed;
      }());
      return Sequence(Item::Double(d));
    }
    case IT::kBoolean: {
      if (item.kind() == xdm::ItemKind::kBoolean) return Sequence(item);
      if (item.is_numeric()) {
        LLL_ASSIGN_OR_RETURN(double d, item.NumericValue());
        return Sequence(Item::Boolean(d != 0 && !std::isnan(d)));
      }
      const std::string& s = item.string_value();
      if (s == "true" || s == "1") return Sequence(Item::Boolean(true));
      if (s == "false" || s == "0") return Sequence(Item::Boolean(false));
      return Status::TypeError("cannot cast \"" + s + "\" to xs:boolean");
    }
    default:
      return Status::Unsupported("cast to " + e.type.ToString() +
                                 " not supported");
  }
}

namespace {

bool ItemMatchesType(const Item& item, const SequenceType& type) {
  using IT = SequenceType::ItemType;
  switch (type.item_type) {
    case IT::kItem:
      return true;
    case IT::kNode:
      return item.is_node();
    case IT::kElement:
      return item.is_node() && item.node()->is_element() &&
             (type.element_name.empty() ||
              item.node()->name() == type.element_name);
    case IT::kAttribute:
      return item.is_node() && item.node()->is_attribute();
    case IT::kTextNode:
      return item.is_node() && item.node()->is_text();
    case IT::kDocumentNode:
      return item.is_node() && item.node()->is_document();
    case IT::kString:
      return item.kind() == xdm::ItemKind::kString;
    case IT::kInteger:
      return item.kind() == xdm::ItemKind::kInteger;
    case IT::kDecimal:
    case IT::kDouble:
      return item.is_numeric();
    case IT::kBoolean:
      return item.kind() == xdm::ItemKind::kBoolean;
    case IT::kUntyped:
      return item.kind() == xdm::ItemKind::kUntyped;
    case IT::kAnyAtomic:
      return item.is_atomic();
    case IT::kEmpty:
      return false;
  }
  return false;
}

}  // namespace

Result<Sequence> Evaluator::EvalInstanceOf(const Expr& e) {
  LLL_ASSIGN_OR_RETURN(Sequence value, Eval(*e.children[0]));
  // Occurrence check.
  bool occurrence_ok = true;
  switch (e.type.occurrence) {
    case SequenceType::Occurrence::kOne:
      occurrence_ok = value.size() == 1;
      break;
    case SequenceType::Occurrence::kOptional:
      occurrence_ok = value.size() <= 1;
      break;
    case SequenceType::Occurrence::kPlus:
      occurrence_ok = value.size() >= 1;
      break;
    case SequenceType::Occurrence::kStar:
      break;
  }
  if (e.type.item_type == SequenceType::ItemType::kEmpty) {
    return Sequence(Item::Boolean(value.empty()));
  }
  if (!occurrence_ok) return Sequence(Item::Boolean(false));
  for (const Item& item : value.items()) {
    if (!ItemMatchesType(item, e.type)) return Sequence(Item::Boolean(false));
  }
  return Sequence(Item::Boolean(true));
}

Status Evaluator::CheckSequenceType(const Sequence& seq,
                                    const SequenceType& type,
                                    const char* where, Sequence* converted) {
  // Function conversion rules (simplified): untyped atomics are cast to the
  // expected atomic type; integers promote to double. This is where the
  // paper's "types rapidly metastatize" effect lives -- an annotation on one
  // function demands casts or annotations at each of its callers.
  using IT = SequenceType::ItemType;
  if (type.item_type == IT::kEmpty) {
    if (!seq.empty()) {
      return Status::TypeError(std::string(where) +
                               ": expected empty-sequence()");
    }
    *converted = seq;
    return Status::Ok();
  }
  switch (type.occurrence) {
    case SequenceType::Occurrence::kOne:
      if (seq.size() != 1) {
        return Status::CardinalityError(
            std::string(where) + ": expected exactly one " + type.ToString() +
            ", got " + std::to_string(seq.size()) + " items");
      }
      break;
    case SequenceType::Occurrence::kOptional:
      if (seq.size() > 1) {
        return Status::CardinalityError(std::string(where) +
                                        ": expected at most one item");
      }
      break;
    case SequenceType::Occurrence::kPlus:
      if (seq.empty()) {
        return Status::CardinalityError(std::string(where) +
                                        ": expected at least one item");
      }
      break;
    case SequenceType::Occurrence::kStar:
      break;
  }
  Sequence out;
  for (const Item& item : seq.items()) {
    Item current = item;
    bool atomic_expected =
        type.item_type == IT::kString || type.item_type == IT::kInteger ||
        type.item_type == IT::kDouble || type.item_type == IT::kDecimal ||
        type.item_type == IT::kBoolean || type.item_type == IT::kUntyped ||
        type.item_type == IT::kAnyAtomic;
    if (atomic_expected && current.is_node()) {
      current = current.Atomized();
    }
    if (atomic_expected && current.kind() == xdm::ItemKind::kUntyped &&
        type.item_type != IT::kUntyped && type.item_type != IT::kAnyAtomic) {
      // Cast untyped to the expected type.
      const std::string& s = current.string_value();
      switch (type.item_type) {
        case IT::kString:
          current = Item::String(s);
          break;
        case IT::kInteger: {
          auto parsed = ParseInt(s);
          if (!parsed) {
            return Status::TypeError(std::string(where) + ": cannot cast \"" +
                                     s + "\" to xs:integer");
          }
          current = Item::Integer(*parsed);
          break;
        }
        case IT::kDouble:
        case IT::kDecimal: {
          auto parsed = ParseDouble(s);
          if (!parsed) {
            return Status::TypeError(std::string(where) + ": cannot cast \"" +
                                     s + "\" to xs:double");
          }
          current = Item::Double(*parsed);
          break;
        }
        case IT::kBoolean: {
          if (s == "true" || s == "1") {
            current = Item::Boolean(true);
          } else if (s == "false" || s == "0") {
            current = Item::Boolean(false);
          } else {
            return Status::TypeError(std::string(where) + ": cannot cast \"" +
                                     s + "\" to xs:boolean");
          }
          break;
        }
        default:
          break;
      }
    }
    if ((type.item_type == IT::kDouble || type.item_type == IT::kDecimal) &&
        current.kind() == xdm::ItemKind::kInteger) {
      current = Item::Double(static_cast<double>(current.integer_value()));
    }
    if (!ItemMatchesType(current, type)) {
      return Status::TypeError(std::string(where) + ": expected " +
                               type.ToString() + ", got " +
                               ItemKindName(current.kind()));
    }
    out.Append(std::move(current));
  }
  *converted = std::move(out);
  return Status::Ok();
}

}  // namespace lll::xq
