#ifndef LLL_XQUERY_EVAL_H_
#define LLL_XQUERY_EVAL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "xdm/sequence.h"
#include "xml/node.h"
#include "xquery/ast.h"

namespace lll::obs {
class Profiler;
class TraceSink;
}  // namespace lll::obs

namespace lll::xq {

class Evaluator;

// Options for one evaluation. The two "galax_" switches reproduce the
// behaviors of the Galax prototype the paper debugged against (see DESIGN.md
// E1/E2 and the Debugging section).
struct EvalOptions {
  // Keep BOTH attributes when two attribute nodes with the same name are
  // constructed ("though Galax did not honor this as of the time of
  // writing"). Default false: first one wins, deterministically.
  bool galax_duplicate_attributes = false;
  // Report a missing context item with Galax's infamous message
  // "Internal_Error: Variable '$glx:dot' not found." instead of a located
  // diagnostic.
  bool galax_style_messages = false;
  // Evaluation step budget (0 = unlimited); guards runaway recursion in
  // property tests.
  size_t max_steps = 0;
  // Document-order tracking: when on (default), the evaluator skips the
  // normalizing sort after a path step or set operator whenever the static
  // order analysis or dynamic evidence (singleton input, ordered_deduped
  // bit) proves the result already normalized. Off = sort after every step,
  // the pre-index behavior; kept as a benchmark baseline (bench_e12).
  bool order_tracking = true;
  // Per-expression profiling (obs/profiler.h): attribute wall time, eval
  // counts, and result sizes to AST nodes. Off = one null-pointer test per
  // expression, nothing more.
  bool profile = false;
  // Structured trace events (fn:trace, fn:error, located dynamic errors) are
  // mirrored to this sink when set, in addition to the per-query
  // trace_output buffer. Borrowed; must outlive the evaluation.
  obs::TraceSink* trace_sink = nullptr;
};

// Statistics collected during one evaluation.
struct EvalStats {
  size_t steps = 0;            // expression evaluations
  size_t constructed_nodes = 0;  // nodes created by constructors
  size_t trace_calls = 0;        // fn:trace invocations actually executed
  size_t function_calls = 0;     // user-defined function invocations
  // Document-order bookkeeping: path steps and set operators must yield
  // ordered, deduplicated node sequences. `sorts_performed` counts actual
  // sort passes; `sorts_skipped` counts normalizations proven unnecessary
  // (statically by the optimizer's order analysis, or dynamically via the
  // sequence's ordered_deduped bit / singleton inputs); `order_compares`
  // counts document-order comparator calls inside performed sorts.
  size_t sorts_performed = 0;
  size_t sorts_skipped = 0;
  size_t order_compares = 0;
};

// A builtin function: receives evaluated arguments.
using BuiltinFn = std::function<Result<xdm::Sequence>(
    Evaluator&, std::vector<xdm::Sequence>&)>;

// The dynamic context of an evaluation: variable bindings, the focus
// (context item / position / size), available documents, the construction
// arena, and the trace sink.
class DynamicContext {
 public:
  DynamicContext();

  // The arena owning every node constructed during evaluation. Results that
  // reference constructed nodes stay valid as long as this context (or the
  // QueryResult that adopts the arena) lives.
  xml::Document* construction_arena() { return arena_.get(); }
  std::unique_ptr<xml::Document> ReleaseArena() { return std::move(arena_); }

  // Named documents for fn:doc("name").
  void RegisterDocument(const std::string& name, xml::Node* document_node) {
    documents_[name] = document_node;
  }
  xml::Node* LookupDocument(const std::string& name) const {
    auto it = documents_.find(name);
    return it == documents_.end() ? nullptr : it->second;
  }

  // External variable bindings (visible as $name).
  void BindExternal(const std::string& name, xdm::Sequence value);

  // The initial context item (the document the query runs against).
  void SetContextItem(xdm::Item item) {
    context_item_ = std::move(item);
    has_context_item_ = true;
  }

  std::vector<std::string>& trace_output() { return trace_output_; }

 private:
  friend class Evaluator;
  std::unique_ptr<xml::Document> arena_;
  std::map<std::string, xml::Node*> documents_;
  std::vector<std::pair<std::string, xdm::Sequence>> env_;
  xdm::Item context_item_ = xdm::Item::Boolean(false);
  bool has_context_item_ = false;
  std::vector<std::string> trace_output_;
};

// Tree-walking evaluator for a parsed Module. Not reentrant; create one per
// evaluation.
class Evaluator {
 public:
  Evaluator(const Module& module, DynamicContext* context,
            const EvalOptions& options);

  // Evaluates global variable declarations then the module body.
  Result<xdm::Sequence> Run();

  // Evaluates a single expression against the current context (used by Run
  // and by builtins like fn:trace that re-enter). When a profiler is
  // attached this wraps the dispatch in a timing frame.
  Result<xdm::Sequence> Eval(const Expr& e);

  const EvalStats& stats() const { return stats_; }
  DynamicContext* context() { return ctx_; }
  const EvalOptions& options() const { return options_; }

  // Attaches a per-expression profiler for the lifetime of the evaluation
  // (owned by the caller; see EvalOptions::profile and engine.cc).
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Records one trace line (fn:trace / fn:error diagnostics), mirroring a
  // structured event to EvalOptions::trace_sink when one is attached.
  void Trace(std::string line);

  // The call expression of the builtin currently being invoked (set around
  // builtin dispatch); lets variadic builtins like fn:trace report their own
  // source position. Null outside builtin calls.
  const Expr* builtin_call_site() const { return builtin_call_site_; }

  // Focus accessors for builtins (fn:position, fn:last, fn:name#0, ...).
  bool has_focus() const { return focus_.valid; }
  const xdm::Item& focus_item() const { return focus_.item; }
  size_t focus_position() const { return focus_.position; }
  size_t focus_size() const { return focus_.size; }

  // Node copying into the construction arena, shared with builtins.
  xml::Node* CopyNodeIntoArena(const xml::Node* n) { return CopyIntoArena(n); }

 private:
  struct Focus {
    xdm::Item item = xdm::Item::Boolean(false);
    size_t position = 0;  // 1-based
    size_t size = 0;
    bool valid = false;
  };

  // The actual dispatch switch behind Eval().
  Result<xdm::Sequence> EvalInner(const Expr& e);

  Result<xdm::Sequence> EvalPath(const Expr& e);
  Result<xdm::Sequence> EvalStep(const PathStep& step,
                                 const xdm::Sequence& input);
  // Normalizes `seq` to document order without duplicates, skipping the sort
  // (and counting the skip) when `provably_ordered` or the sequence already
  // carries the ordered_deduped bit or is trivially small.
  void SortDedup(xdm::Sequence* seq, bool provably_ordered);
  Result<xdm::Sequence> ApplyPredicates(const std::vector<ExprPtr>& preds,
                                        xdm::Sequence candidates);
  Result<xdm::Sequence> EvalBinary(const Expr& e);
  Result<xdm::Sequence> EvalFlwor(const Expr& e);
  Status EvalFlworClauses(const Expr& e, size_t clause_index,
                          std::vector<std::pair<std::vector<xdm::Sequence>,
                                                xdm::Sequence>>* tuples,
                          xdm::Sequence* out);
  Result<xdm::Sequence> EvalQuantified(const Expr& e);
  Result<xdm::Sequence> EvalFunctionCall(const Expr& e);
  Result<xdm::Sequence> EvalDirectElement(const Expr& e);
  Result<xdm::Sequence> EvalComputedConstructor(const Expr& e);
  Result<xdm::Sequence> EvalCast(const Expr& e);
  Result<xdm::Sequence> EvalInstanceOf(const Expr& e);
  Result<xdm::Sequence> EvalArithmetic(const Expr& e);

  // Builds element content: attribute folding, node copying, atomic
  // space-joining. `parts` are content expressions (kTextLiteral = raw text).
  Status FillElementContent(xml::Node* element,
                            const std::vector<const Expr*>& parts);

  // Copies a node (and subtree) into the construction arena.
  xml::Node* CopyIntoArena(const xml::Node* n);

  Status CheckSequenceType(const xdm::Sequence& seq, const SequenceType& type,
                           const char* where, xdm::Sequence* converted);

  // Variable environment helpers (lexically scoped via save/restore).
  size_t EnvMark() const { return ctx_->env_.size(); }
  void EnvRestore(size_t mark) { ctx_->env_.resize(mark); }
  void EnvBind(const std::string& name, xdm::Sequence value) {
    ctx_->env_.emplace_back(name, std::move(value));
  }
  const xdm::Sequence* EnvLookup(const std::string& name) const;

  Result<Focus> RequireFocus(const Expr& e) const;

  Status StepBudget();

  const Module& module_;
  DynamicContext* ctx_;
  EvalOptions options_;
  EvalStats stats_;
  Focus focus_;
  std::map<std::pair<std::string, size_t>, const FunctionDecl*> functions_;
  int call_depth_ = 0;
  obs::Profiler* profiler_ = nullptr;
  const Expr* builtin_call_site_ = nullptr;

  friend struct BuiltinRegistry;
};

// Registers the fn:/math: builtin library; see functions.cc for the catalog.
const std::map<std::pair<std::string, size_t>, BuiltinFn>& BuiltinFunctions();
// True if a builtin with this name exists at any arity (used by the
// optimizer's purity analysis).
bool IsBuiltinName(const std::string& name);

}  // namespace lll::xq

#endif  // LLL_XQUERY_EVAL_H_
