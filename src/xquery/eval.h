#ifndef LLL_XQUERY_EVAL_H_
#define LLL_XQUERY_EVAL_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "xdm/sequence.h"
#include "xml/node.h"
#include "xquery/ast.h"
#include "xquery/nodeset_cache.h"

namespace lll::obs {
class Profiler;
class TraceSink;
}  // namespace lll::obs

namespace lll::xq {

class Evaluator;

// Options for one evaluation. The two "galax_" switches reproduce the
// behaviors of the Galax prototype the paper debugged against (see DESIGN.md
// E1/E2 and the Debugging section).
struct EvalOptions {
  // Keep BOTH attributes when two attribute nodes with the same name are
  // constructed ("though Galax did not honor this as of the time of
  // writing"). Default false: first one wins, deterministically.
  bool galax_duplicate_attributes = false;
  // Report a missing context item with Galax's infamous message
  // "Internal_Error: Variable '$glx:dot' not found." instead of a located
  // diagnostic.
  bool galax_style_messages = false;
  // Evaluation step budget (0 = unlimited); guards runaway recursion in
  // property tests and backs the server's per-tenant eval quotas. Exceeding
  // it is a kResourceExhausted error -- graceful and uncatchable by try/catch
  // (a handler must not mask a runaway query).
  size_t max_steps = 0;
  // Wall-clock evaluation deadline; default (epoch) = none. Polled every 128
  // steps so the clock read stays off the per-expression hot path. Exceeding
  // it is a kResourceExhausted error, like the step budget.
  std::chrono::steady_clock::time_point deadline{};
  // Cooperative cancellation: when set, the evaluator polls this flag at its
  // step-budget check and aborts with kResourceExhausted once it reads true.
  // Borrowed; lets a server abandon in-flight queries at shutdown without
  // tearing down threads mid-evaluation.
  const std::atomic<bool>* cancel = nullptr;
  // Document-order tracking: when on (default), the evaluator skips the
  // normalizing sort after a path step or set operator whenever the static
  // order analysis or dynamic evidence (singleton input, ordered_deduped
  // bit) proves the result already normalized. Off = sort after every step,
  // the pre-index behavior; kept as a benchmark baseline (bench_e12).
  bool order_tracking = true;
  // Streaming path pipelines: when on (default), eligible axis-step chains
  // (streamable axes, predicates free of fn:last()/fn:trace()/user
  // functions, single-document input) are evaluated through a pull-based
  // merge of per-context runs instead of materializing every intermediate
  // sequence, and early-exit consumers (positional predicates like [1],
  // fn:exists/fn:empty, boolean contexts, optimizer-pushed limit hints) stop
  // pulling once the answer is determined. Reverse axes run as barrier
  // stages: per-context runs enumerate in reverse document order and are
  // merged back to document order (DESIGN.md section 10). Off = the
  // pre-streaming materializing evaluator, kept byte-identical as a
  // differential baseline and benchmark arm (bench_e13/e14), mirroring
  // order_tracking.
  bool streaming = true;
  // Node-set interning: memoizes the leading step chain of document-rooted
  // paths (predicate-free steps plus steps whose predicates are provably
  // pure functions of the tree, folded into the fingerprint) as (document
  // identity, step-chain fingerprint) -> Sequence, invalidated by the
  // document's per-node subtree edit-version overlay -- an edit evicts only
  // entries whose dependency chain it dirtied. Borrowed; must outlive the
  // evaluation AND be scoped to the documents' owner (cached sequences hold
  // raw Node pointers). nullptr = no interning.
  NodeSetCache* nodeset_cache = nullptr;
  // Subtree-scoped guard computation for interned entries: when on
  // (default), entries are guarded by the PR-9 descent analysis
  // (ComputeInternGuards) and survive edits outside their dependency chain.
  // Off = every entry carries a single whole-document kSubtree guard at its
  // base, i.e. ANY edit anywhere invalidates it -- the pre-overlay
  // behavior, kept as the "whole-document invalidation forced off" baseline
  // arm for bench_e19 and the server A/B knob
  // (ServerOptions::subtree_invalidation).
  bool subtree_guards = true;
  // Per-expression profiling (obs/profiler.h): attribute wall time, eval
  // counts, and result sizes to AST nodes. Off = one null-pointer test per
  // expression, nothing more.
  bool profile = false;
  // Structured trace events (fn:trace, fn:error, located dynamic errors) are
  // mirrored to this sink when set, in addition to the per-query
  // trace_output buffer. Borrowed; must outlive the evaluation.
  obs::TraceSink* trace_sink = nullptr;
};

// Statistics collected during one evaluation.
struct EvalStats {
  size_t steps = 0;            // expression evaluations
  size_t constructed_nodes = 0;  // nodes created by constructors
  size_t trace_calls = 0;        // fn:trace invocations actually executed
  size_t function_calls = 0;     // user-defined function invocations
  // Document-order bookkeeping: path steps and set operators must yield
  // ordered, deduplicated node sequences. `sorts_performed` counts actual
  // sort passes; `sorts_skipped` counts normalizations proven unnecessary
  // (statically by the optimizer's order analysis, or dynamically via the
  // sequence's ordered_deduped bit / singleton inputs); `order_compares`
  // counts document-order comparator calls inside performed sorts.
  size_t sorts_performed = 0;
  size_t sorts_skipped = 0;
  size_t order_compares = 0;
  // Streaming pipeline bookkeeping: `nodes_pulled` counts axis candidates
  // actually examined by streamed steps; `nodes_skipped_early_exit` is a
  // lower bound on candidates an early-exiting consumer (positional
  // predicate, fn:exists, boolean context) never had to visit. Nested
  // early-exit probes (an exists() inside a predicate of an outer streamed
  // step) do not contribute to the skip floor: the outer pipeline already
  // accounts for the candidate subtrees it abandons.
  size_t nodes_pulled = 0;
  size_t nodes_skipped_early_exit = 0;
  // Reverse-axis streaming: nonempty per-context reverse runs pushed onto
  // the document-order merge heap.
  size_t reverse_runs_merged = 0;
  // Paths evaluated under an optimizer-pushed limit hint (fn:head,
  // fn:subsequence, positional-for shapes; see Expr::limit_hint).
  size_t limit_pushdowns = 0;
  // Node-set interning cache traffic attributable to this evaluation. An
  // invalidation is a lookup that found an entry with a failed subtree
  // version guard (stale edit history, not a cold key); the partial counter
  // is the subset whose entry was subtree-scoped -- i.e. the finer-than-
  // whole-document guards earned their keep by surviving unrelated edits.
  size_t nodeset_cache_hits = 0;
  size_t nodeset_cache_misses = 0;
  size_t nodeset_cache_invalidations = 0;
  size_t nodeset_cache_partial_invalidations = 0;
};

// A builtin function: receives evaluated arguments.
using BuiltinFn = std::function<Result<xdm::Sequence>(
    Evaluator&, std::vector<xdm::Sequence>&)>;

// The dynamic context of an evaluation: variable bindings, the focus
// (context item / position / size), available documents, the construction
// arena, and the trace sink.
class DynamicContext {
 public:
  DynamicContext();

  // The arena owning every node constructed during evaluation. Results that
  // reference constructed nodes stay valid as long as this context (or the
  // QueryResult that adopts the arena) lives.
  xml::Document* construction_arena() { return arena_.get(); }
  std::unique_ptr<xml::Document> ReleaseArena() { return std::move(arena_); }

  // Named documents for fn:doc("name").
  void RegisterDocument(const std::string& name, xml::Node* document_node) {
    documents_[name] = document_node;
  }
  xml::Node* LookupDocument(const std::string& name) const {
    auto it = documents_.find(name);
    return it == documents_.end() ? nullptr : it->second;
  }

  // External variable bindings (visible as $name).
  void BindExternal(const std::string& name, xdm::Sequence value);

  // The initial context item (the document the query runs against).
  void SetContextItem(xdm::Item item) {
    context_item_ = std::move(item);
    has_context_item_ = true;
  }

  std::vector<std::string>& trace_output() { return trace_output_; }

 private:
  friend class Evaluator;
  std::unique_ptr<xml::Document> arena_;
  std::map<std::string, xml::Node*> documents_;
  std::vector<std::pair<std::string, xdm::Sequence>> env_;
  xdm::Item context_item_ = xdm::Item::Boolean(false);
  bool has_context_item_ = false;
  std::vector<std::string> trace_output_;
};

// Tree-walking evaluator for a parsed Module. Not reentrant; create one per
// evaluation.
class Evaluator {
 public:
  Evaluator(const Module& module, DynamicContext* context,
            const EvalOptions& options);

  // Evaluates global variable declarations then the module body.
  Result<xdm::Sequence> Run();

  // Evaluates a single expression against the current context (used by Run
  // and by builtins like fn:trace that re-enter). When a profiler is
  // attached this wraps the dispatch in a timing frame.
  Result<xdm::Sequence> Eval(const Expr& e);

  const EvalStats& stats() const { return stats_; }
  DynamicContext* context() { return ctx_; }
  const EvalOptions& options() const { return options_; }

  // Attaches a per-expression profiler for the lifetime of the evaluation
  // (owned by the caller; see EvalOptions::profile and engine.cc).
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  // Records one trace line (fn:trace / fn:error diagnostics), mirroring a
  // structured event to EvalOptions::trace_sink when one is attached.
  void Trace(std::string line);

  // The call expression of the builtin currently being invoked (set around
  // builtin dispatch); lets variadic builtins like fn:trace report their own
  // source position. Null outside builtin calls.
  const Expr* builtin_call_site() const { return builtin_call_site_; }

  // Focus accessors for builtins (fn:position, fn:last, fn:name#0, ...).
  bool has_focus() const { return focus_.valid; }
  const xdm::Item& focus_item() const { return focus_.item; }
  size_t focus_position() const { return focus_.position; }
  size_t focus_size() const { return focus_.size; }

  // Node copying into the construction arena, shared with builtins.
  xml::Node* CopyNodeIntoArena(const xml::Node* n) { return CopyIntoArena(n); }

 private:
  struct Focus {
    xdm::Item item = xdm::Item::Boolean(false);
    size_t position = 0;  // 1-based
    size_t size = 0;
    bool valid = false;
  };

  // Streaming pipeline internals (defined in eval.cc).
  class StreamRun;
  class ReverseRun;
  class StreamStage;
  class StreamBaseStage;
  class StreamAxisStage;
  class StreamReverseAxisStage;

  // "No result cap" for EvalPathImpl/EvalPathLimited.
  static constexpr size_t kNoLimit = static_cast<size_t>(-1);

  // The actual dispatch switch behind Eval().
  Result<xdm::Sequence> EvalInner(const Expr& e);

  Result<xdm::Sequence> EvalPath(const Expr& e);
  // Path evaluation with an optional result cap. `limit` is an optimization
  // hint, not a contract: when the step chain streams, at most `limit` nodes
  // are produced (and they are exactly the first `limit` of the full
  // result); when it falls back to materializing, the full result comes
  // back. Callers may rely on the first min(limit, full size) items only.
  Result<xdm::Sequence> EvalPathImpl(const Expr& e, size_t limit);
  // Entry point for early-exit consumers reaching a path WITHOUT going
  // through Eval(): replicates Eval's step-budget charge and profiler frame
  // so capped paths stay visible to max_steps and hot-spot reports.
  Result<xdm::Sequence> EvalPathLimited(const Expr& e, size_t limit);
  // Evaluates steps [first, last) of a path against `current`, streaming
  // when eligible, otherwise via the materializing step loop.
  Result<xdm::Sequence> EvalStepsRange(const Expr& e, size_t first,
                                       size_t last, xdm::Sequence current,
                                       size_t limit);
  // The materializing step loop (the pre-streaming evaluator, also the
  // streaming=false baseline).
  Result<xdm::Sequence> EvalStepsMaterialized(const Expr& e, size_t first,
                                              size_t last,
                                              xdm::Sequence current);
  // The pull-based pipeline over steps [first, last): `current` must be all
  // nodes of one document, sorted and deduplicated.
  Result<xdm::Sequence> EvalStepsStreamed(const Expr& e, size_t first,
                                          size_t last, xdm::Sequence current,
                                          size_t limit);
  // Effective boolean value with early exit: a node-producing path condition
  // pulls one node instead of materializing its whole result.
  Result<bool> EvalEffectiveBoolean(const Expr& e);
  // One predicate decision for the candidate at `position` (1-based) out of
  // `size`: literal-integer predicates are pure position tests (no Eval),
  // singleton-numeric results compare against position, everything else
  // takes its effective boolean value. Sets and leaves the focus; callers
  // save/restore around the batch.
  Result<bool> PredicateKeep(const Expr& pred, const xdm::Item& item,
                             size_t position, size_t size);
  // True if `step` may run inside the pull pipeline: a streamable axis, not
  // a filter step, and predicates free of focus-size observers (fn:last),
  // effectful calls (fn:trace / fn:error), and user-defined or unknown
  // functions (which may trace internally) -- the trace-parity rule.
  bool StepStreamable(const PathStep& step) const;
  // The recursive scan behind StepStreamable, resolving calls against this
  // evaluator's user-function table.
  bool PredicateBlocksStreaming(const Expr& e) const;
  // Routes every nodes_skipped_early_exit charge; suppressed while a nested
  // early-exit probe runs inside a streamed step's predicate, where the
  // outer pipeline's own abandonment accounting covers the same candidates.
  void ChargeSkipped(size_t n) {
    if (!suppress_skip_charges_) stats_.nodes_skipped_early_exit += n;
  }
  // Consults / fills the node-set interning cache for the leading internable
  // step chain (predicate-free steps, plus steps whose predicates fold into
  // the fingerprint) of a document-rooted path. On success returns the
  // number of steps consumed and replaces *current with the (shared) prefix
  // result; returns 0 when interning does not apply.
  Result<size_t> InternPrefix(const Expr& e, xdm::Sequence* current);
  // True if every predicate of `step` is intern-foldable (optimizer.h's
  // InternFoldablePredicate, resolved against this evaluator's user-function
  // table); the AttributeOnly variant additionally requires the attribute-
  // only class the guard descent may resolve through.
  bool StepPredicatesFoldable(const PathStep& step) const;
  bool StepPredicatesAttributeOnly(const PathStep& step) const;
  // Builds the subtree version guard set for an intern entry: descends from
  // `base` through prefix steps that resolve to singleton elements,
  // recording the narrowest overlay guards that dominate the chain, and
  // falls back to a whole-subtree guard at the first step it cannot scope
  // (DESIGN.md section 14). Best-effort: never fails, only widens.
  void ComputeInternGuards(const Expr& e, size_t prefix, xml::Node* base,
                           std::vector<CachedNodeSet::Guard>* guards,
                           bool* subtree_scoped);
  Result<xdm::Sequence> EvalStep(const PathStep& step,
                                 const xdm::Sequence& input);
  // Normalizes `seq` to document order without duplicates, skipping the sort
  // (and counting the skip) when `provably_ordered` or the sequence already
  // carries the ordered_deduped bit or is trivially small.
  void SortDedup(xdm::Sequence* seq, bool provably_ordered);
  Result<xdm::Sequence> ApplyPredicates(const std::vector<ExprPtr>& preds,
                                        xdm::Sequence candidates);
  Result<xdm::Sequence> EvalBinary(const Expr& e);
  Result<xdm::Sequence> EvalFlwor(const Expr& e);
  Status EvalFlworClauses(const Expr& e, size_t clause_index,
                          std::vector<std::pair<std::vector<xdm::Sequence>,
                                                xdm::Sequence>>* tuples,
                          xdm::Sequence* out);
  Result<xdm::Sequence> EvalQuantified(const Expr& e);
  Result<xdm::Sequence> EvalFunctionCall(const Expr& e);
  Result<xdm::Sequence> EvalDirectElement(const Expr& e);
  Result<xdm::Sequence> EvalComputedConstructor(const Expr& e);
  Result<xdm::Sequence> EvalCast(const Expr& e);
  Result<xdm::Sequence> EvalInstanceOf(const Expr& e);
  Result<xdm::Sequence> EvalArithmetic(const Expr& e);

  // Builds element content: attribute folding, node copying, atomic
  // space-joining. `parts` are content expressions (kTextLiteral = raw text).
  Status FillElementContent(xml::Node* element,
                            const std::vector<const Expr*>& parts);

  // Copies a node (and subtree) into the construction arena.
  xml::Node* CopyIntoArena(const xml::Node* n);

  Status CheckSequenceType(const xdm::Sequence& seq, const SequenceType& type,
                           const char* where, xdm::Sequence* converted);

  // Variable environment helpers (lexically scoped via save/restore).
  size_t EnvMark() const { return ctx_->env_.size(); }
  void EnvRestore(size_t mark) { ctx_->env_.resize(mark); }
  void EnvBind(const std::string& name, xdm::Sequence value) {
    ctx_->env_.emplace_back(name, std::move(value));
  }
  const xdm::Sequence* EnvLookup(const std::string& name) const;

  Result<Focus> RequireFocus(const Expr& e) const;

  Status StepBudget();

  const Module& module_;
  DynamicContext* ctx_;
  EvalOptions options_;
  EvalStats stats_;
  Focus focus_;
  std::map<std::pair<std::string, size_t>, const FunctionDecl*> functions_;
  int call_depth_ = 0;
  obs::Profiler* profiler_ = nullptr;
  const Expr* builtin_call_site_ = nullptr;
  // See ChargeSkipped: true while evaluating a streamed step's predicate, so
  // probe pipelines spawned inside it do not double-charge the skip floor.
  bool suppress_skip_charges_ = false;

  friend struct BuiltinRegistry;
};

// Registers the fn:/math: builtin library; see functions.cc for the catalog.
const std::map<std::pair<std::string, size_t>, BuiltinFn>& BuiltinFunctions();
// The fn:subsequence selection window, shared by the builtin and the
// optimizer's limit push-down so pushed and unpushed plans agree: positions
// p (1-based) with *lo <= p < *hi are selected, computed with XPath fn:round
// semantics (floor(x + 0.5), round-half-UP -- not std::round). *hi is +inf
// for the 2-argument form (`has_length` false). Returns false when the
// window is statically empty (NaN start or length).
bool SubsequenceWindow(double start, double length, bool has_length,
                       double* lo, double* hi);
// True if a builtin with this name exists at any arity (used by the
// optimizer's purity analysis).
bool IsBuiltinName(const std::string& name);

}  // namespace lll::xq

#endif  // LLL_XQUERY_EVAL_H_
