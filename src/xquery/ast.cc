#include "xquery/ast.h"

#include "core/string_util.h"

namespace lll::xq {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kAttribute:
      return "attribute";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

OrderProp MeetOrder(OrderProp a, OrderProp b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

bool IsForwardStreamableAxis(Axis axis) {
  switch (axis) {
    case Axis::kChild:
    case Axis::kAttribute:
    case Axis::kSelf:
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
    case Axis::kFollowingSibling:
      return true;
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:
      return false;
  }
  return false;
}

bool IsReverseStreamableAxis(Axis axis) {
  switch (axis) {
    case Axis::kParent:
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:
      return true;
    default:
      return false;
  }
}

bool IsStreamableAxis(Axis axis) {
  return IsForwardStreamableAxis(axis) || IsReverseStreamableAxis(axis);
}

bool ContainsLastCall(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall &&
      (e.name == "last" || e.name == "fn:last")) {
    return true;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && ContainsLastCall(*c)) return true;
  }
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) {
      if (p != nullptr && ContainsLastCall(*p)) return true;
    }
  }
  for (const FlworClause& c : e.clauses) {
    if (c.expr != nullptr && ContainsLastCall(*c.expr)) return true;
  }
  for (const OrderSpec& o : e.order_by) {
    if (o.key != nullptr && ContainsLastCall(*o.key)) return true;
  }
  for (const DirectAttribute& a : e.attributes) {
    for (const ExprPtr& p : a.value_parts) {
      if (p != nullptr && ContainsLastCall(*p)) return true;
    }
  }
  return false;
}

bool ContainsTraceCall(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall &&
      (e.name == "trace" || e.name == "fn:trace" || e.name == "error" ||
       e.name == "fn:error")) {
    return true;
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && ContainsTraceCall(*c)) return true;
  }
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) {
      if (p != nullptr && ContainsTraceCall(*p)) return true;
    }
  }
  for (const FlworClause& c : e.clauses) {
    if (c.expr != nullptr && ContainsTraceCall(*c.expr)) return true;
  }
  for (const OrderSpec& o : e.order_by) {
    if (o.key != nullptr && ContainsTraceCall(*o.key)) return true;
  }
  for (const DirectAttribute& a : e.attributes) {
    for (const ExprPtr& p : a.value_parts) {
      if (p != nullptr && ContainsTraceCall(*p)) return true;
    }
  }
  return false;
}

OrderProp TransferOrder(OrderProp input, Axis axis) {
  if (input == OrderProp::kNone) return OrderProp::kNone;
  switch (axis) {
    case Axis::kSelf:
      // self::test filters the context node itself: a subset, in place.
      return input;
    case Axis::kChild:
    case Axis::kAttribute:
      // Disjoint ascending contexts yield disjoint ascending sibling (or
      // attribute) groups; the results are again ancestor-free. From a
      // merely-ordered (nested) context set, sibling groups interleave.
      return (input == OrderProp::kSingleton ||
              input == OrderProp::kOrderedDisjoint)
                 ? OrderProp::kOrderedDisjoint
                 : OrderProp::kNone;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      // Disjoint ascending subtrees flatten to one ascending, duplicate-free
      // run -- but the result itself is nested, so disjointness is lost.
      return (input == OrderProp::kSingleton ||
              input == OrderProp::kOrderedDisjoint)
                 ? OrderProp::kOrdered
                 : OrderProp::kNone;
    case Axis::kFollowingSibling:
      // Following siblings of one node are ascending and ancestor-free;
      // sibling runs from two distinct contexts can overlap (duplicates).
      return input == OrderProp::kSingleton ? OrderProp::kOrderedDisjoint
                                            : OrderProp::kNone;
    case Axis::kParent:
      // The parent of one node is at most one node; distinct ordered
      // contexts can share parents (duplicates) and invert order.
      return input == OrderProp::kSingleton ? OrderProp::kSingleton
                                            : OrderProp::kNone;
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
    case Axis::kPrecedingSibling:
      // Reverse axes: collected in reverse document order by design.
      return OrderProp::kNone;
  }
  return OrderProp::kNone;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kOr: return "or";
    case BinOp::kAnd: return "and";
    case BinOp::kGenEq: return "=";
    case BinOp::kGenNe: return "!=";
    case BinOp::kGenLt: return "<";
    case BinOp::kGenLe: return "<=";
    case BinOp::kGenGt: return ">";
    case BinOp::kGenGe: return ">=";
    case BinOp::kValEq: return "eq";
    case BinOp::kValNe: return "ne";
    case BinOp::kValLt: return "lt";
    case BinOp::kValLe: return "le";
    case BinOp::kValGt: return "gt";
    case BinOp::kValGe: return "ge";
    case BinOp::kIs: return "is";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "div";
    case BinOp::kIdiv: return "idiv";
    case BinOp::kMod: return "mod";
    case BinOp::kUnion: return "union";
    case BinOp::kIntersect: return "intersect";
    case BinOp::kExcept: return "except";
    case BinOp::kTo: return "to";
  }
  return "?";
}

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kLiteral: return "Literal";
    case ExprKind::kEmptySequence: return "EmptySequence";
    case ExprKind::kSequence: return "Sequence";
    case ExprKind::kVarRef: return "VarRef";
    case ExprKind::kContextItem: return "ContextItem";
    case ExprKind::kPath: return "Path";
    case ExprKind::kBinary: return "Binary";
    case ExprKind::kUnary: return "Unary";
    case ExprKind::kIf: return "If";
    case ExprKind::kFlwor: return "Flwor";
    case ExprKind::kQuantified: return "Quantified";
    case ExprKind::kFunctionCall: return "FunctionCall";
    case ExprKind::kDirectElement: return "DirectElement";
    case ExprKind::kTextLiteral: return "TextLiteral";
    case ExprKind::kCompElement: return "CompElement";
    case ExprKind::kCompAttribute: return "CompAttribute";
    case ExprKind::kCompText: return "CompText";
    case ExprKind::kCompComment: return "CompComment";
    case ExprKind::kCompDocument: return "CompDocument";
    case ExprKind::kCastAs: return "CastAs";
    case ExprKind::kCastableAs: return "CastableAs";
    case ExprKind::kInstanceOf: return "InstanceOf";
    case ExprKind::kTryCatch: return "TryCatch";
  }
  return "?";
}

std::string SequenceType::ToString() const {
  std::string base;
  switch (item_type) {
    case ItemType::kItem: base = "item()"; break;
    case ItemType::kNode: base = "node()"; break;
    case ItemType::kElement:
      base = element_name.empty() ? "element()" : "element(" + element_name + ")";
      break;
    case ItemType::kAttribute: base = "attribute()"; break;
    case ItemType::kTextNode: base = "text()"; break;
    case ItemType::kDocumentNode: base = "document-node()"; break;
    case ItemType::kString: base = "xs:string"; break;
    case ItemType::kInteger: base = "xs:integer"; break;
    case ItemType::kDecimal: base = "xs:decimal"; break;
    case ItemType::kDouble: base = "xs:double"; break;
    case ItemType::kBoolean: base = "xs:boolean"; break;
    case ItemType::kUntyped: base = "xs:untypedAtomic"; break;
    case ItemType::kAnyAtomic: base = "xs:anyAtomicType"; break;
    case ItemType::kEmpty: return "empty-sequence()";
  }
  switch (occurrence) {
    case Occurrence::kOne: return base;
    case Occurrence::kOptional: return base + "?";
    case Occurrence::kStar: return base + "*";
    case Occurrence::kPlus: return base + "+";
  }
  return base;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>(e.kind);
  out->literal_type = e.literal_type;
  out->text = e.text;
  out->integer = e.integer;
  out->number = e.number;
  out->name = e.name;
  out->op = e.op;
  out->has_base = e.has_base;
  out->rooted = e.rooted;
  out->quantifier_every = e.quantifier_every;
  out->computed_name = e.computed_name;
  out->type = e.type;
  out->line = e.line;
  out->col = e.col;
  out->limit_hint = e.limit_hint;
  out->statically_limit_pushable = e.statically_limit_pushable;
  for (const ExprPtr& c : e.children) out->children.push_back(CloneExpr(*c));
  for (const PathStep& s : e.steps) {
    PathStep sc;
    sc.axis = s.axis;
    sc.test = s.test;
    sc.is_filter = s.is_filter;
    sc.statically_ordered = s.statically_ordered;
    sc.statically_streamable = s.statically_streamable;
    sc.statically_internable = s.statically_internable;
    for (const ExprPtr& p : s.predicates) sc.predicates.push_back(CloneExpr(*p));
    out->steps.push_back(std::move(sc));
  }
  for (const FlworClause& c : e.clauses) {
    FlworClause cc;
    cc.kind = c.kind;
    cc.var = c.var;
    cc.pos_var = c.pos_var;
    cc.expr = CloneExpr(*c.expr);
    out->clauses.push_back(std::move(cc));
  }
  for (const OrderSpec& o : e.order_by) {
    OrderSpec oc;
    oc.key = CloneExpr(*o.key);
    oc.descending = o.descending;
    out->order_by.push_back(std::move(oc));
  }
  for (const DirectAttribute& a : e.attributes) {
    DirectAttribute ac;
    ac.name = a.name;
    for (const ExprPtr& p : a.value_parts) ac.value_parts.push_back(CloneExpr(*p));
    out->attributes.push_back(std::move(ac));
  }
  return out;
}

size_t CountExprNodes(const Expr& e) {
  size_t n = 1;
  for (const ExprPtr& c : e.children) n += CountExprNodes(*c);
  for (const PathStep& s : e.steps) {
    for (const ExprPtr& p : s.predicates) n += CountExprNodes(*p);
  }
  for (const FlworClause& c : e.clauses) n += CountExprNodes(*c.expr);
  for (const OrderSpec& o : e.order_by) n += CountExprNodes(*o.key);
  for (const DirectAttribute& a : e.attributes) {
    for (const ExprPtr& p : a.value_parts) n += CountExprNodes(*p);
  }
  return n;
}

namespace {

void Render(const Expr& e, std::string* out) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      switch (e.literal_type) {
        case Expr::LiteralType::kString:
          *out += '"';
          *out += e.text;
          *out += '"';
          break;
        case Expr::LiteralType::kInteger:
          *out += std::to_string(e.integer);
          break;
        case Expr::LiteralType::kDouble:
          *out += FormatDouble(e.number);
          break;
      }
      return;
    case ExprKind::kTextLiteral:
      *out += "text:\"" + e.text + "\"";
      return;
    case ExprKind::kEmptySequence:
      *out += "()";
      return;
    case ExprKind::kSequence: {
      *out += "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) *out += ", ";
        Render(*e.children[i], out);
      }
      *out += ")";
      return;
    }
    case ExprKind::kVarRef:
      *out += "$" + e.name;
      return;
    case ExprKind::kContextItem:
      *out += ".";
      return;
    case ExprKind::kPath: {
      size_t first_child = 0;
      if (e.has_base) {
        Render(*e.children[0], out);
        first_child = 1;
      } else if (e.rooted) {
        *out += "(root)";
      }
      (void)first_child;
      for (const PathStep& s : e.steps) {
        *out += "/";
        *out += AxisName(s.axis);
        *out += "::";
        switch (s.test.kind) {
          case NodeTestKind::kName: *out += s.test.name; break;
          case NodeTestKind::kAnyName: *out += "*"; break;
          case NodeTestKind::kText: *out += "text()"; break;
          case NodeTestKind::kComment: *out += "comment()"; break;
          case NodeTestKind::kPi: *out += "processing-instruction()"; break;
          case NodeTestKind::kAnyNode: *out += "node()"; break;
        }
        for (const ExprPtr& p : s.predicates) {
          *out += "[";
          Render(*p, out);
          *out += "]";
        }
      }
      return;
    }
    case ExprKind::kBinary:
      *out += "(";
      Render(*e.children[0], out);
      *out += " ";
      *out += BinOpName(e.op);
      *out += " ";
      Render(*e.children[1], out);
      *out += ")";
      return;
    case ExprKind::kUnary:
      *out += "(-";
      Render(*e.children[0], out);
      *out += ")";
      return;
    case ExprKind::kIf:
      *out += "if (";
      Render(*e.children[0], out);
      *out += ") then ";
      Render(*e.children[1], out);
      *out += " else ";
      Render(*e.children[2], out);
      return;
    case ExprKind::kFlwor: {
      for (const FlworClause& c : e.clauses) {
        switch (c.kind) {
          case FlworClause::Kind::kFor:
            *out += "for $" + c.var;
            if (!c.pos_var.empty()) *out += " at $" + c.pos_var;
            *out += " in ";
            break;
          case FlworClause::Kind::kLet:
            *out += "let $" + c.var + " := ";
            break;
          case FlworClause::Kind::kWhere:
            *out += "where ";
            break;
        }
        Render(*c.expr, out);
        *out += " ";
      }
      if (!e.order_by.empty()) {
        *out += "order by ";
        for (size_t i = 0; i < e.order_by.size(); ++i) {
          if (i) *out += ", ";
          Render(*e.order_by[i].key, out);
          if (e.order_by[i].descending) *out += " descending";
        }
        *out += " ";
      }
      *out += "return ";
      Render(*e.children[0], out);
      return;
    }
    case ExprKind::kQuantified:
      *out += e.quantifier_every ? "every $" : "some $";
      *out += e.name + " in ";
      Render(*e.children[0], out);
      *out += " satisfies ";
      Render(*e.children[1], out);
      return;
    case ExprKind::kFunctionCall: {
      *out += e.name + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) *out += ", ";
        Render(*e.children[i], out);
      }
      *out += ")";
      return;
    }
    case ExprKind::kDirectElement: {
      *out += "<" + e.name;
      for (const DirectAttribute& a : e.attributes) {
        *out += " " + a.name + "=\"...\"";
      }
      *out += ">";
      for (const ExprPtr& c : e.children) Render(*c, out);
      *out += "</" + e.name + ">";
      return;
    }
    case ExprKind::kCompElement:
      *out += "element " + (e.computed_name ? std::string("{...}") : e.name) + " {...}";
      return;
    case ExprKind::kCompAttribute:
      *out += "attribute " + (e.computed_name ? std::string("{...}") : e.name) + " {...}";
      return;
    case ExprKind::kCompText:
      *out += "text {...}";
      return;
    case ExprKind::kCompComment:
      *out += "comment {...}";
      return;
    case ExprKind::kCompDocument:
      *out += "document {...}";
      return;
    case ExprKind::kCastAs:
      Render(*e.children[0], out);
      *out += " cast as " + e.type.ToString();
      return;
    case ExprKind::kCastableAs:
      Render(*e.children[0], out);
      *out += " castable as " + e.type.ToString();
      return;
    case ExprKind::kInstanceOf:
      Render(*e.children[0], out);
      *out += " instance of " + e.type.ToString();
      return;
    case ExprKind::kTryCatch:
      *out += "try { ";
      Render(*e.children[0], out);
      *out += " } catch { ";
      Render(*e.children[1], out);
      *out += " }";
      return;
  }
}

}  // namespace

std::string ExprToString(const Expr& e) {
  std::string out;
  Render(e, &out);
  return out;
}

}  // namespace lll::xq
