#include "xquery/query_cache.h"

namespace lll::xq {

const char* CacheProvenanceName(CacheProvenance provenance) {
  switch (provenance) {
    case CacheProvenance::kCompiled: return "compiled";
    case CacheProvenance::kMemoryCache: return "memory-cache";
    case CacheProvenance::kDiskCache: return "disk-cache";
  }
  return "compiled";
}

std::string QueryCache::MakeKey(std::string_view source,
                                const CompileOptions& options) {
  // Every switch that changes the compiled form is part of the key; two
  // option sets that differ in any bit must never share an entry.
  std::string key;
  key.reserve(source.size() + 8);
  key.push_back(options.optimize ? '1' : '0');
  key.push_back(options.optimizer.constant_folding ? '1' : '0');
  key.push_back(options.optimizer.dead_let_elimination ? '1' : '0');
  key.push_back(options.optimizer.recognize_trace ? '1' : '0');
  key.push_back(options.optimizer.order_analysis ? '1' : '0');
  key.push_back(options.optimizer.limit_pushdown ? '1' : '0');
  key.push_back('|');
  key.append(source);
  return key;
}

Result<std::shared_ptr<const CompiledQuery>> QueryCache::GetOrCompile(
    std::string_view source, const CompileOptions& options, bool* cache_hit,
    CacheProvenance* provenance) {
  std::string key = MakeKey(source, options);
  if (std::shared_ptr<const CompiledQuery> hit = cache_.Get(key)) {
    if (cache_hit != nullptr) *cache_hit = true;
    if (provenance != nullptr) {
      *provenance = hit->origin() == PlanOrigin::kDiskCache
                        ? CacheProvenance::kDiskCache
                        : CacheProvenance::kMemoryCache;
    }
    return hit;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  if (provenance != nullptr) *provenance = CacheProvenance::kCompiled;
  // Compile outside the cache lock: concurrent misses of distinct queries
  // compile in parallel instead of serializing behind one another.
  LLL_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(source, options));
  auto handle = std::make_shared<const CompiledQuery>(std::move(compiled));
  cache_.Put(key, handle);
  return handle;
}

void QueryCache::ExportTo(MetricsRegistry* metrics,
                          const std::string& prefix) const {
  CacheStats s = stats();
  metrics->gauge(prefix + ".lookups").Set(static_cast<int64_t>(s.lookups));
  metrics->gauge(prefix + ".hits").Set(static_cast<int64_t>(s.hits));
  metrics->gauge(prefix + ".misses").Set(static_cast<int64_t>(s.misses));
  metrics->gauge(prefix + ".evictions").Set(static_cast<int64_t>(s.evictions));
  metrics->gauge(prefix + ".size").Set(static_cast<int64_t>(size()));
}

}  // namespace lll::xq
