#include "xquery/query_cache.h"

namespace lll::xq {

std::string QueryCache::MakeKey(std::string_view source,
                                const CompileOptions& options) {
  // Every switch that changes the compiled form is part of the key; two
  // option sets that differ in any bit must never share an entry.
  std::string key;
  key.reserve(source.size() + 8);
  key.push_back(options.optimize ? '1' : '0');
  key.push_back(options.optimizer.constant_folding ? '1' : '0');
  key.push_back(options.optimizer.dead_let_elimination ? '1' : '0');
  key.push_back(options.optimizer.recognize_trace ? '1' : '0');
  key.push_back('|');
  key.append(source);
  return key;
}

Result<std::shared_ptr<const CompiledQuery>> QueryCache::GetOrCompile(
    std::string_view source, const CompileOptions& options) {
  std::string key = MakeKey(source, options);
  if (std::shared_ptr<const CompiledQuery> hit = cache_.Get(key)) {
    return hit;
  }
  // Compile outside the cache lock: concurrent misses of distinct queries
  // compile in parallel instead of serializing behind one another.
  LLL_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(source, options));
  auto handle = std::make_shared<const CompiledQuery>(std::move(compiled));
  cache_.Put(key, handle);
  return handle;
}

}  // namespace lll::xq
