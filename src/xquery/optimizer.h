#ifndef LLL_XQUERY_OPTIMIZER_H_
#define LLL_XQUERY_OPTIMIZER_H_

#include "xquery/ast.h"

namespace lll::xq {

// Optimizer switches. The default configuration deliberately reproduces the
// Galax-era behavior the paper fought with: dead-code analysis is ON and
// fn:trace is NOT recognized as impure, so
//
//     let $dummy := trace("x=", $x)
//
// introduces a dead variable that is "helpfully optimized away -- along with
// the call to trace". Setting recognize_trace = true models "the optimizer
// would be fixed to recognize trace in the next version".
struct OptimizerOptions {
  bool constant_folding = true;
  bool dead_let_elimination = true;
  bool recognize_trace = false;
};

struct OptimizerStats {
  size_t folded_constants = 0;
  size_t eliminated_lets = 0;
  // trace() calls that were inside eliminated lets -- the paper's pathology,
  // counted so E6 can report exactly how many trace outputs were swallowed.
  size_t eliminated_trace_calls = 0;
};

// Optimizes the module in place.
OptimizerStats Optimize(Module* module, const OptimizerOptions& options);

// True if evaluating `e` can have an observable effect besides its value
// (under the given trace policy). Used by dead-let elimination.
bool IsPure(const Expr& e, const Module& module, bool recognize_trace);

// Number of times $name is referenced in `e`, respecting shadowing.
size_t CountVariableUses(const Expr& e, const std::string& name);

// Number of fn:trace calls in the tree.
size_t CountTraceCalls(const Expr& e);

}  // namespace lll::xq

#endif  // LLL_XQUERY_OPTIMIZER_H_
