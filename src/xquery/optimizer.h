#ifndef LLL_XQUERY_OPTIMIZER_H_
#define LLL_XQUERY_OPTIMIZER_H_

#include <functional>
#include <string>
#include <vector>

#include "xquery/ast.h"

namespace lll::xq {

// Optimizer switches. The default configuration deliberately reproduces the
// Galax-era behavior the paper fought with: dead-code analysis is ON and
// fn:trace is NOT recognized as impure, so
//
//     let $dummy := trace("x=", $x)
//
// introduces a dead variable that is "helpfully optimized away -- along with
// the call to trace". Setting recognize_trace = true models "the optimizer
// would be fixed to recognize trace in the next version".
struct OptimizerOptions {
  bool constant_folding = true;
  bool dead_let_elimination = true;
  bool recognize_trace = false;
  // Order analysis: annotate path steps whose results are provably in
  // document order under step-wise evaluation (forward axes from a singleton
  // or ordered-disjoint input), so the evaluator can skip the normalizing
  // sort the flat XDM otherwise forces after every step.
  bool order_analysis = true;
  // Limit push-down: annotate paths consumed by a statically limited
  // consumer (fn:head, fn:subsequence with literal start/length, a
  // positional `for $x at $p in PATH` immediately guarded by `where $p le
  // N`, and let-bound paths used exactly once in such a position) with
  // Expr::limit_hint, so the streaming evaluator stops pulling after the
  // first N nodes. Conservative: hints never cross an expression boundary
  // whose consumer could observe more than the prefix. The materializing
  // evaluator ignores hints entirely.
  bool limit_pushdown = true;
};

// One rewrite decision, recorded for EXPLAIN. Where the rewrite deleted
// code (dead lets, swallowed trace calls) the note is the only remaining
// evidence it ever existed -- which is exactly what the paper's users were
// missing when their trace output silently vanished.
struct RewriteNote {
  enum class Kind {
    kConstantFolded,     // subtree replaced by its literal value
    kDeadLetEliminated,  // unused pure let binding removed
    kTraceSwallowed,     // a trace() call went down with a dead let
    kOrderedStep,        // order analysis proved a step sort-free
    kLimitPushed,        // a consumer's prefix demand annotated onto a path
  };
  Kind kind;
  std::string detail;  // human-readable: what, and what it became
  size_t line = 0;     // source position of the rewritten expression
  size_t col = 0;
};

const char* RewriteNoteKindName(RewriteNote::Kind kind);

struct OptimizerStats {
  size_t folded_constants = 0;
  size_t eliminated_lets = 0;
  // trace() calls that were inside eliminated lets -- the paper's pathology,
  // counted so E6 can report exactly how many trace outputs were swallowed.
  size_t eliminated_trace_calls = 0;
  // Path steps proven order-preserving by the order analysis.
  size_t ordered_steps_annotated = 0;
  // Paths annotated with a consumer's prefix demand (Expr::limit_hint).
  size_t limits_pushed = 0;
  // Every individual rewrite decision, in application order.
  std::vector<RewriteNote> notes;
};

// Optimizes the module in place.
OptimizerStats Optimize(Module* module, const OptimizerOptions& options);

// True if evaluating `e` can have an observable effect besides its value
// (under the given trace policy). Used by dead-let elimination.
bool IsPure(const Expr& e, const Module& module, bool recognize_trace);

// Number of times $name is referenced in `e`, respecting shadowing.
size_t CountVariableUses(const Expr& e, const std::string& name);

// Number of fn:trace calls in the tree.
size_t CountTraceCalls(const Expr& e);

// The order-analysis pass, run by Optimize() when order_analysis is on.
// Annotates PathStep::statically_ordered throughout `e` and returns the
// static order property of e's own result. `annotated` (optional) counts the
// steps proven ordered. Conservative: only sources whose cardinality is
// statically known (context item, rooted paths, literals, constructors,
// fn:doc/fn:root calls, let-only FLWORs, if/else joins) seed the proof;
// everything else starts at kNone and the evaluator's dynamic tracking picks
// up the slack at run time.
OrderProp AnalyzeOrder(Expr* e, const Module& module, size_t* annotated);

// --- Node-set intern predicate folding --------------------------------------
//
// Resolver for "is (name, arity) a user-defined function in scope?". The
// optimizer answers it from Module::functions, the evaluator from its
// runtime registry; sharing the analysis through this hook keeps the static
// [interned] annotation and the dynamic interning decision from drifting.
using UserFunctionLookup =
    std::function<bool(const std::string& name, size_t arity)>;

// True if `pred` may be folded into a node-set intern fingerprint: its value
// for a given candidate node is a pure function of the tree alone. That
// requires all of (DESIGN.md section 14):
//
//   - provably boolean-valued at the top level (comparisons, and/or,
//     not/exists/empty/boolean calls) or a node-path shape whose effective
//     boolean value is "any nodes?" -- NEVER a possibly-numeric expression,
//     which XPath predicate semantics would turn into a position test;
//   - no position()/last()/variables/dynamic context: the whitelisted
//     builtins are pure functions of their arguments and the context ITEM;
//   - no observable effects (fn:trace/fn:error -- the trace-parity rule) and
//     no user-defined or unknown functions, which may hide either;
//   - only downward-reading subexpressions: relative non-rooted paths over
//     child/attribute/descendant(-or-self)/self axes, so everything the
//     predicate can see lies beneath the candidate and is covered by the
//     entry's subtree guards.
bool InternFoldablePredicate(const Expr& pred,
                             const UserFunctionLookup& is_user_function);

// True if `pred` is additionally an ATTRIBUTE-ONLY foldable predicate: every
// path subexpression is a single attribute-axis step (e.g. `[@id = "x"]`
// and and/or combinations). This is the class the cache may resolve through
// when anchoring guards below a step -- the candidates' attribute state is
// exactly what a kLocalChildren guard on their parent watches.
bool InternAttributeOnlyPredicate(const Expr& pred,
                                  const UserFunctionLookup& is_user_function);

}  // namespace lll::xq

#endif  // LLL_XQUERY_OPTIMIZER_H_
