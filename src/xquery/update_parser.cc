#include "xquery/update_parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace lll::xq {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// flags[i] == true iff byte i of `s` sits at top level: outside quotes,
// outside any XML fragment, and outside predicate brackets/parens. A '<'
// opens a fragment tag only at bracket/paren depth 0 and only when followed
// by a name-start character or '/' -- inside predicates '<' is the
// comparison operator, and this grammar never puts a fragment there.
std::vector<bool> TopLevelMap(std::string_view s) {
  std::vector<bool> top(s.size(), false);
  int elem_depth = 0;
  int bracket = 0;
  int paren = 0;
  char quote = 0;
  bool in_tag = false;
  bool tag_close = false;     // the current tag is </...>
  bool tag_neutral = false;   // <!...> / <?...>: neither opens nor closes
  bool pending_self = false;  // last tag byte was '/', as in <a/>
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      continue;
    }
    if (in_tag) {
      if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        in_tag = false;
        if (tag_neutral) {
          // comments / PIs leave the depth alone
        } else if (tag_close) {
          if (elem_depth > 0) --elem_depth;
        } else if (!pending_self) {
          ++elem_depth;
        }
        pending_self = false;
      } else {
        pending_self = (c == '/');
      }
      continue;
    }
    if (elem_depth == 0 && (c == '"' || c == '\'')) {
      quote = c;
      continue;
    }
    // A '<' starts a tag inside a fragment always (well-formed text content
    // never holds a raw '<'); at top level only at bracket/paren depth 0 and
    // only when followed by a name-start character or '/' -- inside
    // predicates '<' is the comparison operator.
    if (c == '<' &&
        (elem_depth > 0 ||
         (bracket == 0 && paren == 0 && i + 1 < s.size() &&
          (std::isalpha(static_cast<unsigned char>(s[i + 1])) ||
           s[i + 1] == '_' || s[i + 1] == '/')))) {
      in_tag = true;
      tag_close = i + 1 < s.size() && s[i + 1] == '/';
      tag_neutral =
          i + 1 < s.size() && (s[i + 1] == '!' || s[i + 1] == '?');
      pending_self = false;
      continue;
    }
    if (elem_depth > 0) continue;  // text content inside a fragment
    if (c == '[') {
      ++bracket;
    } else if (c == ']' && bracket > 0) {
      --bracket;
    } else if (c == '(') {
      ++paren;
    } else if (c == ')' && paren > 0) {
      --paren;
    }
    top[i] = (bracket == 0 && paren == 0);
  }
  return top;
}

// First top-level, whitespace-delimited occurrence of `word` in `s`, or
// npos. Requires whitespace on BOTH sides (the grammar always has a payload
// or path on either side of a keyword).
size_t FindTopLevelKeyword(std::string_view s, const std::vector<bool>& top,
                           std::string_view word) {
  if (s.size() < word.size() + 2) return std::string_view::npos;
  for (size_t i = 1; i + word.size() + 1 <= s.size(); ++i) {
    if (!top[i]) continue;
    if (!std::isspace(static_cast<unsigned char>(s[i - 1]))) continue;
    if (s.compare(i, word.size(), word) != 0) continue;
    if (!std::isspace(static_cast<unsigned char>(s[i + word.size()]))) {
      continue;
    }
    return i;
  }
  return std::string_view::npos;
}

bool IsWellFormedQName(std::string_view qname) {
  bool at_part_start = true;
  bool seen_colon = false;
  for (char c : qname) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == ':') {
      if (seen_colon || at_part_start) return false;
      seen_colon = true;
      at_part_start = true;
      continue;
    }
    if (at_part_start) {
      if (!std::isalpha(u) && c != '_') return false;
      at_part_start = false;
    } else if (!std::isalnum(u) && c != '.' && c != '-' && c != '_') {
      return false;
    }
  }
  return !qname.empty() && !at_part_start;
}

// The insert/replace payload: a quoted string (text node) or an XML
// fragment starting with '<' (well-formedness is checked at compile time,
// where the fragment is actually parsed).
Status ParsePayload(std::string_view text, UpdateStatement* s) {
  text = Trim(text);
  if (text.empty()) {
    return Status::ParseError("update: missing node payload");
  }
  if (text.front() == '"' || text.front() == '\'') {
    const char q = text.front();
    if (text.size() < 2 || text.back() != q) {
      return Status::ParseError("update: unterminated string payload " +
                                std::string(text));
    }
    std::string_view inner = text.substr(1, text.size() - 2);
    if (inner.find(q) != std::string_view::npos) {
      return Status::ParseError(
          "update: string payload must not contain its own quote: " +
          std::string(text));
    }
    s->node_xml = std::string(inner);
    s->node_is_text = true;
    return Status::Ok();
  }
  if (text.front() == '<') {
    s->node_xml = std::string(text);
    s->node_is_text = false;
    return Status::Ok();
  }
  return Status::ParseError(
      "update: node payload must be an XML fragment or a quoted string, got " +
      std::string(text));
}

Result<UpdateStatement> ParseStatement(std::string_view stmt) {
  stmt = Trim(stmt);
  size_t we = 0;
  while (we < stmt.size() &&
         !std::isspace(static_cast<unsigned char>(stmt[we]))) {
    ++we;
  }
  const std::string_view verb = stmt.substr(0, we);
  const std::string_view rest = Trim(stmt.substr(we));
  UpdateStatement s;
  if (verb == "insert") {
    s.op = UpdateOp::kInsert;
    const std::vector<bool> top = TopLevelMap(rest);
    struct PositionKeyword {
      std::string_view word;
      InsertPosition position;
    };
    constexpr PositionKeyword kPositions[] = {
        {"into", InsertPosition::kInto},
        {"before", InsertPosition::kBefore},
        {"after", InsertPosition::kAfter},
    };
    size_t kw = std::string_view::npos;
    size_t kw_len = 0;
    for (const PositionKeyword& p : kPositions) {
      const size_t at = FindTopLevelKeyword(rest, top, p.word);
      if (at < kw) {
        kw = at;
        kw_len = p.word.size();
        s.position = p.position;
      }
    }
    if (kw == std::string_view::npos) {
      return Status::ParseError(
          "update: insert needs 'into', 'before', or 'after': " +
          std::string(stmt));
    }
    LLL_RETURN_IF_ERROR(ParsePayload(rest.substr(0, kw), &s));
    s.target_path = std::string(Trim(rest.substr(kw + kw_len)));
  } else if (verb == "delete") {
    s.op = UpdateOp::kDelete;
    s.target_path = std::string(rest);
  } else if (verb == "replace") {
    s.op = UpdateOp::kReplace;
    const std::vector<bool> top = TopLevelMap(rest);
    const size_t kw = FindTopLevelKeyword(rest, top, "with");
    if (kw == std::string_view::npos) {
      return Status::ParseError("update: replace needs 'with': " +
                                std::string(stmt));
    }
    s.target_path = std::string(Trim(rest.substr(0, kw)));
    LLL_RETURN_IF_ERROR(ParsePayload(rest.substr(kw + 4), &s));
  } else if (verb == "rename") {
    s.op = UpdateOp::kRename;
    const std::vector<bool> top = TopLevelMap(rest);
    const size_t kw = FindTopLevelKeyword(rest, top, "as");
    if (kw == std::string_view::npos) {
      return Status::ParseError("update: rename needs 'as': " +
                                std::string(stmt));
    }
    s.target_path = std::string(Trim(rest.substr(0, kw)));
    s.qname = std::string(Trim(rest.substr(kw + 2)));
    if (!IsWellFormedQName(s.qname)) {
      return Status::ParseError("update: '" + s.qname +
                                "' is not a well-formed QName");
    }
  } else {
    return Status::ParseError(
        "update: expected insert/delete/replace/rename, got '" +
        std::string(verb) + "'");
  }
  if (s.target_path.empty()) {
    return Status::ParseError("update: missing target path: " +
                              std::string(stmt));
  }
  return s;
}

}  // namespace

bool IsUpdateScript(std::string_view source) {
  const std::string_view s = Trim(source);
  for (std::string_view verb : {"insert", "delete", "replace", "rename"}) {
    if (s.size() > verb.size() && s.compare(0, verb.size(), verb) == 0 &&
        std::isspace(static_cast<unsigned char>(s[verb.size()]))) {
      return true;
    }
  }
  return false;
}

Result<UpdateScript> ParseUpdateScript(std::string_view source) {
  UpdateScript script;
  script.source = std::string(Trim(source));
  const std::string_view s = script.source;
  if (s.empty()) {
    return Status::ParseError("update: empty script");
  }
  const std::vector<bool> top = TopLevelMap(s);
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && !(top[i] && s[i] == ';')) continue;
    const std::string_view stmt = Trim(s.substr(start, i - start));
    if (stmt.empty()) {
      return Status::ParseError("update: empty statement in script");
    }
    LLL_ASSIGN_OR_RETURN(UpdateStatement parsed, ParseStatement(stmt));
    script.statements.push_back(std::move(parsed));
    start = i + 1;
  }
  return script;
}

}  // namespace lll::xq
