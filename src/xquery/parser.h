#ifndef LLL_XQUERY_PARSER_H_
#define LLL_XQUERY_PARSER_H_

#include <string_view>

#include "core/result.h"
#include "xquery/ast.h"

namespace lll::xq {

// Parses a main module (prolog + body expression).
//
// The grammar is the XQuery 1.0 Working Draft subset exercised by the paper:
// FLWOR (for/let/where/order by/return, with positional `at` variables),
// quantified expressions, if/then/else, full binary operator ladder with BOTH
// comparison families, XPath steps with ten axes and predicates, direct and
// computed constructors, `cast as` / `instance of` over the simple types, and
// user-defined functions with optional `as` annotations.
//
// Faithfully-reproduced lexical quirks (tested in tests/xquery_quirks_test.cc):
//   * names may contain '-', so $n-1 is a variable with a three-letter name;
//   * bare `x` is a child step, not a variable;
//   * `/` is a path separator; division is spelled `div`;
//   * `=` is the existential general comparison, `eq` the singleton one.
Result<Module> ParseModule(std::string_view source);

// Parses a single expression (no prolog). Convenience for tests and the REPL.
Result<Module> ParseExpression(std::string_view source);

// Parses a SequenceType like "xs:string*" or "element(foo)?".
Result<SequenceType> ParseSequenceTypeString(std::string_view source);

}  // namespace lll::xq

#endif  // LLL_XQUERY_PARSER_H_
