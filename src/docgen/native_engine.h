#ifndef LLL_DOCGEN_NATIVE_ENGINE_H_
#define LLL_DOCGEN_NATIVE_ENGINE_H_

#include "docgen/docgen.h"

namespace lll::docgen {

// The native engine -- the paper's Java rewrite, in C++. Architecture, per
// the paper:
//   * "a quite straightforward recursive walk over the XML structure of the
//     template, inspecting each XML element in turn";
//   * mutable accumulators: "A few lines of code let the generation state
//     include a list of table-of-contents entries and a set of visited
//     nodes";
//   * "a very modest second phase ... cramming in the tables at the
//     appropriate places by modifying the in-memory XML data structures";
//   * GenTrouble-style errors: every directive failure carries the focus
//     node and the template location as Status context, and intermediate
//     levels just propagate (one line per call site).
//
// The output document is built once and patched in place:
// stats.document_copies == 0, by construction (contrast E4).
Result<DocGenResult> GenerateNative(const xml::Node* template_root,
                                    const awb::Model& model,
                                    const GenerateOptions& options = {});

// Convenience: parse template text, then generate.
Result<DocGenResult> GenerateNativeFromText(const std::string& template_xml,
                                            const awb::Model& model,
                                            const GenerateOptions& options = {});

}  // namespace lll::docgen

#endif  // LLL_DOCGEN_NATIVE_ENGINE_H_
