#ifndef LLL_DOCGEN_NATIVE_ENGINE_H_
#define LLL_DOCGEN_NATIVE_ENGINE_H_

#include "core/thread_pool.h"
#include "docgen/docgen.h"

namespace lll::docgen {

// The native engine -- the paper's Java rewrite, in C++. Architecture, per
// the paper:
//   * "a quite straightforward recursive walk over the XML structure of the
//     template, inspecting each XML element in turn";
//   * mutable accumulators: "A few lines of code let the generation state
//     include a list of table-of-contents entries and a set of visited
//     nodes";
//   * "a very modest second phase ... cramming in the tables at the
//     appropriate places by modifying the in-memory XML data structures";
//   * GenTrouble-style errors: every directive failure carries the focus
//     node and the template location as Status context, and intermediate
//     levels just propagate (one line per call site).
//
// The output document is built once and patched in place:
// stats.document_copies == 0, by construction (contrast E4).
Result<DocGenResult> GenerateNative(const xml::Node* template_root,
                                    const awb::Model& model,
                                    const GenerateOptions& options = {});

// Convenience: parse template text, then generate.
Result<DocGenResult> GenerateNativeFromText(const std::string& template_xml,
                                            const awb::Model& model,
                                            const GenerateOptions& options = {});

// Batch mode: same semantics -- and byte-identical output -- as
// GenerateNative, but the independent top-level units of the template (each
// top-level child of the template root; each iteration of a top-level <for>)
// expand concurrently on `pool`, each into its own private document with its
// own accumulators. The chunks are then merged strictly in document order
// (output subtrees concatenated, visited sets unioned, table-of-contents
// lists spliced in order, placeholder definitions merged with
// last-definition-wins), and the patch phase -- table of contents, table of
// omissions, placeholder substitution -- runs once over the merged document,
// exactly as in the sequential engine. Determinism therefore does not depend
// on thread scheduling. Under ErrorPolicy::kPropagate the error returned is
// the first one in document order, matching the sequential engine.
//
// `pool` may be nullptr or empty (0 threads): the batch machinery then runs
// on the calling thread, still through the chunk/merge path.
//
// Thread-safety requirements (audited): the Model and template are only read
// during generation; awbql::EvalNative and the shared query parse cache are
// safe for concurrent use.
Result<DocGenResult> GenerateNativeParallel(const xml::Node* template_root,
                                            const awb::Model& model,
                                            const GenerateOptions& options,
                                            ThreadPool* pool);

// Batch mode over one immutable model state: renders every template in
// `template_roots` against the SAME `model`, concurrently on `pool` (nullptr
// or 0 threads = sequential on the caller). Because the model is only read,
// all outputs are generated from one consistent state by construction --
// this is the primitive the query server's snapshot-pinned report endpoint
// is built on: pin a model snapshot, batch-generate, release. On error the
// first failing template (by index, not by scheduling) wins, matching the
// document-order rule of GenerateNativeParallel. Must not be called from
// inside a task of the same pool.
Result<std::vector<DocGenResult>> GenerateNativeBatch(
    const std::vector<const xml::Node*>& template_roots,
    const awb::Model& model, const GenerateOptions& options, ThreadPool* pool);

}  // namespace lll::docgen

#endif  // LLL_DOCGEN_NATIVE_ENGINE_H_
