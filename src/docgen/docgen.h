#ifndef LLL_DOCGEN_DOCGEN_H_
#define LLL_DOCGEN_DOCGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "awb/model.h"
#include "core/metrics.h"
#include "core/result.h"
#include "obs/trace_sink.h"
#include "xml/node.h"

namespace lll::docgen {

// The AWB document generator: "a template ... is a mix of HTML directives
// and text, which are simply copied to the output document, and idiosyncratic
// AWB directives, which cause various more or less obvious sorts of behavior
// for their children."
//
// Directive catalog (everything else is copied verbatim):
//
//   <for nodes="QUERY"> body </for>
//       Runs the AWB-QL query (text form, ';' or newline separated) and
//       expands body once per result node with the focus set to it. A
//       <query> child element (XML form) may replace the attribute.
//   <if> <test> CONDITION </test> <then>...</then> <else>...</else> </if>
//       CONDITION is one of:
//         <focus-is-type type="T"/>       focus node is (a subtype of) T
//         <focus-has-property name="p"/>
//         <focus-property-equals name="p" value="v"/>
//         <nonempty nodes="QUERY"/>       query result is nonempty
//         <not> C </not>, <and> C C.. </and>, <or> C C.. </or>
//   <label/>                              the focus node's label text
//   <value-of property="p" default="d"/>  a property of the focus; without a
//                                         default, a missing property is an
//                                         ERROR (the E3 workload)
//   <section heading="H"> body </section> emits <div class="section"> with
//                                         an <hN> heading; records a
//                                         table-of-contents entry
//   <table-of-contents/>                  replaced by the collected entries
//   <table-of-omissions types="T1,T2"/>   nodes of those types (all, if
//                                         omitted) never visited during
//                                         generation
//   <table rows="Q" cols="Q" relation="R" corner="txt"/>
//                                         the row/column table of E7: cell
//                                         (r,c) is "x" iff an R edge r->c
//                                         exists (subtype-aware)
//   <rich-text property="p"/>             the focus's HTML-valued property,
//                                         parsed and spliced (escaped text
//                                         if unparseable)
//   <placeholder name="NAME"> body </placeholder>
//                                         defines content; every later text
//                                         occurrence of "NAME-GOES-HERE" in
//                                         the document is replaced by it
//
// A node becomes "visited" when it is made the focus (<for>) or appears as a
// table row/column. Visits feed the table of omissions.

struct GenerateOptions {
  enum class ErrorPolicy {
    // Directive errors abort generation with a GenTrouble-style Status.
    kPropagate,
    // Directive errors become <error><message>..</message></error> elements
    // in the output and generation continues (the discipline the XQuery
    // implementation is forced into; also handy for benchmarking E3).
    kEmbed,
  };
  ErrorPolicy error_policy = ErrorPolicy::kPropagate;
  // Initial focus node id (optional; "" = no focus until the first <for>).
  std::string initial_focus_id;
  // XQuery engine: per-expression profiling of every phase program; the
  // reports land in DocGenResult::phase_profiles.
  bool profile = false;
  // XQuery engine: fn:trace events from the phase programs go here (in
  // addition to each phase's trace_output buffer). Borrowed.
  obs::TraceSink* trace_sink = nullptr;
  // Both engines: generation counters and phase wall-time histograms are
  // recorded here when set (metric names under "docgen."). Borrowed;
  // typically &GlobalMetrics().
  MetricsRegistry* metrics = nullptr;
};

struct DocGenStats {
  size_t directives_processed = 0;
  size_t nodes_visited = 0;
  size_t toc_entries = 0;
  size_t omissions_listed = 0;
  size_t placeholders_defined = 0;
  size_t placeholder_replacements = 0;
  size_t errors_embedded = 0;
  // Full copies made of the (whole) output document. The native engine
  // patches in place: 0. The multi-phase XQuery pipeline copies the document
  // once per phase -- the paper's "fairly inefficient, requiring multiple
  // copies of the entire output" (E4).
  size_t document_copies = 0;
  // XQuery engine only: evaluator steps across all phases.
  size_t eval_steps = 0;
  // XQuery engine only: document-order normalizations across all phases --
  // sorts actually performed vs. proven unnecessary (statically by the
  // optimizer's order analysis or dynamically by the evaluator).
  size_t sorts_performed = 0;
  size_t sorts_skipped = 0;
  // XQuery engine only: streaming pipeline traffic across all phases --
  // axis candidates examined lazily, and a lower bound on candidates never
  // examined because a consumer stopped pulling early.
  size_t nodes_pulled = 0;
  size_t nodes_skipped_early_exit = 0;
  // XQuery engine only: reverse-axis runs fed into the k-way document-order
  // merge, and paths truncated by an optimizer-pushed limit hint.
  size_t reverse_runs_merged = 0;
  size_t limit_pushdowns = 0;
  // XQuery engine only: node-set interning cache traffic across all phases
  // (the cache itself is scoped to one generation).
  size_t nodeset_cache_hits = 0;
  size_t nodeset_cache_misses = 0;
  size_t nodeset_cache_invalidations = 0;
  // Of the invalidations, how many were subtree-scoped (a guard on an
  // interior anchor failed, not the whole tree): the fine-grained
  // invalidation win an interactive edit-regenerate loop banks on.
  size_t nodeset_cache_partial_invalidations = 0;
  // XQuery engine only: wall time per phase (microseconds), phases in run
  // order. Empty for the native engine (it has no phases).
  std::vector<uint64_t> phase_us;
};

struct DocGenResult {
  // Owns the produced tree.
  std::unique_ptr<xml::Document> document;
  // The produced root element (inside `document`).
  xml::Node* root = nullptr;
  DocGenStats stats;
  // Rendered hot-spot reports, one per phase, when GenerateOptions::profile
  // was set (XQuery engine only).
  std::vector<std::string> phase_profiles;

  std::string Serialized(int indent = 0) const;
};

// Parses template text (XML) -- a thin convenience over xml::Parse with the
// right whitespace options for templates.
Result<std::unique_ptr<xml::Document>> ParseTemplate(
    const std::string& template_xml);

// Rewrites every directive carrying a `nodes` text-form query into the
// equivalent <query> XML child, in place. Both engines accept either form;
// the XQuery engine's phase-1 interpreter (which reads the template as data)
// understands only the XML form, so its driver normalizes first.
Status NormalizeTemplateQueries(xml::Document* doc);

// True if `name` is an AWB directive (vs. a pass-through HTML tag).
bool IsDirective(const std::string& name);

// Canonicalizes text nodes under `element`, in place: adjacent text siblings
// merge into one node and zero-length text nodes are dropped. Both engines
// run this on their final output so the two results are DeepEqual-comparable
// (they split text at different construction boundaries).
void NormalizeTextNodes(xml::Node* element);

}  // namespace lll::docgen

#endif  // LLL_DOCGEN_DOCGEN_H_
