#ifndef LLL_DOCGEN_XQ_ENGINE_H_
#define LLL_DOCGEN_XQ_ENGINE_H_

#include <memory>
#include <string>

#include "docgen/docgen.h"
#include "xquery/nodeset_cache.h"
#include "xquery/query_cache.h"

namespace lll::docgen {

// The XQuery engine -- the paper's original implementation: a generic
// template interpreter written in XQuery (see xq_programs.cc), run in five
// phases, each of which copies the entire document ("fairly inefficient,
// requiring multiple copies of the entire output"). Errors are values:
// directive failures become <error> elements in the output, because that is
// the only discipline the language supports.
//
// stats.document_copies counts the phase copies (E4); stats.eval_steps sums
// the evaluator work across phases (E5's interpretation overhead).
//
// Semantics notes (vs. the native engine):
//   * Error message wording differs slightly; differential tests compare
//     error-free templates.
//   * Placeholder content that itself contains a *-GOES-HERE token is
//     spliced verbatim here (the native engine expands it recursively).
Result<DocGenResult> GenerateXQuery(const xml::Node* template_root,
                                    const awb::Model& model,
                                    const GenerateOptions& options = {});

Result<DocGenResult> GenerateXQueryFromText(const std::string& template_xml,
                                            const awb::Model& model,
                                            const GenerateOptions& options = {});

// Cross-generation XQuery docgen session: the interactive edit-regenerate
// loop's fast path.
//
// The free GenerateXQuery above rebuilds the model/metamodel XML documents
// and starts an empty node-set interning cache on every call, so an
// interactive session that regenerates after each small model edit pays the
// full first-generation cost every time. A session instead pins both
// documents once and keeps one NodeSetCache alive across generations:
// interned step chains over the model/metamodel survive from one generation
// to the next, validated per-lookup against the documents' subtree versions
// (see xq::CachedNodeSet). After an edit to the pinned model document, only
// entries whose guarded subtrees actually changed re-evaluate -- everything
// else is a warm hit.
//
// Entries against per-generation scratch documents (the normalized template,
// intermediate phase outputs) are purged after each generation via
// NodeSetCache::RetainDocuments, so the cache never holds node pointers that
// outlive their document.
//
// The session borrows `model`; it must outlive the session. Mutations to the
// pinned model document between generations go through model_document() --
// the xml::Document mutators bump subtree versions themselves. Not
// thread-safe; one session per generating thread.
class XQuerySession {
 public:
  // Builds the pinned model/metamodel documents. Fails only if the exported
  // metamodel XML fails to re-parse (kInvalidArgument).
  static Result<std::unique_ptr<XQuerySession>> Create(const awb::Model& model);

  // Runs the five-phase pipeline against the pinned documents, reusing the
  // session cache. Same contract as GenerateXQuery otherwise.
  Result<DocGenResult> Generate(const xml::Node* template_root,
                                const GenerateOptions& options = {});

  // The pinned model document (mutable: edit between generations to model
  // the interactive loop; subtree versioning scopes the resulting cache
  // invalidation to the edited subtrees).
  xml::Document* model_document() { return model_doc_.get(); }
  const xml::Document* metamodel_document() const {
    return metamodel_doc_.get();
  }
  // The session-lifetime interning cache (hit/miss/invalidation counters).
  const xq::NodeSetCache& nodeset_cache() const { return nodeset_cache_; }
  // Completed Generate calls.
  size_t generations() const { return generations_; }

 private:
  XQuerySession(const awb::Model& model,
                std::unique_ptr<xml::Document> model_doc,
                std::unique_ptr<xml::Document> metamodel_doc)
      : model_(&model),
        model_doc_(std::move(model_doc)),
        metamodel_doc_(std::move(metamodel_doc)),
        nodeset_cache_(/*capacity=*/256) {}

  const awb::Model* model_;
  std::unique_ptr<xml::Document> model_doc_;
  std::unique_ptr<xml::Document> metamodel_doc_;
  xq::NodeSetCache nodeset_cache_;
  size_t generations_ = 0;
};

// EXPLAINs all five phase programs: compiles each through the shared phase
// cache and renders its optimized plan with every rewrite decision annotated
// (dead-let eliminations, swallowed trace() calls, order-analysis verdicts)
// and compile-cache provenance. Phase 2 is the interesting one: it contains a
// deliberately dead `let $dbg := trace(...)` that the default optimizer
// deletes -- the paper's vanished-printf pathology, made visible.
Result<std::string> ExplainXQueryPhases();

// The process-wide compiled-phase cache behind GenerateXQuery and
// ExplainXQueryPhases. Exposed so tooling can warm it from a plan-cache
// artifact (warm boot) or clear it (tests).
xq::QueryCache& XQueryPhaseCache();

// AOT-compiles all five phase programs into the shared phase cache and
// writes them as a plan-cache artifact (*.lllp) at `path`. A fleet member
// that loads the artifact at startup runs its first generation without
// compiling anything.
Status AotCompileXQueryPhases(const std::string& path);

// Warms the shared phase cache from a plan-cache artifact written by
// AotCompileXQueryPhases (or any persist::SavePlanCache). Returns the number
// of plans loaded; stale or corrupt artifacts fail with kInvalidArgument and
// load nothing (a clean cold start).
Result<size_t> LoadXQueryPhaseCache(const std::string& path);

}  // namespace lll::docgen

#endif  // LLL_DOCGEN_XQ_ENGINE_H_
