#ifndef LLL_DOCGEN_XQ_ENGINE_H_
#define LLL_DOCGEN_XQ_ENGINE_H_

#include <string>

#include "docgen/docgen.h"
#include "xquery/query_cache.h"

namespace lll::docgen {

// The XQuery engine -- the paper's original implementation: a generic
// template interpreter written in XQuery (see xq_programs.cc), run in five
// phases, each of which copies the entire document ("fairly inefficient,
// requiring multiple copies of the entire output"). Errors are values:
// directive failures become <error> elements in the output, because that is
// the only discipline the language supports.
//
// stats.document_copies counts the phase copies (E4); stats.eval_steps sums
// the evaluator work across phases (E5's interpretation overhead).
//
// Semantics notes (vs. the native engine):
//   * Error message wording differs slightly; differential tests compare
//     error-free templates.
//   * Placeholder content that itself contains a *-GOES-HERE token is
//     spliced verbatim here (the native engine expands it recursively).
Result<DocGenResult> GenerateXQuery(const xml::Node* template_root,
                                    const awb::Model& model,
                                    const GenerateOptions& options = {});

Result<DocGenResult> GenerateXQueryFromText(const std::string& template_xml,
                                            const awb::Model& model,
                                            const GenerateOptions& options = {});

// EXPLAINs all five phase programs: compiles each through the shared phase
// cache and renders its optimized plan with every rewrite decision annotated
// (dead-let eliminations, swallowed trace() calls, order-analysis verdicts)
// and compile-cache provenance. Phase 2 is the interesting one: it contains a
// deliberately dead `let $dbg := trace(...)` that the default optimizer
// deletes -- the paper's vanished-printf pathology, made visible.
Result<std::string> ExplainXQueryPhases();

// The process-wide compiled-phase cache behind GenerateXQuery and
// ExplainXQueryPhases. Exposed so tooling can warm it from a plan-cache
// artifact (warm boot) or clear it (tests).
xq::QueryCache& XQueryPhaseCache();

// AOT-compiles all five phase programs into the shared phase cache and
// writes them as a plan-cache artifact (*.lllp) at `path`. A fleet member
// that loads the artifact at startup runs its first generation without
// compiling anything.
Status AotCompileXQueryPhases(const std::string& path);

// Warms the shared phase cache from a plan-cache artifact written by
// AotCompileXQueryPhases (or any persist::SavePlanCache). Returns the number
// of plans loaded; stale or corrupt artifacts fail with kInvalidArgument and
// load nothing (a clean cold start).
Result<size_t> LoadXQueryPhaseCache(const std::string& path);

}  // namespace lll::docgen

#endif  // LLL_DOCGEN_XQ_ENGINE_H_
