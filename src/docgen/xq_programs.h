#ifndef LLL_DOCGEN_XQ_PROGRAMS_H_
#define LLL_DOCGEN_XQ_PROGRAMS_H_

#include <string>

namespace lll::docgen {

// The document generator AS AN XQUERY PROGRAM -- the paper's original
// implementation, reconstructed. Five phases, exactly as described in
// "Mutability vs. Functionality":
//
//   Phase 1 interprets the template against the model, producing the whole
//           document with <INTERNAL-DATA> elements carrying VISITED markers,
//           TOC-ENTRY records, and PLACEHOLDER content "for use by later
//           phases in the document".
//   Phase 2 "constructs the table of omissions. It looks at all the
//           <VISITED> tags in the document -- which can be nicely phrased in
//           XQuery as $doc//VISITED ... It then copies the entire document,
//           sticking the table of omissions in the right place."
//   Phase 3 "constructs the table of contents, similarly."
//   Phase 4 performs placeholder replacement (TABLE-1-GOES-HERE), splitting
//           text nodes functionally.
//   Phase 5 "walks over the document and destroys all <INTERNAL-DATA> tags
//           ... (Or, strictly, it copies everything but the <INTERNAL-DATA>
//           elements, since no mutation happens anywhere.)"
//
// Phase 1 is a generic interpreter: "a quite straightforward recursive walk
// over the XML structure of the template", written in the error-as-value
// discipline (<error> elements checked with local:is-error at call sites --
// the six-line pattern of the paper's Error Detection section).
//
// Inputs per phase (registered with fn:doc):
//   phase 1: doc("template") [document node], doc("model"),
//            doc("metamodel") [document nodes], $initial-focus-id [string]
//   phases 2-5: doc("doc") [the previous phase's ROOT ELEMENT], plus model
//            and metamodel where needed.

const std::string& Phase1InterpretProgram();
const std::string& Phase2OmissionsProgram();
const std::string& Phase3TocProgram();
const std::string& Phase4PlaceholdersProgram();
const std::string& Phase5StripProgram();

}  // namespace lll::docgen

#endif  // LLL_DOCGEN_XQ_PROGRAMS_H_
