#include "docgen/docgen.h"

#include "awbql/query.h"
#include "core/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace lll::docgen {

std::string DocGenResult::Serialized(int indent) const {
  if (root == nullptr) return "";
  xml::SerializeOptions opts;
  opts.indent = indent;
  return xml::Serialize(root, opts);
}

Result<std::unique_ptr<xml::Document>> ParseTemplate(
    const std::string& template_xml) {
  xml::ParseOptions opts;
  opts.strip_insignificant_whitespace = true;
  opts.keep_comments = false;
  return xml::Parse(template_xml, opts);
}

bool IsDirective(const std::string& name) {
  return name == "for" || name == "if" || name == "label" ||
         name == "value-of" || name == "section" ||
         name == "table-of-contents" || name == "table-of-omissions" ||
         name == "table" || name == "rich-text" || name == "placeholder";
}

namespace {

// Converts a text-form `nodes` attribute ('; '-separated) into newline form.
std::string NodesAttributeToQueryText(const std::string& attr) {
  std::string text;
  for (const std::string& part : Split(attr, ';')) {
    std::string_view trimmed = TrimWhitespace(part);
    if (!trimmed.empty()) {
      text.append(trimmed);
      text.push_back('\n');
    }
  }
  return text;
}

// Builds the <query> XML element for a parsed query.
xml::Node* QueryToXmlElement(xml::Document* doc, const awbql::Query& query) {
  xml::Node* qe = doc->CreateElement("query");
  xml::Node* from = doc->CreateElement("from");
  switch (query.source_kind) {
    case awbql::Query::SourceKind::kAll:
      break;
    case awbql::Query::SourceKind::kType:
      from->SetAttribute("type", query.source_arg);
      break;
    case awbql::Query::SourceKind::kNode:
      from->SetAttribute("node", query.source_arg);
      break;
    case awbql::Query::SourceKind::kFocus:
      from->SetAttribute("focus", "true");
      break;
  }
  (void)qe->AppendChild(from);
  for (const awbql::QueryStep& step : query.steps) {
    using Kind = awbql::QueryStep::Kind;
    xml::Node* se = nullptr;
    switch (step.kind) {
      case Kind::kFollowForward:
      case Kind::kFollowBackward:
        se = doc->CreateElement("follow");
        se->SetAttribute("relation", step.relation);
        se->SetAttribute("direction", step.kind == Kind::kFollowForward
                                          ? "forward"
                                          : "backward");
        if (!step.target_type.empty()) se->SetAttribute("to", step.target_type);
        break;
      case Kind::kFilterType:
        se = doc->CreateElement("filter");
        se->SetAttribute("type", step.target_type);
        break;
      case Kind::kFilterHasProperty:
        se = doc->CreateElement("filter");
        se->SetAttribute("has", step.property);
        break;
      case Kind::kFilterNotHasProperty:
        se = doc->CreateElement("filter");
        se->SetAttribute("missing", step.property);
        break;
      case Kind::kFilterPropertyEquals:
        se = doc->CreateElement("filter");
        se->SetAttribute("prop", step.property);
        se->SetAttribute("value", step.value);
        break;
      case Kind::kSortByLabel:
        se = doc->CreateElement("sort");
        se->SetAttribute("by", "label");
        break;
      case Kind::kSortByProperty:
        se = doc->CreateElement("sort");
        se->SetAttribute("by", step.property);
        break;
      case Kind::kLimit:
        se = doc->CreateElement("limit");
        se->SetAttribute("count", std::to_string(step.limit));
        break;
    }
    (void)qe->AppendChild(se);
  }
  return qe;
}

Status NormalizeElement(xml::Document* doc, xml::Node* element) {
  for (xml::Node* child : element->children()) {
    if (child->is_element()) {
      LLL_RETURN_IF_ERROR(NormalizeElement(doc, child));
    }
  }
  auto nodes_attr = element->AttributeValue("nodes");
  if (!nodes_attr.has_value()) return Status::Ok();
  if (element->name() != "for" && element->name() != "nonempty" &&
      element->name() != "table") {
    return Status::Ok();
  }
  LLL_ASSIGN_OR_RETURN(awbql::Query query,
                       awbql::ParseQuery(NodesAttributeToQueryText(std::string(*nodes_attr))));
  LLL_RETURN_IF_ERROR(
      element->InsertChildAt(0, QueryToXmlElement(doc, query)));
  element->RemoveAttribute("nodes");
  return Status::Ok();
}

// <table rows="Q" cols="Q">: normalize both into <rows-query>/<cols-query>
// wrappers so the XQuery interpreter can tell them apart.
Status NormalizeTableElement(xml::Document* doc, xml::Node* element) {
  for (xml::Node* child : element->children()) {
    if (child->is_element()) {
      LLL_RETURN_IF_ERROR(NormalizeTableElement(doc, child));
    }
  }
  if (element->name() != "table") return Status::Ok();
  for (const char* attr : {"rows", "cols"}) {
    auto value = element->AttributeValue(attr);
    if (!value.has_value()) continue;
    LLL_ASSIGN_OR_RETURN(
        awbql::Query query,
        awbql::ParseQuery(NodesAttributeToQueryText(std::string(*value))));
    xml::Node* wrapper =
        doc->CreateElement(std::string(attr) + "-query");
    (void)wrapper->AppendChild(QueryToXmlElement(doc, query));
    LLL_RETURN_IF_ERROR(element->AppendChild(wrapper));
    element->RemoveAttribute(attr);
  }
  return Status::Ok();
}

}  // namespace

void NormalizeTextNodes(xml::Node* element) {
  // Children snapshot: we mutate the list while walking.
  std::vector<xml::Node*> snapshot(element->children().begin(),
                                   element->children().end());
  xml::Node* previous_text = nullptr;
  for (xml::Node* child : snapshot) {
    if (child->is_text()) {
      if (child->value().empty()) {
        child->Detach();
        continue;
      }
      if (previous_text != nullptr) {
        previous_text->set_value(std::string(previous_text->value()) +
                                 std::string(child->value()));
        child->Detach();
        continue;
      }
      previous_text = child;
      continue;
    }
    previous_text = nullptr;
    if (child->is_element()) NormalizeTextNodes(child);
  }
}

Status NormalizeTemplateQueries(xml::Document* doc) {
  xml::Node* root = doc->DocumentElement();
  if (root == nullptr) return Status::Invalid("template has no root element");
  LLL_RETURN_IF_ERROR(NormalizeElement(doc, root));
  return NormalizeTableElement(doc, root);
}

}  // namespace lll::docgen
