#include "docgen/xq_engine.h"

#include <chrono>
#include <vector>

#include "awb/xml_io.h"
#include "docgen/xq_programs.h"
#include "obs/explain.h"
#include "persist/plan_serde.h"
#include "xml/name_table.h"
#include "xml/parser.h"
#include "xquery/engine.h"
#include "xquery/nodeset_cache.h"
#include "xquery/query_cache.h"

namespace lll::docgen {

namespace {

// The five phase programs are fixed strings, so every generation after the
// first reuses their compiled form. Process-wide and thread-safe; leaked on
// purpose (immortal, like the builtin registry).
xq::QueryCache& PhaseProgramCache() {
  static xq::QueryCache& cache = *new xq::QueryCache(/*capacity=*/8);
  return cache;
}

struct PhaseSpec {
  const char* name;
  const std::string* program;
};

std::vector<PhaseSpec> AllPhases() {
  return {{"phase1-interpret", &Phase1InterpretProgram()},
          {"phase2-omissions", &Phase2OmissionsProgram()},
          {"phase3-toc", &Phase3TocProgram()},
          {"phase4-placeholders", &Phase4PlaceholdersProgram()},
          {"phase5-strip", &Phase5StripProgram()}};
}

// Counts descendant elements with a given name (stats extraction from the
// intermediate INTERNAL-DATA markers).
size_t CountDescendants(const xml::Node* root, const std::string& name) {
  return root->DescendantElements(name).size();
}

size_t CountDistinctVisited(const xml::Node* root) {
  std::vector<std::string> ids;
  for (const xml::Node* v : root->DescendantElements("VISITED")) {
    auto id = v->AttributeValue("node-id");
    if (id.has_value()) ids.push_back(std::string(*id));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

// The shared five-phase pipeline. The caller owns the model/metamodel
// documents and the interning cache: the free GenerateXQuery builds all
// three per call (generation-scoped cache), an XQuerySession pins them
// across calls (cross-generation interning).
Result<DocGenResult> RunPhases(const xml::Node* template_root,
                               const awb::Model& model,
                               xml::Document* model_doc,
                               xml::Document* metamodel_doc,
                               xq::NodeSetCache* nodeset_cache,
                               const GenerateOptions& options) {
  if (template_root == nullptr || !template_root->is_element()) {
    return Status::Invalid("template root must be an element");
  }
  if (!options.initial_focus_id.empty() &&
      model.FindNode(options.initial_focus_id) == nullptr) {
    return Status::NotFound("initial focus node '" + options.initial_focus_id +
                            "' not found");
  }

  // The XQuery implementation reads everything as XML documents: the
  // template must be in normalized form (<query> children, not `nodes`
  // attributes), and model + metamodel travel as their exported XML.
  auto template_doc = std::make_unique<xml::Document>();
  (void)template_doc->root()->AppendChild(
      template_doc->ImportNode(template_root));
  LLL_RETURN_IF_ERROR(NormalizeTemplateQueries(template_doc.get()));

  DocGenStats stats;
  std::vector<std::string> phase_profiles;

  // Compiles (cached) and runs one phase, timing it and routing the caller's
  // observability options (profiler, trace sink, metrics) into the engine.
  auto run_phase = [&](const char* name, const std::string& program,
                       xq::ExecuteOptions& opts) -> Result<xq::QueryResult> {
    opts.eval.profile = options.profile;
    opts.eval.trace_sink = options.trace_sink;
    opts.eval.nodeset_cache = nodeset_cache;
    opts.metrics = options.metrics;
    const auto started = std::chrono::steady_clock::now();
    LLL_ASSIGN_OR_RETURN(std::shared_ptr<const xq::CompiledQuery> compiled,
                         PhaseProgramCache().GetOrCompile(program));
    LLL_ASSIGN_OR_RETURN(xq::QueryResult r, xq::Execute(*compiled, opts));
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    stats.phase_us.push_back(us);
    if (options.metrics != nullptr) {
      options.metrics
          ->histogram(std::string("docgen.xq.phase_us.") + name)
          .Observe(us);
    }
    if (options.profile && r.profile != nullptr) {
      phase_profiles.push_back(std::string("== ") + name + " ==\n" +
                               r.profile->Render());
    }
    return r;
  };

  const std::vector<PhaseSpec> phases = AllPhases();

  // Phase 1: interpret the template.
  xq::ExecuteOptions phase1;
  phase1.documents["template"] = template_doc->root();
  phase1.documents["model"] = model_doc->root();
  phase1.documents["metamodel"] = metamodel_doc->root();
  phase1.variables["initial-focus-id"] =
      xdm::Sequence(xdm::Item::String(options.initial_focus_id));
  LLL_ASSIGN_OR_RETURN(
      xq::QueryResult r1,
      run_phase(phases[0].name, *phases[0].program, phase1));
  if (r1.sequence.size() != 1 || !r1.sequence.at(0).is_node()) {
    return Status::Internal("phase 1 did not produce a single root element");
  }
  auto accumulate_eval_stats = [&stats](const xq::EvalStats& s) {
    stats.eval_steps += s.steps;
    stats.sorts_performed += s.sorts_performed;
    stats.sorts_skipped += s.sorts_skipped;
    stats.nodes_pulled += s.nodes_pulled;
    stats.nodes_skipped_early_exit += s.nodes_skipped_early_exit;
    stats.reverse_runs_merged += s.reverse_runs_merged;
    stats.limit_pushdowns += s.limit_pushdowns;
    stats.nodeset_cache_hits += s.nodeset_cache_hits;
    stats.nodeset_cache_misses += s.nodeset_cache_misses;
    stats.nodeset_cache_invalidations += s.nodeset_cache_invalidations;
    stats.nodeset_cache_partial_invalidations +=
        s.nodeset_cache_partial_invalidations;
  };
  accumulate_eval_stats(r1.stats);

  // The intermediate arenas must outlive the phases that read them.
  std::vector<std::unique_ptr<xml::Document>> arenas;
  xml::Node* current = r1.sequence.at(0).node();
  arenas.push_back(std::move(r1.arena));

  stats.toc_entries = CountDescendants(current, "TOC-ENTRY");
  stats.placeholders_defined = CountDescendants(current, "PLACEHOLDER");
  stats.nodes_visited = CountDistinctVisited(current);
  stats.errors_embedded = CountDescendants(current, "error");
  // Directive markers double as a proxy for directives processed; the real
  // count lives in the interpreter, which has no side channel to report it
  // (the paper's observability complaint, live and well). Leave it at 0.

  for (size_t i = 1; i < phases.size(); ++i) {
    // Only phase 2 (omissions) reads the model and metamodel again.
    const bool needs_model = (i == 1);
    xq::ExecuteOptions opts;
    opts.documents["doc"] = current;
    if (needs_model) {
      opts.documents["model"] = model_doc->root();
      opts.documents["metamodel"] = metamodel_doc->root();
    }
    LLL_ASSIGN_OR_RETURN(xq::QueryResult r,
                         run_phase(phases[i].name, *phases[i].program, opts));
    if (r.sequence.size() != 1 || !r.sequence.at(0).is_node()) {
      return Status::Internal("a docgen phase did not produce a single root");
    }
    accumulate_eval_stats(r.stats);
    // Each phase copies the entire document -- the E4 cost, counted.
    ++stats.document_copies;
    current = r.sequence.at(0).node();
    arenas.push_back(std::move(r.arena));
  }

  // Count omissions from the final document.
  for (const xml::Node* list : current->DescendantElements("ul")) {
    auto cls = list->AttributeValue("class");
    if (cls.has_value() && *cls == "omissions") {
      stats.omissions_listed += list->ChildElements("li").size();
    }
  }

  if (options.metrics != nullptr) {
    options.metrics->counter("docgen.xq.generations").Increment();
    PhaseProgramCache().ExportTo(options.metrics, "docgen.xq.cache");
    nodeset_cache->ExportTo(options.metrics, "docgen.xq.nodeset");
    // Storage gauges: the model document is the generation's dominant arena.
    const xml::DocumentStorageStats storage = model_doc->storage_stats();
    options.metrics->gauge("xml.doc.nodes")
        .Set(static_cast<int64_t>(storage.node_count));
    options.metrics->gauge("xml.doc.bytes")
        .Set(static_cast<int64_t>(storage.total_bytes));
    options.metrics->gauge("xml.names.interned")
        .Set(static_cast<int64_t>(xml::NameTable::interned_count()));
  }

  DocGenResult result;
  // Keep only the final arena alive: re-import the finished tree into a
  // fresh document so the intermediate arenas (and their whole-document
  // copies) can be freed.
  result.document = std::make_unique<xml::Document>();
  xml::Node* root = result.document->ImportNode(current);
  (void)result.document->root()->AppendChild(root);
  NormalizeTextNodes(root);
  result.root = root;
  result.stats = stats;
  result.phase_profiles = std::move(phase_profiles);
  return result;
}

}  // namespace

Result<DocGenResult> GenerateXQuery(const xml::Node* template_root,
                                    const awb::Model& model,
                                    const GenerateOptions& options) {
  auto model_doc = awb::ModelToXml(model);
  LLL_ASSIGN_OR_RETURN(
      auto metamodel_doc,
      xml::Parse(awb::ExportMetamodelXml(model.metamodel()),
                 {.strip_insignificant_whitespace = true}));
  // One node-set interning cache per generation: the repeated-directive
  // phases re-walk the same model/metamodel chains many times, and the
  // generation scope bounds the cached raw node pointers' lifetime to the
  // documents above (which outlive every phase).
  xq::NodeSetCache nodeset_cache(/*capacity=*/128);
  return RunPhases(template_root, model, model_doc.get(), metamodel_doc.get(),
                   &nodeset_cache, options);
}

Result<std::unique_ptr<XQuerySession>> XQuerySession::Create(
    const awb::Model& model) {
  auto model_doc = awb::ModelToXml(model);
  LLL_ASSIGN_OR_RETURN(
      auto metamodel_doc,
      xml::Parse(awb::ExportMetamodelXml(model.metamodel()),
                 {.strip_insignificant_whitespace = true}));
  return std::unique_ptr<XQuerySession>(new XQuerySession(
      model, std::move(model_doc), std::move(metamodel_doc)));
}

Result<DocGenResult> XQuerySession::Generate(const xml::Node* template_root,
                                             const GenerateOptions& options) {
  Result<DocGenResult> result =
      RunPhases(template_root, *model_, model_doc_.get(), metamodel_doc_.get(),
                &nodeset_cache_, options);
  // Drop entries interned against this generation's scratch documents (the
  // normalized template, intermediate phase outputs): their node pointers
  // die with the generation. Entries over the pinned model/metamodel
  // survive into the next generation -- the cross-generation warm set.
  nodeset_cache_.RetainDocuments(
      {model_doc_->doc_id(), metamodel_doc_->doc_id()});
  if (result.ok()) ++generations_;
  return result;
}

Result<DocGenResult> GenerateXQueryFromText(const std::string& template_xml,
                                            const awb::Model& model,
                                            const GenerateOptions& options) {
  LLL_ASSIGN_OR_RETURN(auto doc, ParseTemplate(template_xml));
  return GenerateXQuery(doc->DocumentElement(), model, options);
}

Result<std::string> ExplainXQueryPhases() {
  std::string out;
  for (const PhaseSpec& phase : AllPhases()) {
    xq::CacheProvenance provenance = xq::CacheProvenance::kCompiled;
    LLL_ASSIGN_OR_RETURN(std::shared_ptr<const xq::CompiledQuery> compiled,
                         PhaseProgramCache().GetOrCompile(
                             *phase.program, {}, nullptr, &provenance));
    obs::ExplainOptions eo;
    eo.provenance = std::string(phase.name) + ", plan: " +
                    xq::CacheProvenanceName(provenance);
    out += obs::Explain(*compiled, eo);
    out += "\n";
  }
  return out;
}

xq::QueryCache& XQueryPhaseCache() { return PhaseProgramCache(); }

Status AotCompileXQueryPhases(const std::string& path) {
  for (const PhaseSpec& phase : AllPhases()) {
    LLL_RETURN_IF_ERROR(
        PhaseProgramCache().GetOrCompile(*phase.program).status());
  }
  return persist::SavePlanCache(PhaseProgramCache(), path);
}

Result<size_t> LoadXQueryPhaseCache(const std::string& path) {
  return persist::LoadPlanCache(path, &PhaseProgramCache());
}

}  // namespace lll::docgen
