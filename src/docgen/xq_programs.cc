#include "docgen/xq_programs.h"

namespace lll::docgen {

namespace {

// Shared helper prolog: metamodel subtype walks and labels.
constexpr char kCommonProlog[] = R"XQ(
declare function local:is-node-subtype($t, $super) {
  if ($t eq $super) then true()
  else
    let $decl := doc("metamodel")//node-type[@name = $t]
    return
      if (empty($decl)) then false()
      else if (empty($decl/@extends)) then false()
      else local:is-node-subtype(string($decl/@extends), $super)
};

declare function local:is-rel-subtype($t, $super) {
  if ($t eq $super) then true()
  else
    let $decl := doc("metamodel")//relation-type[@name = $t]
    return
      if (empty($decl)) then false()
      else if (empty($decl/@extends)) then false()
      else local:is-rel-subtype(string($decl/@extends), $super)
};

declare function local:label-prop($t) {
  let $decl := doc("metamodel")//node-type[@name = $t]
  return
    if (empty($decl)) then "name"
    else if (empty($decl/@label-property)) then "name"
    else string($decl/@label-property)
};

declare function local:label($n) {
  let $lp := local:label-prop(string($n/@type))
  let $v := $n/property[@name = $lp]
  return if (empty($v)) then string($n/@id) else string($v[1])
};
)XQ";

// The error-as-value discipline: "we wound up with ... an XML structure with
// root tag 'error', and a few children that explain what went wrong."
constexpr char kErrorProlog[] = R"XQ(
declare function local:mk-error($msg, $where) {
  <error><message>{$msg}</message><location>{$where}</location></error>
};

declare function local:is-error($v) {
  some $i in $v satisfies ($i instance of element(error))
};
)XQ";

// The AWB-QL interpreter over the XML query form -- "essentially writing an
// interpreter in XQuery, which is not a hard exercise."
constexpr char kQueryProlog[] = R"XQ(
declare function local:eval-follow($set, $step) {
  let $rels := doc("model")/awb-model/relation
  let $all-nodes := doc("model")/awb-model/node
  let $forward := not(string($step/@direction) eq "backward")
  let $targets :=
    (for $n in $set
     for $r in (if ($forward) then $rels[@source = $n/@id]
                else $rels[@target = $n/@id])
     where local:is-rel-subtype(string($r/@type), string($step/@relation))
     return $all-nodes[@id = (if ($forward) then string($r/@target)
                              else string($r/@source))]) | ()
  return
    if (empty($step/@to)) then $targets
    else $targets[local:is-node-subtype(string(@type), string($step/@to))]
};

declare function local:eval-filter($set, $step) {
  if (exists($step/@type)) then
    $set[local:is-node-subtype(string(@type), string($step/@type))]
  else if (exists($step/@has)) then
    $set[exists(property[@name = string($step/@has)])]
  else if (exists($step/@missing)) then
    $set[empty(property[@name = string($step/@missing)])]
  else if (exists($step/@prop)) then
    $set[property[@name = string($step/@prop)] = string($step/@value)]
  else $set
};

declare function local:eval-steps($set, $steps) {
  if (empty($steps)) then $set
  else
    let $step := $steps[1]
    let $rest := $steps[position() > 1]
    let $next :=
      if (name($step) eq "follow") then local:eval-follow($set, $step)
      else if (name($step) eq "filter") then local:eval-filter($set, $step)
      else if (name($step) eq "sort") then
        (if (string($step/@by) eq "label")
         then (for $n in $set order by local:label($n) return $n)
         else (for $n in $set
               order by string($n/property[@name = string($step/@by)][1])
               return $n))
      else if (name($step) eq "limit") then
        subsequence($set, 1, number($step/@count))
      else $set
    return local:eval-steps($next, $rest)
};

declare function local:eval-query($q, $focus) {
  let $nodes := doc("model")/awb-model/node
  let $from := $q/from[1]
  let $src :=
    if (exists($from/@type)) then
      $nodes[local:is-node-subtype(string(@type), string($from/@type))]
    else if (exists($from/@node)) then $nodes[@id = string($from/@node)]
    else if ($from/@focus = "true") then $focus
    else $nodes
  return local:eval-steps($src, $q/*[position() > 1])
};
)XQ";

// The identity copy (phases 2-5 are all variations on it). "strictly, it
// copies everything ... since no mutation happens anywhere."
constexpr char kCopyContentProlog[] = R"XQ(
declare function local:copy-content($n) {
  if ($n instance of element()) then
    element {name($n)} {
      $n/attribute::*,
      for $c in $n/child::node() return local:copy-content($c)
    }
  else if ($n instance of text()) then text { string($n) }
  else ()
};
)XQ";

constexpr char kPhase1Body[] = R"XQ(
declare function local:eval-condition($c, $focus) {
  let $tag := name($c)
  return
  if ($tag eq "focus-is-type") then
    if (empty($c/@type)) then
      local:mk-error("<focus-is-type> needs a type attribute", $tag)
    else if (empty($focus)) then
      local:mk-error("<focus-is-type> requires a focus node", $tag)
    else local:is-node-subtype(string($focus/@type), string($c/@type))
  else if ($tag eq "focus-has-property") then
    if (empty($c/@name)) then
      local:mk-error("<focus-has-property> needs a name attribute", $tag)
    else if (empty($focus)) then
      local:mk-error("<focus-has-property> requires a focus node", $tag)
    else exists($focus/property[@name = string($c/@name)])
  else if ($tag eq "focus-property-equals") then
    if (empty($c/@name) or empty($c/@value)) then
      local:mk-error("<focus-property-equals> needs name and value attributes", $tag)
    else if (empty($focus)) then
      local:mk-error("<focus-property-equals> requires a focus node", $tag)
    else ($focus/property[@name = string($c/@name)] = string($c/@value))
  else if ($tag eq "nonempty") then
    if (empty($c/query[1])) then
      local:mk-error("<nonempty> needs a <query> child", $tag)
    else exists(local:eval-query($c/query[1], $focus))
  else if ($tag eq "not") then
    if (empty($c/child::*[1])) then
      local:mk-error("<not> needs a condition child", $tag)
    else
      let $v := local:eval-condition($c/child::*[1], $focus)
      return if (local:is-error($v)) then $v else not($v)
  else if ($tag eq "and") then local:eval-all($c/child::*, $focus)
  else if ($tag eq "or") then local:eval-any($c/child::*, $focus)
  else local:mk-error(concat("unknown condition <", $tag, ">"), $tag)
};

declare function local:eval-all($cs, $focus) {
  if (empty($cs)) then true()
  else
    let $v := local:eval-condition($cs[1], $focus)
    return
      if (local:is-error($v)) then $v
      else if (not($v)) then false()
      else local:eval-all($cs[position() > 1], $focus)
};

declare function local:eval-any($cs, $focus) {
  if (empty($cs)) then false()
  else
    let $v := local:eval-condition($cs[1], $focus)
    return
      if (local:is-error($v)) then $v
      else if ($v) then true()
      else local:eval-any($cs[position() > 1], $focus)
};

declare function local:gen-for($t, $focus, $depth) {
  let $q := $t/query[1]
  return
  if (empty($q)) then local:mk-error("<for> needs a <query> child", "for")
  else
    for $n in local:eval-query($q, $focus)
    return (
      <INTERNAL-DATA><VISITED node-id="{string($n/@id)}"/></INTERNAL-DATA>,
      for $c in $t/child::node()
      return if ($c instance of element(query)) then ()
             else local:gen($c, $n, $depth)
    )
};

declare function local:gen-if($t, $focus, $depth) {
  let $test := $t/test[1]
  let $then := $t/then[1]
  return
  if (empty($test) or empty($then)) then
    local:mk-error("<if> needs <test> and <then> children", "if")
  else
    let $cond := $test/child::*[1]
    return
    if (empty($cond)) then local:mk-error("<test> is empty", "if")
    else
      let $v := local:eval-condition($cond, $focus)
      return
      if (local:is-error($v)) then $v
      else if ($v) then
        (for $c in $then/child::node() return local:gen($c, $focus, $depth))
      else
        (for $c in $t/else[1]/child::node() return local:gen($c, $focus, $depth))
};

declare function local:gen-value-of($t, $focus) {
  if (empty($t/@property)) then
    local:mk-error("<value-of> needs a property attribute", "value-of")
  else if (empty($focus)) then
    local:mk-error("<value-of> requires a focus node", "value-of")
  else
    let $p := $focus/property[@name = string($t/@property)]
    return
    if (empty($p)) then
      if (empty($t/@default)) then
        local:mk-error(
          concat("node ", string($focus/@id), " (", local:label($focus),
                 ") has no property '", string($t/@property), "'"),
          "value-of")
      else text { string($t/@default) }
    else text { string($p[1]) }
};

declare function local:gen-section($t, $focus, $depth) {
  if (empty($t/@heading)) then
    local:mk-error("<section> needs a heading attribute", "section")
  else
    let $raw := string($t/@heading)
    return
    if (contains($raw, "{label}") and empty($focus)) then
      local:mk-error("heading uses {label} without a focus", "section")
    else
      let $text := if (contains($raw, "{label}"))
                   then replace($raw, "{label}", local:label($focus))
                   else $raw
      let $level := if ($depth + 1 > 6) then 6 else $depth + 1
      return (
        <INTERNAL-DATA><TOC-ENTRY depth="{$depth + 1}" text="{$text}"/></INTERNAL-DATA>,
        <div class="section">{
          element {concat("h", string($level))} { text { $text } },
          for $c in $t/child::node() return local:gen($c, $focus, $depth + 1)
        }</div>
      )
};

(: The all-at-once functional table construction of E7: "each row and then
   the table itself must be produced in its entirety, all at once." :)
declare function local:gen-table($t, $focus) {
  let $rowsq := $t/rows-query[1]/query[1]
  let $colsq := $t/cols-query[1]/query[1]
  return
  if (empty($rowsq) or empty($colsq)) then
    local:mk-error("<table> needs rows and cols queries", "table")
  else if (empty($t/@relation)) then
    local:mk-error("<table> needs a relation attribute", "table")
  else
    let $rows := local:eval-query($rowsq, $focus)
    let $cols := local:eval-query($colsq, $focus)
    let $rel := string($t/@relation)
    let $corner := if (empty($t/@corner)) then "row\col"
                   else string($t/@corner)
    return (
      (for $n in ($rows, $cols)
       return <INTERNAL-DATA><VISITED node-id="{string($n/@id)}"/></INTERNAL-DATA>),
      <table>{
        <tr>{
          <td>{ $corner }</td>,
          for $c in $cols return <td>{ local:label($c) }</td>
        }</tr>,
        for $r in $rows return
          <tr>{
            <td>{ local:label($r) }</td>,
            for $c in $cols return
              <td>{
                if (exists(doc("model")/awb-model/relation
                             [@source = $r/@id][@target = $c/@id]
                             [local:is-rel-subtype(string(@type), $rel)]))
                then "x" else ()
              }</td>
          }</tr>
      }</table>
    )
};

declare function local:gen-rich-text($t, $focus) {
  if (empty($t/@property)) then
    local:mk-error("<rich-text> needs a property attribute", "rich-text")
  else if (empty($focus)) then
    local:mk-error("<rich-text> requires a focus node", "rich-text")
  else
    let $raw := string($focus/property[@name = string($t/@property)][1])
    let $parsed := parse-xml-fragment($raw)
    return <div class="rich-text">{
      if (empty($parsed) and not($raw eq "")) then $raw else $parsed
    }</div>
};

declare function local:gen-placeholder($t, $focus, $depth) {
  if (empty($t/@name)) then
    local:mk-error("<placeholder> needs a name attribute", "placeholder")
  else
    <INTERNAL-DATA><PLACEHOLDER name="{string($t/@name)}">{
      for $c in $t/child::node()
      return local:gen($c, $focus, $depth)
    }</PLACEHOLDER></INTERNAL-DATA>
};

declare function local:gen-element($t, $focus, $depth) {
  let $tag := name($t)
  return
  if ($tag eq "for") then local:gen-for($t, $focus, $depth)
  else if ($tag eq "if") then local:gen-if($t, $focus, $depth)
  else if ($tag eq "label") then
    (if (empty($focus)) then
       local:mk-error("<label/> requires a focus node", "label")
     else text { local:label($focus) })
  else if ($tag eq "value-of") then local:gen-value-of($t, $focus)
  else if ($tag eq "section") then local:gen-section($t, $focus, $depth)
  else if ($tag eq "table-of-contents") then <lll-toc-marker/>
  else if ($tag eq "table-of-omissions") then
    <lll-omissions-marker>{$t/@types}</lll-omissions-marker>
  else if ($tag eq "table") then local:gen-table($t, $focus)
  else if ($tag eq "rich-text") then local:gen-rich-text($t, $focus)
  else if ($tag eq "placeholder") then local:gen-placeholder($t, $focus, $depth)
  else if ($tag eq "query") then ()
  else
    element {$tag} {
      $t/attribute::*,
      for $c in $t/child::node() return local:gen($c, $focus, $depth)
    }
};

(: "The recursive walk was a hundred lines of code, mostly lines of the form
   if ($tag-name = "for") then generate_for(...)." :)
declare function local:gen($t, $focus, $depth) {
  if ($t instance of element()) then local:gen-element($t, $focus, $depth)
  else if ($t instance of text()) then text { string($t) }
  else ()
};

let $t := doc("template")/child::*[1]
let $focus := if ($initial-focus-id eq "") then ()
              else doc("model")/awb-model/node[@id = $initial-focus-id]
return
  element {name($t)} {
    $t/attribute::*,
    (if (empty($focus)) then ()
     else <INTERNAL-DATA><VISITED node-id="{string($focus/@id)}"/></INTERNAL-DATA>),
    for $c in $t/child::node() return local:gen($c, $focus, 0)
  }
)XQ";

// The $dbg trace let below is the paper's pathology, planted in production
// code on purpose: it is dead (unused, "pure" to the default optimizer), so
// Galax-style DCE deletes it -- and the trace call with it. EXPLAIN on this
// phase shows the removal; compiling with recognize_trace=true delivers the
// event instead. The phase output is identical either way (trace returns its
// last argument, which nothing consumes), so differential tests are
// unaffected.
constexpr char kPhase2Body[] = R"XQ(
declare function local:omissions-list($marker) {
  let $visited := doc("doc")//VISITED/@node-id
  let $dbg := trace("omissions-list: visited =", count($visited))
  let $types := if (empty($marker/@types)) then ()
                else tokenize(string($marker/@types), ",")
  return
  <ul class="omissions">{
    for $n in doc("model")/awb-model/node
    where not($visited = string($n/@id))
      and (empty($types) or
           (some $ty in $types satisfies
              local:is-node-subtype(string($n/@type), normalize-space($ty))))
    return <li>{concat(local:label($n), " (", string($n/@type), ")")}</li>
  }</ul>
};

declare function local:copy($n) {
  if ($n instance of element()) then
    if (name($n) eq "lll-omissions-marker") then local:omissions-list($n)
    else
      element {name($n)} {
        $n/attribute::*,
        for $c in $n/child::node() return local:copy($c)
      }
  else if ($n instance of text()) then text { string($n) }
  else ()
};

local:copy(doc("doc"))
)XQ";

constexpr char kPhase3Body[] = R"XQ(
declare function local:toc-list() {
  <ul class="toc">{
    for $e in doc("doc")//TOC-ENTRY
    return <li class="toc-depth-{string($e/@depth)}">{string($e/@text)}</li>
  }</ul>
};

declare function local:copy($n) {
  if ($n instance of element()) then
    if (name($n) eq "lll-toc-marker") then local:toc-list()
    else
      element {name($n)} {
        $n/attribute::*,
        for $c in $n/child::node() return local:copy($c)
      }
  else if ($n instance of text()) then text { string($n) }
  else ()
};

local:copy(doc("doc"))
)XQ";

constexpr char kPhase4Body[] = R"XQ(
(: "It will probably be in the middle of an XML Text node" -- split the text
   functionally: before-part, spliced content, after-part, recursing on both
   sides so every occurrence of every placeholder is handled. :)
declare function local:replace-in($s, $phs) {
  if (empty($phs)) then (if ($s eq "") then () else text { $s })
  else
    let $ph := $phs[1]
    let $token := concat(string($ph/@name), "-GOES-HERE")
    return
    if (contains($s, $token)) then (
      local:replace-in(substring-before($s, $token), $phs),
      for $c in $ph/child::node() return local:copy-content($c),
      local:replace-in(substring-after($s, $token), $phs)
    )
    else local:replace-in($s, $phs[position() > 1])
};

declare function local:copy($n) {
  if ($n instance of element()) then
    if (name($n) eq "INTERNAL-DATA") then local:copy-content($n)
    else
      element {name($n)} {
        $n/attribute::*,
        for $c in $n/child::node() return local:copy($c)
      }
  else if ($n instance of text()) then
    local:replace-in(string($n), doc("doc")//PLACEHOLDER)
  else ()
};

local:copy(doc("doc"))
)XQ";

constexpr char kPhase5Body[] = R"XQ(
declare function local:copy($n) {
  if ($n instance of element()) then
    if (name($n) eq "INTERNAL-DATA") then ()
    else
      element {name($n)} {
        $n/attribute::*,
        for $c in $n/child::node() return local:copy($c)
      }
  else if ($n instance of text()) then text { string($n) }
  else ()
};

local:copy(doc("doc"))
)XQ";

}  // namespace

const std::string& Phase1InterpretProgram() {
  static const std::string& program = *new std::string(
      std::string(kCommonProlog) + kErrorProlog + kQueryProlog + kPhase1Body);
  return program;
}

const std::string& Phase2OmissionsProgram() {
  static const std::string& program =
      *new std::string(std::string(kCommonProlog) + kPhase2Body);
  return program;
}

const std::string& Phase3TocProgram() {
  static const std::string& program = *new std::string(kPhase3Body);
  return program;
}

const std::string& Phase4PlaceholdersProgram() {
  static const std::string& program =
      *new std::string(std::string(kCopyContentProlog) + kPhase4Body);
  return program;
}

const std::string& Phase5StripProgram() {
  static const std::string& program = *new std::string(kPhase5Body);
  return program;
}

}  // namespace lll::docgen
